//! A fixed-capacity ring buffer of `Copy` records.
//!
//! This is the storage behind the audit flight recorder: the simulator
//! pushes every trace event into the ring as it happens, old entries fall
//! off the back once capacity is reached, and when an invariant violation
//! fires the auditor dumps the surviving window — the last `capacity`
//! events leading up to the failure — in arrival order. Pushes never
//! allocate after construction and never fail.

/// Fixed-capacity overwrite-oldest ring buffer. See the module docs.
#[derive(Clone, Debug)]
pub struct RingBuffer<T: Copy> {
    buf: Vec<T>,
    capacity: usize,
    /// Index the next push writes to (only meaningful once full).
    head: usize,
    /// Total pushes over the ring's lifetime (≥ `len()`).
    pushed: u64,
}

impl<T: Copy> RingBuffer<T> {
    /// A ring holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBuffer {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            pushed: 0,
        }
    }

    /// Append an item, evicting the oldest if the ring is full.
    #[inline]
    pub fn push(&mut self, item: T) {
        if self.buf.len() < self.capacity {
            self.buf.push(item);
        } else {
            self.buf[self.head] = item;
            self.head = (self.head + 1) % self.capacity;
        }
        self.pushed += 1;
    }

    /// Items currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True before the first push.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total pushes over the ring's lifetime, including evicted items.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Iterate the retained items oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (tail, head) = self.buf.split_at(self.head.min(self.buf.len()));
        head.iter().chain(tail.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_keeping_newest() {
        let mut r = RingBuffer::new(4);
        assert!(r.is_empty());
        for v in 0..4 {
            r.push(v);
        }
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        // Two more pushes evict the two oldest.
        r.push(4);
        r.push(5);
        assert_eq!(r.len(), 4);
        assert_eq!(r.total_pushed(), 6);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn wraps_many_times_and_stays_ordered() {
        let mut r = RingBuffer::new(3);
        for v in 0..100 {
            r.push(v);
        }
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![97, 98, 99]);
        assert_eq!(r.total_pushed(), 100);
        assert_eq!(r.capacity(), 3);
    }

    #[test]
    fn partial_fill_iterates_in_push_order() {
        let mut r = RingBuffer::new(10);
        r.push('a');
        r.push('b');
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec!['a', 'b']);
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        RingBuffer::<u8>::new(0);
    }
}
