//! # pi2-obs — low-overhead observability primitives
//!
//! Shared instrumentation for the PI2 simulator stack, designed around
//! one rule: **observation must never perturb the run**. Every type here
//! is a pure observer — nothing reads the RNG, touches the event heap or
//! feeds back into queue state — so instrumented runs stay bit-identical
//! to bare runs, which the integration tests assert.
//!
//! Three building blocks:
//!
//! - [`Registry`]: named counters, gauges and log-linear [`Histogram`]s
//!   behind typed index handles. Registration allocates once; the record
//!   path is an array index plus an add. Snapshots export as JSON or
//!   Prometheus text ([`Registry::to_json`], [`Registry::to_prometheus`],
//!   linted by [`prom_lint`]) and per-worker registries
//!   [`merge`](Registry::merge) deterministically for the parallel
//!   runner.
//! - [`LoopProfiler`]: per-event-class wall-clock attribution for the
//!   dispatch loop. Off by default (the sim skips the clock reads
//!   entirely); on, it costs two `Instant::now()` per event and emits a
//!   breakdown table plus `profile_<class>_ns_per_event` bench metrics.
//! - [`RingBuffer`]: the fixed-capacity overwrite-oldest buffer behind
//!   the audit flight recorder, holding the last N trace events so an
//!   invariant-violation panic can dump the lead-up window.
//! - [`ObsServer`]: a dependency-free live-ops HTTP endpoint (`/metrics`,
//!   `/progress`, `/healthz`, `/cancel`) the sweep drivers publish
//!   point-in-time snapshots into between deterministic work units; the
//!   simulation itself never sees the server.
//!
//! Layering: this crate sits next to `pi2-stats` (whose
//! [`variance_from_moments`](pi2_stats::variance_from_moments) the
//! histogram summary reuses) and below `pi2-netsim`, which owns the
//! actual instrument schema (`SimMetrics`) and wires these primitives
//! into the simulator.

pub mod hist;
pub mod profiler;
pub mod registry;
pub mod ring;
pub mod server;

pub use hist::{Histogram, BUCKETS as HIST_BUCKETS};
pub use profiler::{LoopProfiler, ProfileRow};
pub use registry::{prom_lint, valid_metric_name, CounterId, GaugeId, HistId, Registry};
pub use ring::RingBuffer;
pub use server::{http_get, ObsServer};
