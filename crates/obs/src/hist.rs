//! Log-linear histograms with fixed, allocation-free storage.
//!
//! The bucketing is HdrHistogram-style: values below [`SUB_COUNT`] get an
//! exact bucket each; above that, every power-of-two octave is split into
//! [`SUB_COUNT`] linear sub-buckets, so the relative quantization error is
//! bounded by `1 / SUB_COUNT` (≈ 3 % here) across the full `u64` range.
//! The count array is allocated once at construction ([`Histogram::new`])
//! and never grows — `record` is a shift, a subtract and an increment,
//! cheap enough to sit on the simulator's per-packet hot path.
//!
//! Two histograms with the same layout merge by element-wise addition
//! ([`Histogram::merge`]), which is what lets the parallel sweep runner
//! combine per-worker registries into a fleet-level view that is
//! bit-identical to a serial run.

use pi2_stats::variance_from_moments;

/// log2 of the sub-bucket count per octave.
const SUB_BITS: u32 = 5;
/// Linear sub-buckets per power-of-two octave (and the linear-range size).
pub const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Total bucket count covering all of `u64`.
pub const BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) * SUB_COUNT as usize;

/// Index of the bucket holding `v`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB_COUNT {
        v as usize
    } else {
        // Highest set bit is ≥ SUB_BITS, so `mag` never underflows.
        let mag = 63 - v.leading_zeros() - SUB_BITS;
        let sub = (v >> mag) - SUB_COUNT;
        ((mag as u64 + 1) * SUB_COUNT + sub) as usize
    }
}

/// Smallest value mapping to bucket `i`.
#[inline]
fn bucket_low(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_COUNT {
        i
    } else {
        let mag = i / SUB_COUNT - 1;
        let sub = i % SUB_COUNT;
        (SUB_COUNT + sub) << mag
    }
}

/// Largest value mapping to bucket `i`.
#[inline]
fn bucket_high(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_low(i + 1) - 1
    }
}

/// A fixed-size log-linear histogram of `u64` values (typically
/// nanoseconds). See the module docs for the bucketing scheme.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    sum_sq: f64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram. This is the only allocation the instrument
    /// ever performs.
    pub fn new() -> Self {
        Histogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            sum_sq: 0.0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        let vf = v as f64;
        self.sum_sq += vf * vf;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (wrapping on overflow, which a run of
    /// nanosecond-scale values cannot reach in practice).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value; 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Population standard deviation, from the streamed moments (see
    /// [`pi2_stats::variance_from_moments`]); 0 when empty.
    pub fn stddev(&self) -> f64 {
        variance_from_moments(self.count, self.sum as f64, self.sum_sq).sqrt()
    }

    /// The `q`-quantile (`q` ∈ [0, 1]) as the upper bound of the bucket
    /// containing the order statistic, clamped to the observed maximum.
    /// The result is therefore within one bucket width (relative error ≤
    /// `1 / SUB_COUNT`) above the exact value; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the order statistic, 1-based; q = 0 reads the minimum.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Several quantiles in one call — the batched form of
    /// [`Histogram::quantile`], used by reporting paths (FCT percentile
    /// tables) that always want a fixed P50/P95/P99-style tuple.
    pub fn quantiles<const N: usize>(&self, qs: [f64; N]) -> [u64; N] {
        qs.map(|q| self.quantile(q))
    }

    /// Element-wise accumulate `other` into `self`. Layouts are static,
    /// so any two histograms merge; merging is associative and
    /// commutative, and the parallel runner applies it in item order to
    /// keep merged output deterministic.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Raw bucket counts indexed by bucket number (length [`BUCKETS`]),
    /// for checkpointing. Pair with [`Histogram::raw_moments`] to capture
    /// the full stored state.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts[..]
    }

    /// Raw streamed moments `(count, sum, sum_sq, min_raw, max)` for
    /// checkpointing. `min_raw` is the *stored* minimum — `u64::MAX` when
    /// empty — unlike [`Histogram::min`], which masks that sentinel.
    pub fn raw_moments(&self) -> (u64, u64, f64, u64, u64) {
        (self.count, self.sum, self.sum_sq, self.min, self.max)
    }

    /// Overwrite this histogram with checkpointed state: `buckets` yields
    /// `(bucket_index, count)` pairs for the non-zero buckets, and the
    /// moments are as returned by [`Histogram::raw_moments`].
    ///
    /// # Panics
    /// Panics if a bucket index is out of range; callers validate indices
    /// against [`BUCKETS`] before trusting external blobs.
    pub fn restore_raw(
        &mut self,
        buckets: impl IntoIterator<Item = (usize, u64)>,
        count: u64,
        sum: u64,
        sum_sq: f64,
        min_raw: u64,
        max: u64,
    ) {
        self.counts.fill(0);
        for (i, c) in buckets {
            self.counts[i] = c;
        }
        self.count = count;
        self.sum = sum;
        self.sum_sq = sum_sq;
        self.min = min_raw;
        self.max = max;
    }

    /// Non-empty buckets as `(low, high, count)` ranges, for exporters.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_low(i), bucket_high(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_round_trips_across_the_range() {
        // Every probe value must land in a bucket whose [low, high] range
        // contains it, and the bucket width must respect the log-linear
        // error bound.
        let probes = [
            0,
            1,
            2,
            SUB_COUNT - 1,
            SUB_COUNT,
            SUB_COUNT + 1,
            2 * SUB_COUNT - 1,
            2 * SUB_COUNT,
            63,
            64,
            65,
            1000,
            4095,
            4096,
            123_456_789,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let i = bucket_of(v);
            let (lo, hi) = (bucket_low(i), bucket_high(i));
            assert!(lo <= v && v <= hi, "v={v} not in bucket {i} [{lo}, {hi}]");
            if v >= SUB_COUNT && i + 1 < BUCKETS {
                let width = hi - lo + 1;
                assert!(
                    width <= v / SUB_COUNT + 1,
                    "bucket width {width} too coarse for v={v}"
                );
            }
        }
        // Buckets tile the axis: each bucket starts right after the last.
        for i in 0..2000.min(BUCKETS - 1) {
            assert_eq!(bucket_high(i) + 1, bucket_low(i + 1), "gap after bucket {i}");
        }
    }

    #[test]
    fn quantiles_stay_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        for &(q, exact) in &[(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900), (1.0, 10_000)] {
            let got = h.quantile(q);
            let bound = exact / SUB_COUNT + 1;
            assert!(
                got >= exact && got <= exact + bound,
                "q={q}: got {got}, exact {exact}, bound +{bound}"
            );
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.stddev(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn moments_match_stats_crate() {
        let samples = [3u64, 7, 7, 20, 41];
        let mut h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let as_f64: Vec<f64> = samples.iter().map(|&v| v as f64).collect();
        assert!((h.mean() - pi2_stats::mean(&as_f64)).abs() < 1e-12);
        assert!((h.stddev() - pi2_stats::stddev(&as_f64)).abs() < 1e-9);
    }

    #[test]
    fn raw_state_round_trips_exactly() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 3, 700, 123_456_789] {
            h.record(v);
        }
        let sparse: Vec<(usize, u64)> = h
            .bucket_counts()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect();
        let (count, sum, sum_sq, min_raw, max) = h.raw_moments();
        let mut r = Histogram::new();
        r.record(999); // stale state must be wiped by restore
        r.restore_raw(sparse, count, sum, sum_sq, min_raw, max);
        assert_eq!(r, h);

        // Empty histogram round-trips its min sentinel too.
        let e = Histogram::new();
        let (c2, s2, sq2, mn2, mx2) = e.raw_moments();
        let mut r2 = Histogram::new();
        r2.record(1);
        r2.restore_raw(std::iter::empty(), c2, s2, sq2, mn2, mx2);
        assert_eq!(r2, e);
        assert_eq!(r2.min(), 0);
    }

    /// The exact order statistic the histogram quantile approximates:
    /// 1-based ceil-rank selection over the sorted sample.
    fn sorted_reference(values: &[u64], q: f64) -> u64 {
        let mut s = values.to_vec();
        s.sort_unstable();
        let rank = ((q * s.len() as f64).ceil() as usize).max(1);
        s[rank - 1]
    }

    #[test]
    fn quantile_of_a_single_value_is_exact_at_every_q() {
        for v in [0u64, 1, 31, 32, 1_000, u64::MAX / 2] {
            let mut h = Histogram::new();
            h.record(v);
            for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
                assert_eq!(h.quantile(q), v, "n=1 v={v} q={q}");
            }
        }
    }

    #[test]
    fn quantile_of_all_equal_values_is_exact_at_every_q() {
        for v in [3u64, 255, 1 << 20] {
            let mut h = Histogram::new();
            for _ in 0..100 {
                h.record(v);
            }
            for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
                assert_eq!(h.quantile(q), v, "all-equal v={v} q={q}");
            }
        }
    }

    #[test]
    fn small_value_quantiles_match_the_sorted_reference_exactly() {
        // Values below SUB_COUNT get a bucket each, so the histogram
        // quantile must equal the exact order statistic — the regime the
        // FCT percentile path relies on for its precision statement.
        let values: Vec<u64> = (0..200).map(|i| (i * 13 + 5) % 31).collect();
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), sorted_reference(&values, q), "q={q}");
        }
    }

    #[test]
    fn large_value_quantiles_stay_within_one_sub_bucket_of_reference() {
        let values: Vec<u64> = (1..500).map(|i| i * i * 37 + 11).collect();
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        for q in [0.5, 0.95, 0.99] {
            let approx = h.quantile(q) as f64;
            let exact = sorted_reference(&values, q) as f64;
            assert!(
                approx >= exact && approx <= exact * (1.0 + 1.0 / SUB_COUNT as f64),
                "q={q}: {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn quantiles_batches_match_single_calls() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v * 7 % 499);
        }
        let [p50, p95, p99] = h.quantiles([0.5, 0.95, 0.99]);
        assert_eq!(p50, h.quantile(0.5));
        assert_eq!(p95, h.quantile(0.95));
        assert_eq!(p99, h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..500u64 {
            let x = v * v % 7919;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }
}
