//! The metrics registry: named counters, gauges and histograms with
//! deterministic snapshots in JSON and Prometheus text format.
//!
//! Instruments are registered once at construction time (the only
//! allocations) and afterwards addressed by typed index handles —
//! [`CounterId`], [`GaugeId`], [`HistId`] — so the record path is an
//! array index plus an integer add, with no hashing, no locking and no
//! allocation. Snapshots iterate instruments in registration order,
//! which makes every export byte-deterministic for a deterministic run.
//!
//! Two registries with the same registration sequence merge with
//! [`Registry::merge`]; the parallel sweep runner uses this to fold
//! per-worker registries into one fleet-level registry whose snapshot is
//! identical to a serial run's.

use crate::hist::Histogram;

/// Name + help text of one instrument. Names follow Prometheus
/// conventions (`[a-zA-Z_:][a-zA-Z0-9_:]*`); duration-valued instruments
/// register with an `_ns` suffix (the recording unit) and are converted
/// to base-unit `_seconds` at Prometheus export time only — JSON
/// snapshots and in-process reads stay in nanoseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Meta {
    name: &'static str,
    help: &'static str,
}

/// Handle to a registered counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistId(usize);

/// A fixed-schema metrics registry. See the module docs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    counters: Vec<(Meta, u64)>,
    gauges: Vec<(Meta, f64)>,
    hists: Vec<(Meta, Histogram)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a monotonically increasing counter.
    pub fn counter(&mut self, name: &'static str, help: &'static str) -> CounterId {
        debug_assert!(valid_metric_name(name), "bad metric name {name}");
        self.counters.push((Meta { name, help }, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Register a gauge (a value that can go up and down).
    pub fn gauge(&mut self, name: &'static str, help: &'static str) -> GaugeId {
        debug_assert!(valid_metric_name(name), "bad metric name {name}");
        self.gauges.push((Meta { name, help }, 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Register a log-linear histogram (this allocates the bucket array,
    /// the instrument's only allocation).
    pub fn histogram(&mut self, name: &'static str, help: &'static str) -> HistId {
        debug_assert!(valid_metric_name(name), "bad metric name {name}");
        self.hists.push((Meta { name, help }, Histogram::new()));
        HistId(self.hists.len() - 1)
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn inc(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    /// Read a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Set a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0].1 = v;
    }

    /// Read a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].1
    }

    /// Record a histogram observation.
    #[inline]
    pub fn observe(&mut self, id: HistId, v: u64) {
        self.hists[id.0].1.record(v);
    }

    /// Read a histogram.
    pub fn hist(&self, id: HistId) -> &Histogram {
        &self.hists[id.0].1
    }

    /// Number of registered `(counters, gauges, histograms)`, for
    /// checkpointing: a restorer walks instruments by registration index,
    /// so the counts double as a cheap schema check.
    pub fn instrument_counts(&self) -> (usize, usize, usize) {
        (self.counters.len(), self.gauges.len(), self.hists.len())
    }

    /// Read the `i`-th counter in registration order.
    pub fn counter_at(&self, i: usize) -> u64 {
        self.counters[i].1
    }

    /// Overwrite the `i`-th counter in registration order (checkpoint
    /// restore; normal recording goes through [`Registry::inc`]).
    pub fn set_counter_at(&mut self, i: usize, v: u64) {
        self.counters[i].1 = v;
    }

    /// Read the `i`-th gauge in registration order.
    pub fn gauge_at(&self, i: usize) -> f64 {
        self.gauges[i].1
    }

    /// Overwrite the `i`-th gauge in registration order.
    pub fn set_gauge_at(&mut self, i: usize, v: f64) {
        self.gauges[i].1 = v;
    }

    /// Borrow the `i`-th histogram in registration order.
    pub fn hist_at(&self, i: usize) -> &Histogram {
        &self.hists[i].1
    }

    /// Mutably borrow the `i`-th histogram in registration order.
    pub fn hist_at_mut(&mut self, i: usize) -> &mut Histogram {
        &mut self.hists[i].1
    }

    /// Fold `other` into `self`: counters and histogram buckets add,
    /// gauges take `other`'s value (last writer wins, matching what a
    /// serial run would have left behind). Panics if the registries were
    /// not built with the identical registration sequence.
    pub fn merge(&mut self, other: &Registry) {
        assert_eq!(
            self.schema(),
            other.schema(),
            "cannot merge registries with different schemas"
        );
        for ((_, a), (_, b)) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        for ((_, a), (_, b)) in self.gauges.iter_mut().zip(&other.gauges) {
            *a = *b;
        }
        for ((_, a), (_, b)) in self.hists.iter_mut().zip(&other.hists) {
            a.merge(b);
        }
    }

    /// The registration sequence (names in order), for merge checking.
    fn schema(&self) -> Vec<&'static str> {
        self.counters
            .iter()
            .map(|(m, _)| m.name)
            .chain(self.gauges.iter().map(|(m, _)| m.name))
            .chain(self.hists.iter().map(|(m, _)| m.name))
            .collect()
    }

    /// Deterministic JSON snapshot: counters and gauges as scalars,
    /// histograms as `{count, sum, min, max, mean, stddev, p50, p90,
    /// p99, max}` objects. Instruments appear in registration order;
    /// floats use Rust's shortest-roundtrip formatting.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":1,\"counters\":{");
        for (i, (m, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", m.name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (m, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", m.name, fmt_f64(*v)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (m, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
                 \"stddev\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                m.name,
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                fmt_f64(h.mean()),
                fmt_f64(h.stddev()),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
            ));
        }
        out.push_str("}}");
        out
    }

    /// Prometheus text exposition format (version 0.0.4). Counters and
    /// gauges are scalar samples; histograms export as summaries
    /// (`{quantile="..."}` samples plus `_sum`/`_count`), which keeps the
    /// output compact — the full log-linear bucket array would be ~2000
    /// `le` series per histogram. Duration instruments registered with an
    /// `_ns` suffix export under the convention-compliant `_seconds` name
    /// with their values scaled at export time only (recording, JSON
    /// snapshots and checkpoints stay in integer nanoseconds). Passes
    /// [`crate::prom_lint`], including its base-unit suffix check.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (m, v) in &self.counters {
            let (n, scale) = prom_export_unit(m.name);
            let v = match scale {
                Some(s) => fmt_f64(*v as f64 * s),
                None => v.to_string(),
            };
            out.push_str(&format!(
                "# HELP {n} {h}\n# TYPE {n} counter\n{n} {v}\n",
                h = escape_help(m.help),
            ));
        }
        for (m, v) in &self.gauges {
            let (n, scale) = prom_export_unit(m.name);
            out.push_str(&format!(
                "# HELP {n} {h}\n# TYPE {n} gauge\n{n} {v}\n",
                h = escape_help(m.help),
                v = fmt_f64(v * scale.unwrap_or(1.0)),
            ));
        }
        for (m, hist) in &self.hists {
            let (n, scale) = prom_export_unit(m.name);
            out.push_str(&format!(
                "# HELP {n} {h}\n# TYPE {n} summary\n",
                h = escape_help(m.help),
            ));
            for q in [0.5, 0.9, 0.99] {
                let v = match scale {
                    Some(s) => fmt_f64(hist.quantile(q) as f64 * s),
                    None => hist.quantile(q).to_string(),
                };
                out.push_str(&format!("{n}{{quantile=\"{q}\"}} {v}\n"));
            }
            let sum = match scale {
                Some(s) => fmt_f64(hist.sum() as f64 * s),
                None => hist.sum().to_string(),
            };
            out.push_str(&format!("{n}_sum {sum}\n"));
            out.push_str(&format!("{n}_count {}\n", hist.count()));
        }
        out
    }
}

/// The Prometheus-facing name and value scale of an instrument: an `_ns`
/// registration name exports as `*_seconds` scaled by 1e-9; anything else
/// exports verbatim (`None` = keep integer formatting).
fn prom_export_unit(name: &'static str) -> (std::borrow::Cow<'static, str>, Option<f64>) {
    match name.strip_suffix("_ns") {
        Some(base) => (format!("{base}_seconds").into(), Some(1e-9)),
        None => (name.into(), None),
    }
}

/// Shortest-roundtrip float formatting that stays valid JSON (no bare
/// `NaN`/`inf` tokens — those serialize as null).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// True if `name` is a valid Prometheus metric name.
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Escape a HELP string per the exposition format (backslash and
/// newline).
fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Lint a Prometheus text-format document: every sample line must parse,
/// metric names must be valid and carry base-unit suffixes (`_seconds`,
/// never `_ns`/`_us`/`_ms`), label values must escape `"`/`\`/newline,
/// and no metric may carry duplicate `# HELP` or `# TYPE` lines. Returns
/// the number of sample lines on success.
pub fn prom_lint(text: &str) -> Result<usize, String> {
    let mut help_seen = std::collections::BTreeSet::new();
    let mut type_seen = std::collections::BTreeSet::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let bad = |what: &str| Err(format!("line {}: {what}: {line}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            if !valid_metric_name(name) {
                return bad("HELP for invalid metric name");
            }
            if non_base_unit_suffix(name) {
                return bad("non-base-unit suffix (export durations as _seconds)");
            }
            if !help_seen.insert(name.to_string()) {
                return bad("duplicate HELP");
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !valid_metric_name(name) {
                return bad("TYPE for invalid metric name");
            }
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return bad("unknown TYPE");
            }
            if !type_seen.insert(name.to_string()) {
                return bad("duplicate TYPE");
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name_part, rest) = match line.find(|c| c == '{' || c == ' ') {
            Some(i) => (&line[..i], &line[i..]),
            None => return bad("sample line without value"),
        };
        if !valid_metric_name(name_part) {
            return bad("invalid metric name");
        }
        if non_base_unit_suffix(name_part) {
            return bad("non-base-unit suffix (export durations as _seconds)");
        }
        let value_part = if let Some(rest) = rest.strip_prefix('{') {
            let Some(close) = find_label_end(rest) else {
                return bad("unterminated label set");
            };
            check_labels(&rest[..close]).map_err(|e| format!("line {}: {e}: {line}", lineno + 1))?;
            &rest[close + 1..]
        } else {
            rest
        };
        let mut fields = value_part.split_whitespace();
        let Some(v) = fields.next() else {
            return bad("missing sample value");
        };
        if v.parse::<f64>().is_err() && !matches!(v, "NaN" | "+Inf" | "-Inf") {
            return bad("unparseable sample value");
        }
        samples += 1;
    }
    Ok(samples)
}

/// True if the metric name ends in a sub-base duration unit — Prometheus
/// convention wants base units (`_seconds`), so `_ns`/`_us`/`_ms` (and
/// their spelled-out forms) are lint errors. Aggregation suffixes
/// (`_total`, `_sum`, `_count`, `_bucket`) are stripped first so a
/// summary's derived series are judged by their parent name.
fn non_base_unit_suffix(name: &str) -> bool {
    let base = name
        .strip_suffix("_total")
        .or_else(|| name.strip_suffix("_sum"))
        .or_else(|| name.strip_suffix("_count"))
        .or_else(|| name.strip_suffix("_bucket"))
        .unwrap_or(name);
    ["_ns", "_us", "_ms", "_nanoseconds", "_microseconds", "_milliseconds"]
        .iter()
        .any(|suf| base.ends_with(suf))
}

/// Index of the unescaped closing `}` of a label set (input starts just
/// after the opening `{`).
fn find_label_end(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    let mut in_quotes = false;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'\\' if in_quotes => i += 1, // skip escaped char
            b'"' => in_quotes = !in_quotes,
            b'}' if !in_quotes => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Validate a label body `k="v",k2="v2"`: names valid, values quoted,
/// `"`/`\`/newline escaped inside values.
fn check_labels(body: &str) -> Result<(), String> {
    let mut rest = body;
    while !rest.is_empty() {
        let Some(eq) = rest.find('=') else {
            return Err(format!("label without '=' in '{rest}'"));
        };
        let name = rest[..eq].trim();
        if name.is_empty()
            || !name
                .chars()
                .enumerate()
                .all(|(i, c)| c == '_' || c.is_ascii_alphanumeric() && (i > 0 || !c.is_ascii_digit()) || c.is_ascii_alphabetic())
        {
            return Err(format!("invalid label name '{name}'"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("unquoted label value after '{name}'"));
        }
        let vbody = &after[1..];
        let mut close = None;
        let bytes = vbody.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => {
                    match bytes.get(i + 1) {
                        Some(b'\\') | Some(b'"') | Some(b'n') => i += 1,
                        _ => return Err(format!("bad escape in label '{name}'")),
                    }
                }
                b'"' => {
                    close = Some(i);
                    break;
                }
                b'\n' => return Err(format!("raw newline in label '{name}'")),
                _ => {}
            }
            i += 1;
        }
        let Some(close) = close else {
            return Err(format!("unterminated label value for '{name}'"));
        };
        rest = vbody[close + 1..].trim_start_matches(',').trim_start();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> (Registry, CounterId, GaugeId, HistId) {
        let mut r = Registry::new();
        let c = r.counter("pi2_events_total", "Events processed");
        let g = r.gauge("pi2_prob", "Last applied probability");
        let h = r.histogram("pi2_sojourn_ns", "Per-packet sojourn time");
        (r, c, g, h)
    }

    #[test]
    fn record_and_read_back() {
        let (mut r, c, g, h) = sample_registry();
        r.inc(c, 3);
        r.inc(c, 2);
        r.set(g, 0.25);
        for v in [10, 20, 30] {
            r.observe(h, v);
        }
        assert_eq!(r.counter_value(c), 5);
        assert_eq!(r.gauge_value(g), 0.25);
        assert_eq!(r.hist(h).count(), 3);
    }

    #[test]
    fn merge_sums_counters_and_buckets() {
        let (mut a, c, g, h) = sample_registry();
        let (mut b, ..) = sample_registry();
        a.inc(c, 1);
        b.inc(c, 2);
        a.set(g, 0.1);
        b.set(g, 0.9);
        a.observe(h, 5);
        b.observe(h, 7);
        a.merge(&b);
        assert_eq!(a.counter_value(c), 3);
        assert_eq!(a.gauge_value(g), 0.9, "gauge takes the later run's value");
        assert_eq!(a.hist(h).count(), 2);
    }

    #[test]
    #[should_panic(expected = "different schemas")]
    fn merge_rejects_schema_mismatch() {
        let (mut a, ..) = sample_registry();
        let mut b = Registry::new();
        b.counter("something_else", "x");
        a.merge(&b);
    }

    #[test]
    fn json_snapshot_is_deterministic_and_parses_shape() {
        let (mut r, c, _, h) = sample_registry();
        r.inc(c, 7);
        r.observe(h, 1000);
        let one = r.to_json();
        let two = r.to_json();
        assert_eq!(one, two);
        assert!(one.starts_with("{\"schema\":1,"));
        assert!(one.contains("\"pi2_events_total\":7"));
        assert!(one.contains("\"pi2_sojourn_ns\":{\"count\":1,"));
        assert!(one.contains("\"p99\":"));
    }

    #[test]
    fn prometheus_output_passes_lint() {
        let (mut r, c, g, h) = sample_registry();
        r.inc(c, 1);
        r.set(g, 0.5);
        r.observe(h, 42);
        let text = r.to_prometheus();
        let n = prom_lint(&text).expect("own output must lint clean");
        // 1 counter + 1 gauge + (3 quantiles + sum + count) = 7 samples.
        assert_eq!(n, 7, "{text}");
    }

    #[test]
    fn ns_instruments_export_as_seconds() {
        let (mut r, _, _, h) = sample_registry();
        r.observe(h, 1_500_000_000); // 1.5 s recorded in ns
        let text = r.to_prometheus();
        // The registration name stays ns-valued internally ...
        assert!(!text.contains("pi2_sojourn_ns"), "{text}");
        assert!(r.to_json().contains("\"pi2_sojourn_ns\":{"), "JSON stays in ns");
        // ... but the export renames and rescales to base units.
        assert!(text.contains("# TYPE pi2_sojourn_seconds summary"), "{text}");
        assert!(text.contains("pi2_sojourn_seconds_count 1"), "{text}");
        let sum_line = text
            .lines()
            .find(|l| l.starts_with("pi2_sojourn_seconds_sum "))
            .expect("sum sample present");
        let sum: f64 = sum_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!((sum - 1.5).abs() < 1e-3, "sum {sum} should be ~1.5 s");
        // A gauge registered in ns converts the same way.
        let mut g = Registry::new();
        let id = g.gauge("pi2_rtt_ns", "Round-trip time");
        g.set(id, 2_000_000.0); // 2 ms
        let text = g.to_prometheus();
        assert!(text.contains("pi2_rtt_seconds 0.002"), "{text}");
        prom_lint(&text).expect("converted output lints clean");
    }

    #[test]
    fn lint_flags_non_base_unit_suffixes() {
        let err = prom_lint("pi2_sojourn_ns 5\n").unwrap_err();
        assert!(err.contains("non-base-unit"), "{err}");
        assert!(prom_lint("# HELP pi2_delay_ms x\n").is_err());
        assert!(prom_lint("pi2_sojourn_us_count 5\n").is_err());
        assert!(prom_lint("latency_microseconds 1\n").is_err());
        // Base units and lookalike names pass.
        assert_eq!(prom_lint("pi2_sojourn_seconds_sum 1.5\n").unwrap(), 1);
        assert_eq!(prom_lint("pi2_items_total 3\n").unwrap(), 1);
        assert_eq!(prom_lint("atoms 3\n").unwrap(), 1, "'_ms' must match a suffix, not 'ms'");
    }

    #[test]
    fn lint_catches_duplicates_and_bad_labels() {
        assert!(prom_lint("# HELP a x\n# HELP a y\n").unwrap_err().contains("duplicate HELP"));
        assert!(prom_lint("# TYPE a counter\n# TYPE a gauge\n")
            .unwrap_err()
            .contains("duplicate TYPE"));
        assert!(prom_lint("9bad 1\n").unwrap_err().contains("invalid metric name"));
        assert!(prom_lint("a{l=\"un\nterminated\"} 1\n").is_err());
        assert!(prom_lint("a{l=\"bad\\x\"} 1\n").unwrap_err().contains("bad escape"));
        assert!(prom_lint("a{l=unquoted} 1\n").unwrap_err().contains("unquoted"));
        assert!(prom_lint("a oops\n").unwrap_err().contains("unparseable"));
        // Correctly escaped values pass.
        assert_eq!(prom_lint("a{l=\"q\\\"uote\\\\slash\\n\"} 1\n").unwrap(), 1);
        assert_eq!(prom_lint("a{aqm=\"pi2\",cell=\"4Mb 5ms\"} 2.5\n").unwrap(), 1);
    }

    #[test]
    fn metric_name_validation() {
        assert!(valid_metric_name("pi2_events_total"));
        assert!(valid_metric_name("_x:y"));
        assert!(!valid_metric_name("9start"));
        assert!(!valid_metric_name("has space"));
        assert!(!valid_metric_name(""));
    }
}
