//! Event-loop self-profiler: wall-clock time and event counts per event
//! class.
//!
//! The simulator's dispatch loop classifies each popped event into a
//! small, fixed set of classes (one per `Event` variant) and, when a
//! profiler is attached, brackets the handler with two monotonic-clock
//! reads. Off is genuinely free: the sim holds an `Option<LoopProfiler>`
//! and skips both clock reads when it is `None`. On, the cost is two
//! `Instant::now()` calls per event, attributed to the class being
//! handled.
//!
//! Wall-clock readings never feed back into simulation state — virtual
//! time, RNG draws and event ordering are untouched — so profiled runs
//! stay bit-identical to unprofiled runs.
//!
//! ## Calibration
//!
//! A begin/end pair is not free: the second clock read's own latency is
//! captured *inside* the measured interval (tens of ns on a
//! virtualized clock), which inflates every class by the same additive
//! constant — drowning cheap classes and overstating per-event cost
//! across the board. At construction the profiler times a batch of
//! empty begin/end pairs and subtracts the median pair cost from each
//! reported mean, so [`ProfileRow::ns_per_event`] estimates the
//! *handler's* cost, not handler + clock.

use std::time::Instant;

/// Per-class accumulator.
#[derive(Clone, Copy, Debug, Default)]
struct ClassStat {
    count: u64,
    total_ns: u64,
}

/// Accumulates per-class event counts and handler wall-clock time.
/// Classes are dense indices assigned by the caller (the sim maps each
/// event variant to one) with a display name given at construction.
#[derive(Clone, Debug)]
pub struct LoopProfiler {
    names: Vec<&'static str>,
    stats: Vec<ClassStat>,
    started: Option<(usize, Instant)>,
    /// Median cost of an empty begin/end pair, measured at construction;
    /// subtracted from each class mean when reporting.
    overhead_ns: u64,
}

/// One row of the profiler report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProfileRow {
    /// Event-class display name.
    pub class: &'static str,
    /// Events of this class handled.
    pub count: u64,
    /// Total wall-clock nanoseconds spent in this class's handler.
    pub total_ns: u64,
    /// Mean nanoseconds per event of this class (0 if none ran).
    pub ns_per_event: f64,
}

impl LoopProfiler {
    /// A profiler over the given event classes. Class index `i` in
    /// [`begin`](Self::begin) refers to `names[i]`.
    pub fn new(names: &[&'static str]) -> Self {
        LoopProfiler {
            names: names.to_vec(),
            stats: vec![ClassStat::default(); names.len()],
            started: None,
            overhead_ns: Self::calibrate(),
        }
    }

    /// Median captured duration of an empty begin/end pair. The first
    /// batch also warms the clock path (vDSO page, branch predictors),
    /// and the median is robust to the occasional preemption outlier.
    fn calibrate() -> u64 {
        const PAIRS: usize = 4096;
        let mut samples = [0u64; PAIRS];
        for _ in 0..2 {
            for s in samples.iter_mut() {
                let t0 = Instant::now();
                *s = t0.elapsed().as_nanos() as u64;
            }
        }
        samples.sort_unstable();
        samples[PAIRS / 2]
    }

    /// The per-event measurement overhead subtracted from reported means.
    pub fn overhead_ns(&self) -> u64 {
        self.overhead_ns
    }

    /// Start timing one event of class `class`. Must be paired with
    /// [`end`](Self::end) before the next `begin`.
    #[inline]
    pub fn begin(&mut self, class: usize) {
        debug_assert!(class < self.names.len(), "unknown event class {class}");
        debug_assert!(self.started.is_none(), "begin without matching end");
        self.started = Some((class, Instant::now()));
    }

    /// Finish timing the event started by the last [`begin`](Self::begin).
    #[inline]
    pub fn end(&mut self) {
        let Some((class, t0)) = self.started.take() else {
            debug_assert!(false, "end without begin");
            return;
        };
        let stat = &mut self.stats[class];
        stat.count += 1;
        stat.total_ns += t0.elapsed().as_nanos() as u64;
    }

    /// Total events timed across all classes.
    pub fn total_events(&self) -> u64 {
        self.stats.iter().map(|s| s.count).sum()
    }

    /// Report rows in class-index order, skipping classes that never ran.
    /// Totals and means are net of the calibrated measurement overhead.
    pub fn rows(&self) -> Vec<ProfileRow> {
        self.names
            .iter()
            .zip(&self.stats)
            .filter(|(_, s)| s.count > 0)
            .map(|(&class, s)| {
                let net = s.total_ns.saturating_sub(s.count * self.overhead_ns);
                ProfileRow {
                    class,
                    count: s.count,
                    total_ns: net,
                    ns_per_event: net as f64 / s.count as f64,
                }
            })
            .collect()
    }

    /// A human-readable per-class breakdown table.
    pub fn render_table(&self) -> String {
        let rows = self.rows();
        let total_ns: u64 = rows.iter().map(|r| r.total_ns).sum();
        let mut out = String::from(
            "event class         count     total ms   ns/event   share\n\
             -----------------  --------  ----------  ---------  ------\n",
        );
        for r in &rows {
            let share = if total_ns > 0 {
                100.0 * r.total_ns as f64 / total_ns as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<17}  {:>8}  {:>10.3}  {:>9.1}  {:>5.1}%\n",
                r.class,
                r.count,
                r.total_ns as f64 / 1e6,
                r.ns_per_event,
                share,
            ));
        }
        out.push_str(&format!(
            "total              {:>8}  {:>10.3}   (net of {} ns/event clock overhead)\n",
            self.total_events(),
            total_ns as f64 / 1e6,
            self.overhead_ns,
        ));
        out
    }

    /// `(metric_name, ns_per_event)` pairs for the bench history, named
    /// `profile_<class>_ns_per_event`. Classes that never ran are
    /// omitted.
    pub fn metric_pairs(&self) -> Vec<(String, f64)> {
        self.rows()
            .iter()
            .map(|r| {
                (
                    format!("profile_{}_ns_per_event", r.class.to_ascii_lowercase()),
                    r.ns_per_event,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_counts_to_classes() {
        let mut p = LoopProfiler::new(&["dequeue", "deliver", "timer"]);
        for _ in 0..3 {
            p.begin(0);
            p.end();
        }
        p.begin(2);
        p.end();
        assert_eq!(p.total_events(), 4);
        let rows = p.rows();
        assert_eq!(rows.len(), 2, "deliver never ran, so it is skipped");
        assert_eq!(rows[0].class, "dequeue");
        assert_eq!(rows[0].count, 3);
        assert_eq!(rows[1].class, "timer");
        assert_eq!(rows[1].count, 1);
        assert!(rows.iter().all(|r| r.ns_per_event >= 0.0));
    }

    #[test]
    fn table_and_metrics_cover_active_classes() {
        let mut p = LoopProfiler::new(&["dequeue", "ack"]);
        p.begin(1);
        p.end();
        let table = p.render_table();
        assert!(table.contains("ack"), "{table}");
        assert!(!table.lines().any(|l| l.starts_with("dequeue")), "{table}");
        let metrics = p.metric_pairs();
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].0, "profile_ack_ns_per_event");
    }

    #[test]
    fn empty_profiler_renders() {
        let p = LoopProfiler::new(&["x"]);
        assert_eq!(p.total_events(), 0);
        assert!(p.rows().is_empty());
        assert!(p.render_table().contains("total"));
    }
}
