//! Live-ops HTTP endpoint for long-running sweeps — dependency-free, one
//! `std::net::TcpListener` plus one handler thread.
//!
//! [`ObsServer`] serves point-in-time snapshots that the *driver* (the
//! sweep runner or `pi2sim`'s sliced single-run loop) publishes between
//! deterministic work units:
//!
//! * `GET /metrics` — Prometheus text exposition (the PR 4 exporter's
//!   output, `prom_lint`-clean), refreshed via [`ObsServer::publish_metrics`];
//! * `GET /progress` — a JSON progress report (grid cell, sim-time,
//!   events/sec, ETA), refreshed via [`ObsServer::publish_progress`];
//! * `GET /healthz` — liveness probe, always `ok`;
//! * `POST/GET /cancel` — sets the graceful-shutdown flag the driver
//!   polls at scenario/slice boundaries ([`ObsServer::cancel_requested`]);
//! * `POST/GET /quit` — like `/cancel`, but also releases a driver
//!   blocked in [`ObsServer::wait_quit`] (CI hold mode).
//!
//! The server never touches the simulation: it only reads strings the
//! driver hands it and flips an `AtomicBool` the driver chooses when to
//! poll. A run with the server attached is therefore bit-identical to one
//! without — the same pure-observer contract every sink in this workspace
//! obeys, asserted by `tests/obs_server.rs`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Shared state between the handler thread and the publishing driver.
struct Shared {
    metrics: Mutex<String>,
    progress: Mutex<String>,
    cancel: AtomicBool,
    quit: AtomicBool,
    stop: AtomicBool,
    quit_cv: Condvar,
    quit_mx: Mutex<()>,
}

/// The live-ops HTTP server (see the module docs).
pub struct ObsServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    handle: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// the handler thread. The actual bound address is
    /// [`ObsServer::addr`].
    pub fn bind(addr: &str) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            metrics: Mutex::new(String::new()),
            progress: Mutex::new("{}".to_string()),
            cancel: AtomicBool::new(false),
            quit: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            quit_cv: Condvar::new(),
            quit_mx: Mutex::new(()),
        });
        let worker = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("pi2-obs-server".to_string())
            .spawn(move || serve(listener, worker))?;
        Ok(ObsServer {
            shared,
            addr: local,
            handle: Some(handle),
        })
    }

    /// The address the listener actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replace the `/metrics` body (Prometheus text exposition).
    pub fn publish_metrics(&self, body: String) {
        *self.shared.metrics.lock().unwrap() = body;
    }

    /// Replace the `/progress` body (a JSON document).
    pub fn publish_progress(&self, body: String) {
        *self.shared.progress.lock().unwrap() = body;
    }

    /// True once a client hit `/cancel` (or `/quit`), or the driver called
    /// [`ObsServer::request_cancel`]. Poll this at deterministic work
    /// boundaries only.
    pub fn cancel_requested(&self) -> bool {
        self.shared.cancel.load(Ordering::Relaxed)
    }

    /// Set the cancel flag from the driver side (e.g. on SIGINT).
    pub fn request_cancel(&self) {
        self.shared.cancel.store(true, Ordering::SeqCst);
    }

    /// Block until a client hits `/quit`. CI hold mode: the driver
    /// publishes its final snapshots, then parks here so a scraper can
    /// read them race-free before the process exits.
    pub fn wait_quit(&self) {
        let mut guard = self.shared.quit_mx.lock().unwrap();
        while !self.shared.quit.load(Ordering::SeqCst) {
            guard = self.shared.quit_cv.wait(guard).unwrap();
        }
    }

    /// Stop the handler thread and close the listener.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection; the handler sees
        // the stop flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // One connection at a time: scrapes are tiny and the driver's
        // publishes never block on us, so serialized handling is plenty
        // and keeps the server single-threaded beyond the acceptor.
        let _ = handle(stream, &shared);
    }
}

fn handle(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    // Drain headers so keep-alive clients see a well-formed exchange.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut stream = reader.into_inner();
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            shared.metrics.lock().unwrap().clone(),
        ),
        "/progress" => (
            "200 OK",
            "application/json",
            shared.progress.lock().unwrap().clone(),
        ),
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        "/cancel" => {
            shared.cancel.store(true, Ordering::SeqCst);
            ("200 OK", "text/plain; charset=utf-8", "cancelling\n".to_string())
        }
        "/quit" => {
            shared.cancel.store(true, Ordering::SeqCst);
            shared.quit.store(true, Ordering::SeqCst);
            let _guard = shared.quit_mx.lock().unwrap();
            shared.quit_cv.notify_all();
            ("200 OK", "text/plain; charset=utf-8", "quitting\n".to_string())
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Minimal scrape client for tests and CI smokes: `GET path` from `addr`
/// over a fresh std `TcpStream`, returning `(status_line, body)`.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let req = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw.lines().next().unwrap_or("").to_string();
    let body = match raw.find("\r\n\r\n") {
        Some(i) => raw[i + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_published_snapshots_and_health() {
        let srv = ObsServer::bind("127.0.0.1:0").unwrap();
        srv.publish_metrics("pi2_items_total 3\n".to_string());
        srv.publish_progress("{\"done\":1,\"total\":4}".to_string());
        let (status, body) = http_get(srv.addr(), "/metrics").unwrap();
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "pi2_items_total 3\n");
        let (_, body) = http_get(srv.addr(), "/progress").unwrap();
        assert_eq!(body, "{\"done\":1,\"total\":4}");
        let (_, body) = http_get(srv.addr(), "/healthz").unwrap();
        assert_eq!(body, "ok\n");
        let (status, _) = http_get(srv.addr(), "/nope").unwrap();
        assert!(status.contains("404"), "{status}");
        srv.stop();
    }

    #[test]
    fn cancel_flag_flips_on_request() {
        let srv = ObsServer::bind("127.0.0.1:0").unwrap();
        assert!(!srv.cancel_requested());
        let (status, _) = http_get(srv.addr(), "/cancel").unwrap();
        assert!(status.contains("200"));
        assert!(srv.cancel_requested());
        srv.stop();
    }

    #[test]
    fn quit_releases_a_waiting_driver() {
        let srv = Arc::new(ObsServer::bind("127.0.0.1:0").unwrap());
        let addr = srv.addr();
        let waiter = {
            let srv = Arc::clone(&srv);
            std::thread::spawn(move || srv.wait_quit())
        };
        let (status, _) = http_get(addr, "/quit").unwrap();
        assert!(status.contains("200"));
        waiter.join().unwrap();
        assert!(srv.cancel_requested(), "/quit implies cancel");
    }

    #[test]
    fn publishes_are_atomic_replacements() {
        let srv = ObsServer::bind("127.0.0.1:0").unwrap();
        for i in 0..10 {
            srv.publish_metrics(format!("pi2_items_total {i}\n"));
        }
        let (_, body) = http_get(srv.addr(), "/metrics").unwrap();
        assert_eq!(body, "pi2_items_total 9\n");
        srv.stop();
    }
}
