//! TCP Cubic (RFC 8312) with the Linux CReno fallback.
//!
//! The paper's Classic experiments use Linux Cubic, which at small
//! bandwidth-delay products operates in its "TCP-friendly" Reno mode
//! (CReno, multiplicative decrease β = 0.7, steady state `W = 1.68/√p`,
//! paper eq. (7)) and only above the switch-over of eq. (8)
//! (`W·R^(3/2) ≥ 3.5`) in its pure cubic mode (`W = 1.17·R^¾/p^¾`,
//! eq. (6)).

use super::CongestionControl;
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Time};

/// Cubic's aggressiveness constant (RFC 8312 §5).
const C: f64 = 0.4;
/// Multiplicative-decrease factor (RFC 8312 / Linux).
const BETA: f64 = 0.7;
/// Minimum congestion window after a decrease, in packets.
const MIN_CWND: f64 = 2.0;

/// TCP Cubic congestion control.
#[derive(Clone, Debug)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    w_max: f64,
    k: f64,
    epoch_start: Option<Time>,
    /// Enable RFC 8312 fast convergence (on in Linux).
    pub fast_convergence: bool,
}

impl Cubic {
    /// Standard Linux-flavoured Cubic.
    pub fn new(initial_cwnd: f64) -> Self {
        assert!(initial_cwnd >= 1.0, "initial cwnd must be at least 1");
        Cubic {
            cwnd: initial_cwnd,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            k: 0.0,
            epoch_start: None,
            fast_convergence: true,
        }
    }

    fn begin_epoch(&mut self, now: Time) {
        self.epoch_start = Some(now);
        if self.w_max > self.cwnd {
            self.k = ((self.w_max - self.cwnd) / C).cbrt();
        } else {
            self.k = 0.0;
            self.w_max = self.cwnd;
        }
    }

    /// The cubic window function W_cubic(t) = C(t−K)³ + W_max.
    fn w_cubic(&self, t: f64) -> f64 {
        C * (t - self.k).powi(3) + self.w_max
    }

    /// The TCP-friendly (CReno) estimate W_est(t).
    ///
    /// RFC 8312 specifies slope `3(1−β)/(1+β)` per RTT, which would equal
    /// Reno's *throughput*. The paper instead models Linux's observed
    /// behaviour as AIMD(1, 0.7) — "falls back to TCP Reno with a
    /// different decrease factor" — giving the higher constant of eq. (7),
    /// `W = 1.68/√p`. That constant is load-bearing for the coexistence
    /// coupling (eq. (14) derives k = 1.19 from it), so we use slope 1.
    fn w_est(&self, t: f64, rtt: f64) -> f64 {
        self.w_max * BETA + t / rtt
    }

    fn decrease(&mut self, now: Time) {
        let _ = now;
        if self.fast_convergence && self.cwnd < self.w_max {
            self.w_max = self.cwnd * (1.0 + BETA) / 2.0;
        } else {
            self.w_max = self.cwnd;
        }
        self.ssthresh = (self.cwnd * BETA).max(MIN_CWND);
        self.cwnd = self.ssthresh;
        self.epoch_start = None;
    }
}

impl CongestionControl for Cubic {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self, acked: u64, _marked: u64, _received: u64, rtt: Duration, now: Time) {
        let rtt_s = rtt.as_secs_f64().max(1e-6);
        for _ in 0..acked {
            if self.cwnd < self.ssthresh {
                self.cwnd += 1.0;
                continue;
            }
            if self.epoch_start.is_none() {
                self.begin_epoch(now);
            }
            let elapsed = (now - self.epoch_start.unwrap()).as_secs_f64().max(0.0);
            // RFC 8312: the target is the cubic window one RTT in the future.
            let target = self.w_cubic(elapsed + rtt_s);
            let w_est = self.w_est(elapsed, rtt_s);
            if target < w_est {
                // TCP-friendly (CReno) region: RFC 8312 §4.2 sets cwnd to
                // the Reno estimate directly.
                self.cwnd = self.cwnd.max(w_est);
            } else if target > self.cwnd {
                self.cwnd += (target - self.cwnd) / self.cwnd;
            } else {
                // Very slow growth in the plateau (RFC 8312 §4.4).
                self.cwnd += 0.01 / self.cwnd;
            }
        }
    }

    fn on_loss(&mut self, now: Time) {
        self.decrease(now);
    }

    fn on_rto(&mut self, now: Time) {
        self.decrease(now);
        self.cwnd = 1.0;
    }

    fn name(&self) -> &'static str {
        "cubic"
    }

    fn steady_state_window(&self, p: f64, rtt: Duration) -> Option<f64> {
        let r = rtt.as_secs_f64();
        // CReno law, eq. (7).
        let creno = 1.68 / p.sqrt();
        // Switch-over, eq. (8): CReno while W·R^(3/2) < 3.5.
        if creno * r.powf(1.5) < 3.5 {
            Some(creno)
        } else {
            // Pure cubic law, eq. (6).
            Some(1.17 * r.powf(0.75) / p.powf(0.75))
        }
    }

    fn save_ckpt(&self, w: &mut CkptWriter) {
        w.f64(self.cwnd);
        w.f64(self.ssthresh);
        w.f64(self.w_max);
        w.f64(self.k);
        w.bool(self.epoch_start.is_some());
        w.time(self.epoch_start.unwrap_or(Time::ZERO));
        w.bool(self.fast_convergence);
    }

    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.cwnd = r.f64()?;
        self.ssthresh = r.f64()?;
        self.w_max = r.f64()?;
        self.k = r.f64()?;
        let has_epoch = r.bool()?;
        let epoch = r.time()?;
        self.epoch_start = has_epoch.then_some(epoch);
        self.fast_convergence = r.bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r100() -> Duration {
        Duration::from_millis(100)
    }

    #[test]
    fn slow_start_grows_exponentially() {
        let mut cc = Cubic::new(10.0);
        cc.on_ack(10, 0, 10, r100(), Time::ZERO);
        assert_eq!(cc.cwnd(), 20.0);
    }

    #[test]
    fn loss_scales_by_beta() {
        let mut cc = Cubic::new(100.0);
        cc.on_loss(Time::ZERO);
        assert!((cc.cwnd() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn fast_convergence_shrinks_w_max() {
        let mut cc = Cubic::new(100.0);
        cc.on_loss(Time::ZERO); // w_max = 100, cwnd = 70
        cc.on_loss(Time::ZERO); // cwnd(70) < w_max(100): w_max = 70*0.85 = 59.5
        assert!((cc.w_max - 59.5).abs() < 1e-9);
    }

    #[test]
    fn cubic_window_recovers_to_w_max_at_k() {
        let mut cc = Cubic::new(100.0);
        cc.on_loss(Time::ZERO);
        cc.begin_epoch(Time::ZERO);
        // At t = K the cubic function returns exactly W_max.
        let w = cc.w_cubic(cc.k);
        assert!((w - cc.w_max).abs() < 1e-9);
        // Concave before K, convex after.
        assert!(cc.w_cubic(cc.k - 0.1) < w);
        assert!(cc.w_cubic(cc.k + 0.1) > w);
    }

    #[test]
    fn growth_follows_cubic_target_after_loss() {
        let mut cc = Cubic::new(100.0);
        cc.on_loss(Time::ZERO);
        let w_after_loss = cc.cwnd();
        // Feed ACKs over simulated time; window must grow back toward w_max
        // and eventually exceed it (probing).
        let mut now = Time::ZERO;
        for _ in 0..100 {
            now += r100();
            cc.on_ack(cc.cwnd() as u64, 0, cc.cwnd() as u64, r100(), now);
        }
        assert!(cc.cwnd() > w_after_loss);
        assert!(cc.cwnd() > 100.0, "should probe beyond old w_max, got {}", cc.cwnd());
    }

    #[test]
    fn rto_collapses_window() {
        let mut cc = Cubic::new(50.0);
        cc.on_rto(Time::ZERO);
        assert_eq!(cc.cwnd(), 1.0);
    }

    #[test]
    fn steady_state_switches_between_creno_and_cubic() {
        let cc = Cubic::new(10.0);
        // Small p, long RTT: pure cubic; creno = 1.68/sqrt(1e-4) = 168,
        // 168 * 0.1^1.5 = 5.3 >= 3.5 -> cubic law.
        let w = cc.steady_state_window(1e-4, Duration::from_millis(100)).unwrap();
        let cubic_law = 1.17 * 0.1f64.powf(0.75) / 1e-4f64.powf(0.75);
        assert!((w - cubic_law).abs() < 1e-9);
        // Large p, short RTT: CReno; creno = 1.68/sqrt(0.01) = 16.8,
        // 16.8 * 0.005^1.5 = 0.006 < 3.5 -> creno law.
        let w2 = cc.steady_state_window(0.01, Duration::from_millis(5)).unwrap();
        assert!((w2 - 16.8).abs() < 1e-9);
    }

    /// CReno-mode sawtooth fixed point: deterministic loss every 1/p acks
    /// should produce a mean window near 1.68/√p.
    #[test]
    fn creno_sawtooth_mean_matches_law() {
        let p: f64 = 0.01;
        let rtt = Duration::from_millis(5); // small BDP keeps Cubic in CReno mode
        let mut cc = Cubic::new(2.0);
        let mut now = Time::ZERO;
        cc.on_loss(now);
        let mut acks_since_loss = 0.0;
        let mut sum = 0.0;
        let mut n = 0u64;
        // Advance virtual time by one RTT per cwnd ACKs.
        let mut acks_this_rtt = 0.0;
        for _ in 0..1_000_000 {
            cc.on_ack(1, 0, 1, rtt, now);
            acks_this_rtt += 1.0;
            if acks_this_rtt >= cc.cwnd() {
                now += rtt;
                acks_this_rtt = 0.0;
            }
            acks_since_loss += 1.0;
            if acks_since_loss >= 1.0 / p {
                cc.on_loss(now);
                acks_since_loss = 0.0;
            }
            sum += cc.cwnd();
            n += 1;
        }
        let mean = sum / n as f64;
        let law = 1.68 / p.sqrt();
        let err = (mean - law).abs() / law;
        assert!(err < 0.15, "mean {mean:.2} vs law {law:.2} (err {err:.3})");
    }

    /// Appendix A shape: the response exponent switches at eq. (8)'s
    /// boundary — B = 1/2 in the CReno region (short RTT / high p),
    /// B = 3/4 in the pure-cubic region (long RTT / tiny p).
    #[test]
    fn window_response_exponent_switches_at_the_creno_boundary() {
        let cc = Cubic::new(10.0);
        let slope = |p0: f64, p1: f64, rtt: Duration| {
            let w0 = cc.steady_state_window(p0, rtt).unwrap();
            let w1 = cc.steady_state_window(p1, rtt).unwrap();
            (w1.ln() - w0.ln()) / (p1.ln() - p0.ln())
        };
        // 10 ms RTT: creno·r^1.5 < 3.5 for every p here, so CReno.
        let short = Duration::from_millis(10);
        for pair in [(1e-3, 1e-2), (1e-2, 1e-1)] {
            let s = slope(pair.0, pair.1, short);
            assert!((s + 0.5).abs() < 1e-12, "CReno slope {s} at p {pair:?}");
        }
        // 400 ms RTT and tiny p: the boundary flips, pure-cubic law.
        let long = Duration::from_millis(400);
        for pair in [(1e-6, 1e-5), (1e-5, 1e-4)] {
            let s = slope(pair.0, pair.1, long);
            assert!((s + 0.75).abs() < 1e-12, "cubic slope {s} at p {pair:?}");
        }
    }
}
