//! DCTCP (Alizadeh et al., SIGCOMM 2010), as modified by the paper.
//!
//! DCTCP keeps an EWMA `α` of the fraction of packets CE-marked each round
//! trip (gain g = 1/16) and reduces its window once per RTT by `α/2` when
//! marks occurred. Under the *probabilistic* marking of a PI-controlled
//! AQM (rather than the on-off step threshold of the original data-centre
//! deployment) its steady-state window is `W = 2/p` (paper eq. (11), not
//! the `2/p²` of the step-marking analysis, eq. (12)) — exactly linear in
//! the signal, which is what lets PI2 apply the controller output `p'`
//! without squaring.
//!
//! Per the paper's Section 5, the sender sets ECT(1) instead of ECT(0) so
//! the AQM can classify it as Scalable.

use super::CongestionControl;
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Time};

/// EWMA gain for the marked fraction (the DCTCP paper's g = 1/16).
const G: f64 = 1.0 / 16.0;
/// Minimum congestion window after a decrease, in packets.
const MIN_CWND: f64 = 2.0;

/// DCTCP congestion control.
#[derive(Clone, Debug)]
pub struct Dctcp {
    cwnd: f64,
    ssthresh: f64,
    /// The smoothed marked fraction; public for observability in tests
    /// and experiment logging.
    pub alpha: f64,
    acked_acc: u64,
    marked_acc: u64,
    received_acc: u64,
    window_end: Option<Time>,
}

impl Dctcp {
    /// A fresh DCTCP sender. `alpha` starts at 1 as in Linux, so the first
    /// congestion experience is conservative (halving).
    pub fn new(initial_cwnd: f64) -> Self {
        assert!(initial_cwnd >= 1.0, "initial cwnd must be at least 1");
        Dctcp {
            cwnd: initial_cwnd,
            ssthresh: f64::INFINITY,
            alpha: 1.0,
            acked_acc: 0,
            marked_acc: 0,
            received_acc: 0,
            window_end: None,
        }
    }

    fn end_of_window(&mut self, rtt: Duration, now: Time) {
        let f = if self.received_acc > 0 {
            self.marked_acc as f64 / self.received_acc as f64
        } else {
            0.0
        };
        self.alpha = (1.0 - G) * self.alpha + G * f;
        if self.marked_acc > 0 {
            self.cwnd = (self.cwnd * (1.0 - self.alpha / 2.0)).max(MIN_CWND);
            self.ssthresh = self.cwnd;
        }
        self.acked_acc = 0;
        self.marked_acc = 0;
        self.received_acc = 0;
        self.window_end = Some(now + rtt);
    }
}

impl CongestionControl for Dctcp {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self, acked: u64, marked: u64, received: u64, rtt: Duration, now: Time) {
        // Window growth is Reno's (the DCTCP paper changes only the
        // decrease law).
        for _ in 0..acked {
            if self.cwnd < self.ssthresh {
                self.cwnd += 1.0;
            } else {
                self.cwnd += 1.0 / self.cwnd;
            }
        }
        self.acked_acc += acked;
        self.marked_acc += marked;
        self.received_acc += received;
        // A mark during slow start ends it immediately (Linux dctcp relies
        // on the standard ECE slow-start exit; we fold it in here since the
        // machinery does not gate Scalable signals).
        if marked > 0 && self.cwnd < self.ssthresh {
            self.ssthresh = self.cwnd;
        }
        match self.window_end {
            None => self.window_end = Some(now + rtt),
            Some(end) if now >= end => self.end_of_window(rtt, now),
            _ => {}
        }
    }

    fn on_loss(&mut self, _now: Time) {
        self.ssthresh = (self.cwnd / 2.0).max(MIN_CWND);
        self.cwnd = self.ssthresh;
    }

    fn on_ecn(&mut self, _now: Time) {
        // Scalable controls consume marks via on_ack counters; the classic
        // once-per-RTT ECE path must not double-count.
    }

    fn on_rto(&mut self, _now: Time) {
        self.ssthresh = (self.cwnd / 2.0).max(MIN_CWND);
        self.cwnd = 1.0;
    }

    fn name(&self) -> &'static str {
        "dctcp"
    }

    fn steady_state_window(&self, p: f64, _rtt: Duration) -> Option<f64> {
        // Paper eq. (11): probabilistic marking gives W = 2/p.
        Some(2.0 / p)
    }

    fn save_ckpt(&self, w: &mut CkptWriter) {
        w.f64(self.cwnd);
        w.f64(self.ssthresh);
        w.f64(self.alpha);
        w.u64(self.acked_acc);
        w.u64(self.marked_acc);
        w.u64(self.received_acc);
        w.bool(self.window_end.is_some());
        w.time(self.window_end.unwrap_or(Time::ZERO));
    }

    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.cwnd = r.f64()?;
        self.ssthresh = r.f64()?;
        self.alpha = r.f64()?;
        self.acked_acc = r.u64()?;
        self.marked_acc = r.u64()?;
        self.received_acc = r.u64()?;
        let has_end = r.bool()?;
        let end = r.time()?;
        self.window_end = has_end.then_some(end);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r() -> Duration {
        Duration::from_millis(10)
    }

    /// Drive one RTT of ACK feedback with a given mark fraction.
    fn run_rtt(cc: &mut Dctcp, now: &mut Time, frac: f64) {
        let w = cc.cwnd().round() as u64;
        let marked = (w as f64 * frac).round() as u64;
        // Deliver the whole window's feedback in one cumulative call.
        cc.on_ack(w, marked, w, r(), *now);
        *now += r();
        // Cross the window boundary.
        cc.on_ack(0, 0, 0, r(), *now);
    }

    #[test]
    fn alpha_converges_to_mark_fraction() {
        let mut cc = Dctcp::new(10.0);
        cc.ssthresh = 10.0; // start in CA
        let mut now = Time::ZERO;
        for _ in 0..300 {
            run_rtt(&mut cc, &mut now, 0.2);
        }
        assert!((cc.alpha - 0.2).abs() < 0.05, "alpha {}", cc.alpha);
    }

    #[test]
    fn no_marks_decays_alpha_and_keeps_growing() {
        let mut cc = Dctcp::new(10.0);
        cc.ssthresh = 10.0;
        let mut now = Time::ZERO;
        let w0 = cc.cwnd();
        for _ in 0..50 {
            run_rtt(&mut cc, &mut now, 0.0);
        }
        assert!(cc.alpha < 0.1, "alpha should decay, got {}", cc.alpha);
        assert!(cc.cwnd() > w0, "window should grow without marks");
    }

    #[test]
    fn reduction_is_alpha_over_two() {
        let mut cc = Dctcp::new(100.0);
        cc.ssthresh = 100.0;
        cc.alpha = 0.5;
        let mut now = Time::ZERO;
        // One RTT with marks: growth +1, then reduction by factor (1-α'/2)
        // where α' is the post-update EWMA.
        cc.on_ack(100, 100, 100, r(), now);
        now += r();
        let before = cc.cwnd(); // 101 after growth
        cc.on_ack(0, 0, 0, r(), now);
        let expected_alpha = (1.0 - G) * 0.5 + G * 1.0;
        let expected = before * (1.0 - expected_alpha / 2.0);
        assert!((cc.cwnd() - expected).abs() < 1e-9, "{} vs {expected}", cc.cwnd());
    }

    #[test]
    fn mark_in_slow_start_exits_slow_start() {
        let mut cc = Dctcp::new(10.0);
        assert!(cc.in_slow_start());
        cc.on_ack(1, 1, 1, r(), Time::ZERO);
        assert!(!cc.in_slow_start());
    }

    #[test]
    fn loss_halves_like_reno() {
        let mut cc = Dctcp::new(50.0);
        cc.on_loss(Time::ZERO);
        assert_eq!(cc.cwnd(), 25.0);
    }

    #[test]
    fn classic_ecn_path_is_inert() {
        let mut cc = Dctcp::new(50.0);
        cc.on_ecn(Time::ZERO);
        assert_eq!(cc.cwnd(), 50.0);
    }

    /// Steady-state check: with a constant probabilistic mark rate p, the
    /// average window should settle near 2/p (paper eq. (11)).
    #[test]
    fn steady_state_window_near_2_over_p() {
        let p = 0.05;
        let mut cc = Dctcp::new(10.0);
        cc.ssthresh = 10.0;
        let mut now = Time::ZERO;
        let mut rng = pi2_simcore::Rng::new(42);
        let mut sum = 0.0;
        let mut n = 0;
        for i in 0..20_000 {
            let w = cc.cwnd().round().max(1.0) as u64;
            let mut marked = 0;
            for _ in 0..w {
                if rng.chance(p) {
                    marked += 1;
                }
            }
            cc.on_ack(w, marked, w, r(), now);
            now += r();
            cc.on_ack(0, 0, 0, r(), now);
            if i > 5000 {
                sum += cc.cwnd();
                n += 1;
            }
        }
        let mean = sum / n as f64;
        let law = 2.0 / p;
        let err = (mean - law).abs() / law;
        assert!(err < 0.2, "mean {mean:.1} vs 2/p {law:.1} (err {err:.3})");
    }

    /// The alpha estimator is exactly the EWMA recurrence
    /// α ← (1−g)·α + g·F with g = 1/16, where F is the window's realized
    /// mark fraction — tracked here against a hand-iterated model over a
    /// varied drive sequence, to full floating-point precision.
    #[test]
    fn alpha_follows_the_ewma_recurrence_exactly() {
        let mut cc = Dctcp::new(10.0);
        cc.ssthresh = 10.0; // start in CA
        let mut now = Time::ZERO;
        let mut expected = cc.alpha;
        assert_eq!(expected, 1.0, "alpha starts pessimistic");
        let g = 1.0 / 16.0;
        let drive = [0.0, 0.5, 0.25, 0.0, 1.0, 0.125, 0.0, 0.0, 0.3, 0.75];
        for &frac in drive.iter().cycle().take(60) {
            // Mirror run_rtt's feedback quantization before driving it.
            let w = cc.cwnd().round() as u64;
            let f = (w as f64 * frac).round() / w as f64;
            run_rtt(&mut cc, &mut now, frac);
            expected = (1.0 - g) * expected + g * f;
            assert!(
                (cc.alpha - expected).abs() < 1e-12,
                "alpha {} diverged from recurrence {expected}",
                cc.alpha
            );
        }
        assert!((0.0..=1.0).contains(&cc.alpha));
    }
}
