//! Congestion-control algorithms.
//!
//! Section 2 of the paper classifies congestion controls by the exponent
//! `B` in their steady-state window law `W ∝ 1/p^B` (Appendix A):
//!
//! | control | law | B | scalable? |
//! |---|---|---|---|
//! | Reno | `W = 1.22/√p` | 1/2 | no |
//! | CReno (Cubic's Reno mode) | `W = 1.68/√p` | 1/2 | no |
//! | pure Cubic | `W = 1.17 R^¾/p^¾` | 3/4 | no |
//! | DCTCP, probabilistic marking | `W = 2/p` | 1 | yes |
//!
//! A control is *scalable* iff `B ≥ 1`: only then does the number of
//! congestion signals per RTT, `c = pW ∝ W^(1−1/B)`, not dwindle as the
//! rate scales. Each implementation here exposes its closed-form law via
//! `steady_state_window`, which integration tests compare against measured
//! packet-level behaviour.

mod cubic;
mod dctcp;
mod reno;
mod scalable;

pub use cubic::Cubic;
pub use dctcp::Dctcp;
pub use reno::Reno;
pub use scalable::{Relentless, ScalableHalfPkt, ScalableTcp};

use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Time};

/// A pluggable congestion-control algorithm driven by the TCP machinery in
/// [`crate::tcp::TcpSource`].
///
/// The machinery enforces the once-per-RTT gating of Classic congestion
/// events (loss and classic-ECN ECE), so `on_loss`/`on_ecn` fire at most
/// once per round trip. DCTCP-style controls instead consume the per-ACK
/// mark counts passed to [`CongestionControl::on_ack`].
pub trait CongestionControl {
    /// Current congestion window in packets (fractional).
    fn cwnd(&self) -> f64;

    /// Slow-start threshold in packets.
    fn ssthresh(&self) -> f64;

    /// True while in slow start.
    fn in_slow_start(&self) -> bool {
        self.cwnd() < self.ssthresh()
    }

    /// New data has been cumulatively acknowledged.
    ///
    /// * `acked` — packets newly acknowledged;
    /// * `marked` — of the data packets newly seen by the receiver, how
    ///   many carried CE (from the ACK's cumulative counters);
    /// * `received` — data packets newly seen by the receiver (marked or
    ///   not), the denominator for the DCTCP fraction;
    /// * `rtt` — latest smoothed RTT estimate;
    /// * `now` — current virtual time.
    fn on_ack(&mut self, acked: u64, marked: u64, received: u64, rtt: Duration, now: Time);

    /// A packet loss was detected by fast retransmit (at most once per RTT).
    fn on_loss(&mut self, now: Time);

    /// A classic-ECN congestion echo was received (at most once per RTT).
    /// RFC 3168 requires the same response as to loss; that is the default.
    fn on_ecn(&mut self, now: Time) {
        self.on_loss(now);
    }

    /// The retransmission timer expired: collapse to one packet.
    fn on_rto(&mut self, now: Time);

    /// Algorithm name for experiment tables.
    fn name(&self) -> &'static str;

    /// The closed-form steady-state window (packets) at signal probability
    /// `p` and round-trip time `rtt` (Appendix A of the paper), used by
    /// validation tests. Returns `None` if the control has no simple law.
    fn steady_state_window(&self, p: f64, rtt: Duration) -> Option<f64>;

    /// Serialize all mutable controller state in a fixed field order
    /// (checkpointing). The default writes nothing, which is correct only
    /// for stateless test stubs — every real control overrides this.
    fn save_ckpt(&self, w: &mut CkptWriter) {
        let _ = w;
    }

    /// Restore state captured by [`CongestionControl::save_ckpt`] into a
    /// freshly constructed instance of the same control.
    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let _ = r;
        Ok(())
    }
}

/// Which congestion control to instantiate, together with the Appendix A
/// scaling exponent it is classified under.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CcKind {
    /// TCP Reno: AIMD(1, 1/2).
    Reno,
    /// TCP Cubic (RFC 8312) with its CReno TCP-friendly region, as in
    /// Linux (β = 0.7).
    Cubic,
    /// DCTCP: α-EWMA of the marked fraction, `W ← W(1−α/2)` once per RTT.
    Dctcp,
    /// The idealized scalable control of Appendix B: half-packet window
    /// reduction per mark. Simplest member of the Scalable family.
    ScalableHalfPkt,
    /// Relentless TCP: one segment lost per mark/loss, `W = 1/p` (named
    /// in the paper's Section 5 list of Scalable controls).
    Relentless,
    /// Scalable TCP (Kelly): MIMD(0.01, 1/8), `W = 0.08/p` (the other
    /// Section 5 family member).
    ScalableTcp,
}

impl CcKind {
    /// Build a fresh instance with the given initial window.
    pub fn build(self, initial_cwnd: f64) -> Box<dyn CongestionControl> {
        match self {
            CcKind::Reno => Box::new(Reno::new(initial_cwnd)),
            CcKind::Cubic => Box::new(Cubic::new(initial_cwnd)),
            CcKind::Dctcp => Box::new(Dctcp::new(initial_cwnd)),
            CcKind::ScalableHalfPkt => Box::new(ScalableHalfPkt::new(initial_cwnd)),
            CcKind::Relentless => Box::new(Relentless::new(initial_cwnd)),
            CcKind::ScalableTcp => Box::new(ScalableTcp::new(initial_cwnd)),
        }
    }

    /// The exponent `B` in `W ∝ 1/p^B` (Appendix A). Cubic reports its
    /// pure-Cubic exponent; in its Reno mode it behaves as 1/2.
    pub fn scaling_exponent(self) -> f64 {
        match self {
            CcKind::Reno => 0.5,
            CcKind::Cubic => 0.75,
            CcKind::Dctcp => 1.0,
            CcKind::ScalableHalfPkt => 1.0,
            CcKind::Relentless => 1.0,
            CcKind::ScalableTcp => 1.0,
        }
    }

    /// Section 2's criterion: scalable iff `B ≥ 1`.
    pub fn is_scalable(self) -> bool {
        self.scaling_exponent() >= 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalability_classification_matches_section_2() {
        assert!(!CcKind::Reno.is_scalable());
        assert!(!CcKind::Cubic.is_scalable());
        assert!(CcKind::Dctcp.is_scalable());
        assert!(CcKind::ScalableHalfPkt.is_scalable());
    }

    #[test]
    fn build_produces_matching_names() {
        assert_eq!(CcKind::Reno.build(10.0).name(), "reno");
        assert_eq!(CcKind::Cubic.build(10.0).name(), "cubic");
        assert_eq!(CcKind::Dctcp.build(10.0).name(), "dctcp");
        assert_eq!(CcKind::ScalableHalfPkt.build(10.0).name(), "scal");
    }

    #[test]
    fn signals_per_rtt_shrink_only_for_unscalable() {
        // c ∝ W^(1-1/B): growing W must shrink c for B<1, keep it for B=1.
        for kind in [CcKind::Reno, CcKind::Cubic] {
            let e = 1.0 - 1.0 / kind.scaling_exponent();
            assert!(e < 0.0, "{kind:?} should lose signal density");
        }
        let e = 1.0 - 1.0 / CcKind::Dctcp.scaling_exponent();
        assert_eq!(e, 0.0, "DCTCP keeps constant signals per RTT");
    }
}
