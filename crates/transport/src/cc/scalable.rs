//! The idealized Scalable control of Appendix B.
//!
//! The paper's stability analysis models "a congestion control that
//! reduces its window by half a packet per mark" (eq. (22)) — a good
//! approximation of DCTCP under probabilistic marking, minus DCTCP's
//! extra EWMA smoothing. Balance per RTT: `+1` additive increase against
//! `p·W·½` decrease gives the same `W = 2/p` law as eq. (11).
//!
//! This control is useful in its own right (it is essentially Relentless
//! TCP's response) and as the cleanest experimental subject for the
//! `scal pi` Bode plots of Figure 7.

use super::CongestionControl;
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Time};

/// Minimum congestion window, in packets.
const MIN_CWND: f64 = 2.0;

/// A scalable control: −½ packet per mark, +1 packet per RTT.
#[derive(Clone, Debug)]
pub struct ScalableHalfPkt {
    cwnd: f64,
    ssthresh: f64,
}

impl ScalableHalfPkt {
    /// A fresh instance starting in slow start.
    pub fn new(initial_cwnd: f64) -> Self {
        assert!(initial_cwnd >= 1.0, "initial cwnd must be at least 1");
        ScalableHalfPkt {
            cwnd: initial_cwnd,
            ssthresh: f64::INFINITY,
        }
    }
}

impl CongestionControl for ScalableHalfPkt {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self, acked: u64, marked: u64, _received: u64, _rtt: Duration, _now: Time) {
        for _ in 0..acked {
            if self.cwnd < self.ssthresh {
                self.cwnd += 1.0;
            } else {
                self.cwnd += 1.0 / self.cwnd;
            }
        }
        if marked > 0 {
            self.cwnd = (self.cwnd - 0.5 * marked as f64).max(MIN_CWND);
            // End slow start at the *reduced* window: leaving ssthresh
            // above cwnd would let slow-start growth (+1/ACK) outrun the
            // −½/mark decrease — a runaway.
            self.ssthresh = self.ssthresh.min(self.cwnd);
        }
    }

    fn on_loss(&mut self, _now: Time) {
        self.ssthresh = (self.cwnd / 2.0).max(MIN_CWND);
        self.cwnd = self.ssthresh;
    }

    fn on_ecn(&mut self, _now: Time) {
        // Marks are consumed in on_ack; nothing to do here.
    }

    fn on_rto(&mut self, _now: Time) {
        self.ssthresh = (self.cwnd / 2.0).max(MIN_CWND);
        self.cwnd = 1.0;
    }

    fn name(&self) -> &'static str {
        "scal"
    }

    fn steady_state_window(&self, p: f64, _rtt: Duration) -> Option<f64> {
        Some(2.0 / p)
    }

    fn save_ckpt(&self, w: &mut CkptWriter) {
        w.f64(self.cwnd);
        w.f64(self.ssthresh);
    }

    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.cwnd = r.f64()?;
        self.ssthresh = r.f64()?;
        Ok(())
    }
}

/// Relentless TCP (Mathis): decrease the window by exactly one segment
/// per lost/marked packet, keep the standard +1/RTT increase. Balance
/// `1 = p·W·1` per RTT gives `W = 1/p` — scalable with B = 1. One of the
/// family members the paper's Section 5 names alongside DCTCP.
#[derive(Clone, Debug)]
pub struct Relentless {
    cwnd: f64,
    ssthresh: f64,
}

impl Relentless {
    /// A fresh instance starting in slow start.
    pub fn new(initial_cwnd: f64) -> Self {
        assert!(initial_cwnd >= 1.0);
        Relentless {
            cwnd: initial_cwnd,
            ssthresh: f64::INFINITY,
        }
    }
}

impl CongestionControl for Relentless {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self, acked: u64, marked: u64, _received: u64, _rtt: Duration, _now: Time) {
        for _ in 0..acked {
            if self.cwnd < self.ssthresh {
                self.cwnd += 1.0;
            } else {
                self.cwnd += 1.0 / self.cwnd;
            }
        }
        if marked > 0 {
            self.cwnd = (self.cwnd - marked as f64).max(MIN_CWND);
            // See ScalableHalfPkt: exit slow start at the reduced window.
            self.ssthresh = self.ssthresh.min(self.cwnd);
        }
    }

    fn on_loss(&mut self, _now: Time) {
        // Relentless's defining property: losses cost exactly their own
        // count, not a multiplicative collapse.
        self.cwnd = (self.cwnd - 1.0).max(MIN_CWND);
        self.ssthresh = self.cwnd;
    }

    fn on_ecn(&mut self, _now: Time) {}

    fn on_rto(&mut self, _now: Time) {
        self.ssthresh = (self.cwnd / 2.0).max(MIN_CWND);
        self.cwnd = 1.0;
    }

    fn name(&self) -> &'static str {
        "relentless"
    }

    fn steady_state_window(&self, p: f64, _rtt: Duration) -> Option<f64> {
        Some(1.0 / p)
    }

    fn save_ckpt(&self, w: &mut CkptWriter) {
        w.f64(self.cwnd);
        w.f64(self.ssthresh);
    }

    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.cwnd = r.f64()?;
        self.ssthresh = r.f64()?;
        Ok(())
    }
}

/// Scalable TCP (Kelly): MIMD with per-ACK increase `a = 0.01` and
/// multiplicative decrease `b = 1/8` per congestion event. Events arrive
/// at rate `p·W` per RTT, so `0.01·W = p·W·(W/8)` gives `W = 0.08/p` —
/// scalable with B = 1, the other Section 5 family member.
#[derive(Clone, Debug)]
pub struct ScalableTcp {
    cwnd: f64,
    ssthresh: f64,
}

impl ScalableTcp {
    /// Per-ACK additive increase.
    pub const A: f64 = 0.01;
    /// Multiplicative decrease per congestion event.
    pub const B: f64 = 0.125;

    /// A fresh instance starting in slow start.
    pub fn new(initial_cwnd: f64) -> Self {
        assert!(initial_cwnd >= 1.0);
        ScalableTcp {
            cwnd: initial_cwnd,
            ssthresh: f64::INFINITY,
        }
    }
}

impl CongestionControl for ScalableTcp {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self, acked: u64, marked: u64, _received: u64, _rtt: Duration, _now: Time) {
        for _ in 0..acked {
            if self.cwnd < self.ssthresh {
                self.cwnd += 1.0;
            } else {
                self.cwnd += Self::A;
            }
        }
        for _ in 0..marked {
            self.cwnd = (self.cwnd * (1.0 - Self::B)).max(MIN_CWND);
            // See ScalableHalfPkt: exit slow start at the reduced window.
            self.ssthresh = self.ssthresh.min(self.cwnd);
        }
    }

    fn on_loss(&mut self, _now: Time) {
        self.cwnd = (self.cwnd * (1.0 - Self::B)).max(MIN_CWND);
        self.ssthresh = self.cwnd;
    }

    fn on_ecn(&mut self, _now: Time) {}

    fn on_rto(&mut self, _now: Time) {
        self.ssthresh = (self.cwnd / 2.0).max(MIN_CWND);
        self.cwnd = 1.0;
    }

    fn name(&self) -> &'static str {
        "stcp"
    }

    fn steady_state_window(&self, p: f64, _rtt: Duration) -> Option<f64> {
        // Balance a·W = p·W·b·W per RTT ⇒ W = a/(b·p).
        Some(Self::A / (Self::B * p))
    }

    fn save_ckpt(&self, w: &mut CkptWriter) {
        w.f64(self.cwnd);
        w.f64(self.ssthresh);
    }

    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.cwnd = r.f64()?;
        self.ssthresh = r.f64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r() -> Duration {
        Duration::from_millis(10)
    }

    #[test]
    fn half_packet_per_mark() {
        let mut cc = ScalableHalfPkt::new(20.0);
        cc.ssthresh = 20.0;
        cc.on_ack(0, 4, 4, r(), Time::ZERO);
        assert_eq!(cc.cwnd(), 18.0);
    }

    #[test]
    fn growth_is_one_per_rtt_in_ca() {
        let mut cc = ScalableHalfPkt::new(10.0);
        cc.ssthresh = 10.0;
        cc.on_ack(10, 0, 10, r(), Time::ZERO);
        assert!((cc.cwnd() - 11.0).abs() < 0.06);
    }

    #[test]
    fn floor_at_min_cwnd() {
        let mut cc = ScalableHalfPkt::new(2.0);
        cc.ssthresh = 2.0;
        cc.on_ack(0, 100, 100, r(), Time::ZERO);
        assert_eq!(cc.cwnd(), MIN_CWND);
    }

    #[test]
    fn relentless_loses_exactly_its_losses() {
        let mut cc = Relentless::new(50.0);
        cc.ssthresh = 50.0;
        cc.on_ack(0, 3, 3, r(), Time::ZERO);
        assert_eq!(cc.cwnd(), 47.0);
        cc.on_loss(Time::ZERO);
        assert_eq!(cc.cwnd(), 46.0);
    }

    #[test]
    fn relentless_steady_state_is_1_over_p() {
        let p = 0.05;
        let mut cc = Relentless::new(10.0);
        cc.ssthresh = 10.0;
        let mut rng = pi2_simcore::Rng::new(11);
        let mut sum = 0.0;
        let mut n = 0;
        for i in 0..200_000 {
            let marked = u64::from(rng.chance(p));
            cc.on_ack(1, marked, 1, r(), Time::ZERO);
            if i > 50_000 {
                sum += cc.cwnd();
                n += 1;
            }
        }
        let mean = sum / n as f64;
        assert!((mean - 20.0).abs() / 20.0 < 0.15, "mean {mean:.1} vs 1/p = 20");
    }

    #[test]
    fn stcp_mimd_parameters() {
        let mut cc = ScalableTcp::new(100.0);
        cc.ssthresh = 100.0;
        cc.on_ack(1, 0, 1, r(), Time::ZERO);
        assert!((cc.cwnd() - 100.01).abs() < 1e-12);
        cc.on_ack(0, 1, 1, r(), Time::ZERO);
        assert!((cc.cwnd() - 100.01 * 0.875).abs() < 1e-9);
    }

    #[test]
    fn stcp_steady_state_is_a_over_bp() {
        let p = 0.01;
        let mut cc = ScalableTcp::new(8.0);
        cc.ssthresh = 8.0;
        let mut rng = pi2_simcore::Rng::new(13);
        let mut sum = 0.0;
        let mut n = 0;
        for i in 0..400_000 {
            let marked = u64::from(rng.chance(p));
            cc.on_ack(1, marked, 1, r(), Time::ZERO);
            if i > 100_000 {
                sum += cc.cwnd();
                n += 1;
            }
        }
        let mean = sum / n as f64;
        let law = 0.08 / p;
        // MIMD under random marking is skewed: the drift balance holds at
        // the geometric mean, so the arithmetic mean sits above a/(b·p).
        assert!((mean - law).abs() / law < 0.40, "mean {mean:.1} vs {law:.1}");
        assert!(mean > law * 0.9, "must not undershoot the law");
    }

    /// Fixed point: per-packet marking with probability p must settle the
    /// window near 2/p.
    #[test]
    fn steady_state_is_2_over_p() {
        let p = 0.1;
        let mut cc = ScalableHalfPkt::new(10.0);
        cc.ssthresh = 10.0;
        let mut rng = pi2_simcore::Rng::new(7);
        let mut sum = 0.0;
        let mut n = 0;
        for i in 0..200_000 {
            let marked = u64::from(rng.chance(p));
            cc.on_ack(1, marked, 1, r(), Time::ZERO);
            if i > 50_000 {
                sum += cc.cwnd();
                n += 1;
            }
        }
        let mean = sum / n as f64;
        let law = 2.0 / p;
        assert!((mean - law).abs() / law < 0.15, "mean {mean:.1} vs {law:.1}");
    }

    /// Appendix A shape: every scalable control has response exponent
    /// B = 1 — the log–log slope of each law is exactly −1, which is
    /// what makes their rate response RTT- and rate-independent.
    #[test]
    fn window_response_exponent_is_minus_one_for_all_scalable_controls() {
        let ccs: [Box<dyn CongestionControl>; 3] = [
            Box::new(ScalableHalfPkt::new(10.0)),
            Box::new(Relentless::new(10.0)),
            Box::new(ScalableTcp::new(10.0)),
        ];
        let ps = [1e-4, 1e-3, 1e-2, 1e-1];
        for cc in &ccs {
            for pair in ps.windows(2) {
                let w0 = cc.steady_state_window(pair[0], r()).unwrap();
                let w1 = cc.steady_state_window(pair[1], r()).unwrap();
                let slope = (w1.ln() - w0.ln()) / (pair[1].ln() - pair[0].ln());
                assert!(
                    (slope + 1.0).abs() < 1e-12,
                    "{}: slope {slope} over p in {pair:?}",
                    cc.name()
                );
            }
        }
    }
}
