//! TCP Reno: AIMD(1, ½).
//!
//! The canonical Classic control. One segment of additive increase per
//! round trip, multiplicative decrease by half on a congestion signal,
//! giving the Mathis law `W = 1.22/√p` (paper eq. (5)) — the √p that PI2's
//! output squaring is designed to counterbalance.

use super::CongestionControl;
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Time};

/// Minimum congestion window after a decrease, in packets.
const MIN_CWND: f64 = 2.0;

/// TCP Reno congestion control.
#[derive(Clone, Debug)]
pub struct Reno {
    cwnd: f64,
    ssthresh: f64,
    beta: f64,
}

impl Reno {
    /// Standard Reno with multiplicative-decrease factor ½.
    pub fn new(initial_cwnd: f64) -> Self {
        Reno::with_beta(initial_cwnd, 0.5)
    }

    /// Reno with a custom decrease factor (kept ∈ (0, 1)); used by tests
    /// exploring the CReno constant.
    pub fn with_beta(initial_cwnd: f64, beta: f64) -> Self {
        assert!(initial_cwnd >= 1.0, "initial cwnd must be at least 1");
        assert!((0.0..1.0).contains(&beta), "beta must be in (0, 1)");
        Reno {
            cwnd: initial_cwnd,
            ssthresh: f64::INFINITY,
            beta,
        }
    }

    fn decrease(&mut self) {
        self.ssthresh = (self.cwnd * self.beta).max(MIN_CWND);
        self.cwnd = self.ssthresh;
    }
}

impl CongestionControl for Reno {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self, acked: u64, _marked: u64, _received: u64, _rtt: Duration, _now: Time) {
        for _ in 0..acked {
            if self.cwnd < self.ssthresh {
                self.cwnd += 1.0; // slow start: double per RTT
            } else {
                self.cwnd += 1.0 / self.cwnd; // CA: +1 segment per RTT
            }
        }
    }

    fn on_loss(&mut self, _now: Time) {
        self.decrease();
    }

    fn on_rto(&mut self, _now: Time) {
        self.ssthresh = (self.cwnd / 2.0).max(MIN_CWND);
        self.cwnd = 1.0;
    }

    fn name(&self) -> &'static str {
        "reno"
    }

    fn steady_state_window(&self, p: f64, _rtt: Duration) -> Option<f64> {
        // Paper eq. (5): W = 1.22 / p^(1/2).
        Some(1.22 / p.sqrt())
    }

    fn save_ckpt(&self, w: &mut CkptWriter) {
        w.f64(self.cwnd);
        w.f64(self.ssthresh);
        w.f64(self.beta);
    }

    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.cwnd = r.f64()?;
        self.ssthresh = r.f64()?;
        self.beta = r.f64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Time {
        Time::ZERO
    }
    fn r() -> Duration {
        Duration::from_millis(100)
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = Reno::new(10.0);
        assert!(cc.in_slow_start());
        // One RTT worth of ACKs (10 packets) doubles the window.
        cc.on_ack(10, 0, 10, r(), t());
        assert_eq!(cc.cwnd(), 20.0);
    }

    #[test]
    fn congestion_avoidance_adds_one_per_rtt() {
        let mut cc = Reno::new(10.0);
        cc.on_loss(t()); // exit slow start at 10 -> cwnd 5
        let w0 = cc.cwnd();
        assert_eq!(w0, 5.0);
        // One RTT of ACKs: five increments of 1/cwnd ≈ +1 total.
        cc.on_ack(5, 0, 5, r(), t());
        assert!((cc.cwnd() - (w0 + 1.0)).abs() < 0.12, "cwnd {}", cc.cwnd());
    }

    #[test]
    fn loss_halves_window() {
        let mut cc = Reno::new(40.0);
        cc.on_loss(t());
        assert_eq!(cc.cwnd(), 20.0);
        assert_eq!(cc.ssthresh(), 20.0);
        assert!(!cc.in_slow_start());
    }

    #[test]
    fn ecn_response_equals_loss_response() {
        let mut a = Reno::new(40.0);
        let mut b = Reno::new(40.0);
        a.on_loss(t());
        b.on_ecn(t());
        assert_eq!(a.cwnd(), b.cwnd());
    }

    #[test]
    fn rto_collapses_to_one() {
        let mut cc = Reno::new(40.0);
        cc.on_rto(t());
        assert_eq!(cc.cwnd(), 1.0);
        assert_eq!(cc.ssthresh(), 20.0);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn window_never_below_minimum_after_decrease() {
        let mut cc = Reno::new(2.0);
        for _ in 0..10 {
            cc.on_loss(t());
        }
        assert!(cc.cwnd() >= MIN_CWND);
    }

    #[test]
    fn steady_state_law_is_mathis() {
        let cc = Reno::new(10.0);
        let w = cc.steady_state_window(0.01, r()).unwrap();
        assert!((w - 12.2).abs() < 1e-9);
    }

    /// AIMD fixed point: simulate the deterministic sawtooth at drop
    /// probability p and check the mean window tracks 1.22/√p within the
    /// sawtooth's own variation.
    #[test]
    fn sawtooth_mean_matches_law() {
        let p: f64 = 0.004;
        let mut cc = Reno::new(2.0);
        cc.on_loss(t()); // force CA
        let mut acked_since_loss = 0.0;
        let mut sum = 0.0;
        let mut n = 0u64;
        let mut next_loss = 1.0 / p;
        for _ in 0..2_000_000 {
            cc.on_ack(1, 0, 1, r(), t());
            acked_since_loss += 1.0;
            if acked_since_loss >= next_loss {
                cc.on_loss(t());
                acked_since_loss = 0.0;
                next_loss = 1.0 / p;
            }
            sum += cc.cwnd();
            n += 1;
        }
        let mean = sum / n as f64;
        let law = cc.steady_state_window(p, r()).unwrap();
        let err = (mean - law).abs() / law;
        assert!(err < 0.10, "mean {mean:.2} vs law {law:.2} (err {err:.3})");
    }

    /// Appendix A shape: Reno's response is W ∝ 1/p^B with B = 1/2, so
    /// the log–log slope of the law is exactly −0.5 across decades of p.
    #[test]
    fn window_response_exponent_is_minus_half() {
        let cc = Reno::new(10.0);
        let ps = [1e-4, 1e-3, 1e-2, 1e-1];
        for pair in ps.windows(2) {
            let w0 = cc.steady_state_window(pair[0], r()).unwrap();
            let w1 = cc.steady_state_window(pair[1], r()).unwrap();
            let slope = (w1.ln() - w0.ln()) / (pair[1].ln() - pair[0].ln());
            assert!(
                (slope + 0.5).abs() < 1e-12,
                "slope {slope} over p in {pair:?}"
            );
        }
    }
}
