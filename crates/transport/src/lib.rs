//! # pi2-transport — TCP machinery and congestion controls
//!
//! The paper's experiments drive the AQMs with unmodified Linux TCP
//! variants: Reno, Cubic (which falls back to a Reno-like mode, "CReno",
//! at small BDPs), ECN-Cubic, and DCTCP (modified only to set ECT(1)).
//! This crate reimplements that sender/receiver machinery on top of
//! `pi2-netsim`:
//!
//! * [`tcp::TcpSource`] — an ACK-clocked sliding-window sender and its
//!   receiver in one [`pi2_netsim::Source`], with slow start, NewReno fast
//!   retransmit/recovery, RFC 6298 RTO estimation, and ECN feedback;
//! * [`cc`] — the pluggable congestion-control algorithms, each carrying
//!   its steady-state window law from Appendix A so tests can check the
//!   packet-level behaviour against the closed form.

pub mod cc;
pub mod rangeset;
pub mod seqset;
pub mod tcp;

pub use cc::{CcKind, CongestionControl, Cubic, Dctcp, Reno, ScalableHalfPkt};
pub use rangeset::RangeSet;
pub use tcp::{EcnSetting, TcpConfig, TcpSource};
