//! A set of `u64` sequence numbers stored as disjoint half-open ranges.
//!
//! Used by the TCP receiver for its out-of-order store (from which SACK
//! blocks are generated) — O(log n) insertion with neighbour merging,
//! compact even when thousands of sequence numbers are buffered during a
//! burst-loss episode.

/// Disjoint, sorted `[start, end)` ranges of sequence numbers.
///
/// ```
/// use pi2_transport::RangeSet;
/// let mut r = RangeSet::new();
/// r.insert(5);
/// r.insert(7);
/// r.insert(6); // bridges the two ranges
/// assert_eq!(r.ranges(), &[(5, 8)]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RangeSet {
    ranges: Vec<(u64, u64)>,
    /// Cached total of contained sequence numbers, so [`RangeSet::len`] is
    /// O(1) — it sits on TCP's per-ACK `pipe()` estimate.
    total: u64,
}

impl RangeSet {
    /// An empty set.
    pub fn new() -> Self {
        RangeSet {
            ranges: Vec::new(),
            total: 0,
        }
    }

    /// Number of disjoint ranges.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Total sequence numbers contained. O(1).
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Remove everything, keeping the allocation.
    pub fn clear(&mut self) {
        self.ranges.clear();
        self.total = 0;
    }

    /// True if no sequence numbers are contained.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The ranges, sorted ascending.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// True if `seq` is contained.
    pub fn contains(&self, seq: u64) -> bool {
        self.find(seq).is_some()
    }

    /// The range containing `seq`, if any.
    pub fn find(&self, seq: u64) -> Option<(u64, u64)> {
        match self.ranges.binary_search_by(|&(s, _)| s.cmp(&seq)) {
            Ok(i) => Some(self.ranges[i]),
            Err(0) => None,
            Err(i) => {
                let (s, e) = self.ranges[i - 1];
                (seq >= s && seq < e).then_some((s, e))
            }
        }
    }

    /// Insert a single sequence number, merging with neighbours.
    /// Returns false if it was already present.
    pub fn insert(&mut self, seq: u64) -> bool {
        let i = match self.ranges.binary_search_by(|&(s, _)| s.cmp(&seq)) {
            Ok(_) => return false, // starts a range => present
            Err(i) => i,
        };
        // Inside the previous range?
        if i > 0 {
            let (ps, pe) = self.ranges[i - 1];
            if seq < pe {
                return false;
            }
            if seq == pe {
                // Extend the previous range; maybe merge with the next.
                self.ranges[i - 1].1 = pe + 1;
                if i < self.ranges.len() && self.ranges[i].0 == pe + 1 {
                    self.ranges[i - 1].1 = self.ranges[i].1;
                    self.ranges.remove(i);
                }
                let _ = ps;
                self.total += 1;
                return true;
            }
        }
        // Prepend to the next range?
        if i < self.ranges.len() && self.ranges[i].0 == seq + 1 {
            self.ranges[i].0 = seq;
            self.total += 1;
            return true;
        }
        self.ranges.insert(i, (seq, seq + 1));
        self.total += 1;
        true
    }

    /// Insert the half-open range `[start, end)`, merging as needed.
    pub fn insert_range(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // Find the insertion window: all ranges overlapping or adjacent to
        // [start, end).
        let mut lo = match self.ranges.binary_search_by(|&(s, _)| s.cmp(&start)) {
            Ok(i) => i,
            Err(i) => i,
        };
        // The previous range may touch us.
        if lo > 0 && self.ranges[lo - 1].1 >= start {
            lo -= 1;
        }
        let mut hi = lo;
        let mut new_start = start;
        let mut new_end = end;
        let mut absorbed = 0;
        while hi < self.ranges.len() && self.ranges[hi].0 <= end {
            new_start = new_start.min(self.ranges[hi].0);
            new_end = new_end.max(self.ranges[hi].1);
            absorbed += self.ranges[hi].1 - self.ranges[hi].0;
            hi += 1;
        }
        self.total += (new_end - new_start) - absorbed;
        self.ranges.splice(lo..hi, [(new_start, new_end)]);
    }

    /// Remove everything strictly below `cutoff`; returns how many
    /// sequence numbers were removed.
    pub fn remove_below(&mut self, cutoff: u64) -> u64 {
        let mut removed = 0;
        self.ranges.retain_mut(|r| {
            if r.1 <= cutoff {
                removed += r.1 - r.0;
                false
            } else {
                if r.0 < cutoff {
                    removed += cutoff - r.0;
                    r.0 = cutoff;
                }
                true
            }
        });
        self.total -= removed;
        removed
    }

    /// If the lowest range starts exactly at `start`, remove and return
    /// it (used by the receiver to consume newly contiguous data).
    pub fn take_leading(&mut self, start: u64) -> Option<(u64, u64)> {
        if let Some(&(s, e)) = self.ranges.first() {
            if s == start {
                self.ranges.remove(0);
                self.total -= e - s;
                return Some((s, e));
            }
        }
        None
    }

    /// The lowest contained sequence ≥ `from`, if any.
    pub fn first_at_or_after(&self, from: u64) -> Option<u64> {
        for &(s, e) in &self.ranges {
            if e > from {
                return Some(s.max(from));
            }
        }
        None
    }

    /// The highest contained sequence number, if any.
    pub fn max(&self) -> Option<u64> {
        self.ranges.last().map(|&(_, e)| e - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_merge() {
        let mut r = RangeSet::new();
        assert!(r.insert(5));
        assert!(r.insert(7));
        assert_eq!(r.range_count(), 2);
        assert!(r.insert(6)); // bridges 5..6 and 7..8
        assert_eq!(r.range_count(), 1);
        assert_eq!(r.ranges(), &[(5, 8)]);
        assert!(!r.insert(6)); // duplicate
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn extend_left_and_right() {
        let mut r = RangeSet::new();
        r.insert(10);
        r.insert(11); // extend right
        r.insert(9); // extend left
        assert_eq!(r.ranges(), &[(9, 12)]);
    }

    #[test]
    fn contains_and_find() {
        let mut r = RangeSet::new();
        for s in [3, 4, 8, 9, 10] {
            r.insert(s);
        }
        assert!(r.contains(3) && r.contains(4) && !r.contains(5));
        assert_eq!(r.find(9), Some((8, 11)));
        assert_eq!(r.find(7), None);
    }

    #[test]
    fn remove_below_trims_and_splits() {
        let mut r = RangeSet::new();
        for s in 0..10 {
            r.insert(s);
        }
        r.insert(20);
        assert_eq!(r.remove_below(5), 5);
        assert_eq!(r.ranges(), &[(5, 10), (20, 21)]);
        assert_eq!(r.remove_below(100), 6);
        assert!(r.is_empty());
    }

    #[test]
    fn take_leading_consumes_contiguous() {
        let mut r = RangeSet::new();
        for s in [2, 3, 4, 9] {
            r.insert(s);
        }
        assert_eq!(r.take_leading(1), None);
        assert_eq!(r.take_leading(2), Some((2, 5)));
        assert_eq!(r.ranges(), &[(9, 10)]);
    }

    #[test]
    fn first_at_or_after_scans() {
        let mut r = RangeSet::new();
        for s in [5, 6, 10] {
            r.insert(s);
        }
        assert_eq!(r.first_at_or_after(0), Some(5));
        assert_eq!(r.first_at_or_after(6), Some(6));
        assert_eq!(r.first_at_or_after(7), Some(10));
        assert_eq!(r.first_at_or_after(11), None);
        assert_eq!(r.max(), Some(10));
    }

    #[test]
    fn insert_range_merges_overlaps() {
        let mut r = RangeSet::new();
        r.insert_range(10, 15);
        r.insert_range(20, 25);
        r.insert_range(14, 21); // bridges both
        assert_eq!(r.ranges(), &[(10, 25)]);
        r.insert_range(0, 5);
        r.insert_range(5, 10); // adjacent: merges with both neighbours
        assert_eq!(r.ranges(), &[(0, 25)]);
        r.insert_range(30, 30); // empty: no-op
        assert_eq!(r.range_count(), 1);
    }

    #[test]
    fn random_range_inserts_match_btreeset() {
        use pi2_simcore::Rng;
        let mut rng = Rng::new(21);
        let mut rs = RangeSet::new();
        let mut model = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let s = rng.range_u64(0, 200);
            let e = s + rng.range_u64(0, 20);
            rs.insert_range(s, e);
            for x in s..e {
                model.insert(x);
            }
            assert_eq!(rs.len(), model.len() as u64);
        }
        for x in 0..250 {
            assert_eq!(rs.contains(x), model.contains(&x), "at {x}");
        }
    }

    #[test]
    fn random_inserts_match_btreeset() {
        use pi2_simcore::Rng;
        let mut rng = Rng::new(9);
        let mut rs = RangeSet::new();
        let mut model = std::collections::BTreeSet::new();
        for _ in 0..2000 {
            let x = rng.range_u64(0, 300);
            assert_eq!(rs.insert(x), model.insert(x));
        }
        assert_eq!(rs.len(), model.len() as u64);
        for x in 0..300 {
            assert_eq!(rs.contains(x), model.contains(&x), "at {x}");
        }
        // Ranges are disjoint and sorted.
        for w in rs.ranges().windows(2) {
            assert!(w[0].1 < w[1].0);
        }
    }

    #[test]
    fn empty_set_operations_are_safe() {
        let mut r = RangeSet::new();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(!r.contains(0));
        assert_eq!(r.find(0), None);
        assert_eq!(r.max(), None);
        assert_eq!(r.first_at_or_after(0), None);
        assert_eq!(r.remove_below(u64::MAX), 0);
        assert_eq!(r.take_leading(0), None);
        r.insert_range(5, 5); // empty range: no-op
        r.insert_range(7, 3); // reversed range: no-op
        assert!(r.is_empty());
    }

    /// The half-open representation stores `seq` as `[seq, seq+1)`, so
    /// the largest representable member is `u64::MAX - 1`; everything up
    /// to that boundary must work without overflow.
    #[test]
    fn sequences_near_the_u64_boundary() {
        let top = u64::MAX - 1;
        let mut r = RangeSet::new();
        assert!(r.insert(top));
        assert!(!r.insert(top)); // duplicate at the boundary
        assert_eq!(r.ranges(), &[(top, u64::MAX)]);
        assert!(r.contains(top));
        assert_eq!(r.max(), Some(top));
        assert_eq!(r.find(top), Some((top, u64::MAX)));

        r.insert_range(u64::MAX - 10, u64::MAX);
        assert_eq!(r.ranges(), &[(u64::MAX - 10, u64::MAX)]);
        assert_eq!(r.len(), 10);
        assert_eq!(r.first_at_or_after(top), Some(top));
        assert_eq!(r.remove_below(u64::MAX), 10);
        assert!(r.is_empty());
    }

    #[test]
    fn adjacent_ranges_merge_in_both_directions() {
        let mut r = RangeSet::new();
        r.insert_range(0, 5);
        r.insert_range(10, 15);
        r.insert(5); // extends [0,5) rightward
        assert_eq!(r.ranges(), &[(0, 6), (10, 15)]);
        r.insert(9); // prepends to [10,15)
        assert_eq!(r.ranges(), &[(0, 6), (9, 15)]);
        r.insert_range(6, 9); // exactly fills the gap: one range left
        assert_eq!(r.ranges(), &[(0, 15)]);
    }

    #[test]
    fn clear_resets_cached_len() {
        let mut r = RangeSet::new();
        r.insert_range(0, 100);
        r.insert_range(200, 250);
        assert_eq!(r.len(), 150);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        r.insert(5);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn remove_below_at_exact_range_edges() {
        let mut r = RangeSet::new();
        r.insert_range(10, 20);
        r.insert_range(30, 40);
        // Cutoff at a range start removes nothing from that range.
        assert_eq!(r.remove_below(10), 0);
        assert_eq!(r.ranges(), &[(10, 20), (30, 40)]);
        // Cutoff at a range end removes exactly that range.
        assert_eq!(r.remove_below(20), 10);
        assert_eq!(r.ranges(), &[(30, 40)]);
        // Cutoff inside a range trims it in place.
        assert_eq!(r.remove_below(35), 5);
        assert_eq!(r.ranges(), &[(35, 40)]);
    }
}
