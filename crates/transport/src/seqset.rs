//! A sorted-vector set of `u64` sequence numbers for the sender
//! scoreboard.
//!
//! The sender's `lost` and `rtx_out` sets used to be `BTreeSet<u64>`.
//! Both hold at most a few hundred in-flight sequence numbers, are
//! populated in mostly-ascending order, and are hammered on the per-ACK
//! hot path (`pipe()`, loss marking, repair selection) — a profile where
//! a sorted `Vec` beats a B-tree on every axis: O(1) cached-capacity
//! clears, branchless `len()`, append-fast inserts, and linear memory for
//! the scans. The API mirrors the `BTreeSet` surface the scoreboard code
//! already used so the swap is mechanical.

/// A set of `u64`s stored as a sorted `Vec`.
#[derive(Clone, Debug, Default)]
pub struct SeqSet {
    seqs: Vec<u64>,
}

impl SeqSet {
    /// An empty set.
    pub fn new() -> Self {
        SeqSet { seqs: Vec::new() }
    }

    /// Number of contained sequence numbers.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// True if nothing is contained.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Remove everything, keeping the allocation.
    pub fn clear(&mut self) {
        self.seqs.clear();
    }

    /// True if `seq` is contained.
    #[inline]
    pub fn contains(&self, seq: u64) -> bool {
        // Fast path: the scoreboard mostly appends, so the common miss is
        // "beyond the current tail".
        match self.seqs.last() {
            None => false,
            Some(&last) if seq > last => false,
            Some(&last) if seq == last => true,
            _ => self.seqs.binary_search(&seq).is_ok(),
        }
    }

    /// Insert `seq`; returns false if it was already present.
    #[inline]
    pub fn insert(&mut self, seq: u64) -> bool {
        match self.seqs.last() {
            None => {
                self.seqs.push(seq);
                true
            }
            Some(&last) if seq > last => {
                self.seqs.push(seq);
                true
            }
            Some(&last) if seq == last => false,
            _ => match self.seqs.binary_search(&seq) {
                Ok(_) => false,
                Err(i) => {
                    self.seqs.insert(i, seq);
                    true
                }
            },
        }
    }

    /// Insert every sequence in the half-open `[start, end)`, replacing
    /// any members already inside that window (so duplicates are fine).
    pub fn insert_run(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        if self.seqs.last().map_or(true, |&last| start > last) {
            // Pure append — the common case for hole marking, which scans
            // strictly above everything marked before.
            self.seqs.extend(start..end);
            return;
        }
        let lo = self.seqs.partition_point(|&x| x < start);
        let hi = self.seqs.partition_point(|&x| x < end);
        self.seqs.splice(lo..hi, start..end);
    }

    /// Remove `seq` if present; returns whether it was.
    pub fn remove(&mut self, seq: u64) -> bool {
        match self.seqs.binary_search(&seq) {
            Ok(i) => {
                self.seqs.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Remove everything strictly below `cutoff`.
    pub fn remove_below(&mut self, cutoff: u64) {
        let n = self.seqs.partition_point(|&x| x < cutoff);
        if n > 0 {
            self.seqs.drain(..n);
        }
    }

    /// Keep only members satisfying `pred`.
    pub fn retain(&mut self, pred: impl FnMut(&u64) -> bool) {
        self.seqs.retain(pred);
    }

    /// The lowest member ≥ `from`, if any.
    #[inline]
    pub fn first_at_or_after(&self, from: u64) -> Option<u64> {
        let i = self.seqs.partition_point(|&x| x < from);
        self.seqs.get(i).copied()
    }

    /// Iterate members in ascending order.
    pub fn iter(&self) -> std::slice::Iter<'_, u64> {
        self.seqs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = SeqSet::new();
        assert!(s.insert(5));
        assert!(s.insert(2));
        assert!(s.insert(9));
        assert!(!s.insert(5));
        assert!(s.contains(2) && s.contains(5) && s.contains(9));
        assert!(!s.contains(3));
        assert_eq!(s.len(), 3);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![2, 9]);
    }

    #[test]
    fn insert_run_replaces_window() {
        let mut s = SeqSet::new();
        s.insert(3);
        s.insert(10);
        s.insert_run(2, 6); // overlaps the existing 3
        assert_eq!(
            s.iter().copied().collect::<Vec<_>>(),
            vec![2, 3, 4, 5, 10]
        );
        s.insert_run(20, 23); // pure append
        assert!(s.contains(22));
        assert_eq!(s.len(), 8);
        s.insert_run(7, 7); // empty: no-op
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn remove_below_and_cursor_lookup() {
        let mut s = SeqSet::new();
        s.insert_run(0, 10);
        s.remove_below(4);
        assert_eq!(s.first_at_or_after(0), Some(4));
        assert_eq!(s.first_at_or_after(7), Some(7));
        assert_eq!(s.first_at_or_after(10), None);
        s.retain(|&x| x % 2 == 0);
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![4, 6, 8]);
    }

    #[test]
    fn random_ops_match_btreeset() {
        use pi2_simcore::Rng;
        let mut rng = Rng::new(17);
        let mut s = SeqSet::new();
        let mut model = std::collections::BTreeSet::new();
        for _ in 0..3000 {
            let x = rng.range_u64(0, 400);
            match rng.range_u64(0, 4) {
                0 => assert_eq!(s.insert(x), model.insert(x)),
                1 => assert_eq!(s.remove(x), model.remove(&x)),
                2 => {
                    let e = x + rng.range_u64(0, 8);
                    s.insert_run(x, e);
                    model.extend(x..e);
                }
                _ => {
                    s.remove_below(x);
                    model.retain(|&m| m >= x);
                }
            }
            assert_eq!(s.len(), model.len());
            assert_eq!(
                s.first_at_or_after(x),
                model.range(x..).next().copied()
            );
        }
        assert!(s.iter().copied().eq(model.iter().copied()));
    }
}
