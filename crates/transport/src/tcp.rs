//! ACK-clocked TCP sender/receiver machinery.
//!
//! One [`TcpSource`] holds both endpoints of a flow; the simulated network
//! between them is the event queue (data packets traverse the bottleneck,
//! ACKs return over the uncongested reverse path). The machinery provides
//! what the congestion-control algorithms in [`crate::cc`] assume from the
//! Linux stack:
//!
//! * sliding-window transmission clocked by cumulative ACKs;
//! * SACK-based loss recovery (RFC 2018/6675 scoreboard, the default, as
//!   in the paper's Linux 3.18 testbed) with a NewReno fallback;
//! * RFC 6298 RTT estimation and exponential-backoff RTO;
//! * once-per-RTT gating of Classic congestion events (loss and ECE), with
//!   Scalable marks delivered per-ACK through cumulative CE counters;
//! * ECN negotiation: Classic flows send ECT(0), Scalable flows send
//!   ECT(1) (the paper's modified DCTCP).

use crate::cc::{CcKind, CongestionControl};
use crate::rangeset::RangeSet;
use crate::seqset::SeqSet;
use pi2_netsim::{Ack, Ecn, FlowId, Packet, SimCore, Source, TimerKind};
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Time};

/// Encode an optional value as a presence flag plus the value (a fixed
/// placeholder when absent), keeping every record fixed-width.
fn write_opt<T, F: FnMut(&mut CkptWriter, T)>(w: &mut CkptWriter, v: Option<T>, mut f: F, zero: T) {
    w.bool(v.is_some());
    match v {
        Some(v) => f(w, v),
        None => f(w, zero),
    }
}

/// Decode the counterpart of [`write_opt`].
fn read_opt<T, F: FnMut(&mut CkptReader) -> Result<T, CkptError>>(
    r: &mut CkptReader,
    mut f: F,
) -> Result<Option<T>, CkptError> {
    let present = r.bool()?;
    let v = f(r)?;
    Ok(present.then_some(v))
}

/// Serialize a [`SeqSet`] as its ascending member list; re-inserting in
/// that order on restore rebuilds the identical internal layout.
fn write_seqset(w: &mut CkptWriter, s: &SeqSet) {
    w.usize(s.len());
    for &seq in s.iter() {
        w.u64(seq);
    }
}

/// Decode the counterpart of [`write_seqset`].
fn read_seqset(r: &mut CkptReader) -> Result<SeqSet, CkptError> {
    let n = r.usize()?;
    let mut s = SeqSet::new();
    let mut prev = None;
    for _ in 0..n {
        let seq = r.u64()?;
        if prev.is_some_and(|p| p >= seq) {
            return Err(CkptError::Corrupt("seqset members not strictly ascending"));
        }
        prev = Some(seq);
        s.insert(seq);
    }
    Ok(s)
}

/// Serialize a [`RangeSet`] as its disjoint ascending `[start, end)`
/// ranges; re-inserting them on restore also rebuilds the cached total.
fn write_rangeset(w: &mut CkptWriter, s: &RangeSet) {
    let ranges = s.ranges();
    w.usize(ranges.len());
    for &(start, end) in ranges {
        w.u64(start);
        w.u64(end);
    }
}

/// Decode the counterpart of [`write_rangeset`].
fn read_rangeset(r: &mut CkptReader) -> Result<RangeSet, CkptError> {
    let n = r.usize()?;
    let mut s = RangeSet::new();
    let mut prev_end = None;
    for _ in 0..n {
        let start = r.u64()?;
        let end = r.u64()?;
        if start >= end || prev_end.is_some_and(|p| p >= start) {
            return Err(CkptError::Corrupt("rangeset ranges not disjoint ascending"));
        }
        prev_end = Some(end);
        s.insert_range(start, end);
    }
    Ok(s)
}

/// How the flow uses ECN.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EcnSetting {
    /// No ECN: congestion is signalled by drop only.
    NotEcn,
    /// Classic ECN (RFC 3168): packets carry ECT(0); a mark is treated
    /// like a loss, once per RTT.
    Classic,
    /// Scalable ECN: packets carry ECT(1); marks feed the per-ACK counters
    /// consumed by DCTCP-style controls.
    Scalable,
}

impl EcnSetting {
    fn codepoint(self) -> Ecn {
        match self {
            EcnSetting::NotEcn => Ecn::NotEct,
            EcnSetting::Classic => Ecn::Ect0,
            EcnSetting::Scalable => Ecn::Ect1,
        }
    }
}

/// Static TCP configuration.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// On-wire segment size in bytes (all rates in the paper are measured
    /// on the wire, so headers are folded in).
    pub mss: usize,
    /// Initial congestion window in packets (Linux default 10).
    pub initial_cwnd: f64,
    /// RTO floor (Linux: 200 ms).
    pub min_rto: Duration,
    /// RTO ceiling.
    pub max_rto: Duration,
    /// Stop after sending this many packets (short flows); `None` for a
    /// long-running flow.
    pub data_limit: Option<u64>,
    /// Receive-window clamp in packets. The paper's footnote 5 describes a
    /// Linux bug capping the BDP at 1 MB; setting this low reproduces that
    /// artefact, the default leaves the window effectively unclamped.
    pub max_cwnd: f64,
    /// Use SACK-based loss recovery (RFC 2018/6675). On by default, as in
    /// the paper's Linux testbed; off falls back to pure NewReno, which
    /// heals only one hole per RTT after a burst loss.
    pub sack: bool,
    /// Delayed ACKs (RFC 1122): acknowledge every second in-order segment,
    /// with a 40 ms delayed-ACK timer, immediate ACKs on out-of-order or
    /// CE-marked data (the DCTCP receiver rule). Off by default — the
    /// idealized per-packet feedback matches the paper's Appendix A laws
    /// exactly; on, the effective CReno constant drops toward 1.19 (see
    /// the delayed-ACK ablation).
    pub delayed_ack: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1500,
            initial_cwnd: 10.0,
            min_rto: Duration::from_millis(200),
            max_rto: Duration::from_secs(60),
            data_limit: None,
            max_cwnd: 1e9,
            sack: true,
            delayed_ack: false,
        }
    }
}

/// Delayed-ACK timer identifier (within [`TimerKind::User`]).
const DELACK_TIMER: u32 = 1;
/// Linux's delayed-ACK timeout.
const DELACK_DELAY: Duration = Duration::from_millis(40);

/// A TCP flow endpoint pair implementing [`Source`].
pub struct TcpSource {
    id: FlowId,
    cfg: TcpConfig,
    ecn: EcnSetting,
    cc: Box<dyn CongestionControl>,
    active: bool,

    // --- sender state ---
    snd_una: u64,
    snd_nxt: u64,
    dupacks: u32,
    in_recovery: bool,
    recover: u64,
    /// NewReno window inflation (RFC 6582): each duplicate ACK during
    /// recovery signals a departure, allowing one new segment out
    /// (non-SACK mode only).
    recovery_inflation: u64,
    /// SACK scoreboard: sequences the receiver holds above `snd_una`.
    sacked: RangeSet,
    /// Sequences deemed lost (unsacked holes below the highest SACK; valid
    /// because the simulated path never reorders).
    lost: SeqSet,
    /// Lost sequences whose retransmission is currently in flight.
    rtx_out: SeqSet,
    /// Everything below this was already classified by `mark_lost_holes`,
    /// so each call scans only the newly-eligible window instead of
    /// re-walking the scoreboard from `snd_una`. Reset when the scoreboard
    /// restarts (RTO, recovery entry).
    lost_below: u64,
    /// `next_repair` cursor: every lost sequence below this is already in
    /// `rtx_out`, and nothing at or above it is. Reset with `lost_below`.
    repair_from: u64,
    /// Classic congestion events are ignored until `snd_una` passes this
    /// sequence (one reaction per window in flight — the RFC 5681 /
    /// RFC 3168 rule).
    cong_gate: u64,
    rto_timer: Option<u64>,
    rto_backoff: u32,
    srtt: Option<Duration>,
    rttvar: Duration,
    base_rtt: Duration,
    /// Receiver counters as last seen by the sender, for per-ACK deltas.
    seen_ce_total: u64,
    seen_pkts_total: u64,

    // --- receiver state ---
    rcv_nxt: u64,
    ooo: RangeSet,
    ce_total: u64,
    pkts_total: u64,
    /// Delayed-ACK state: in-order segments received since the last ACK.
    unacked_segs: u32,
    /// ECE pending for the next ACK (a CE arrived since the last ACK).
    ece_pending: bool,
    /// Timestamp/retransmit echo pending for the next ACK.
    pending_echo: Option<(Time, bool)>,
    /// CE state of the previous data packet, for the DCTCP receiver's
    /// immediate-ACK-on-change rule.
    last_ce_state: bool,
    delack_timer: Option<u64>,

    /// Set when a size-limited flow finishes (all data acknowledged).
    pub completed_at: Option<Time>,
    started_at: Time,
}

impl TcpSource {
    /// Create a TCP flow with the given congestion control and ECN mode.
    ///
    /// The canonical pairings from the paper: `(Reno|Cubic, NotEcn)` for
    /// drop-based Classic, `(Cubic, Classic)` for ECN-Cubic, and
    /// `(Dctcp, Scalable)` for the modified DCTCP.
    pub fn new(id: FlowId, cc: CcKind, ecn: EcnSetting, cfg: TcpConfig) -> Self {
        TcpSource::with_cc(id, cc.build(cfg.initial_cwnd), ecn, cfg)
    }

    /// Create a TCP flow with a custom congestion-control instance.
    pub fn with_cc(
        id: FlowId,
        cc: Box<dyn CongestionControl>,
        ecn: EcnSetting,
        cfg: TcpConfig,
    ) -> Self {
        TcpSource {
            id,
            cfg,
            ecn,
            cc,
            active: false,
            snd_una: 0,
            snd_nxt: 0,
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            recovery_inflation: 0,
            sacked: RangeSet::new(),
            lost: SeqSet::new(),
            rtx_out: SeqSet::new(),
            lost_below: 0,
            repair_from: 0,
            cong_gate: 0,
            rto_timer: None,
            rto_backoff: 0,
            srtt: None,
            rttvar: Duration::ZERO,
            base_rtt: Duration::from_millis(100),
            seen_ce_total: 0,
            seen_pkts_total: 0,
            rcv_nxt: 0,
            ooo: RangeSet::new(),
            ce_total: 0,
            pkts_total: 0,
            unacked_segs: 0,
            ece_pending: false,
            pending_echo: None,
            last_ce_state: false,
            delack_timer: None,
            completed_at: None,
            started_at: Time::ZERO,
        }
    }

    /// The current congestion window (packets), for observability.
    pub fn cwnd(&self) -> f64 {
        self.cc.cwnd()
    }

    /// Flow completion time of a size-limited flow: start-to-last-ACK
    /// elapsed time, `None` while data is still outstanding (or for an
    /// unlimited flow, which never completes).
    pub fn fct(&self) -> Option<Duration> {
        self.completed_at.map(|done| done - self.started_at)
    }

    /// The smoothed RTT estimate, if one exists.
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt
    }

    /// The congestion-control algorithm, for observability.
    pub fn congestion_control(&self) -> &dyn CongestionControl {
        self.cc.as_ref()
    }

    fn rtt_estimate(&self) -> Duration {
        self.srtt.unwrap_or(self.base_rtt)
    }

    fn rto(&self) -> Duration {
        let base = match self.srtt {
            Some(srtt) => srtt + (self.rttvar * 4).max(Duration::from_millis(1)),
            None => Duration::from_secs(1),
        };
        let backed = base * (1i64 << self.rto_backoff.min(16));
        backed.max(self.cfg.min_rto).min(self.cfg.max_rto)
    }

    fn sample_rtt(&mut self, sample: Duration) {
        // RFC 6298.
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                let err = srtt - sample;
                let abs_err = if err.is_negative() { Duration::ZERO - err } else { err };
                self.rttvar = (self.rttvar * 3 + abs_err) / 4;
                self.srtt = Some((srtt * 7 + sample) / 8);
            }
        }
    }

    fn arm_rto(&mut self, core: &mut SimCore) {
        let id = core.schedule_timer(self.id, TimerKind::Rto, self.rto());
        self.rto_timer = Some(id);
    }

    fn effective_cwnd(&self) -> u64 {
        let base = self.cc.cwnd().min(self.cfg.max_cwnd).floor().max(1.0) as u64;
        if self.cfg.sack {
            base
        } else {
            base + self.recovery_inflation
        }
    }

    /// RFC 6675 pipe estimate: packets believed to be in the network.
    /// `outstanding − sacked − (lost not yet retransmitted)`.
    fn pipe(&self) -> u64 {
        let outstanding = self.snd_nxt - self.snd_una;
        let sacked = self.sacked.len();
        let lost_unrepaired = (self.lost.len() - self.rtx_out.len()) as u64;
        outstanding.saturating_sub(sacked).saturating_sub(lost_unrepaired)
    }

    /// Fold a SACK-block update into the scoreboard.
    fn apply_sack(&mut self, ack: &Ack) {
        // Steady-state ACKs carry no blocks; nothing below can change.
        if ack.sack.iter().all(Option::is_none) {
            return;
        }
        for block in ack.sack.iter().flatten() {
            let (s, e) = *block;
            let s = s.max(self.snd_una);
            if s < e {
                self.sacked.insert_range(s, e.min(self.snd_nxt));
            }
        }
        // A hole that later gets SACKed was repaired: it is no longer lost.
        if !self.lost.is_empty() {
            let sacked = &self.sacked;
            self.lost.retain(|&seq| !sacked.contains(seq));
            self.rtx_out.retain(|&seq| !sacked.contains(seq));
        }
    }

    /// Mark unsacked sequences as lost per the RFC 6675 `IsLost` rule: a
    /// hole counts as lost only once `DUP_THRESH` SACKed segments lie
    /// above it. On an in-order path this converges to "every hole below
    /// the highest SACK" within two more ACKs; under path reordering
    /// (the impairment layer's jitter knob) it keeps segments that are
    /// merely late — fewer than `DUP_THRESH` deep — from being
    /// retransmitted spuriously.
    fn mark_lost_holes(&mut self) {
        const DUP_THRESH: u64 = 3;
        // The DUP_THRESH-th-highest SACKed sequence: exactly the holes
        // strictly below it have >= DUP_THRESH SACKed segments above.
        let mut need = DUP_THRESH;
        let mut cutoff = None;
        for &(s, e) in self.sacked.ranges().iter().rev() {
            if e - s >= need {
                cutoff = Some(e - need);
                break;
            }
            need -= e - s;
        }
        let Some(cutoff) = cutoff else {
            return;
        };
        // Everything below `lost_below` was classified on a previous call
        // (and holes that got SACKed since were pulled out of `lost` by
        // `apply_sack` — they must not return). Only the newly-eligible
        // window needs scanning, as whole hole runs between SACK ranges.
        let mut cur = self.snd_una.max(self.lost_below);
        if cur >= cutoff {
            return;
        }
        for &(s, e) in self.sacked.ranges() {
            if e <= cur {
                continue;
            }
            if s >= cutoff {
                break;
            }
            if s > cur {
                self.lost.insert_run(cur, s.min(cutoff));
            }
            cur = e;
            if cur >= cutoff {
                break;
            }
        }
        if cur < cutoff {
            self.lost.insert_run(cur, cutoff);
        }
        self.lost_below = cutoff;
    }

    /// The lowest lost sequence whose retransmission is not in flight.
    ///
    /// Cursor invariant: `try_send` repairs losses in ascending order and
    /// bumps `repair_from` past each, so everything below the cursor is in
    /// `rtx_out` and nothing at or above it is — no membership probing.
    fn next_repair(&self) -> Option<u64> {
        self.lost.first_at_or_after(self.repair_from)
    }

    fn drop_scoreboard_below(&mut self, cutoff: u64) {
        // Steady state (no loss episode in flight) keeps all three sets
        // empty; skip the per-set calls on the every-ACK path.
        if self.sacked.is_empty() && self.lost.is_empty() && self.rtx_out.is_empty() {
            return;
        }
        self.sacked.remove_below(cutoff);
        self.lost.remove_below(cutoff);
        self.rtx_out.remove_below(cutoff);
    }

    fn data_exhausted(&self) -> bool {
        matches!(self.cfg.data_limit, Some(limit) if self.snd_nxt >= limit)
    }

    fn send_segment(&mut self, core: &mut SimCore, seq: u64, retransmit: bool) {
        let mut pkt = Packet::data(self.id, seq, self.cfg.mss, self.ecn.codepoint(), core.now());
        pkt.retransmit = retransmit;
        core.send_packet(pkt);
    }

    fn try_send(&mut self, core: &mut SimCore) {
        if !self.active {
            return;
        }
        let cwnd = self.effective_cwnd();
        if self.cfg.sack {
            // RFC 6675: repairs first, then new data, all bounded by pipe.
            while self.pipe() < cwnd {
                if let Some(seq) = self.next_repair() {
                    self.rtx_out.insert(seq);
                    self.repair_from = seq + 1;
                    self.send_segment(core, seq, true);
                } else if !self.data_exhausted() {
                    let seq = self.snd_nxt;
                    self.snd_nxt += 1;
                    self.send_segment(core, seq, false);
                } else {
                    break;
                }
            }
        } else {
            let limit = self.snd_una + cwnd;
            while self.snd_nxt < limit && !self.data_exhausted() {
                let seq = self.snd_nxt;
                self.snd_nxt += 1;
                self.send_segment(core, seq, false);
            }
        }
        if self.rto_timer.is_none() && self.snd_nxt > self.snd_una {
            self.arm_rto(core);
        }
    }

    /// True when the once-per-RTT Classic congestion gate is open.
    fn gate_open(&self) -> bool {
        self.snd_una >= self.cong_gate
    }

    fn classic_congestion_event(&mut self, now: Time, loss: bool) {
        if loss {
            self.cc.on_loss(now);
        } else {
            self.cc.on_ecn(now);
        }
        // Provisionally close the gate at the current snd_nxt; on_ack
        // re-raises it after try_send so the gate covers the *whole*
        // window of data including segments sent in response to this very
        // ACK (RFC 3168's "once per window of data" — without the
        // re-raise, a floor-sized window reacts nearly twice per RTT).
        self.cong_gate = self.snd_nxt;
    }

    fn handle_receiver_side(&mut self, pkt: &Packet, core: &mut SimCore) {
        self.pkts_total += 1;
        let was_ce = pkt.ecn == Ecn::Ce;
        if was_ce {
            self.ce_total += 1;
        }
        let in_order = pkt.seq == self.rcv_nxt;
        if in_order {
            self.rcv_nxt += 1;
            if let Some((_, end)) = self.ooo.take_leading(self.rcv_nxt) {
                self.rcv_nxt = end;
            }
        } else if pkt.seq > self.rcv_nxt {
            self.ooo.insert(pkt.seq);
        }
        self.ece_pending |= was_ce;
        self.pending_echo = Some((pkt.sent_at, pkt.retransmit));
        self.unacked_segs += 1;
        // RFC 1122 delayed ACKs, with immediate ACKs for out-of-order data
        // (fast retransmit depends on prompt dupacks) and on CE-state
        // change (the DCTCP receiver rule, so Scalable feedback stays
        // timely).
        let must_ack_now = !self.cfg.delayed_ack
            || !in_order
            || !self.ooo.is_empty()
            || was_ce != self.last_ce_state
            || self.unacked_segs >= 2;
        self.last_ce_state = was_ce;
        if must_ack_now {
            self.emit_ack(pkt.seq, core);
        } else if self.delack_timer.is_none() {
            let id = core.schedule_timer(self.id, TimerKind::User(DELACK_TIMER), DELACK_DELAY);
            self.delack_timer = Some(id);
        }
    }

    /// Send the (possibly delayed) cumulative ACK.
    fn emit_ack(&mut self, just_received: u64, core: &mut SimCore) {
        let (echo_ts, echo_rtx) = self.pending_echo.unwrap_or((core.now(), true));
        core.send_ack(Ack {
            flow: self.id,
            cum_seq: self.rcv_nxt,
            ece: self.ece_pending,
            ce_total: self.ce_total,
            pkts_total: self.pkts_total,
            echo_ts,
            echo_rtx,
            sack: if self.cfg.sack {
                self.sack_blocks(just_received)
            } else {
                Ack::NO_SACK
            },
        });
        self.unacked_segs = 0;
        self.ece_pending = false;
        self.pending_echo = None;
        self.delack_timer = None;
    }

    /// RFC 2018 block selection: the block containing the most recently
    /// received sequence first, then the highest remaining blocks.
    fn sack_blocks(&self, just_received: u64) -> [Option<(u64, u64)>; 3] {
        let mut out = Ack::NO_SACK;
        if self.ooo.is_empty() {
            return out;
        }
        let mut idx = 0;
        let first = self.ooo.find(just_received);
        if let Some(r) = first {
            out[0] = Some(r);
            idx = 1;
        }
        for &(s, e) in self.ooo.ranges().iter().rev() {
            if idx >= 3 {
                break;
            }
            if first == Some((s, e)) {
                continue;
            }
            out[idx] = Some((s, e));
            idx += 1;
        }
        out
    }
}

impl Source for TcpSource {
    fn on_start(&mut self, core: &mut SimCore) {
        if self.active {
            return;
        }
        self.active = true;
        self.started_at = core.now();
        self.base_rtt = core.path(self.id).base_rtt();
        self.try_send(core);
    }

    fn on_stop(&mut self, _core: &mut SimCore) {
        self.active = false;
        self.rto_timer = None;
    }

    fn on_deliver(&mut self, pkt: Packet, core: &mut SimCore) {
        self.handle_receiver_side(&pkt, core);
    }

    fn on_ack(&mut self, ack: Ack, core: &mut SimCore) {
        let now = core.now();
        let gate_before = self.cong_gate;
        // Mark/receive deltas from the receiver's cumulative counters.
        // The watermarks must only move forward: a reordered (stale) ACK
        // carries older totals, and assigning them directly would roll the
        // watermark back so the next fresh ACK re-counts marks the CC
        // already saw (inflating DCTCP's α). The saturating_sub already
        // yields 0 deltas for stale ACKs.
        let marked = ack.ce_total.saturating_sub(self.seen_ce_total);
        let received = ack.pkts_total.saturating_sub(self.seen_pkts_total);
        self.seen_ce_total = self.seen_ce_total.max(ack.ce_total);
        self.seen_pkts_total = self.seen_pkts_total.max(ack.pkts_total);

        if !ack.echo_rtx {
            self.sample_rtt(now.saturating_since(ack.echo_ts));
        }

        if self.cfg.sack {
            self.apply_sack(&ack);
        }

        if ack.cum_seq > self.snd_una {
            // New data acknowledged.
            let acked = ack.cum_seq - self.snd_una;
            self.snd_una = ack.cum_seq;
            self.rto_backoff = 0;
            self.drop_scoreboard_below(self.snd_una);
            if self.in_recovery {
                if self.snd_una >= self.recover {
                    self.in_recovery = false;
                    self.dupacks = 0;
                    self.recovery_inflation = 0;
                } else if self.cfg.sack {
                    // The new hole (if any) at snd_una is below the highest
                    // SACK and will be marked lost and repaired by try_send.
                    self.mark_lost_holes();
                } else {
                    // NewReno partial ACK (RFC 6582): the next hole starts
                    // at the new snd_una; retransmit it immediately and
                    // deflate the window by the data the ACK covered.
                    self.recovery_inflation =
                        self.recovery_inflation.saturating_sub(acked).saturating_add(1);
                    self.send_segment(core, self.snd_una, true);
                }
            } else {
                self.dupacks = 0;
            }
            self.cc.on_ack(acked, marked, received, self.rtt_estimate(), now);
            if ack.ece && self.ecn == EcnSetting::Classic && self.gate_open() {
                self.classic_congestion_event(now, false);
            }
            // Restart the retransmission timer for remaining data.
            if self.snd_nxt > self.snd_una {
                self.arm_rto(core);
            } else {
                self.rto_timer = None;
            }
            if let Some(limit) = self.cfg.data_limit {
                if self.snd_una >= limit && self.completed_at.is_none() {
                    self.completed_at = Some(now);
                    core.monitor.record_completion(self.id, self.started_at, now);
                    self.active = false;
                    self.rto_timer = None;
                    return;
                }
            }
        } else if ack.cum_seq == self.snd_una && self.snd_nxt > self.snd_una {
            // Duplicate ACK.
            self.dupacks += 1;
            if self.in_recovery && !self.cfg.sack {
                self.recovery_inflation += 1;
            }
            // Scalable marks still arrive on duplicates.
            self.cc.on_ack(0, marked, received, self.rtt_estimate(), now);
            if ack.ece && self.ecn == EcnSetting::Classic && self.gate_open() {
                self.classic_congestion_event(now, false);
            }
            let sack_trigger = self.cfg.sack && self.sacked.len() >= 3;
            if !self.in_recovery && (self.dupacks >= 3 || sack_trigger) {
                if self.gate_open() {
                    self.classic_congestion_event(now, true);
                }
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                // Fresh episode: the scoreboard sets are empty here (the
                // previous episode's entries were all cumulatively acked),
                // so the scan cursors restart.
                self.lost_below = 0;
                self.repair_from = 0;
                if self.cfg.sack {
                    self.mark_lost_holes();
                    // If nothing is SACKed yet (pure dupack entry), the
                    // first unacked segment is the presumed loss.
                    if self.lost.is_empty() {
                        self.lost.insert(self.snd_una);
                    }
                } else {
                    self.recovery_inflation = 3;
                    self.send_segment(core, self.snd_una, true);
                }
                self.arm_rto(core);
            } else if self.in_recovery && self.cfg.sack {
                self.mark_lost_holes();
            }
        }
        self.try_send(core);
        if self.cong_gate != gate_before {
            // A congestion event fired during this ACK: extend the gate
            // over the segments try_send just emitted.
            self.cong_gate = self.snd_nxt;
        }
    }

    fn on_timer(&mut self, kind: TimerKind, id: u64, core: &mut SimCore) {
        if kind == TimerKind::User(DELACK_TIMER) {
            // Delayed-ACK timeout: flush the pending ACK, if still pending.
            if self.delack_timer == Some(id) && self.unacked_segs > 0 {
                self.emit_ack(self.rcv_nxt.saturating_sub(1), core);
            }
            return;
        }
        if kind != TimerKind::Rto || self.rto_timer != Some(id) || !self.active {
            return;
        }
        self.rto_timer = None;
        if self.snd_nxt == self.snd_una {
            return; // nothing outstanding
        }
        let now = core.now();
        self.cc.on_rto(now);
        self.rto_backoff += 1;
        self.in_recovery = false;
        self.dupacks = 0;
        self.recovery_inflation = 0;
        // The scoreboard may be stale (e.g. the retransmission itself was
        // lost); RFC 6582/6675 restart from scratch after a timeout.
        self.sacked.clear();
        self.lost.clear();
        self.rtx_out.clear();
        self.lost_below = 0;
        self.repair_from = 0;
        self.cong_gate = self.snd_nxt;
        self.send_segment(core, self.snd_una, true);
        self.arm_rto(core);
    }

    /// Serialize every mutable field — both endpoints' state plus the
    /// congestion controller — in declaration order. `id`, `cfg` and
    /// `ecn` are construction-time configuration and are not written; the
    /// restoring side must be built with the same values.
    fn save_ckpt(&self, w: &mut CkptWriter) {
        self.cc.save_ckpt(w);
        w.bool(self.active);
        w.u64(self.snd_una);
        w.u64(self.snd_nxt);
        w.u32(self.dupacks);
        w.bool(self.in_recovery);
        w.u64(self.recover);
        w.u64(self.recovery_inflation);
        write_rangeset(w, &self.sacked);
        write_seqset(w, &self.lost);
        write_seqset(w, &self.rtx_out);
        w.u64(self.lost_below);
        w.u64(self.repair_from);
        w.u64(self.cong_gate);
        write_opt(w, self.rto_timer, CkptWriter::u64, 0);
        w.u32(self.rto_backoff);
        write_opt(w, self.srtt, CkptWriter::duration, Duration::ZERO);
        w.duration(self.rttvar);
        w.duration(self.base_rtt);
        w.u64(self.seen_ce_total);
        w.u64(self.seen_pkts_total);
        w.u64(self.rcv_nxt);
        write_rangeset(w, &self.ooo);
        w.u64(self.ce_total);
        w.u64(self.pkts_total);
        w.u32(self.unacked_segs);
        w.bool(self.ece_pending);
        write_opt(
            w,
            self.pending_echo,
            |w, (t, rtx)| {
                w.time(t);
                w.bool(rtx);
            },
            (Time::ZERO, false),
        );
        w.bool(self.last_ce_state);
        write_opt(w, self.delack_timer, CkptWriter::u64, 0);
        write_opt(w, self.completed_at, CkptWriter::time, Time::ZERO);
        w.time(self.started_at);
    }

    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.cc.restore_ckpt(r)?;
        self.active = r.bool()?;
        self.snd_una = r.u64()?;
        self.snd_nxt = r.u64()?;
        self.dupacks = r.u32()?;
        self.in_recovery = r.bool()?;
        self.recover = r.u64()?;
        self.recovery_inflation = r.u64()?;
        self.sacked = read_rangeset(r)?;
        self.lost = read_seqset(r)?;
        self.rtx_out = read_seqset(r)?;
        self.lost_below = r.u64()?;
        self.repair_from = r.u64()?;
        self.cong_gate = r.u64()?;
        self.rto_timer = read_opt(r, |r| r.u64())?;
        self.rto_backoff = r.u32()?;
        self.srtt = read_opt(r, |r| r.duration())?;
        self.rttvar = r.duration()?;
        self.base_rtt = r.duration()?;
        self.seen_ce_total = r.u64()?;
        self.seen_pkts_total = r.u64()?;
        self.rcv_nxt = r.u64()?;
        self.ooo = read_rangeset(r)?;
        self.ce_total = r.u64()?;
        self.pkts_total = r.u64()?;
        self.unacked_segs = r.u32()?;
        self.ece_pending = r.bool()?;
        self.pending_echo = read_opt(r, |r| {
            let t = r.time()?;
            let rtx = r.bool()?;
            Ok((t, rtx))
        })?;
        self.last_ce_state = r.bool()?;
        self.delack_timer = read_opt(r, |r| r.u64())?;
        self.completed_at = read_opt(r, |r| r.time())?;
        self.started_at = r.time()?;
        if self.snd_una > self.snd_nxt {
            return Err(CkptError::Corrupt("snd_una ahead of snd_nxt"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_netsim::{
        Aqm, Decision, MonitorConfig, PassAqm, PathConf, QueueConfig, QueueSnapshot, Sim,
        SimConfig,
    };
    use pi2_simcore::Rng;

    fn sim_with(rate_bps: u64, buffer_bytes: usize, aqm: Box<dyn Aqm>) -> Sim {
        Sim::new(
            SimConfig {
                queue: QueueConfig {
                    rate_bps,
                    buffer_bytes,
                },
                seed: 11,
                monitor: MonitorConfig::default(),
            },
            aqm,
        )
    }

    fn add_tcp(sim: &mut Sim, cc: CcKind, ecn: EcnSetting, rtt_ms: i64, label: &str) -> FlowId {
        sim.add_flow(
            PathConf::symmetric(Duration::from_millis(rtt_ms)),
            label,
            Time::ZERO,
            move |id| Box::new(TcpSource::new(id, cc, ecn, TcpConfig::default())),
        )
    }

    #[test]
    fn fills_the_pipe_without_losses() {
        // 10 Mb/s, large buffer, no AQM: a single Reno flow must reach
        // (nearly) full utilization.
        let mut sim = sim_with(10_000_000, usize::MAX, Box::new(PassAqm));
        let id = add_tcp(&mut sim, CcKind::Reno, EcnSetting::NotEcn, 40, "reno");
        sim.run_until(Time::from_secs(30));
        let acc = sim.core.monitor.flow(id);
        let mbps = acc.dequeued_bytes as f64 * 8.0 / 30.0 / 1e6;
        assert!(mbps > 9.0, "throughput only {mbps:.2} Mb/s");
    }

    #[test]
    fn recovers_from_tail_drops() {
        // Small buffer forces periodic loss; the flow must keep delivering
        // data in order, with retransmissions filling every hole.
        let mut sim = sim_with(10_000_000, 30_000, Box::new(PassAqm));
        let id = add_tcp(&mut sim, CcKind::Reno, EcnSetting::NotEcn, 40, "reno");
        sim.run_until(Time::from_secs(30));
        let acc = sim.core.monitor.flow(id);
        assert!(acc.dropped > 0, "expected drops with a 30 kB buffer");
        let mbps = acc.dequeued_bytes as f64 * 8.0 / 30.0 / 1e6;
        assert!(mbps > 8.0, "throughput only {mbps:.2} Mb/s with losses");
    }

    #[test]
    fn utilization_suffers_with_tiny_buffer_and_long_rtt() {
        // Sanity: a sub-BDP buffer with Reno cannot sustain full rate.
        let mut sim = sim_with(50_000_000, 10_000, Box::new(PassAqm));
        let id = add_tcp(&mut sim, CcKind::Reno, EcnSetting::NotEcn, 100, "reno");
        sim.run_until(Time::from_secs(30));
        let acc = sim.core.monitor.flow(id);
        let mbps = acc.dequeued_bytes as f64 * 8.0 / 30.0 / 1e6;
        assert!(mbps < 45.0, "expected underutilization, got {mbps:.2} Mb/s");
    }

    /// An AQM that CE-marks every ECT packet: ECN-capable flows should see
    /// marks, not drops, and still make progress.
    struct MarkAll;
    impl Aqm for MarkAll {
        fn on_enqueue(
            &mut self,
            pkt: &Packet,
            _snap: &QueueSnapshot,
            _now: Time,
            _rng: &mut Rng,
        ) -> Decision {
            if pkt.ecn.is_ect() {
                Decision::mark(1.0)
            } else {
                Decision::pass(0.0)
            }
        }
        fn name(&self) -> &'static str {
            "markall"
        }
    }

    #[test]
    fn classic_ecn_reacts_once_per_rtt() {
        let mut sim = sim_with(10_000_000, usize::MAX, Box::new(MarkAll));
        let id = add_tcp(&mut sim, CcKind::Cubic, EcnSetting::Classic, 40, "ecn-cubic");
        sim.run_until(Time::from_secs(10));
        let acc = sim.core.monitor.flow(id);
        assert_eq!(acc.dropped, 0);
        assert!(acc.marked > 0);
        // Marked on every packet, yet the flow must still deliver data:
        // the once-per-RTT gate prevents collapse to zero.
        assert!(acc.dequeued_pkts > 100, "delivered {}", acc.dequeued_pkts);
    }

    #[test]
    fn dctcp_alpha_saturates_under_full_marking() {
        let mut sim = sim_with(10_000_000, usize::MAX, Box::new(MarkAll));
        let id = add_tcp(&mut sim, CcKind::Dctcp, EcnSetting::Scalable, 40, "dctcp");
        sim.run_until(Time::from_secs(10));
        let acc = sim.core.monitor.flow(id);
        assert!(acc.marked > 0);
        assert!(acc.dequeued_pkts > 100);
    }

    #[test]
    fn short_flow_completes() {
        let mut sim = sim_with(10_000_000, usize::MAX, Box::new(PassAqm));
        let id = sim.add_flow(
            PathConf::symmetric(Duration::from_millis(20)),
            "short",
            Time::ZERO,
            |id| {
                Box::new(TcpSource::new(
                    id,
                    CcKind::Reno,
                    EcnSetting::NotEcn,
                    TcpConfig {
                        data_limit: Some(100),
                        ..TcpConfig::default()
                    },
                ))
            },
        );
        let _ = id;
        sim.run_until(Time::from_secs(10));
        let acc = sim.core.monitor.flow(id);
        assert_eq!(acc.sent_pkts, 100, "exactly the data limit is sent");
        assert_eq!(acc.delivered_pkts, 100);
        let (_, started, completed) = sim.core.monitor.completions[0];
        assert!(completed > started, "completion recorded with ordering");
    }

    #[test]
    fn fct_is_none_until_completion_then_start_to_last_ack() {
        let mut src = TcpSource::new(
            FlowId(0),
            CcKind::Reno,
            EcnSetting::NotEcn,
            TcpConfig {
                data_limit: Some(10),
                ..TcpConfig::default()
            },
        );
        assert_eq!(src.fct(), None, "nothing completed yet");
        src.started_at = Time::from_secs(2);
        src.completed_at = Some(Time::from_millis(2750));
        assert_eq!(src.fct(), Some(Duration::from_millis(750)));
    }

    #[test]
    fn rto_recovers_when_whole_window_is_lost() {
        /// Drops everything in a time window — simulates an outage.
        struct Outage {
            from: Time,
            to: Time,
        }
        impl Aqm for Outage {
            fn on_enqueue(
                &mut self,
                _pkt: &Packet,
                _snap: &QueueSnapshot,
                now: Time,
                _rng: &mut Rng,
            ) -> Decision {
                if now >= self.from && now < self.to {
                    Decision::drop(1.0)
                } else {
                    Decision::pass(0.0)
                }
            }
            fn name(&self) -> &'static str {
                "outage"
            }
        }
        let mut sim = sim_with(
            10_000_000,
            usize::MAX,
            Box::new(Outage {
                from: Time::from_secs(2),
                to: Time::from_millis(2600),
            }),
        );
        let id = add_tcp(&mut sim, CcKind::Reno, EcnSetting::NotEcn, 40, "reno");
        sim.run_until(Time::from_secs(10));
        let acc = sim.core.monitor.flow(id);
        // The flow must survive the outage and keep transferring afterwards.
        let late_bytes = acc.dequeued_bytes;
        assert!(acc.dropped > 0);
        assert!(
            late_bytes > 5_000_000,
            "flow stalled after outage: {late_bytes} bytes total"
        );
    }

    #[test]
    fn srtt_converges_to_base_rtt_when_unloaded() {
        let mut sim = sim_with(100_000_000, usize::MAX, Box::new(PassAqm));
        sim.add_flow(
            PathConf::symmetric(Duration::from_millis(50)),
            "probe",
            Time::ZERO,
            |id| {
                Box::new(TcpSource::new(
                    id,
                    CcKind::Reno,
                    EcnSetting::NotEcn,
                    TcpConfig {
                        data_limit: Some(200),
                        ..TcpConfig::default()
                    },
                ))
            },
        );
        sim.run_until(Time::from_secs(5));
        // The queue stays near-empty at 100 Mb/s, so per-packet sojourn is
        // just serialization: srtt ≈ 50 ms. We can't reach into the source
        // (owned by Sim), but the monitor's sojourn samples confirm the
        // unloaded premise.
        let max_sojourn = sim
            .core
            .monitor
            .sojourn_ms
            .iter()
            .cloned()
            .fold(0.0f32, f32::max);
        assert!(max_sojourn < 5.0, "queue built up unexpectedly: {max_sojourn} ms");
    }

    /// Drops one contiguous burst of sequence numbers, once.
    struct BurstLoss {
        from: u64,
        to: u64,
    }
    impl Aqm for BurstLoss {
        fn on_enqueue(
            &mut self,
            pkt: &Packet,
            _snap: &QueueSnapshot,
            _now: Time,
            _rng: &mut Rng,
        ) -> Decision {
            if !pkt.retransmit && pkt.seq >= self.from && pkt.seq < self.to {
                Decision::drop(1.0)
            } else {
                Decision::pass(0.0)
            }
        }
        fn name(&self) -> &'static str {
            "burstloss"
        }
    }

    /// The regression behind adding SACK: a burst of losses from one
    /// window must heal in a handful of RTTs, not one hole per RTT.
    #[test]
    fn sack_heals_burst_loss_quickly() {
        let run = |sack: bool| {
            let mut sim = sim_with(
                100_000_000,
                usize::MAX,
                Box::new(BurstLoss { from: 200, to: 400 }),
            );
            let id = sim.add_flow(
                PathConf::symmetric(Duration::from_millis(100)),
                "f",
                Time::ZERO,
                move |id| {
                    Box::new(TcpSource::new(
                        id,
                        CcKind::Cubic,
                        EcnSetting::NotEcn,
                        TcpConfig {
                            data_limit: Some(2000),
                            sack,
                            ..TcpConfig::default()
                        },
                    ))
                },
            );
            sim.run_until(Time::from_secs(300));
            let _ = id;
            sim.core
                .monitor
                .completions
                .first()
                .map(|(_, s, e)| (*e - *s).as_secs_f64())
        };
        let with_sack = run(true).expect("SACK flow must complete");
        let without = run(false).expect("NewReno flow must complete");
        // 200 holes: NewReno needs ~200 RTTs (~20 s); SACK a few RTTs
        // once cwnd allows (bounded by cwnd ramp-up, still far faster).
        assert!(
            with_sack < 10.0,
            "SACK took {with_sack:.1} s to move 2000 pkts over a 200-loss burst"
        );
        assert!(
            without > 2.0 * with_sack,
            "NewReno ({without:.1} s) should be much slower than SACK ({with_sack:.1} s)"
        );
    }

    #[test]
    fn sack_delivery_is_exactly_once() {
        // Under burst loss with SACK, the receiver must still see every
        // packet (retransmissions fill each hole exactly).
        let mut sim = sim_with(
            10_000_000,
            usize::MAX,
            Box::new(BurstLoss { from: 50, to: 120 }),
        );
        let id = sim.add_flow(
            PathConf::symmetric(Duration::from_millis(40)),
            "f",
            Time::ZERO,
            |id| {
                Box::new(TcpSource::new(
                    id,
                    CcKind::Reno,
                    EcnSetting::NotEcn,
                    TcpConfig {
                        data_limit: Some(500),
                        ..TcpConfig::default()
                    },
                ))
            },
        );
        sim.run_until(Time::from_secs(60));
        let acc = sim.core.monitor.flow(id);
        assert_eq!(sim.core.monitor.completions.len(), 1);
        // 500 data packets + 70 retransmissions offered; 70 originals lost.
        assert_eq!(acc.sent_pkts, 570);
        assert_eq!(acc.delivered_pkts, 500);
    }

    #[test]
    fn delayed_acks_halve_the_ack_rate() {
        // Count ACK arrivals via the monitor? ACKs don't traverse the
        // bottleneck; instead compare the throughput cost: a delayed-ACK
        // flow still fills the pipe (the sender sends bursts of 2 per
        // ACK), and the flow completes.
        let mut sim = sim_with(10_000_000, usize::MAX, Box::new(PassAqm));
        let id = sim.add_flow(
            PathConf::symmetric(Duration::from_millis(40)),
            "f",
            Time::ZERO,
            |id| {
                Box::new(TcpSource::new(
                    id,
                    CcKind::Reno,
                    EcnSetting::NotEcn,
                    TcpConfig {
                        delayed_ack: true,
                        data_limit: Some(2000),
                        ..TcpConfig::default()
                    },
                ))
            },
        );
        sim.run_until(Time::from_secs(60));
        let acc = sim.core.monitor.flow(id);
        assert_eq!(acc.delivered_pkts, 2000);
        assert_eq!(sim.core.monitor.completions.len(), 1);
    }

    #[test]
    fn delayed_ack_timer_flushes_odd_tail() {
        // A 1-packet flow: with delayed ACKs the single segment must still
        // be acknowledged (by the 40 ms timer), completing the flow well
        // before any RTO.
        let mut sim = sim_with(10_000_000, usize::MAX, Box::new(PassAqm));
        sim.add_flow(
            PathConf::symmetric(Duration::from_millis(10)),
            "f",
            Time::ZERO,
            |id| {
                Box::new(TcpSource::new(
                    id,
                    CcKind::Reno,
                    EcnSetting::NotEcn,
                    TcpConfig {
                        delayed_ack: true,
                        data_limit: Some(1),
                        ..TcpConfig::default()
                    },
                ))
            },
        );
        sim.run_until(Time::from_secs(5));
        let (_, start, end) = sim.core.monitor.completions[0];
        let fct = (end - start).as_millis_f64();
        // base RTT 10 ms + ~1.2 ms serialization + 40 ms delack << RTO.
        assert!((45.0..80.0).contains(&fct), "FCT {fct:.1} ms");
    }

    #[test]
    fn delayed_acks_keep_dctcp_feedback_timely() {
        // CE-state changes must bypass the delay (the DCTCP receiver
        // rule): under MarkAll the state is constant-CE, so the change
        // rule fires once; the every-2nd-segment rule still bounds
        // feedback lag, and the flow must remain controlled.
        let mut sim = sim_with(10_000_000, usize::MAX, Box::new(MarkAll));
        let id = sim.add_flow(
            PathConf::symmetric(Duration::from_millis(40)),
            "f",
            Time::ZERO,
            |id| {
                Box::new(TcpSource::new(
                    id,
                    CcKind::Dctcp,
                    EcnSetting::Scalable,
                    TcpConfig {
                        delayed_ack: true,
                        ..TcpConfig::default()
                    },
                ))
            },
        );
        sim.run_until(Time::from_secs(10));
        let acc = sim.core.monitor.flow(id);
        assert!(acc.marked > 0);
        assert!(acc.dequeued_pkts > 100);
    }

    /// A congestion control that records every event it receives, for
    /// asserting the machinery's gating behaviour precisely.
    struct SpyCc {
        inner: crate::cc::Reno,
        log: std::rc::Rc<std::cell::RefCell<Vec<&'static str>>>,
    }
    impl crate::cc::CongestionControl for SpyCc {
        fn cwnd(&self) -> f64 {
            self.inner.cwnd()
        }
        fn ssthresh(&self) -> f64 {
            self.inner.ssthresh()
        }
        fn on_ack(&mut self, a: u64, m: u64, r: u64, rtt: Duration, now: Time) {
            self.inner.on_ack(a, m, r, rtt, now);
        }
        fn on_loss(&mut self, now: Time) {
            self.log.borrow_mut().push("loss");
            self.inner.on_loss(now);
        }
        fn on_ecn(&mut self, now: Time) {
            self.log.borrow_mut().push("ecn");
            self.inner.on_ecn(now);
        }
        fn on_rto(&mut self, now: Time) {
            self.log.borrow_mut().push("rto");
            self.inner.on_rto(now);
        }
        fn name(&self) -> &'static str {
            "spy"
        }
        fn steady_state_window(&self, p: f64, rtt: Duration) -> Option<f64> {
            self.inner.steady_state_window(p, rtt)
        }
    }

    /// RFC 3168: under continuous CE marking, the Classic sender must
    /// react at most once per round trip, not once per mark.
    #[test]
    fn classic_ecn_gate_is_once_per_rtt() {
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let log2 = std::rc::Rc::clone(&log);
        let mut sim = sim_with(10_000_000, usize::MAX, Box::new(MarkAll));
        sim.add_flow(
            PathConf::symmetric(Duration::from_millis(100)),
            "f",
            Time::ZERO,
            move |id| {
                Box::new(TcpSource::with_cc(
                    id,
                    Box::new(SpyCc {
                        inner: crate::cc::Reno::new(10.0),
                        log: log2,
                    }),
                    EcnSetting::Classic,
                    TcpConfig::default(),
                ))
            },
        );
        sim.run_until(Time::from_secs(10));
        let events = log.borrow();
        let ecn_events = events.iter().filter(|e| **e == "ecn").count();
        // 10 s / 100 ms = 100 RTTs: at most ~one reaction per RTT, despite
        // thousands of marks.
        assert!(
            (5..=110).contains(&ecn_events),
            "{ecn_events} ECE reactions in 100 RTTs"
        );
        assert_eq!(events.iter().filter(|e| **e == "loss").count(), 0);
    }

    #[test]
    fn max_cwnd_clamps_throughput() {
        // 100 Mb/s, 100 ms: unclamped Reno would fill the pipe; a 100 kB
        // clamp caps the rate at ~8 Mb/s.
        let mut sim = sim_with(100_000_000, usize::MAX, Box::new(PassAqm));
        let id = sim.add_flow(
            PathConf::symmetric(Duration::from_millis(100)),
            "f",
            Time::ZERO,
            |id| {
                Box::new(TcpSource::new(
                    id,
                    CcKind::Reno,
                    EcnSetting::NotEcn,
                    TcpConfig {
                        max_cwnd: 100_000.0 / 1500.0,
                        ..TcpConfig::default()
                    },
                ))
            },
        );
        sim.run_until(Time::from_secs(20));
        let acc = sim.core.monitor.flow(id);
        let mbps = acc.dequeued_bytes as f64 * 8.0 / 20.0 / 1e6;
        // 66 pkts / 100 ms = 660 pps = 7.9 Mb/s.
        assert!((6.0..9.5).contains(&mbps), "clamped rate {mbps:.1} Mb/s");
    }

    #[test]
    fn two_flows_share_roughly_fairly() {
        let mut sim = sim_with(10_000_000, 60_000, Box::new(PassAqm));
        let a = add_tcp(&mut sim, CcKind::Reno, EcnSetting::NotEcn, 40, "a");
        let b = add_tcp(&mut sim, CcKind::Reno, EcnSetting::NotEcn, 40, "b");
        sim.run_until(Time::from_secs(60));
        let ta = sim.core.monitor.flow(a).dequeued_bytes as f64;
        let tb = sim.core.monitor.flow(b).dequeued_bytes as f64;
        let ratio = ta.max(tb) / ta.min(tb);
        assert!(ratio < 1.6, "same-CC same-RTT flows diverged: ratio {ratio:.2}");
    }

    // --- edge cases the impairment layer exposes: reordered, duplicated
    // --- and lost ACKs, and the Karn/watermark rules that absorb them.

    /// A sender driven by hand-crafted ACKs: the flow is registered with
    /// the core (for path lookup and event sinks) but the sim is never
    /// stepped, so the test controls exactly which ACKs arrive in which
    /// order.
    fn bench_sender(cc: CcKind) -> (Sim, TcpSource) {
        let mut sim = sim_with(10_000_000, usize::MAX, Box::new(PassAqm));
        let id = sim
            .core
            .register_flow(PathConf::symmetric(Duration::from_millis(40)), "crafted");
        let mut src = TcpSource::new(id, cc, EcnSetting::Scalable, TcpConfig::default());
        src.on_start(&mut sim.core);
        (sim, src)
    }

    fn ack(cum_seq: u64, ce_total: u64, pkts_total: u64, echo_rtx: bool) -> Ack {
        Ack {
            flow: FlowId(0),
            cum_seq,
            ece: false,
            ce_total,
            pkts_total,
            echo_ts: Time::ZERO,
            echo_rtx,
            sack: Ack::NO_SACK,
        }
    }

    /// Karn's algorithm: an ACK echoing a retransmitted segment must not
    /// feed the RTT estimator (the echo is ambiguous — it may answer
    /// either transmission).
    #[test]
    fn karn_excludes_retransmit_echoes_from_rtt() {
        let (mut sim, mut src) = bench_sender(CcKind::Reno);
        src.on_ack(ack(1, 0, 1, true), &mut sim.core);
        assert!(src.srtt().is_none(), "retransmit echo produced an RTT sample");
        src.on_ack(ack(2, 0, 2, false), &mut sim.core);
        assert!(src.srtt().is_some(), "clean echo must be sampled");
    }

    /// A reordered (stale) ACK carries older cumulative counters; it must
    /// not roll the sender's watermarks back, or the next fresh ACK would
    /// re-count marks the congestion control already consumed.
    #[test]
    fn stale_ack_does_not_roll_back_mark_watermarks() {
        let (mut sim, mut src) = bench_sender(CcKind::Dctcp);
        src.on_ack(ack(5, 10, 20, false), &mut sim.core);
        assert_eq!((src.seen_ce_total, src.seen_pkts_total), (10, 20));
        // A stale ACK from before the previous one: older cum_seq, older
        // totals. Watermarks must hold.
        src.on_ack(ack(3, 4, 8, false), &mut sim.core);
        assert_eq!(
            (src.seen_ce_total, src.seen_pkts_total),
            (10, 20),
            "stale ACK rolled the watermarks back"
        );
        // The next fresh ACK advances by exactly its own contribution.
        src.on_ack(ack(6, 11, 22, false), &mut sim.core);
        assert_eq!((src.seen_ce_total, src.seen_pkts_total), (11, 22));
    }

    /// The RFC 6675 IsLost rule: a hole is lost only once DUP_THRESH (3)
    /// SACKed segments lie above it; shallower holes are presumed
    /// reordered, not lost.
    #[test]
    fn mark_lost_holes_respects_dup_thresh() {
        let mut src = TcpSource::new(
            FlowId(0),
            CcKind::Reno,
            EcnSetting::NotEcn,
            TcpConfig::default(),
        );
        src.snd_nxt = 10;
        // Two SACKed segments above the hole at 0: below threshold.
        src.sacked.insert_range(1, 3);
        src.mark_lost_holes();
        assert!(src.lost.is_empty(), "2 SACKed segments must not mark a loss");
        // A third SACKed segment crosses the threshold for seq 0 only.
        src.sacked.insert_range(3, 4);
        src.mark_lost_holes();
        assert_eq!(src.lost.iter().copied().collect::<Vec<_>>(), vec![0]);
        // Split scoreboard: {2..4, 6..8} puts 4 SACKed segments above the
        // low holes but only 2 above the hole at 4..6, which stays unlost.
        // Resetting the scoreboard by hand means resetting its scan cursor
        // too (in real runs only the RTO/recovery-entry paths do this).
        src.lost.clear();
        src.lost_below = 0;
        src.sacked = RangeSet::new();
        src.sacked.insert_range(2, 4);
        src.sacked.insert_range(6, 8);
        src.mark_lost_holes();
        assert_eq!(
            src.lost.iter().copied().collect::<Vec<_>>(),
            vec![0, 1],
            "only holes with >= 3 SACKed segments above are lost"
        );
    }

    /// SACK loss recovery must deliver exactly-once even when the reverse
    /// path duplicates and reorders the ACK stream (weather-layer jitter
    /// and duplication on a lossy bottleneck).
    #[test]
    fn sack_recovery_survives_reordered_and_duplicated_acks() {
        use pi2_netsim::{ImpairmentConf, LinkImpairments};
        let mut sim = sim_with(10_000_000, 30_000, Box::new(PassAqm));
        sim.core.set_impairments(LinkImpairments::new(0xACED).reverse(ImpairmentConf {
            loss: 0.0,
            dup: 0.05,
            jitter: Duration::from_millis(3),
        }));
        let id = sim.add_flow(
            PathConf::symmetric(Duration::from_millis(40)),
            "f",
            Time::ZERO,
            |id| {
                Box::new(TcpSource::new(
                    id,
                    CcKind::Reno,
                    EcnSetting::NotEcn,
                    TcpConfig {
                        data_limit: Some(2000),
                        ..TcpConfig::default()
                    },
                ))
            },
        );
        sim.run_until(Time::from_secs(60));
        let acc = sim.core.monitor.flow(id);
        let s = sim.core.impairments().expect("weather attached").stats();
        assert!(s.rev_dup > 0, "duplication never fired: {s:?}");
        assert!(acc.dropped > 0, "30 kB buffer must overflow");
        assert_eq!(acc.delivered_pkts, 2000, "exactly-once delivery broken");
        assert_eq!(sim.core.monitor.completions.len(), 1);
    }

    /// DCTCP's α derives from cumulative receiver counters, so losing a
    /// fifth of the ACK stream must neither lose marks nor stall the flow.
    #[test]
    fn dctcp_alpha_survives_ack_loss() {
        use pi2_netsim::{ImpairmentConf, LinkImpairments};
        let mut sim = sim_with(10_000_000, usize::MAX, Box::new(MarkAll));
        sim.core.set_impairments(LinkImpairments::new(0xD07).reverse(ImpairmentConf {
            loss: 0.2,
            dup: 0.0,
            jitter: Duration::ZERO,
        }));
        let id = add_tcp(&mut sim, CcKind::Dctcp, EcnSetting::Scalable, 40, "dctcp");
        sim.run_until(Time::from_secs(10));
        let acc = sim.core.monitor.flow(id);
        let s = sim.core.impairments().expect("weather attached").stats();
        assert!(s.rev_lost > 0, "ACK loss never fired: {s:?}");
        assert!(acc.marked > 0);
        // Under full marking a healthy DCTCP still delivers; a double-
        // counting α would collapse cwnd to the floor and starve the flow.
        assert!(
            acc.dequeued_pkts > 100,
            "flow starved under ACK loss: {} pkts",
            acc.dequeued_pkts
        );
    }
}
