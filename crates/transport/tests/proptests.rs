//! Property-based tests for the congestion controls and TCP machinery.

// Entire suite gated off by default: `proptest` is a registry dependency
// the offline build cannot fetch. See the `proptests` feature in Cargo.toml.
#![cfg(feature = "proptests")]

use pi2_netsim::{MonitorConfig, PassAqm, PathConf, QueueConfig, Sim, SimConfig};
use pi2_simcore::{Duration, Time};
use pi2_transport::{CcKind, EcnSetting, TcpConfig, TcpSource};
use proptest::prelude::*;

fn arb_cc() -> impl Strategy<Value = CcKind> {
    prop_oneof![
        Just(CcKind::Reno),
        Just(CcKind::Cubic),
        Just(CcKind::Dctcp),
        Just(CcKind::ScalableHalfPkt),
    ]
}

proptest! {
    /// Every congestion control keeps a positive, finite window under
    /// arbitrary event sequences.
    #[test]
    fn cwnd_always_positive_and_finite(
        kind in arb_cc(),
        events in prop::collection::vec(0u8..4, 1..400),
    ) {
        let mut cc = kind.build(10.0);
        let rtt = Duration::from_millis(50);
        let mut now = Time::ZERO;
        for e in events {
            now += Duration::from_millis(10);
            match e {
                0 => cc.on_ack(1, 0, 1, rtt, now),
                1 => cc.on_ack(1, 1, 1, rtt, now),
                2 => cc.on_loss(now),
                _ => cc.on_rto(now),
            }
            let w = cc.cwnd();
            prop_assert!(w.is_finite() && w > 0.0, "{}: cwnd {w}", cc.name());
            prop_assert!(cc.ssthresh() > 0.0);
        }
    }

    /// Growth monotonicity: ACKs without marks never shrink the window.
    #[test]
    fn acks_without_marks_never_shrink(kind in arb_cc(), n in 1u64..500) {
        let mut cc = kind.build(10.0);
        let rtt = Duration::from_millis(20);
        let mut now = Time::ZERO;
        let mut prev = cc.cwnd();
        for _ in 0..n {
            now += Duration::from_millis(1);
            cc.on_ack(1, 0, 1, rtt, now);
            // DCTCP's window-boundary bookkeeping runs on ACKs but must
            // not reduce the window when no marks ever arrived.
            prop_assert!(cc.cwnd() >= prev - 1e-9, "{} shrank", cc.name());
            prev = cc.cwnd();
        }
    }

    /// Congestion events reduce the window (down to the floor).
    #[test]
    fn losses_reduce_window(kind in arb_cc(), w0 in 10.0f64..1000.0) {
        let mut cc = kind.build(w0);
        cc.on_loss(Time::ZERO);
        prop_assert!(cc.cwnd() < w0 || w0 <= 2.0);
    }

    /// End-to-end delivery: every data-limited flow completes over a clean
    /// link, delivering each packet exactly once, for any (size, RTT).
    #[test]
    fn short_flow_always_completes(
        pkts in 1u64..400,
        rtt_ms in 1i64..200,
        kind in arb_cc(),
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::new(
            SimConfig {
                queue: QueueConfig {
                    rate_bps: 50_000_000,
                    buffer_bytes: usize::MAX,
                },
                seed,
                monitor: MonitorConfig::default(),
            },
            Box::new(PassAqm),
        );
        let ecn = if kind.is_scalable() {
            EcnSetting::Scalable
        } else {
            EcnSetting::NotEcn
        };
        let id = sim.add_flow(
            PathConf::symmetric(Duration::from_millis(rtt_ms)),
            "f",
            Time::ZERO,
            move |id| {
                Box::new(TcpSource::new(
                    id,
                    kind,
                    ecn,
                    TcpConfig {
                        data_limit: Some(pkts),
                        ..TcpConfig::default()
                    },
                ))
            },
        );
        sim.run_until(Time::from_secs(120));
        let acc = sim.core.monitor.flow(id);
        prop_assert_eq!(acc.sent_pkts, pkts, "exactly the data limit sent");
        prop_assert_eq!(acc.delivered_pkts, pkts);
        prop_assert_eq!(sim.core.monitor.completions.len(), 1);
    }

    /// Lossy-path delivery: even with a tiny buffer, a flow eventually
    /// delivers all in-order data (retransmissions fill every hole).
    #[test]
    fn flow_survives_small_buffers(
        rtt_ms in 5i64..100,
        buffer_pkts in 5usize..40,
        seed in any::<u64>(),
    ) {
        let pkts = 300u64;
        let mut sim = Sim::new(
            SimConfig {
                queue: QueueConfig {
                    rate_bps: 10_000_000,
                    buffer_bytes: buffer_pkts * 1500,
                },
                seed,
                monitor: MonitorConfig::default(),
            },
            Box::new(PassAqm),
        );
        let id = sim.add_flow(
            PathConf::symmetric(Duration::from_millis(rtt_ms)),
            "f",
            Time::ZERO,
            move |id| {
                Box::new(TcpSource::new(
                    id,
                    CcKind::Reno,
                    EcnSetting::NotEcn,
                    TcpConfig {
                        data_limit: Some(pkts),
                        ..TcpConfig::default()
                    },
                ))
            },
        );
        sim.run_until(Time::from_secs(300));
        let m = &sim.core.monitor;
        prop_assert_eq!(m.completions.len(), 1, "flow did not complete");
        prop_assert!(m.flow(id).delivered_pkts >= pkts);
    }
}
