//! Property-based tests for the discrete-event core.

// Entire suite gated off by default: `proptest` is a registry dependency
// the offline build cannot fetch. See the `proptests` feature in Cargo.toml.
#![cfg(feature = "proptests")]

use pi2_simcore::{Duration, EventEntry, EventQueue, HeapEventQueue, Rng, Time};
use proptest::prelude::*;

/// Checkpoint round trip: serialize to the canonical sorted-entry form
/// (exactly what `SimCore::save_ckpt` writes) and rebuild via
/// `from_parts` — the same path `SimCore::restore_ckpt` takes.
fn ckpt_roundtrip(q: &EventQueue<usize>) -> EventQueue<usize> {
    let entries: Vec<EventEntry<usize>> = q
        .entries_sorted()
        .into_iter()
        .map(|e| EventEntry {
            time: e.time,
            seq: e.seq,
            event: e.event,
        })
        .collect();
    EventQueue::from_parts(q.now(), q.pushed(), q.popped(), entries)
}

/// Drain both queues, asserting identical `(time, event)` pop streams and
/// clock positions all the way to empty.
fn assert_same_pop_stream(
    mut a: EventQueue<usize>,
    mut b: EventQueue<usize>,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    prop_assert_eq!(a.pushed(), b.pushed());
    prop_assert_eq!(a.popped(), b.popped());
    loop {
        prop_assert_eq!(a.peek_time(), b.peek_time());
        let (x, y) = (a.pop(), b.pop());
        prop_assert_eq!(x, y);
        prop_assert_eq!(a.now(), b.now());
        if x.is_none() {
            return Ok(());
        }
    }
}

proptest! {
    /// Cross-implementation equivalence: the timing wheel must produce the
    /// exact pop stream of the reference binary heap on random schedules
    /// spanning all three levels (near wheel, overflow wheel, far list).
    #[test]
    fn wheel_matches_heap_on_random_schedules(
        times in prop::collection::vec(0u64..200_000_000_000, 1..300),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            wheel.push(Time::from_nanos(t), i);
            heap.push(Time::from_nanos(t), i);
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(a, b);
            prop_assert_eq!(wheel.now(), heap.now());
            if a.is_none() {
                break;
            }
        }
    }

    /// Same equivalence under interleaved push/pop: after every pop, new
    /// events are scheduled relative to the advanced clock (the simulator's
    /// actual access pattern), including sub-tick follow-ups, RTO-scale
    /// offsets into the overflow wheel, and far-future timers.
    #[test]
    fn wheel_matches_heap_interleaved(seed in any::<u64>(), steps in 1usize..400) {
        let mut rng = Rng::new(seed);
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut next_id = 0usize;
        for _ in 0..steps {
            let burst = rng.range_u64(0, 4);
            for _ in 0..burst {
                // Mix of offsets: same-instant, sub-tick, in-window,
                // overflow-wheel and far-list distances.
                let offset = match rng.range_u64(0, 5) {
                    0 => 0,
                    1 => rng.range_u64(0, 1 << 15),
                    2 => rng.range_u64(0, 1 << 25),
                    3 => rng.range_u64(0, 40_000_000_000),
                    _ => rng.range_u64(0, 100_000_000_000),
                };
                let at = Time::from_nanos(wheel.now().as_nanos() + offset);
                wheel.push(at, next_id);
                heap.push(at, next_id);
                next_id += 1;
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            prop_assert_eq!(wheel.pop(), heap.pop());
        }
        while let Some(popped) = heap.pop() {
            prop_assert_eq!(wheel.pop(), Some(popped));
        }
        prop_assert!(wheel.is_empty());
    }

    /// Checkpoint round trip with events straddling the L0→L1 boundary:
    /// offsets cluster around the ≈33.6 ms near-wheel horizon (2^25 ns),
    /// so the restored queue must re-bucket entries that sat on either
    /// side of the boundary without disturbing the `(time, seq)` stream.
    #[test]
    fn wheel_ckpt_roundtrip_straddles_l0_l1_boundary(
        seed in any::<u64>(),
        n in 1usize..200,
        pre_pops in 0usize..40,
    ) {
        let mut rng = Rng::new(seed);
        let mut q = EventQueue::new();
        for i in 0..n {
            // Within ±4 L0 ticks of the L0→L1 horizon, plus a few
            // same-tick ties from the sub-tick remainder.
            let horizon = 1u64 << 25;
            let jitter = rng.range_u64(0, 8 << 15);
            let at = q.now().as_nanos() + horizon - (4 << 15) + jitter;
            q.push(Time::from_nanos(at), i);
        }
        for _ in 0..pre_pops.min(n / 2) {
            q.pop(); // advance the cursor so restore starts mid-stream
        }
        let restored = ckpt_roundtrip(&q);
        assert_same_pop_stream(q, restored)?;
    }

    /// Checkpoint round trip with far-list occupancy: a mix of near,
    /// overflow-wheel and beyond-34.4 s events (scripted disturbances,
    /// backed-off RTOs). The far list serializes like any other level —
    /// restore re-buckets purely by time distance from the restored clock.
    #[test]
    fn wheel_ckpt_roundtrip_with_far_list(seed in any::<u64>(), steps in 1usize..150) {
        let mut rng = Rng::new(seed);
        let mut q = EventQueue::new();
        let mut id = 0usize;
        for _ in 0..steps {
            for _ in 0..rng.range_u64(1, 4) {
                let offset = match rng.range_u64(0, 4) {
                    0 => rng.range_u64(0, 1 << 20),            // near wheel
                    1 => rng.range_u64(1 << 25, 1 << 30),      // overflow wheel
                    2 => rng.range_u64(35_000_000_000, 200_000_000_000), // far list
                    _ => 0,                                    // same-instant tie
                };
                q.push(Time::from_nanos(q.now().as_nanos() + offset), id);
                id += 1;
            }
            if rng.chance(0.5) {
                q.pop();
            }
        }
        let restored = ckpt_roundtrip(&q);
        assert_same_pop_stream(q, restored)?;
    }

    /// Checkpoint round trip after `equalize_slot_capacities()` has run:
    /// capacity levelling touches only allocation, never entry placement,
    /// so a snapshot taken after it (and another equalization on the
    /// restored side) must still replay the identical stream.
    #[test]
    fn wheel_ckpt_roundtrip_after_equalize(seed in any::<u64>(), n in 1usize..200) {
        let mut rng = Rng::new(seed);
        let mut q = EventQueue::new();
        for i in 0..n {
            let offset = rng.range_u64(0, 40_000_000_000);
            q.push(Time::from_nanos(q.now().as_nanos() + offset), i);
        }
        for _ in 0..n / 4 {
            q.pop();
        }
        q.equalize_slot_capacities();
        let mut restored = ckpt_roundtrip(&q);
        restored.equalize_slot_capacities();
        assert_same_pop_stream(q, restored)?;
    }

    /// Saving is non-destructive: serializing the canonical entry list
    /// twice yields identical `(time, seq)` sequences, and the original
    /// queue still pops everything it held.
    #[test]
    fn wheel_ckpt_save_is_borrow_only(seed in any::<u64>(), n in 1usize..150) {
        let mut rng = Rng::new(seed);
        let mut q = EventQueue::new();
        for i in 0..n {
            let offset = rng.range_u64(0, 100_000_000_000);
            q.push(Time::from_nanos(q.now().as_nanos() + offset), i);
        }
        let once: Vec<(Time, u64)> = q.entries_sorted().iter().map(|e| (e.time, e.seq)).collect();
        let twice: Vec<(Time, u64)> = q.entries_sorted().iter().map(|e| (e.time, e.seq)).collect();
        prop_assert_eq!(&once, &twice);
        let mut popped = 0usize;
        while q.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, n);
    }

    /// Popped timestamps are a non-decreasing sequence, whatever the push order.
    #[test]
    fn event_queue_pops_monotonically(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_nanos(t), i);
        }
        let mut last = Time::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Events pushed at the same instant pop in push order (stable FIFO).
    #[test]
    fn event_queue_is_fifo_on_ties(n in 1usize..300, t in 0u64..1_000_000) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(Time::from_nanos(t), i);
        }
        for i in 0..n {
            prop_assert_eq!(q.pop().unwrap().1, i);
        }
    }

    /// Time arithmetic: (a + d) - a == d for any non-negative d that fits.
    #[test]
    fn time_plus_duration_roundtrips(a in 0u64..u64::MAX / 4, d in 0i64..i64::MAX / 4) {
        let t = Time::from_nanos(a);
        let dur = Duration::from_nanos(d);
        prop_assert_eq!((t + dur) - t, dur);
    }

    /// Subtraction antisymmetry: a - b == -(b - a).
    #[test]
    fn time_sub_antisymmetric(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let ta = Time::from_nanos(a);
        let tb = Time::from_nanos(b);
        prop_assert_eq!((ta - tb).as_nanos(), -(tb - ta).as_nanos());
    }

    /// Serialization time is monotone in size and antitone in rate.
    #[test]
    fn serialization_monotonicity(bytes in 1usize..100_000, rate in 1_000u64..10_000_000_000) {
        let d = Duration::serialization(bytes, rate);
        prop_assert!(d > Duration::ZERO);
        prop_assert!(Duration::serialization(bytes + 1, rate) >= d);
        prop_assert!(Duration::serialization(bytes, rate * 2) <= d);
    }

    /// The PRNG's unit-interval output never leaves [0, 1).
    #[test]
    fn rng_unit_interval(seed in any::<u64>()) {
        let mut r = Rng::new(seed);
        for _ in 0..100 {
            let x = r.next_f64();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    /// range_u64 respects its bounds for arbitrary non-empty ranges.
    #[test]
    fn rng_range_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
        let mut r = Rng::new(seed);
        for _ in 0..50 {
            let x = r.range_u64(lo, lo + span);
            prop_assert!(x >= lo && x < lo + span);
        }
    }

    /// Identical seeds give identical streams — the determinism contract
    /// every experiment in this repository depends on.
    #[test]
    fn rng_determinism(seed in any::<u64>()) {
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
