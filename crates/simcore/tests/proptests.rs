//! Property-based tests for the discrete-event core.

// Entire suite gated off by default: `proptest` is a registry dependency
// the offline build cannot fetch. See the `proptests` feature in Cargo.toml.
#![cfg(feature = "proptests")]

use pi2_simcore::{Duration, EventQueue, HeapEventQueue, Rng, Time};
use proptest::prelude::*;

proptest! {
    /// Cross-implementation equivalence: the timing wheel must produce the
    /// exact pop stream of the reference binary heap on random schedules
    /// spanning all three levels (near wheel, overflow wheel, far list).
    #[test]
    fn wheel_matches_heap_on_random_schedules(
        times in prop::collection::vec(0u64..200_000_000_000, 1..300),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            wheel.push(Time::from_nanos(t), i);
            heap.push(Time::from_nanos(t), i);
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(a, b);
            prop_assert_eq!(wheel.now(), heap.now());
            if a.is_none() {
                break;
            }
        }
    }

    /// Same equivalence under interleaved push/pop: after every pop, new
    /// events are scheduled relative to the advanced clock (the simulator's
    /// actual access pattern), including sub-tick follow-ups, RTO-scale
    /// offsets into the overflow wheel, and far-future timers.
    #[test]
    fn wheel_matches_heap_interleaved(seed in any::<u64>(), steps in 1usize..400) {
        let mut rng = Rng::new(seed);
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut next_id = 0usize;
        for _ in 0..steps {
            let burst = rng.range_u64(0, 4);
            for _ in 0..burst {
                // Mix of offsets: same-instant, sub-tick, in-window,
                // overflow-wheel and far-list distances.
                let offset = match rng.range_u64(0, 5) {
                    0 => 0,
                    1 => rng.range_u64(0, 1 << 15),
                    2 => rng.range_u64(0, 1 << 25),
                    3 => rng.range_u64(0, 40_000_000_000),
                    _ => rng.range_u64(0, 100_000_000_000),
                };
                let at = Time::from_nanos(wheel.now().as_nanos() + offset);
                wheel.push(at, next_id);
                heap.push(at, next_id);
                next_id += 1;
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            prop_assert_eq!(wheel.pop(), heap.pop());
        }
        while let Some(popped) = heap.pop() {
            prop_assert_eq!(wheel.pop(), Some(popped));
        }
        prop_assert!(wheel.is_empty());
    }

    /// Popped timestamps are a non-decreasing sequence, whatever the push order.
    #[test]
    fn event_queue_pops_monotonically(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_nanos(t), i);
        }
        let mut last = Time::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Events pushed at the same instant pop in push order (stable FIFO).
    #[test]
    fn event_queue_is_fifo_on_ties(n in 1usize..300, t in 0u64..1_000_000) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(Time::from_nanos(t), i);
        }
        for i in 0..n {
            prop_assert_eq!(q.pop().unwrap().1, i);
        }
    }

    /// Time arithmetic: (a + d) - a == d for any non-negative d that fits.
    #[test]
    fn time_plus_duration_roundtrips(a in 0u64..u64::MAX / 4, d in 0i64..i64::MAX / 4) {
        let t = Time::from_nanos(a);
        let dur = Duration::from_nanos(d);
        prop_assert_eq!((t + dur) - t, dur);
    }

    /// Subtraction antisymmetry: a - b == -(b - a).
    #[test]
    fn time_sub_antisymmetric(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let ta = Time::from_nanos(a);
        let tb = Time::from_nanos(b);
        prop_assert_eq!((ta - tb).as_nanos(), -(tb - ta).as_nanos());
    }

    /// Serialization time is monotone in size and antitone in rate.
    #[test]
    fn serialization_monotonicity(bytes in 1usize..100_000, rate in 1_000u64..10_000_000_000) {
        let d = Duration::serialization(bytes, rate);
        prop_assert!(d > Duration::ZERO);
        prop_assert!(Duration::serialization(bytes + 1, rate) >= d);
        prop_assert!(Duration::serialization(bytes, rate * 2) <= d);
    }

    /// The PRNG's unit-interval output never leaves [0, 1).
    #[test]
    fn rng_unit_interval(seed in any::<u64>()) {
        let mut r = Rng::new(seed);
        for _ in 0..100 {
            let x = r.next_f64();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    /// range_u64 respects its bounds for arbitrary non-empty ranges.
    #[test]
    fn rng_range_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
        let mut r = Rng::new(seed);
        for _ in 0..50 {
            let x = r.range_u64(lo, lo + span);
            prop_assert!(x >= lo && x < lo + span);
        }
    }

    /// Identical seeds give identical streams — the determinism contract
    /// every experiment in this repository depends on.
    #[test]
    fn rng_determinism(seed in any::<u64>()) {
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
