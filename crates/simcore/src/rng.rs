//! Self-contained deterministic PRNG (xoshiro256++).
//!
//! The AQM drop/mark decision compares a probability against pseudo-random
//! variates (Appendix A of the paper: "comparing the probability p with a
//! pseudo-randomly generated value Y per packet"). Reproducibility of every
//! experiment from a single `u64` seed matters more here than cryptographic
//! quality, so we implement xoshiro256++ (public domain, Blackman & Vigna)
//! directly instead of depending on an external crate whose default
//! algorithm may change across versions.

/// A deterministic xoshiro256++ pseudo-random number generator.
///
/// ```
/// use pi2_simcore::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let x = a.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into the 256-bit state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed. Any seed (including 0) is
    /// valid; SplitMix64 expansion guarantees a non-zero internal state.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derive an independent child generator; used to give each flow or
    /// component its own stream so adding a flow does not perturb the
    /// variates seen by others.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// The raw 256-bit generator state, for checkpointing. Restoring it
    /// with [`Rng::from_state`] resumes the stream exactly where it was.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a captured [`Rng::state`].
    pub fn from_state(s: [u64; 4]) -> Rng {
        Rng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Uniform integer in `[lo, hi)` via Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Rejection sampling on the multiply-shift trick.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            let low = m as u64;
            if low >= span {
                return lo + (m >> 64) as u64;
            }
            // low < span: possibly biased region; check threshold.
            let threshold = span.wrapping_neg() % span;
            if low >= threshold {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Exponentially distributed variate with the given mean (>0); used by
    /// Poisson arrival processes in web-like workloads.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Avoid ln(0): next_f64 is in [0,1), so 1-u is in (0,1].
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Bounded Pareto variate (shape `alpha`, minimum `xmin`, cap `xmax`);
    /// classic heavy-tailed model for web object sizes.
    pub fn bounded_pareto(&mut self, alpha: f64, xmin: f64, xmax: f64) -> f64 {
        debug_assert!(alpha > 0.0 && xmin > 0.0 && xmax > xmin);
        let u = self.next_f64();
        let ha = xmax.powf(-alpha);
        let la = xmin.powf(-alpha);
        (-(u * (ha - la) + la)).abs().powf(-1.0 / alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::new(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, 0);
        assert_ne!(x, y);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Rng::new(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(3);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
            assert!(!r.chance(-0.5));
            assert!(r.chance(1.5));
        }
    }

    #[test]
    fn chance_frequency_tracks_p() {
        let mut r = Rng::new(5);
        let n = 200_000;
        let hits = (0..n).filter(|_| r.chance(0.1)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.1).abs() < 0.005, "freq {freq}");
    }

    #[test]
    fn range_u64_bounds_and_coverage() {
        let mut r = Rng::new(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.range_u64(5, 15);
            assert!((5..15).contains(&x));
            seen[(x - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range should appear");
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng::new(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.exponential(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn bounded_pareto_bounds() {
        let mut r = Rng::new(17);
        for _ in 0..10_000 {
            let x = r.bounded_pareto(1.2, 1000.0, 1_000_000.0);
            assert!(
                (1000.0..=1_000_000.0 + 1.0).contains(&x),
                "out of bounds: {x}"
            );
        }
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = Rng::new(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = Rng::from_state(a.state());
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::new(21);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
