//! # pi2-simcore — deterministic discrete-event simulation engine
//!
//! This crate is the foundation of the PI2 reproduction: a minimal,
//! dependency-free discrete-event core providing
//!
//! * [`Time`] / [`Duration`] — virtual time as integer nanoseconds, so the
//!   event queue never compares floats and runs are bit-reproducible;
//! * [`EventQueue`] — a monotonic priority queue of timestamped events with
//!   deterministic FIFO tie-breaking, implemented as a hierarchical
//!   timing wheel (`O(1)` push/pop; see [`wheel`]) and cross-checked
//!   against the reference [`HeapEventQueue`];
//! * [`Rng`] — a self-contained xoshiro256++ PRNG seeded from a single
//!   `u64`, so every experiment is exactly reproducible from its seed
//!   regardless of external crate versions.
//!
//! The engine is intentionally synchronous and single-threaded: an AQM
//! control loop is a small CPU-bound state machine, and virtual time gives
//! strictly more control (and reproducibility) than wall-clock async.

pub mod ckpt;
pub mod event;
pub mod progress;
pub mod rng;
pub mod time;
pub mod wheel;

pub use ckpt::{CkptError, CkptReader, CkptWriter, SchemaHasher};
pub use event::{EventEntry, HeapEventQueue};
pub use progress::{progress, ProgressReport};
pub use wheel::EventQueue;
pub use rng::Rng;
pub use time::{Duration, Time};
