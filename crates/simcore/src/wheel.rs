//! Hierarchical timing-wheel event scheduler.
//!
//! Drop-in replacement for the original `BinaryHeap`-backed queue (kept as
//! [`crate::event::HeapEventQueue`], the reference model for differential
//! tests). The binary heap pays `O(log n)` sifts over ~100-byte entries on
//! *every* push and pop; with hundreds of pending timers that dominated the
//! simulator's hot path. The wheel makes both operations `O(1)` amortized:
//!
//! * **Near wheel (L0)** — 1024 slots of 2^15 ns (≈ 32.8 µs) each, spanning
//!   ≈ 33.6 ms: sub-RTT granularity, so the packet-lifecycle events
//!   (dequeue/deliver/ACK) that make up the bulk of the load index straight
//!   into a slot.
//! * **Overflow wheel (L1)** — 1024 slots of 2^25 ns (≈ 33.6 ms) each,
//!   spanning ≈ 34.4 s: RTO timers, delayed-ACK timers and sample ticks
//!   land here and cascade into L0 as the clock approaches them.
//! * **Far list** — a sorted spillover for anything beyond ≈ 34.4 s
//!   (heavily backed-off RTOs, scripted scenario disturbances).
//!
//! ## Determinism contract
//!
//! Identical to the documented heap contract: events pop in `(time, seq)`
//! order, where `seq` is the monotonic insertion counter — earliest first,
//! FIFO on timestamp ties. The wheel buckets events by time *tick* only;
//! whenever a slot is promoted to the ready buffer it is sorted by the full
//! `(time, seq)` key, so bucketing can never reorder observable pops. The
//! cross-implementation property suite (`tests/proptests.rs`) checks pop
//! streams against [`crate::event::HeapEventQueue`] on random schedules.
//!
//! ## Internal invariants
//!
//! Let `ready_tick` be the L0 tick the queue has drained up to. Then:
//!
//! 1. every pending event with `tick0 <= ready_tick` sits in `ready`,
//!    sorted descending by `(time, seq)` (minimum at the back, `O(1)` pop);
//! 2. every L0 event has `tick0 - ready_tick` in `[1, 1024]`, so ticks map
//!    to distinct slots and a circular bitmap scan finds the minimum;
//! 3. every L1 event has `tick1 > cur1` (where `cur1 = ready_tick >> 10`)
//!    and `tick1 - cur1 <= 1024`;
//! 4. the far list holds everything else, sorted descending by
//!    `(time, seq)`;
//! 5. `ready` is non-empty whenever the queue is non-empty, which keeps
//!    [`EventQueue::peek_time`] a borrow-only `O(1)` read.
//!
//! Invariant 1 is what makes the jump-ahead pop safe: a handler that runs
//! after a pop may push an event *earlier* than anything buffered (but not
//! earlier than `now`); such a push binary-inserts into `ready` instead of
//! a slot behind the cursor.
//!
//! Slot vectors recycle their capacity: promoting an L0 slot swaps it with
//! the spent `ready` buffer, and cascading an L1 slot drains it in place so
//! the slot keeps its own high-water capacity. After warm-up (optionally
//! accelerated with [`EventQueue::equalize_slot_capacities`]) steady-state
//! operation performs no heap allocation at all (verified by the
//! allocation-counting harness in `pi2-bench`).

use crate::event::EventEntry;
use crate::time::Time;

/// log2 of the L0 tick in nanoseconds (2^15 ns ≈ 32.8 µs).
const L0_SHIFT: u32 = 15;
/// log2 of the L1 tick in nanoseconds (2^25 ns ≈ 33.6 ms).
const L1_SHIFT: u32 = 25;
/// log2 of the slot count per wheel.
const SLOT_BITS: u32 = L1_SHIFT - L0_SHIFT;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Occupancy-bitmap words per wheel level.
const BITMAP_WORDS: usize = SLOTS / 64;

/// A deterministic min-priority queue of timestamped events.
///
/// ```
/// use pi2_simcore::{EventQueue, Time};
/// let mut q = EventQueue::new();
/// q.push(Time::from_millis(20), "later");
/// q.push(Time::from_millis(10), "sooner");
/// assert_eq!(q.pop(), Some((Time::from_millis(10), "sooner")));
/// assert_eq!(q.now(), Time::from_millis(10)); // the clock follows pops
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Promoted events, sorted descending by `(time, seq)`; min at back.
    ready: Vec<EventEntry<E>>,
    /// Near wheel: one bucket per L0 tick within ≈ 33.6 ms.
    l0: Vec<Vec<EventEntry<E>>>,
    l0_bits: [u64; BITMAP_WORDS],
    /// Overflow wheel: one bucket per L1 tick within ≈ 34.4 s.
    l1: Vec<Vec<EventEntry<E>>>,
    l1_bits: [u64; BITMAP_WORDS],
    /// Beyond the overflow wheel, sorted descending by `(time, seq)`.
    far: Vec<EventEntry<E>>,
    /// The L0 tick `ready` has been filled up to (invariants above).
    ready_tick: u64,
    /// Total pending events across `ready`, both wheels and `far`.
    pending: usize,
    next_seq: u64,
    now: Time,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn tick0(t: Time) -> u64 {
    t.as_nanos() >> L0_SHIFT
}

#[inline]
fn tick1(t: Time) -> u64 {
    t.as_nanos() >> L1_SHIFT
}

impl<E> EventQueue<E> {
    /// Create an empty queue positioned at `Time::ZERO`.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Create an empty queue with a pre-allocated ready buffer. Wheel
    /// slots start empty and grow on first use, but they recycle their
    /// capacity thereafter, so a warmed-up queue never reallocates.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            ready: Vec::with_capacity(capacity),
            l0: (0..SLOTS).map(|_| Vec::new()).collect(),
            l0_bits: [0; BITMAP_WORDS],
            l1: (0..SLOTS).map(|_| Vec::new()).collect(),
            l1_bits: [0; BITMAP_WORDS],
            far: Vec::new(),
            ready_tick: 0,
            pending: 0,
            next_seq: 0,
            now: Time::ZERO,
            popped: 0,
        }
    }

    /// Grow the ready buffer so at least `additional` more promoted events
    /// fit without reallocating.
    pub fn reserve(&mut self, additional: usize) {
        self.ready.reserve(additional);
    }

    /// Current ready-buffer capacity (diagnostics for allocation-free
    /// operation; wheel slots manage their own recycled capacity).
    pub fn capacity(&self) -> usize {
        self.ready.capacity()
    }

    /// Raise every wheel slot's capacity to the largest capacity any
    /// slot has reached so far.
    ///
    /// Slot vectors grow organically and keep their high-water capacity,
    /// but each slot discovers its own peak load separately — under a
    /// bursty timer pattern a handful of slots per wheel rotation keep
    /// crossing a power-of-two boundary for the first time, so sporadic
    /// reallocations continue long after the load is stationary. Calling
    /// this once after a warm-up period front-loads those allocations:
    /// every slot is levelled up to the observed global peak (with the
    /// usual amortized headroom), after which a steady workload never
    /// touches the allocator. The allocation-accounting harness in
    /// `pi2-bench` relies on this, mirroring `Monitor::reserve`.
    pub fn equalize_slot_capacities(&mut self) {
        let cap = self
            .l0
            .iter()
            .chain(self.l1.iter())
            .map(Vec::capacity)
            .max()
            .unwrap_or(0);
        for v in self.l0.iter_mut().chain(self.l1.iter_mut()) {
            v.reserve(cap.saturating_sub(v.len()));
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events popped so far; useful for run statistics and
    /// runaway-simulation guards.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Number of events pushed over the queue's lifetime (the tie-break
    /// sequence counter doubles as this). `pushed() - popped()` is the
    /// pending count plus any events dropped with the queue.
    pub fn pushed(&self) -> u64 {
        self.next_seq
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock — scheduling into
    /// the past is always a bug in the caller.
    pub fn push(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "attempted to schedule an event in the past: {:?} < {:?}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.place(EventEntry { time: at, seq, event });
        if self.ready.is_empty() {
            // The queue was empty before this push: re-establish the
            // "ready non-empty" invariant so peek stays borrow-only.
            self.advance();
        }
    }

    /// Route one entry into ready / L0 / L1 / far relative to the current
    /// drain cursor, preserving its existing `seq`. Shared by [`push`] and
    /// checkpoint restore ([`EventQueue::from_parts`]); does *not*
    /// re-establish the "ready non-empty" invariant — callers do.
    ///
    /// [`push`]: EventQueue::push
    fn place(&mut self, entry: EventEntry<E>) {
        self.pending += 1;
        let t0 = tick0(entry.time);
        if t0 <= self.ready_tick {
            // Behind (or at) the drain cursor: binary-insert into the
            // sorted ready buffer. This is the jump-ahead case — the
            // cursor may sit past `now` after a pop skipped empty ticks.
            let key = (entry.time, entry.seq);
            let idx = self.ready.partition_point(|e| (e.time, e.seq) > key);
            self.ready.insert(idx, entry);
            return;
        }
        let d0 = t0 - self.ready_tick;
        if d0 < SLOTS as u64 {
            let slot = (t0 & (SLOTS as u64 - 1)) as usize;
            self.l0[slot].push(entry);
            self.l0_bits[slot >> 6] |= 1 << (slot & 63);
        } else {
            let t1 = tick1(entry.time);
            let cur1 = self.ready_tick >> SLOT_BITS;
            if t1 - cur1 < SLOTS as u64 {
                let slot = (t1 & (SLOTS as u64 - 1)) as usize;
                self.l1[slot].push(entry);
                self.l1_bits[slot >> 6] |= 1 << (slot & 63);
            } else {
                let key = (entry.time, entry.seq);
                let idx = self.far.partition_point(|e| (e.time, e.seq) > key);
                self.far.insert(idx, entry);
            }
        }
    }

    /// Every pending entry in pop order (`(time, seq)` ascending), for
    /// checkpointing. Borrow-only; the queue is untouched. Which level an
    /// entry currently occupies is a function of cursor history, not
    /// state, so the canonical serialized form is simply the sorted entry
    /// list — [`EventQueue::from_parts`] re-buckets on restore.
    pub fn entries_sorted(&self) -> Vec<&EventEntry<E>> {
        let mut v: Vec<&EventEntry<E>> = Vec::with_capacity(self.pending);
        v.extend(self.ready.iter());
        for slot in self.l0.iter().chain(self.l1.iter()) {
            v.extend(slot.iter());
        }
        v.extend(self.far.iter());
        v.sort_unstable_by_key(|e| (e.time, e.seq));
        debug_assert_eq!(v.len(), self.pending, "pending count out of sync");
        v
    }

    /// Rebuild a queue from checkpointed parts: the clock, the lifetime
    /// push/pop counters, and every pending entry (each keeping its
    /// original tie-break `seq`). The drain cursor restarts at `now`'s
    /// tick — any placement satisfying the wheel invariants yields the
    /// same observable pop stream, so the cursor position itself is not
    /// part of the canonical state.
    ///
    /// # Panics
    /// Panics if an entry precedes `now` or carries a `seq` the restored
    /// counter claims was never issued — both mean the blob and the meta
    /// fields disagree.
    pub fn from_parts(
        now: Time,
        next_seq: u64,
        popped: u64,
        entries: Vec<EventEntry<E>>,
    ) -> Self {
        let mut q = Self::with_capacity(entries.len());
        q.now = now;
        q.ready_tick = tick0(now);
        q.next_seq = next_seq;
        q.popped = popped;
        for entry in entries {
            assert!(
                entry.time >= now,
                "checkpointed event at {:?} precedes restored clock {:?}",
                entry.time,
                now
            );
            assert!(
                entry.seq < next_seq,
                "checkpointed event seq {} >= restored next_seq {}",
                entry.seq,
                next_seq
            );
            q.place(entry);
        }
        if q.ready.is_empty() && q.pending > 0 {
            q.advance();
        }
        q
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let entry = self.ready.pop()?;
        debug_assert!(entry.time >= self.now, "event queue went backwards");
        self.now = entry.time;
        self.popped += 1;
        self.pending -= 1;
        if self.ready.is_empty() && self.pending > 0 {
            self.advance();
        }
        Some((entry.time, entry.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.ready.last().map(|e| e.time)
    }

    /// Smallest occupied L0 tick in `(ready_tick, ready_tick + SLOTS]`,
    /// via a circular occupancy-bitmap scan.
    fn scan_l0(&self) -> Option<u64> {
        Self::scan(&self.l0_bits, self.ready_tick).map(|off| self.ready_tick + off)
    }

    /// Smallest occupied L1 tick in `(cur1, cur1 + SLOTS]`.
    fn scan_l1(&self, cur1: u64) -> Option<u64> {
        Self::scan(&self.l1_bits, cur1).map(|off| cur1 + off)
    }

    /// Distance (in ticks, 1-based) from `from` to the first set bit in a
    /// full circular sweep of the slots. The window `(from, from + SLOTS]`
    /// visits each of the SLOTS slots exactly once, starting at
    /// `(from + 1) % SLOTS`.
    fn scan(bits: &[u64; BITMAP_WORDS], from: u64) -> Option<u64> {
        let start = ((from + 1) & (SLOTS as u64 - 1)) as usize;
        let mut word = start >> 6;
        // First word: mask off bits below the start position.
        let mut w = bits[word] & (!0u64 << (start & 63));
        for step in 0..=BITMAP_WORDS {
            if w != 0 {
                let slot = (word << 6) + w.trailing_zeros() as usize;
                let off = (slot + SLOTS - start) & (SLOTS - 1);
                return Some(off as u64 + 1);
            }
            if step == BITMAP_WORDS {
                break;
            }
            word = (word + 1) % BITMAP_WORDS;
            w = bits[word];
            if word == start >> 6 {
                // Wrapped: only the bits below the start position remain.
                w &= !(!0u64 << (start & 63));
            }
        }
        None
    }

    /// Promote the slot at L0 tick `t0` into the (empty) ready buffer.
    fn drain_l0(&mut self, t0: u64) {
        debug_assert!(self.ready.is_empty());
        let slot = (t0 & (SLOTS as u64 - 1)) as usize;
        self.l0_bits[slot >> 6] &= !(1 << (slot & 63));
        // Swap rather than drain: the spent ready buffer's capacity moves
        // into the slot for its next use — no allocation either way.
        std::mem::swap(&mut self.ready, &mut self.l0[slot]);
        // All entries in a slot share `tick0`, but their full timestamps
        // differ within the tick; sort by the determinism key. Keys are
        // unique (`seq` is), so an unstable sort is exact.
        self.ready
            .sort_unstable_by(|a, b| (b.time, b.seq).cmp(&(a.time, a.seq)));
        self.ready_tick = t0;
    }

    /// Refill `ready` with the earliest pending slot. Caller guarantees
    /// `ready` is empty and `pending > 0`.
    fn advance(&mut self) {
        loop {
            let cur1 = self.ready_tick >> SLOT_BITS;
            // First L0 tick belonging to the next L1 slot.
            let boundary = (cur1 + 1) << SLOT_BITS;
            let next0 = self.scan_l0();
            if let Some(t0) = next0 {
                if t0 < boundary {
                    // Nothing in L1/far can precede an event within the
                    // current L1 tick (their tick1 is strictly greater).
                    self.drain_l0(t0);
                    return;
                }
            }
            // Compare candidates at L1 granularity; the minimum tick1 wins.
            let next1 = self.scan_l1(cur1);
            let far1 = self.far.last().map(|e| tick1(e.time));
            let l0t1 = next0.map(|t0| t0 >> SLOT_BITS);
            let m = [next1, far1, l0t1]
                .into_iter()
                .flatten()
                .min()
                .expect("advance() on an empty queue");
            if next1 == Some(m) {
                // Cascade the L1 slot into L0. Moving the cursor to the
                // last tick before the slot keeps every migrated tick0
                // within L0's [1, SLOTS] indexing window.
                self.ready_tick = (m << SLOT_BITS) - 1;
                let slot = (m & (SLOTS as u64 - 1)) as usize;
                self.l1_bits[slot >> 6] &= !(1 << (slot & 63));
                // Drain in place (split field borrows) so the slot keeps
                // its own high-water capacity: once every L1 slot has
                // seen one fill/drain cycle (~34 s of simulated time),
                // cascades and re-fills never allocate again.
                let (l0, l0_bits, l1) = (&mut self.l0, &mut self.l0_bits, &mut self.l1);
                for entry in l1[slot].drain(..) {
                    let t0 = tick0(entry.time);
                    let s0 = (t0 & (SLOTS as u64 - 1)) as usize;
                    l0[s0].push(entry);
                    l0_bits[s0 >> 6] |= 1 << (s0 & 63);
                }
                continue;
            }
            if far1 == Some(m) {
                // Migrate the far events of L1 tick `m` straight into L0.
                self.ready_tick = (m << SLOT_BITS) - 1;
                while let Some(e) = self.far.last() {
                    if tick1(e.time) != m {
                        break;
                    }
                    let entry = self.far.pop().expect("checked non-empty");
                    let t0 = tick0(entry.time);
                    let s0 = (t0 & (SLOTS as u64 - 1)) as usize;
                    self.l0[s0].push(entry);
                    self.l0_bits[s0 >> 6] |= 1 << (s0 & 63);
                }
                continue;
            }
            // Only L0 holds tick1 == m: safe to jump the cursor to it.
            self.drain_l0(next0.expect("l0 candidate vanished"));
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn with_capacity_preallocates() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(128);
        assert!(q.capacity() >= 128);
        let cap = q.capacity();
        for i in 0..128 {
            q.push(Time::from_millis(u64::from(i)), i);
        }
        assert_eq!(q.capacity(), cap, "no regrowth within the reservation");
        q.reserve(256);
        assert!(q.capacity() >= 256);
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_millis(30), "c");
        q.push(Time::from_millis(10), "a");
        q.push(Time::from_millis(20), "b");
        assert_eq!(q.pop(), Some((Time::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((Time::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((Time::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(2), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_secs(2));
        assert_eq!(q.popped(), 1);
        assert_eq!(q.pushed(), 1);
        q.push(Time::from_secs(3), ());
        assert_eq!(q.pushed(), 2);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(2), ());
        q.pop();
        q.push(Time::from_secs(1), ());
    }

    #[test]
    fn push_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(1), 1);
        q.pop();
        q.push(q.now(), 2); // immediate follow-up event
        assert_eq!(q.pop(), Some((Time::from_secs(1), 2)));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(Time::from_millis(7) + Duration::ZERO, ());
        assert_eq!(q.peek_time(), Some(Time::from_millis(7)));
        assert_eq!(q.now(), Time::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_millis(1), 1);
        q.push(Time::from_millis(5), 5);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(Time::from_millis(3), 3);
        q.push(Time::from_millis(4), 4);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
        assert_eq!(q.pop().unwrap().1, 5);
    }

    /// The jump-ahead hazard: after popping (which may advance the drain
    /// cursor far beyond `now`), a handler pushes an event earlier than
    /// everything still buffered. It must pop first regardless.
    #[test]
    fn push_below_cursor_after_jump() {
        let mut q = EventQueue::new();
        q.push(Time::from_millis(1), "first");
        q.push(Time::from_millis(100), "far");
        assert_eq!(q.pop().unwrap().1, "first");
        // The cursor has jumped to the 100 ms tick to keep peek O(1);
        // a push at 2 ms lands behind it and must still win.
        q.push(Time::from_millis(2), "soon");
        assert_eq!(q.peek_time(), Some(Time::from_millis(2)));
        assert_eq!(q.pop().unwrap().1, "soon");
        assert_eq!(q.pop().unwrap().1, "far");
    }

    /// Events beyond each level's span: overflow wheel and far list, with
    /// pushes that straddle all three levels and a cascade back down.
    #[test]
    fn levels_cascade_in_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(100), "far"); // beyond L1 span (~34 s)
        q.push(Time::from_secs(1), "l1"); // beyond L0 span (~34 ms)
        q.push(Time::from_millis(1), "l0");
        q.push(Time::from_nanos(10), "ready");
        assert_eq!(q.pop().unwrap().1, "ready");
        assert_eq!(q.pop().unwrap().1, "l0");
        assert_eq!(q.pop().unwrap().1, "l1");
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.pop(), None);
    }

    /// Same-tick events arriving while the tick is being drained keep
    /// FIFO order relative to their push sequence.
    #[test]
    fn same_tick_insert_during_drain_is_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_millis(3);
        q.push(t, 0);
        q.push(t, 1);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(t, 2); // tick already promoted: lands in ready directly
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    /// Checkpoint round-trip with entries occupying every level: the
    /// restored queue pops the same `(time, seq, payload)` stream.
    #[test]
    fn from_parts_round_trips_all_levels() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(1), "consume");
        q.push(Time::from_secs(100), "far");
        q.push(Time::from_secs(40), "far2");
        q.push(Time::from_secs(2), "l1");
        assert_eq!(q.pop().unwrap().1, "consume");
        // Post-pop pushes: ready-buffer resident plus both wheels.
        q.push(q.now(), "ready");
        q.push(Time::from_secs(1) + Duration::from_millis(1), "l0");
        q.push(Time::from_secs(3), "l1b");

        let entries: Vec<EventEntry<&str>> =
            q.entries_sorted().into_iter().cloned().collect();
        let mut r = EventQueue::from_parts(q.now(), q.pushed(), q.popped(), entries);
        assert_eq!(r.now(), q.now());
        assert_eq!(r.pushed(), q.pushed());
        assert_eq!(r.popped(), q.popped());
        assert_eq!(r.len(), q.len());
        loop {
            let (a, b) = (q.pop(), r.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        // Post-restore pushes continue the same seq stream.
        q.push(q.now(), "again");
        r.push(r.now(), "again");
        assert_eq!(q.pop(), r.pop());
    }

    /// Restoring an empty queue mid-run keeps counters and stays poppable.
    #[test]
    fn from_parts_empty_queue() {
        let mut r: EventQueue<u8> = EventQueue::from_parts(Time::from_secs(5), 9, 9, Vec::new());
        assert!(r.is_empty());
        assert_eq!(r.pop(), None);
        r.push(Time::from_secs(6), 1);
        assert_eq!(r.pop(), Some((Time::from_secs(6), 1)));
        assert_eq!(r.pushed(), 10);
        assert_eq!(r.popped(), 10);
    }

    #[test]
    #[should_panic(expected = "precedes restored clock")]
    fn from_parts_rejects_past_entries() {
        let entries = vec![EventEntry { time: Time::from_secs(1), seq: 0, event: () }];
        let _ = EventQueue::from_parts(Time::from_secs(2), 1, 0, entries);
    }

    /// An L1-boundary hazard: an overflow-wheel event must not be
    /// overtaken by a near-wheel event that lies just past the boundary.
    #[test]
    fn l1_event_beats_later_l0_event_across_boundary() {
        let mut q = EventQueue::new();
        // Park the cursor near the end of an L1 tick.
        let base = (1u64 << L1_SHIFT) - (5 << L0_SHIFT);
        q.push(Time::from_nanos(1), "warm");
        q.push(Time::from_nanos(base), "park");
        // From cursor ~0: this is > 1024 L0 ticks away — lands in L1.
        let early = (1u64 << L1_SHIFT) + (2 << L0_SHIFT);
        q.push(Time::from_nanos(early), "l1-early");
        assert_eq!(q.pop().unwrap().1, "warm");
        assert_eq!(q.pop().unwrap().1, "park");
        // From the parked cursor this is < 1024 ticks away — lands in L0,
        // but *after* the L1 resident in absolute time.
        let late = (1u64 << L1_SHIFT) + (700 << L0_SHIFT);
        q.push(Time::from_nanos(late), "l0-late");
        assert_eq!(q.pop().unwrap().1, "l1-early");
        assert_eq!(q.pop().unwrap().1, "l0-late");
    }
}
