//! Checkpoint byte codec: a tiny, explicit, deterministic binary format.
//!
//! Checkpoint/restore (ROADMAP item 5) doubles as the repo's determinism
//! oracle: restoring a mid-run snapshot and replaying must be bit-identical
//! to a straight-through run. That only works if the byte format itself is
//! deterministic, so this module is deliberately primitive — every field is
//! written explicitly, in a fixed order, in little-endian fixed-width
//! encodings. There is no reflection, no varint cleverness, and no
//! dependency: the format is the code that writes it.
//!
//! Floats are encoded via [`f64::to_bits`] so NaN payloads and signed
//! zeros round-trip exactly; lengths are `u64` so the format is identical
//! on 32- and 64-bit hosts. Readers are bounds-checked and return
//! [`CkptError`] instead of panicking, since checkpoint files cross the
//! process boundary (`pi2sim --restore`).

use crate::time::{Duration, Time};
use std::fmt;

/// Errors surfaced while decoding a checkpoint blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The blob ended before the field being read.
    Truncated,
    /// The leading magic bytes did not match [`MAGIC`]; not a checkpoint.
    BadMagic,
    /// Format version mismatch between writer and reader.
    VersionMismatch { found: u32, expected: u32 },
    /// Schema-hash mismatch: the checkpoint was taken from a simulator
    /// built with a different structural configuration.
    SchemaMismatch { found: u64, expected: u64 },
    /// A decoded value violated an internal invariant.
    Corrupt(&'static str),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Truncated => write!(f, "checkpoint truncated"),
            CkptError::BadMagic => write!(f, "not a pi2 checkpoint (bad magic)"),
            CkptError::VersionMismatch { found, expected } => write!(
                f,
                "checkpoint format version {found} unsupported (expected {expected})"
            ),
            CkptError::SchemaMismatch { found, expected } => write!(
                f,
                "checkpoint schema hash {found:#018x} does not match this \
                 configuration ({expected:#018x}); the snapshot was taken \
                 from a structurally different simulator"
            ),
            CkptError::Corrupt(what) => write!(f, "checkpoint corrupt: {what}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// Magic bytes opening every checkpoint blob.
pub const MAGIC: [u8; 8] = *b"PI2CKPT\0";

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher used for checkpoint schema hashes. The hash
/// covers structural descriptors (format version, component names, flow
/// labels), not values, so it changes exactly when a restore would write
/// state into the wrong slots.
#[derive(Debug, Clone)]
pub struct SchemaHasher {
    state: u64,
}

impl Default for SchemaHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl SchemaHasher {
    /// Fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        SchemaHasher { state: FNV_OFFSET }
    }

    /// Fold raw bytes into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold a length-tagged string in (tagging prevents `"ab","c"` from
    /// colliding with `"a","bc"`).
    pub fn update_str(&mut self, s: &str) {
        self.update(&(s.len() as u64).to_le_bytes());
        self.update(s.as_bytes());
    }

    /// Fold a `u64` in.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Serializer: appends fixed-width little-endian fields to a byte buffer.
#[derive(Debug, Default)]
pub struct CkptWriter {
    buf: Vec<u8>,
}

impl CkptWriter {
    /// An empty writer.
    pub fn new() -> Self {
        CkptWriter { buf: Vec::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the encoded blob.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append raw bytes verbatim (no length prefix).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` travels as `u64` so blobs are portable across word sizes.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Bit-exact float encoding (NaN payloads and -0.0 survive).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    pub fn time(&mut self, t: Time) {
        self.u64(t.as_nanos());
    }

    pub fn duration(&mut self, d: Duration) {
        self.i64(d.as_nanos());
    }

    /// Length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.raw(b);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

/// Bounds-checked cursor over an encoded checkpoint blob.
#[derive(Debug)]
pub struct CkptReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> CkptReader<'a> {
    /// Start reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        CkptReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume the next `n` bytes verbatim (fixed-width fields like the
    /// file magic; length-prefixed data should use [`CkptReader::bytes`]).
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, CkptError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CkptError::Corrupt("bool field not 0/1")),
        }
    }

    pub fn u32(&mut self) -> Result<u32, CkptError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    pub fn u64(&mut self) -> Result<u64, CkptError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    pub fn i64(&mut self) -> Result<i64, CkptError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    pub fn usize(&mut self) -> Result<usize, CkptError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CkptError::Corrupt("length exceeds host usize"))
    }

    pub fn f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn f32(&mut self) -> Result<f32, CkptError> {
        Ok(f32::from_bits(self.u32()?))
    }

    pub fn time(&mut self) -> Result<Time, CkptError> {
        Ok(Time::from_nanos(self.u64()?))
    }

    pub fn duration(&mut self) -> Result<Duration, CkptError> {
        Ok(Duration::from_nanos(self.i64()?))
    }

    /// Length-prefixed byte string; borrows from the blob.
    pub fn bytes(&mut self) -> Result<&'a [u8], CkptError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CkptError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|_| CkptError::Corrupt("string field not UTF-8"))
    }

    /// Assert the blob is fully consumed (catches field-order drift).
    pub fn finish(self) -> Result<(), CkptError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CkptError::Corrupt("trailing bytes after final field"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = CkptWriter::new();
        w.u8(0xAB);
        w.bool(true);
        w.bool(false);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.usize(7);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.f32(1.5);
        w.time(Time::from_millis(20));
        w.duration(Duration::from_micros(-3));
        w.bytes(b"raw");
        w.str("p\u{00ed}2");
        let blob = w.into_bytes();

        let mut r = CkptReader::new(&blob);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.usize().unwrap(), 7);
        let z = r.f64().unwrap();
        assert_eq!(z.to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.f32().unwrap(), 1.5);
        assert_eq!(r.time().unwrap(), Time::from_millis(20));
        assert_eq!(r.duration().unwrap(), Duration::from_micros(-3));
        assert_eq!(r.bytes().unwrap(), b"raw");
        assert_eq!(r.str().unwrap(), "p\u{00ed}2");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut w = CkptWriter::new();
        w.u64(1);
        let blob = w.into_bytes();
        let mut r = CkptReader::new(&blob[..5]);
        assert_eq!(r.u64(), Err(CkptError::Truncated));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = CkptWriter::new();
        w.u8(1);
        w.u8(2);
        let blob = w.into_bytes();
        let mut r = CkptReader::new(&blob);
        assert_eq!(r.u8().unwrap(), 1);
        assert!(matches!(r.finish(), Err(CkptError::Corrupt(_))));
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let blob = [7u8];
        let mut r = CkptReader::new(&blob);
        assert!(matches!(r.bool(), Err(CkptError::Corrupt(_))));
    }

    #[test]
    fn length_prefix_overrun_is_truncated() {
        let mut w = CkptWriter::new();
        w.usize(1000); // claims 1000 bytes follow; none do
        let blob = w.into_bytes();
        let mut r = CkptReader::new(&blob);
        assert_eq!(r.bytes(), Err(CkptError::Truncated));
    }

    #[test]
    fn schema_hash_is_order_and_boundary_sensitive() {
        let mut a = SchemaHasher::new();
        a.update_str("ab");
        a.update_str("c");
        let mut b = SchemaHasher::new();
        b.update_str("a");
        b.update_str("bc");
        assert_ne!(a.finish(), b.finish());

        let mut c = SchemaHasher::new();
        c.update_u64(1);
        c.update_u64(2);
        let mut d = SchemaHasher::new();
        d.update_u64(2);
        d.update_u64(1);
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a test vector: "a" -> 0xaf63dc4c8601ec8c.
        let mut h = SchemaHasher::new();
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
