//! Timestamped event queue with deterministic FIFO tie-breaking.
//!
//! The simulator is a classic event-driven loop: components schedule
//! `(time, event)` pairs and the main loop pops them in time order. Two
//! events with equal timestamps pop in the order they were pushed (a
//! monotonically increasing sequence number breaks ties), which keeps runs
//! bit-identical across platforms — `BinaryHeap` alone would not guarantee
//! that.
//!
//! [`HeapEventQueue`] is the original `BinaryHeap`-backed implementation.
//! The simulator now runs on the hierarchical timing wheel in
//! [`crate::wheel`] (same API, same `(time, seq)` contract, `O(1)` ops);
//! the heap survives as the obviously-correct reference model that the
//! cross-implementation property tests diff the wheel against.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: when it fires, its insertion sequence, and a payload.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// Virtual time at which the event fires.
    pub time: Time,
    /// Monotonic insertion counter; earlier pushes fire first on ties.
    pub seq: u64,
    /// Caller-defined payload.
    pub event: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for EventEntry<E> {}

impl<E> Ord for EventEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The reference `BinaryHeap`-backed deterministic min-priority queue.
///
/// ```
/// use pi2_simcore::{HeapEventQueue, Time};
/// let mut q = HeapEventQueue::new();
/// q.push(Time::from_millis(20), "later");
/// q.push(Time::from_millis(10), "sooner");
/// assert_eq!(q.pop(), Some((Time::from_millis(10), "sooner")));
/// assert_eq!(q.now(), Time::from_millis(10)); // the clock follows pops
/// ```
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<EventEntry<E>>,
    next_seq: u64,
    now: Time,
    popped: u64,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Create an empty queue positioned at `Time::ZERO`.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Create an empty queue with pre-allocated heap storage. The number
    /// of *pending* events is bounded by in-flight packets + timers, not
    /// by run length, so a modest capacity removes heap regrowth from the
    /// per-event hot path entirely.
    pub fn with_capacity(capacity: usize) -> Self {
        HeapEventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            now: Time::ZERO,
            popped: 0,
        }
    }

    /// Grow the heap so at least `additional` more events fit without
    /// reallocating.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Current heap capacity (diagnostics for allocation-free operation).
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events popped so far; useful for run statistics and
    /// runaway-simulation guards.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Number of events pushed over the queue's lifetime (the tie-break
    /// sequence counter doubles as this). `pushed() - popped()` is the
    /// pending count plus any events dropped with the queue.
    pub fn pushed(&self) -> u64 {
        self.next_seq
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock — scheduling into
    /// the past is always a bug in the caller.
    pub fn push(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "attempted to schedule an event in the past: {:?} < {:?}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(EventEntry { time: at, seq, event });
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "event queue went backwards");
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn with_capacity_preallocates() {
        let mut q: HeapEventQueue<u32> = HeapEventQueue::with_capacity(128);
        assert!(q.capacity() >= 128);
        let cap = q.capacity();
        for i in 0..128 {
            q.push(Time::from_millis(u64::from(i)), i);
        }
        assert_eq!(q.capacity(), cap, "no regrowth within the reservation");
        q.reserve(256);
        assert!(q.capacity() >= 128 + 256);
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = HeapEventQueue::new();
        q.push(Time::from_millis(30), "c");
        q.push(Time::from_millis(10), "a");
        q.push(Time::from_millis(20), "b");
        assert_eq!(q.pop(), Some((Time::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((Time::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((Time::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = HeapEventQueue::new();
        let t = Time::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = HeapEventQueue::new();
        q.push(Time::from_secs(2), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_secs(2));
        assert_eq!(q.popped(), 1);
        assert_eq!(q.pushed(), 1);
        q.push(Time::from_secs(3), ());
        assert_eq!(q.pushed(), 2);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = HeapEventQueue::new();
        q.push(Time::from_secs(2), ());
        q.pop();
        q.push(Time::from_secs(1), ());
    }

    #[test]
    fn push_at_now_is_allowed() {
        let mut q = HeapEventQueue::new();
        q.push(Time::from_secs(1), 1);
        q.pop();
        q.push(q.now(), 2); // immediate follow-up event
        assert_eq!(q.pop(), Some((Time::from_secs(1), 2)));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = HeapEventQueue::new();
        q.push(Time::from_millis(7) + Duration::ZERO, ());
        assert_eq!(q.peek_time(), Some(Time::from_millis(7)));
        assert_eq!(q.now(), Time::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = HeapEventQueue::new();
        q.push(Time::from_millis(1), 1);
        q.push(Time::from_millis(5), 5);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(Time::from_millis(3), 3);
        q.push(Time::from_millis(4), 4);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
        assert_eq!(q.pop().unwrap().1, 5);
    }
}
