//! Virtual time as integer nanoseconds.
//!
//! The simulator never touches wall-clock time. [`Time`] is an absolute
//! instant on the virtual timeline (ns since simulation start) and
//! [`Duration`] is a signed span between instants. Both are thin newtypes
//! over integers so that the event queue's ordering is exact — no float
//! comparisons, no accumulation error in `t += dt` loops.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds in one second, as used by all conversions in this module.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant of virtual time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A signed span of virtual time in nanoseconds.
///
/// Signed so that `a - b` is well-defined for any pair of [`Time`]s; queue
/// delay errors fed to the PI controller are naturally signed quantities.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(i64);

impl Time {
    /// The origin of the simulation timeline.
    pub const ZERO: Time = Time(0);
    /// The far future; useful as an "unscheduled" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Construct from integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Time(us * 1_000)
    }

    /// Construct from integer milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }

    /// Construct from integer seconds.
    pub const fn from_secs(s: u64) -> Self {
        Time(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest ns.
    ///
    /// # Panics
    /// Panics if `s` is negative, NaN, or too large for the timeline.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0 && s < (u64::MAX as f64 / NANOS_PER_SEC as f64),
            "invalid time in seconds: {s}"
        );
        Time((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Fractional milliseconds since simulation start.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time elapsed since `earlier`; zero if `earlier` is in the future.
    pub fn saturating_since(self, earlier: Time) -> Duration {
        if self.0 >= earlier.0 {
            Duration(self.0.saturating_sub(earlier.0) as i64)
        } else {
            Duration(0)
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two instants.
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from raw (signed) nanoseconds.
    pub const fn from_nanos(ns: i64) -> Self {
        Duration(ns)
    }

    /// Construct from integer microseconds.
    pub const fn from_micros(us: i64) -> Self {
        Duration(us * 1_000)
    }

    /// Construct from integer milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Construct from integer seconds.
    pub const fn from_secs(s: i64) -> Self {
        Duration(s * NANOS_PER_SEC as i64)
    }

    /// Construct from fractional seconds, rounding to the nearest ns.
    ///
    /// # Panics
    /// Panics if `s` is NaN or out of the representable range.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s.abs() < (i64::MAX as f64 / NANOS_PER_SEC as f64),
            "invalid duration in seconds: {s}"
        );
        Duration((s * NANOS_PER_SEC as f64).round() as i64)
    }

    /// Raw signed nanoseconds.
    pub const fn as_nanos(self) -> i64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// True if the span is negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Clamp a negative span to zero.
    pub fn max_zero(self) -> Duration {
        if self.0 < 0 {
            Duration(0)
        } else {
            self
        }
    }

    /// The smaller of two spans.
    pub fn min(self, other: Duration) -> Duration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two spans.
    pub fn max(self, other: Duration) -> Duration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The time it takes to serialize `bytes` onto a link of `rate_bps`
    /// bits per second, rounded up to a whole nanosecond so that back-to-back
    /// transmissions never overlap.
    ///
    /// # Panics
    /// Panics if `rate_bps` is zero.
    pub fn serialization(bytes: usize, rate_bps: u64) -> Duration {
        assert!(rate_bps > 0, "link rate must be positive");
        // u64 fast path: `bits * 1e9` fits u64 for anything under ~2 GB
        // (every packet and any realistic queue backlog), and u64
        // division is a single instruction where u128 division is a
        // library call. Same ceiling division, so the result is
        // bit-identical to the wide path.
        if bytes < (1 << 31) {
            let ns = (bytes as u64 * 8 * NANOS_PER_SEC as u64).div_ceil(rate_bps);
            return Duration(ns.min(i64::MAX as u64) as i64);
        }
        let bits = bytes as u128 * 8;
        let ns = (bits * NANOS_PER_SEC as u128).div_ceil(rate_bps as u128);
        Duration(ns.min(i64::MAX as u128) as i64)
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        if rhs.0 >= 0 {
            Time(self.0 + rhs.0 as u64)
        } else {
            Time(self.0.saturating_sub(rhs.0.unsigned_abs()))
        }
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        self + Duration(-rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 as i64 - rhs.0 as i64)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<i64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: i64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<i64> for Duration {
    type Output = Duration;
    fn div(self, rhs: i64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrips_units() {
        assert_eq!(Time::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(Time::from_millis(20).as_nanos(), 20_000_000);
        assert_eq!(Time::from_micros(7).as_nanos(), 7_000);
        assert_eq!(Time::from_secs_f64(1.5).as_secs_f64(), 1.5);
    }

    #[test]
    fn duration_roundtrips_units() {
        assert_eq!(Duration::from_millis(-3).as_nanos(), -3_000_000);
        assert_eq!(Duration::from_secs_f64(-0.25).as_secs_f64(), -0.25);
        assert_eq!(Duration::from_secs(2).as_millis_f64(), 2000.0);
    }

    #[test]
    fn time_minus_time_is_signed() {
        let a = Time::from_millis(10);
        let b = Time::from_millis(25);
        assert_eq!(b - a, Duration::from_millis(15));
        assert_eq!(a - b, Duration::from_millis(-15));
        assert!((a - b).is_negative());
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = Time::from_millis(10);
        let b = Time::from_millis(25);
        assert_eq!(b.saturating_since(a), Duration::from_millis(15));
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }

    #[test]
    fn adding_negative_duration_saturates_at_origin() {
        let t = Time::from_nanos(5);
        assert_eq!(t + Duration::from_nanos(-10), Time::ZERO);
    }

    #[test]
    fn serialization_time_matches_rate() {
        // 1500 bytes at 10 Mb/s = 12000 bits / 10^7 bps = 1.2 ms.
        let d = Duration::serialization(1500, 10_000_000);
        assert_eq!(d, Duration::from_micros(1200));
        // 1 byte at 1 Gb/s = 8 ns.
        assert_eq!(Duration::serialization(1, NANOS_PER_SEC), Duration::from_nanos(8));
    }

    #[test]
    fn serialization_rounds_up() {
        // 1 byte at 3 bps: 8/3 s = 2.666..s rounds up to whole ns.
        let d = Duration::serialization(1, 3);
        assert_eq!(d.as_nanos(), (8 * NANOS_PER_SEC as i64 + 2) / 3);
    }

    #[test]
    #[should_panic]
    fn serialization_zero_rate_panics() {
        let _ = Duration::serialization(100, 0);
    }

    #[test]
    fn max_zero_clamps() {
        assert_eq!(Duration::from_millis(-5).max_zero(), Duration::ZERO);
        assert_eq!(Duration::from_millis(5).max_zero(), Duration::from_millis(5));
    }

    #[test]
    fn ordering_and_min_max() {
        let a = Time::from_millis(1);
        let b = Time::from_millis(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let x = Duration::from_millis(1);
        let y = Duration::from_millis(2);
        assert_eq!(x.min(y), x);
        assert_eq!(x.max(y), y);
        assert!(x < y);
    }

    #[test]
    fn duration_scalar_arithmetic() {
        let d = Duration::from_millis(10);
        assert_eq!(d * 3, Duration::from_millis(30));
        assert_eq!(d / 2, Duration::from_millis(5));
        let mut acc = Duration::ZERO;
        acc += d;
        acc -= Duration::from_millis(4);
        assert_eq!(acc, Duration::from_millis(6));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", Time::from_millis(1500)), "1.500000");
        assert_eq!(format!("{}", Duration::from_millis(-20)), "-0.020000");
    }
}
