//! Progress accounting for long runs — pure arithmetic over the virtual
//! clock, shared by every driver that reports liveness (the sweep
//! runner's stderr ticker, `pi2sim --serve`'s `/progress` endpoint).
//!
//! The simulation itself never consults wall-clock time; these helpers
//! keep that separation by taking elapsed wall seconds as a plain input
//! from the driver and deriving everything else from virtual-time spans
//! and event counts. Nothing here feeds back into the run.

use crate::time::Time;

/// A point-in-time progress report over a bounded run (`start..end` in
/// virtual time), plus driver-supplied wall-clock context.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProgressReport {
    /// Completed fraction of the virtual-time span, in `[0, 1]`.
    pub fraction: f64,
    /// Events processed per wall-clock second (0 before any wall time
    /// has elapsed).
    pub events_per_sec: f64,
    /// Estimated wall-clock seconds to completion, extrapolated from the
    /// virtual-time rate so far; `None` until progress is measurable.
    pub eta_secs: Option<f64>,
}

/// Compute a [`ProgressReport`] for a run spanning `start..end` that has
/// reached `now`, after `events` processed events and `wall_secs` elapsed
/// wall-clock seconds. All inputs come from the driver; the function is
/// deterministic in them.
pub fn progress(start: Time, now: Time, end: Time, events: u64, wall_secs: f64) -> ProgressReport {
    let span = end.as_nanos().saturating_sub(start.as_nanos());
    let done = now
        .as_nanos()
        .saturating_sub(start.as_nanos())
        .min(span);
    let fraction = if span == 0 {
        1.0
    } else {
        done as f64 / span as f64
    };
    let events_per_sec = if wall_secs > 0.0 {
        events as f64 / wall_secs
    } else {
        0.0
    };
    let eta_secs = if fraction > 0.0 && wall_secs > 0.0 && fraction < 1.0 {
        Some(wall_secs * (1.0 - fraction) / fraction)
    } else if fraction >= 1.0 {
        Some(0.0)
    } else {
        None
    };
    ProgressReport {
        fraction,
        events_per_sec,
        eta_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_tracks_virtual_time() {
        let r = progress(Time::ZERO, Time::from_millis(250), Time::from_millis(1000), 0, 0.0);
        assert!((r.fraction - 0.25).abs() < 1e-12);
        // Clamped at the end, even if the clock overshoots the bound.
        let r = progress(Time::ZERO, Time::from_millis(1500), Time::from_millis(1000), 0, 0.0);
        assert_eq!(r.fraction, 1.0);
        // A degenerate zero-length span counts as done.
        let r = progress(Time::ZERO, Time::ZERO, Time::ZERO, 0, 0.0);
        assert_eq!(r.fraction, 1.0);
    }

    #[test]
    fn eta_extrapolates_from_wall_rate() {
        // 25% done in 2 wall seconds -> 6 more seconds at the same rate.
        let r = progress(Time::ZERO, Time::from_millis(250), Time::from_millis(1000), 1000, 2.0);
        assert!((r.eta_secs.unwrap() - 6.0).abs() < 1e-9);
        assert!((r.events_per_sec - 500.0).abs() < 1e-9);
        // No wall time yet: rate and ETA are unknown, not infinite.
        let r = progress(Time::ZERO, Time::from_millis(250), Time::from_millis(1000), 1000, 0.0);
        assert_eq!(r.events_per_sec, 0.0);
        assert_eq!(r.eta_secs, None);
        // Finished: ETA is zero regardless of rate.
        let r = progress(Time::ZERO, Time::from_millis(1000), Time::from_millis(1000), 1, 0.5);
        assert_eq!(r.eta_secs, Some(0.0));
    }

    #[test]
    fn nonzero_start_offsets_are_respected() {
        // A restored run resuming at t=500ms of a 0..1000ms span.
        let r = progress(
            Time::from_millis(500),
            Time::from_millis(750),
            Time::from_millis(1000),
            0,
            1.0,
        );
        assert!((r.fraction - 0.5).abs() < 1e-12);
    }
}
