//! # pi2-stats — measurement post-processing
//!
//! The paper's evaluation reports means, P1/P25/P99 percentiles, CDFs,
//! utilization summaries and rate-balance ratios. This crate provides the
//! small, well-tested toolkit the experiment runners use to turn the raw
//! samples collected by `pi2-netsim`'s monitor into those figures.

pub mod cdf;
pub mod series;
pub mod summary;
pub mod table;

pub use cdf::Cdf;
pub use series::{excursions_above, peak_in, settle_time, settling_time, time_above};
pub use summary::{jain_fairness, mean, percentile, stddev, variance, variance_from_moments, Summary};
pub use table::{format_csv, format_table, Align};
