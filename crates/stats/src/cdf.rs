//! Empirical cumulative distribution functions (paper Figure 14).

/// An empirical CDF over a sample set.
///
/// ```
/// use pi2_stats::Cdf;
/// let cdf = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.at(2.0), 0.5);
/// assert_eq!(cdf.at(10.0), 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples (NaNs are rejected).
    pub fn new(mut samples: Vec<f64>) -> Cdf {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "NaN in CDF input"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cdf { sorted: samples }
    }

    /// Build from the monitor's `f32` buffers.
    pub fn from_f32(samples: &[f32]) -> Cdf {
        Cdf::new(samples.iter().map(|&x| x as f64).collect())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P[X ≤ x]`.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // Index of the first element strictly greater than x.
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF (quantile), `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        crate::summary::percentile(&self.sorted, q)
    }

    /// Evaluate at `n` evenly spaced abscissae spanning the sample range,
    /// for plotting: returns `(x, P[X ≤ x])` pairs.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n < 2 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().unwrap();
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.at(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let cdf = Cdf::new(vec![3.0, 1.0, 2.0, 2.0, 5.0]);
        assert_eq!(cdf.at(0.0), 0.0);
        assert_eq!(cdf.at(10.0), 1.0);
        let mut prev = 0.0;
        for i in 0..60 {
            let x = i as f64 / 10.0;
            let y = cdf.at(x);
            assert!(y >= prev);
            assert!((0.0..=1.0).contains(&y));
            prev = y;
        }
    }

    #[test]
    fn cdf_counts_ties() {
        let cdf = Cdf::new(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(cdf.at(2.0), 0.75);
        assert_eq!(cdf.at(1.999), 0.25);
    }

    #[test]
    fn quantile_inverts() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let cdf = Cdf::new(samples);
        let q90 = cdf.quantile(0.9);
        assert!((q90 - 899.1).abs() < 1e-9);
        assert!((cdf.at(q90) - 0.9).abs() < 0.01);
    }

    #[test]
    fn curve_spans_sample_range() {
        let cdf = Cdf::new(vec![10.0, 20.0, 30.0]);
        let curve = cdf.curve(5);
        assert_eq!(curve.len(), 5);
        assert_eq!(curve[0].0, 10.0);
        assert_eq!(curve[4].0, 30.0);
        assert_eq!(curve[4].1, 1.0);
    }

    #[test]
    fn empty_cdf_is_safe() {
        let cdf = Cdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.at(1.0), 0.0);
        assert!(cdf.curve(10).is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Cdf::new(vec![1.0, f64::NAN]);
    }
}
