//! Time-series analysis for step-response figures.
//!
//! Figures 6, 11, 12 and 13 are all read the same way: how high does the
//! queue spike after a disturbance, how fast does it settle back into a
//! band around the target, and how long does it spend above a badness
//! threshold. These helpers compute those quantities from `(t, v)`
//! series.

/// The peak value in `[from, to)`, and when it occurred.
pub fn peak_in(series: &[(f64, f64)], from: f64, to: f64) -> Option<(f64, f64)> {
    series
        .iter()
        .filter(|(t, _)| (from..to).contains(t))
        .fold(None, |best, &(t, v)| match best {
            Some((_, bv)) if bv >= v => best,
            _ => Some((t, v)),
        })
}

/// Settling time after a disturbance at `from`: the delay until the
/// series enters `target ± band` and stays there for at least `hold`
/// seconds. Returns `None` if it never settles (including an empty
/// series, or one with no samples at or after `from`).
///
/// Edge semantics, pinned by tests:
/// * a value exactly on the band edge (`|v − target| == band`) is
///   *inside* — the band is closed;
/// * `from` may be `0.0` (disturbance at the origin) or any sample
///   time; samples strictly before `from` are ignored;
/// * if the data ends while still inside the band, the run is accepted
///   only when it actually spanned `hold` seconds (`last_t - start >=
///   hold`) — a series truncated mid-settle has not demonstrated the
///   hold and yields `None`.
pub fn settle_time(
    series: &[(f64, f64)],
    from: f64,
    target: f64,
    band: f64,
    hold: f64,
) -> Option<f64> {
    let mut candidate: Option<f64> = None;
    let mut last_t = from;
    for &(t, v) in series.iter().filter(|(t, _)| *t >= from) {
        last_t = t;
        if (v - target).abs() <= band {
            let start = *candidate.get_or_insert(t);
            if t - start >= hold {
                return Some(start - from);
            }
        } else {
            candidate = None;
        }
    }
    // Ran out of data while inside the band: accept only if the in-band
    // run genuinely spanned the hold — a truncated series must not pass
    // off a partial hold as settled.
    candidate
        .filter(|&start| last_t - start >= hold)
        .map(|s| s - from)
}

/// Alias for [`settle_time`], kept for callers written against the
/// original name.
pub fn settling_time(
    series: &[(f64, f64)],
    from: f64,
    target: f64,
    band: f64,
    hold: f64,
) -> Option<f64> {
    settle_time(series, from, target, band, hold)
}

/// Total time the series spends above `threshold` in `[from, to)`,
/// approximated by sample spacing (each sample accounts for the interval
/// to its successor).
pub fn time_above(series: &[(f64, f64)], from: f64, to: f64, threshold: f64) -> f64 {
    let pts: Vec<&(f64, f64)> = series
        .iter()
        .filter(|(t, _)| (from..to).contains(t))
        .collect();
    let mut total = 0.0;
    for w in pts.windows(2) {
        if w[0].1 > threshold {
            total += w[1].0 - w[0].0;
        }
    }
    total
}

/// Count distinct excursions above `threshold` in `[from, to)` (an
/// excursion is a maximal run of consecutive samples above it).
pub fn excursions_above(series: &[(f64, f64)], from: f64, to: f64, threshold: f64) -> usize {
    let mut count = 0;
    let mut above = false;
    for &(t, v) in series {
        if !(from..to).contains(&t) {
            continue;
        }
        if v > threshold && !above {
            count += 1;
            above = true;
        } else if v <= threshold {
            above = false;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Vec<(f64, f64)> {
        // Step at t=10: spike to 100, decay back to ~20 by t=15.
        let mut s = Vec::new();
        for i in 0..100 {
            let t = i as f64 * 0.5;
            let v = if t < 10.0 {
                20.0
            } else if t < 11.0 {
                100.0
            } else if t < 15.0 {
                20.0 + 80.0 * (15.0 - t) / 4.0
            } else {
                20.0
            };
            s.push((t, v));
        }
        s
    }

    #[test]
    fn peak_is_found_in_window() {
        let s = series();
        let (t, v) = peak_in(&s, 9.0, 20.0).unwrap();
        assert_eq!(v, 100.0);
        assert!((10.0..11.0).contains(&t));
        assert!(peak_in(&s, 40.0, 50.0).unwrap().1 <= 20.0);
        assert!(peak_in(&s, 60.0, 70.0).is_none());
    }

    #[test]
    fn settling_time_measures_return_to_band() {
        let s = series();
        // After the step at t=10, settle into 20±5 holding 5 s.
        let st = settling_time(&s, 10.0, 20.0, 5.0, 5.0).unwrap();
        // The decay reaches 25 at t = 14.75; settle ≈ 4.5-5 s after t=10.
        assert!((4.0..5.5).contains(&st), "settling {st}");
        // A tight band it never satisfies long enough -> but the tail is
        // flat at exactly 20, so even 0.1 bands settle.
        assert!(settling_time(&s, 10.0, 20.0, 0.1, 5.0).is_some());
        // An impossible target never settles.
        assert!(settling_time(&s, 10.0, 500.0, 1.0, 5.0).is_none());
    }

    #[test]
    fn settle_time_handles_disturbance_at_origin() {
        // Flat series already in band from t=0: settles immediately.
        let s: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 20.0)).collect();
        assert_eq!(settle_time(&s, 0.0, 20.0, 5.0, 5.0), Some(0.0));
        // Step at t=0 decaying into band at t=5: settle measured from 0.
        let s: Vec<(f64, f64)> = (0..30)
            .map(|i| {
                let t = i as f64;
                (t, if t < 5.0 { 100.0 } else { 20.0 })
            })
            .collect();
        assert_eq!(settle_time(&s, 0.0, 20.0, 5.0, 5.0), Some(5.0));
    }

    #[test]
    fn settle_time_on_empty_or_exhausted_series() {
        assert_eq!(settle_time(&[], 0.0, 20.0, 5.0, 5.0), None);
        // No samples at or after `from`.
        let s = vec![(0.0, 20.0), (1.0, 20.0)];
        assert_eq!(settle_time(&s, 10.0, 20.0, 5.0, 5.0), None);
    }

    #[test]
    fn settle_time_never_settles() {
        // Oscillates in and out of band every sample: hold never builds.
        let s: Vec<(f64, f64)> = (0..100)
            .map(|i| (i as f64, if i % 2 == 0 { 20.0 } else { 100.0 }))
            .collect();
        assert_eq!(settle_time(&s, 0.0, 20.0, 5.0, 5.0), None);
        // Ends out of band: the tail acceptance must not fire.
        let s: Vec<(f64, f64)> = (0..10)
            .map(|i| (i as f64, if i < 9 { 20.0 } else { 100.0 }))
            .collect();
        assert_eq!(settle_time(&s, 0.0, 20.0, 5.0, 20.0), None);
        // A lone final in-band sample proves nothing.
        let s = vec![(0.0, 100.0), (1.0, 100.0), (2.0, 20.0)];
        assert_eq!(settle_time(&s, 0.0, 20.0, 5.0, 5.0), None);
    }

    /// Regression: a series truncated mid-settle — several in-band
    /// samples at the end, but spanning less than `hold` — must not be
    /// accepted. The old tail acceptance (`last_t > start`) returned a
    /// spuriously small `Some(2.0)` here.
    #[test]
    fn settle_time_truncated_partial_hold_is_rejected() {
        let s = vec![(0.0, 100.0), (1.0, 100.0), (2.0, 20.0), (3.0, 20.0), (4.0, 20.0)];
        assert_eq!(settle_time(&s, 0.0, 20.0, 5.0, 5.0), None);
        // The same shape with enough tail to span the hold settles, and
        // the boundary is closed: ending exactly at start + hold counts.
        let s: Vec<(f64, f64)> = (0..8)
            .map(|i| (i as f64, if i < 2 { 100.0 } else { 20.0 }))
            .collect();
        assert_eq!(settle_time(&s, 0.0, 20.0, 5.0, 5.0), Some(2.0));
        let s = vec![(0.0, 100.0), (1.0, 20.0), (6.0, 20.0)];
        assert_eq!(settle_time(&s, 0.0, 20.0, 5.0, 5.0), Some(1.0));
    }

    #[test]
    fn settle_time_band_exactly_touched() {
        // Every sample sits exactly on the band edge: closed band, so the
        // series counts as inside and settles at once.
        let s: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 25.0)).collect();
        assert_eq!(settle_time(&s, 0.0, 20.0, 5.0, 5.0), Some(0.0));
        // One ulp outside stays outside.
        let s: Vec<(f64, f64)> = (0..20)
            .map(|i| (i as f64, 25.0 + f64::EPSILON * 64.0))
            .collect();
        assert_eq!(settle_time(&s, 0.0, 20.0, 5.0, 5.0), None);
    }

    #[test]
    fn settling_time_alias_matches() {
        let s = series();
        assert_eq!(
            settling_time(&s, 10.0, 20.0, 5.0, 5.0),
            settle_time(&s, 10.0, 20.0, 5.0, 5.0)
        );
    }

    #[test]
    fn time_above_integrates_excursions() {
        let s = series();
        let above50 = time_above(&s, 0.0, 50.0, 50.0);
        // v>50 from t=10 to ~12.5 (spike + first half of decay).
        assert!((1.5..=3.5).contains(&above50), "time above {above50}");
        assert_eq!(time_above(&s, 0.0, 9.0, 50.0), 0.0);
    }

    #[test]
    fn excursions_count_distinct_events() {
        let mut s = series();
        // Add a second spike at t=30.
        for (t, v) in s.iter_mut() {
            if (30.0..31.0).contains(t) {
                *v = 90.0;
            }
        }
        assert_eq!(excursions_above(&s, 0.0, 50.0, 50.0), 2);
        assert_eq!(excursions_above(&s, 0.0, 50.0, 150.0), 0);
    }
}
