//! Means, percentiles and fairness indices.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

/// The `q`-quantile (`q` in `[0, 1]`) by linear interpolation between
/// order statistics (the same convention as numpy's default).
///
/// # Panics
/// Panics if `q` is outside `[0, 1]`.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Population variance; 0 for an empty slice.
///
/// A single sample also yields 0 — a one-point distribution genuinely has
/// no spread around its mean, but callers that need to distinguish "no
/// spread" from "not enough data to estimate spread" must check `n`
/// themselves (this is a population statistic, not the `n − 1` sample
/// estimator, which would be undefined at `n == 1`).
pub fn variance(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let m = mean(samples);
    samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / samples.len() as f64
}

/// Population variance from pre-aggregated moments: the count, the sum of
/// the values and the sum of their squares. This is what streaming
/// instruments (e.g. `pi2_obs`'s histograms) keep instead of the raw
/// samples; it is algebraically `E[x²] − E[x]²`, clamped at 0 to absorb
/// the catastrophic cancellation that formula suffers for tight
/// distributions far from zero.
pub fn variance_from_moments(n: u64, sum: f64, sum_sq: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let m = sum / n as f64;
    (sum_sq / n as f64 - m * m).max(0.0)
}

/// Population standard deviation: `variance(samples).sqrt()`.
///
/// Returns 0 for an empty slice and — see [`variance`] — also for a
/// single sample.
pub fn stddev(samples: &[f64]) -> f64 {
    variance(samples).sqrt()
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`; 1 for equal allocations,
/// `1/n` for a single flow taking everything.
pub fn jain_fairness(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return 1.0;
    }
    let sum: f64 = rates.iter().sum();
    let sq: f64 = rates.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        1.0
    } else {
        sum * sum / (rates.len() as f64 * sq)
    }
}

/// The five-number summary style used throughout the paper's figures.
///
/// ```
/// use pi2_stats::Summary;
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 100.0]);
/// assert_eq!(s.n, 5);
/// assert_eq!(s.max, 100.0);
/// assert!(s.p99 > s.p50);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// 1st percentile (Figure 18's lower whisker).
    pub p1: f64,
    /// 25th percentile (Figure 17's lower whisker).
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 99th percentile (the paper's headline tail statistic).
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample set (empty input gives all zeros).
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                p1: 0.0,
                p25: 0.0,
                p50: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        Summary {
            n: samples.len(),
            mean: mean(samples),
            p1: percentile(samples, 0.01),
            p25: percentile(samples, 0.25),
            p50: percentile(samples, 0.50),
            p99: percentile(samples, 0.99),
            max: samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Convenience for `f32` sample buffers (the monitor stores `f32`).
    pub fn of_f32(samples: &[f32]) -> Summary {
        let v: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Summary::of(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_simple_sequence() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let s = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&s, 0.0), 10.0);
        assert_eq!(percentile(&s, 1.0), 40.0);
        assert_eq!(percentile(&s, 0.5), 25.0);
        // Order independence.
        let shuffled = [40.0, 10.0, 30.0, 20.0];
        assert_eq!(percentile(&shuffled, 0.5), 25.0);
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    #[should_panic]
    fn percentile_rejects_bad_quantile() {
        percentile(&[1.0], 1.5);
    }

    #[test]
    fn stddev_matches_hand_computation() {
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert_eq!(stddev(&[2.0, 2.0, 2.0]), 0.0);
        // Var of {1,3} around mean 2 is 1.
        assert!((stddev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn variance_agrees_with_moment_form() {
        let samples = [1.0, 3.0, 7.0, 12.0, 12.5];
        let n = samples.len() as u64;
        let sum: f64 = samples.iter().sum();
        let sum_sq: f64 = samples.iter().map(|x| x * x).sum();
        let direct = variance(&samples);
        let moments = variance_from_moments(n, sum, sum_sq);
        assert!((direct - moments).abs() < 1e-9, "{direct} vs {moments}");
        assert!((stddev(&samples) - direct.sqrt()).abs() < 1e-12);
        // Degenerate counts are 0, and cancellation never goes negative.
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[4.2]), 0.0);
        assert_eq!(variance_from_moments(0, 0.0, 0.0), 0.0);
        assert!(variance_from_moments(3, 3e8, 3e16) >= 0.0);
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_fairness(&[5.0, 5.0, 5.0]), 1.0);
        let skewed = jain_fairness(&[10.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn summary_matches_components() {
        let s: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let sum = Summary::of(&s);
        assert_eq!(sum.n, 100);
        assert!((sum.mean - 50.5).abs() < 1e-12);
        assert!((sum.p50 - 50.5).abs() < 1e-9);
        assert_eq!(sum.max, 100.0);
        assert!(sum.p1 < sum.p25 && sum.p25 < sum.p99);
    }

    #[test]
    fn summary_of_empty_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn summary_of_f32_matches_f64() {
        let f32s: Vec<f32> = vec![1.0, 2.0, 3.0, 4.0];
        let a = Summary::of_f32(&f32s);
        let b = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn percentile_of_a_single_sample_is_that_sample_at_every_q() {
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(percentile(&[42.5], q), 42.5, "n=1 q={q}");
        }
    }

    #[test]
    fn percentile_of_all_equal_samples_is_exact_at_every_q() {
        let v = vec![7.25; 64];
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(percentile(&v, q), 7.25, "all-equal q={q}");
        }
    }

    #[test]
    fn percentile_interpolates_against_a_sorted_reference() {
        // Unsorted input; the linear-interpolation definition over the
        // sorted samples [10, 20, 30, 40, 50].
        let v = [30.0, 10.0, 50.0, 20.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 0.25), 20.0);
        assert_eq!(percentile(&v, 0.5), 30.0);
        assert_eq!(percentile(&v, 1.0), 50.0);
        // q = 0.1 lands at position 0.4 between 10 and 20.
        assert!((percentile(&v, 0.1) - 14.0).abs() < 1e-12);
    }
}
