//! Means, percentiles and fairness indices.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

/// The `q`-quantile (`q` in `[0, 1]`) by linear interpolation between
/// order statistics (the same convention as numpy's default).
///
/// # Panics
/// Panics if `q` is outside `[0, 1]`.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn stddev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    (samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / samples.len() as f64).sqrt()
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`; 1 for equal allocations,
/// `1/n` for a single flow taking everything.
pub fn jain_fairness(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return 1.0;
    }
    let sum: f64 = rates.iter().sum();
    let sq: f64 = rates.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        1.0
    } else {
        sum * sum / (rates.len() as f64 * sq)
    }
}

/// The five-number summary style used throughout the paper's figures.
///
/// ```
/// use pi2_stats::Summary;
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 100.0]);
/// assert_eq!(s.n, 5);
/// assert_eq!(s.max, 100.0);
/// assert!(s.p99 > s.p50);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// 1st percentile (Figure 18's lower whisker).
    pub p1: f64,
    /// 25th percentile (Figure 17's lower whisker).
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 99th percentile (the paper's headline tail statistic).
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample set (empty input gives all zeros).
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                p1: 0.0,
                p25: 0.0,
                p50: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        Summary {
            n: samples.len(),
            mean: mean(samples),
            p1: percentile(samples, 0.01),
            p25: percentile(samples, 0.25),
            p50: percentile(samples, 0.50),
            p99: percentile(samples, 0.99),
            max: samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Convenience for `f32` sample buffers (the monitor stores `f32`).
    pub fn of_f32(samples: &[f32]) -> Summary {
        let v: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Summary::of(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_simple_sequence() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let s = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&s, 0.0), 10.0);
        assert_eq!(percentile(&s, 1.0), 40.0);
        assert_eq!(percentile(&s, 0.5), 25.0);
        // Order independence.
        let shuffled = [40.0, 10.0, 30.0, 20.0];
        assert_eq!(percentile(&shuffled, 0.5), 25.0);
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    #[should_panic]
    fn percentile_rejects_bad_quantile() {
        percentile(&[1.0], 1.5);
    }

    #[test]
    fn stddev_matches_hand_computation() {
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert_eq!(stddev(&[2.0, 2.0, 2.0]), 0.0);
        // Var of {1,3} around mean 2 is 1.
        assert!((stddev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_fairness(&[5.0, 5.0, 5.0]), 1.0);
        let skewed = jain_fairness(&[10.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn summary_matches_components() {
        let s: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let sum = Summary::of(&s);
        assert_eq!(sum.n, 100);
        assert!((sum.mean - 50.5).abs() < 1e-12);
        assert!((sum.p50 - 50.5).abs() < 1e-9);
        assert_eq!(sum.max, 100.0);
        assert!(sum.p1 < sum.p25 && sum.p25 < sum.p99);
    }

    #[test]
    fn summary_of_empty_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn summary_of_f32_matches_f64() {
        let f32s: Vec<f32> = vec![1.0, 2.0, 3.0, 4.0];
        let a = Summary::of_f32(&f32s);
        let b = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a, b);
    }
}
