//! Plain-text table formatting for the figure-regeneration binaries.
//!
//! Every bench binary prints its figure's data as an aligned text table
//! (and the same rows as CSV), so the output is directly comparable with
//! the paper's plots without a plotting dependency.

/// Column alignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// Format rows (first row = header) as an aligned text table.
///
/// `aligns` gives per-column alignment; columns beyond its length default
/// to right alignment.
pub fn format_table(rows: &[Vec<String>], aligns: &[Align]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            let a = aligns.get(i).copied().unwrap_or(Align::Right);
            let w = widths[i];
            let padded = match a {
                Align::Left => format!("{cell:<w$}"),
                Align::Right => format!("{cell:>w$}"),
            };
            line.push_str(&padded);
            if i + 1 < row.len() {
                line.push_str("  ");
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Format the same rows as CSV (no quoting — experiment output has no
/// commas in cells by construction).
pub fn format_csv(rows: &[Vec<String>]) -> String {
    rows.iter()
        .map(|r| r.join(","))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<String>> {
        vec![
            vec!["name".into(), "value".into()],
            vec!["pi2".into(), "1.5".into()],
            vec!["pie-long".into(), "10".into()],
        ]
    }

    #[test]
    fn table_aligns_columns() {
        let t = format_table(&rows(), &[Align::Left, Align::Right]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, 2 rows
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("pi2"));
        // Numbers right-aligned to the same column end.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_joins_cells() {
        let c = format_csv(&rows());
        assert!(c.starts_with("name,value\n"));
        assert!(c.contains("pi2,1.5\n"));
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert_eq!(format_table(&[], &[]), "");
    }

    #[test]
    fn ragged_rows_do_not_panic() {
        let ragged = vec![
            vec!["a".into(), "b".into(), "c".into()],
            vec!["only-one".into()],
        ];
        let t = format_table(&ragged, &[Align::Left]);
        assert!(t.contains("only-one"));
    }
}
