//! Property-based tests for the statistics toolkit.

// Entire suite gated off by default: `proptest` is a registry dependency
// the offline build cannot fetch. See the `proptests` feature in Cargo.toml.
#![cfg(feature = "proptests")]

use pi2_stats::{jain_fairness, mean, percentile, stddev, Cdf, Summary};
use proptest::prelude::*;

fn finite_samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..200)
}

proptest! {
    /// Percentiles are monotone in the quantile and bounded by min/max.
    #[test]
    fn percentile_monotone_and_bounded(samples in finite_samples()) {
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = percentile(&samples, q);
            prop_assert!(v >= prev - 1e-9);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            prev = v;
        }
        prop_assert_eq!(percentile(&samples, 0.0), lo);
        prop_assert_eq!(percentile(&samples, 1.0), hi);
    }

    /// The mean lies within [min, max] and matches a direct sum.
    #[test]
    fn mean_is_bounded(samples in finite_samples()) {
        let m = mean(&samples);
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    /// Standard deviation is translation-invariant and scales linearly.
    #[test]
    fn stddev_affine_properties(samples in finite_samples(), shift in -1e3f64..1e3) {
        let s0 = stddev(&samples);
        let shifted: Vec<f64> = samples.iter().map(|x| x + shift).collect();
        prop_assert!((stddev(&shifted) - s0).abs() < 1e-6 * (1.0 + s0));
        let doubled: Vec<f64> = samples.iter().map(|x| x * 2.0).collect();
        prop_assert!((stddev(&doubled) - 2.0 * s0).abs() < 1e-6 * (1.0 + s0));
    }

    /// Jain's index is always in [1/n, 1] for non-negative rates.
    #[test]
    fn jain_in_range(rates in prop::collection::vec(0.0f64..1e6, 1..50)) {
        let j = jain_fairness(&rates);
        let n = rates.len() as f64;
        prop_assert!(j <= 1.0 + 1e-9, "{j}");
        if rates.iter().any(|&r| r > 0.0) {
            prop_assert!(j >= 1.0 / n - 1e-9, "{j} < 1/{n}");
        }
    }

    /// The CDF is a valid distribution function: monotone, 0 before the
    /// minimum, 1 from the maximum on; and quantile() inverts at().
    #[test]
    fn cdf_is_a_distribution(samples in finite_samples()) {
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let cdf = Cdf::new(samples.clone());
        prop_assert_eq!(cdf.at(lo - 1.0), 0.0);
        prop_assert_eq!(cdf.at(hi), 1.0);
        let mut prev = 0.0;
        for i in 0..=10 {
            let x = lo + (hi - lo) * i as f64 / 10.0;
            let y = cdf.at(x);
            prop_assert!(y >= prev);
            prev = y;
        }
        // Galois-ish inversion, up to interpolation slack: quantile()
        // interpolates between order statistics, so at(quantile(q)) can
        // undershoot q by at most one sample's worth of mass.
        let slack = 1.0 / samples.len() as f64;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            prop_assert!(cdf.at(cdf.quantile(q)) >= q - slack - 1e-9);
        }
    }

    /// Summary percentiles are internally ordered.
    #[test]
    fn summary_percentiles_ordered(samples in finite_samples()) {
        let s = Summary::of(&samples);
        prop_assert!(s.p1 <= s.p25 + 1e-9);
        prop_assert!(s.p25 <= s.p50 + 1e-9);
        prop_assert!(s.p50 <= s.p99 + 1e-9);
        prop_assert!(s.p99 <= s.max + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
    }
}
