//! Steady-state zero-allocation contract.
//!
//! After warm-up, the simulator's event loop must never touch the heap:
//! the timing wheel recycles slot vectors, packets and ACKs recycle
//! through slab pools, and `Monitor::reserve` pre-sizes every series.
//! This test brackets a steady-state region with allocation-counter
//! snapshots and asserts the delta is exactly zero — not "small": any
//! nonzero count means some per-event path still allocates.
//!
//! Kept in its own integration-test binary so no concurrently running
//! test can contribute to the process-global counters.

use pi2_aqm::{Pi2, Pi2Config};
use pi2_bench::alloc_count::{self, CountingAlloc};
use pi2_netsim::{MonitorConfig, PathConf, QueueConfig, Sim, SimConfig};
use pi2_simcore::{Duration, Time};
use pi2_transport::{CcKind, EcnSetting, TcpConfig, TcpSource};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The bench-harness topology: ten Reno flows into a 50 Mb/s PI2
/// bottleneck, recording trimmed to counters.
fn build() -> Sim {
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps: 50_000_000,
                buffer_bytes: 60_000_000,
            },
            seed: 7,
            monitor: MonitorConfig {
                record_sojourns: false,
                record_probs: false,
                record_flow_tput: false,
                ..MonitorConfig::default()
            },
        },
        Box::new(Pi2::new(Pi2Config::default())),
    );
    for _ in 0..10 {
        sim.add_flow(
            PathConf::symmetric(Duration::from_millis(20)),
            "reno",
            Time::ZERO,
            |id| {
                Box::new(TcpSource::new(
                    id,
                    CcKind::Reno,
                    EcnSetting::NotEcn,
                    TcpConfig::default(),
                ))
            },
        );
    }
    sim
}

#[test]
fn steady_state_loop_is_allocation_free() {
    // Debug builds enable the audit flight recorder by default; it is a
    // pure observer but its ring buffer allocates. The contract under
    // test is the engine's, so pin auditing off for this process.
    std::env::set_var("PI2_AUDIT", "0");
    let mut sim = build();
    // Pre-size for far more samples/packets than the run produces
    // (over-reservation only costs address space) and warm up past one
    // full overflow-wheel rotation (~34.4 s): RTO timers land in L1
    // slots, so every slot sees a representative fill. Individual slots
    // keep discovering new per-slot burst highs for many rotations,
    // though, so level them all up to the observed peak once instead of
    // waiting for organic convergence.
    // 8192 periodic ticks covers the densest series (AQM control
    // records every 32 ms Tupdate → ~2400 over the 76 s run).
    sim.core.monitor.reserve(8192, 2_000_000);
    sim.run_until(Time::from_secs(36));
    sim.core.events.equalize_slot_capacities();

    let ev0 = sim.core.events.popped();
    let before = alloc_count::stats();
    sim.run_until(Time::from_secs(76));
    let delta = alloc_count::stats().since(&before);
    let events = sim.core.events.popped() - ev0;

    assert!(events > 100_000, "steady-state region too small: {events}");
    assert_eq!(
        delta.allocs, 0,
        "steady-state loop allocated: {delta:?} over {events} events"
    );
    assert_eq!(
        delta.deallocs, 0,
        "steady-state loop freed memory: {delta:?} over {events} events"
    );
}
