//! Process-wide allocation accounting for the bench harness.
//!
//! The simulator's hot-path contract is that steady-state operation
//! performs **zero heap allocations per event**: the timing wheel
//! recycles slot vectors, packets and ACKs live in slab pools, and the
//! monitor's series are pre-sized by [`pi2_netsim::Monitor::reserve`].
//! Timing alone cannot prove that — an occasional `Vec` doubling hides
//! inside the noise floor. This module provides a counting
//! `GlobalAlloc` wrapper; a bench binary (or test) registers it with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: pi2_bench::alloc_count::CountingAlloc = CountingAlloc;
//! ```
//!
//! and then brackets a steady-state region with [`stats`] snapshots.
//! `bench_sim_throughput` records the resulting `allocs/event` in the
//! perf history, and `tests/zero_alloc.rs` asserts the delta is exactly
//! zero after warm-up.
//!
//! Counters are relaxed atomics: the accounting adds one uncontended
//! atomic add per allocator call, which is negligible next to the
//! allocation itself — and the regions we assert about perform no
//! allocator calls at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static TRAP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Debug aid: arm a one-shot panic on the next counted allocation, so
/// the panic backtrace names the allocation site. The trap disarms
/// itself before panicking (panicking allocates).
pub fn trap_next_alloc(on: bool) {
    TRAP.store(on, Relaxed);
}

#[inline]
fn note_alloc(bytes: usize) {
    ALLOCS.fetch_add(1, Relaxed);
    ALLOC_BYTES.fetch_add(bytes as u64, Relaxed);
    if TRAP.swap(false, Relaxed) {
        panic!("trapped allocation of {bytes} bytes");
    }
}

/// A `System`-backed allocator that counts every call.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow-in-place still hits the allocator; count it as one
        // allocation of the new size.
        note_alloc(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// A point-in-time snapshot of the process's allocator traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocator calls that obtained memory (alloc/alloc_zeroed/realloc).
    pub allocs: u64,
    /// Calls that released memory.
    pub deallocs: u64,
    /// Total bytes requested across counting calls.
    pub bytes: u64,
}

impl AllocStats {
    /// Counter deltas `self - earlier` (snapshots taken later minus
    /// earlier).
    pub fn since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            allocs: self.allocs - earlier.allocs,
            deallocs: self.deallocs - earlier.deallocs,
            bytes: self.bytes - earlier.bytes,
        }
    }
}

/// Snapshot the global counters. Zeros (and stays zero) unless a
/// [`CountingAlloc`] is registered as the global allocator.
pub fn stats() -> AllocStats {
    AllocStats {
        allocs: ALLOCS.load(Relaxed),
        deallocs: DEALLOCS.load(Relaxed),
        bytes: ALLOC_BYTES.load(Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Registered for this test binary only: unit tests of the counting
    // logic need the counters actually wired up.
    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc;

    #[test]
    fn counts_a_vec_allocation() {
        let before = stats();
        let v: Vec<u64> = Vec::with_capacity(1024);
        std::hint::black_box(&v);
        let d = stats().since(&before);
        assert!(d.allocs >= 1, "allocation went uncounted: {d:?}");
        assert!(d.bytes >= 8 * 1024, "bytes undercounted: {d:?}");
        drop(v);
        let d2 = stats().since(&before);
        assert!(d2.deallocs >= 1, "deallocation went uncounted: {d2:?}");
    }

    #[test]
    fn since_subtracts_componentwise() {
        let a = AllocStats { allocs: 10, deallocs: 4, bytes: 100 };
        let b = AllocStats { allocs: 7, deallocs: 1, bytes: 40 };
        assert_eq!(
            a.since(&b),
            AllocStats { allocs: 3, deallocs: 3, bytes: 60 }
        );
    }
}
