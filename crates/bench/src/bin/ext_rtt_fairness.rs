//! Extension: RTT fairness. The paper's grid keeps coexisting flows at
//! equal base RTTs; here we mix a 10 ms and a 100 ms Reno flow and
//! measure the short/long throughput ratio under each AQM, plus a PI2
//! target sweep showing the standing queue's equalizing effect — one of
//! the structural arguments for a nonzero delay target.

use pi2_bench::{f, header, run_secs, table};
use pi2_experiments::par_map;
use pi2_experiments::rttfair::{run_one, target_sweep};
use pi2_experiments::scenario::AqmKind;

fn main() {
    header(
        "Extension: RTT fairness",
        "10 ms vs 100 ms Reno flows sharing 40 Mb/s (250 ms buffer)",
    );
    let secs = run_secs(60);
    println!("--- per-AQM ratio at the default 20 ms target ---");
    let mut rows = vec![vec![
        "aqm".to_string(),
        "short Mb/s".into(),
        "long Mb/s".into(),
        "short/long".into(),
    ]];
    let aqms = [
        AqmKind::pie_default(),
        AqmKind::pi2_default(),
        AqmKind::TailDrop,
    ];
    for r in par_map(&aqms, |aqm| run_one(aqm.clone(), 20, secs, 0x477)) {
        rows.push(vec![
            r.aqm.to_string(),
            f(r.short_mbps),
            f(r.long_mbps),
            f(r.ratio),
        ]);
    }
    table(&rows);

    println!("--- PI2 target sweep: deeper queues equalize effective RTTs ---");
    let mut rows = vec![vec!["target ms".to_string(), "short/long ratio".into()]];
    for r in target_sweep(&[5, 10, 20, 40, 80], secs, 0x477) {
        rows.push(vec![r.target_ms.to_string(), f(r.ratio)]);
    }
    table(&rows);
    println!(
        "shape check: every single-queue AQM inherits TCP's RTT bias (the 10 ms\n\
         flow wins), softened by the shared queue: effective RTTs are\n\
         (base + queue), so the ratio falls as the PI2 target deepens — the\n\
         latency/fairness trade a delay target embodies. PIE and PI2 behave\n\
         alike. Tail-drop manages to be worse on both axes: 250 ms of latency\n\
         AND more bias, because its synchronized overflow losses punish the\n\
         slow-recovering long-RTT flow hardest."
    );
}
