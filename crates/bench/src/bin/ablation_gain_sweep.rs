//! Ablation: PI2's gain multiplier (the paper chose 2.5× PIE's gains from
//! the flat-margin headroom of Figure 7).
//!
//! Two views: (a) analytic — the minimum gain margin over the full load
//! range as the gains scale; (b) empirical — transient peak and steady
//! delay of the Figure 11(a) workload.

use pi2_bench::{f, header, table};
use pi2_experiments::ablation::gain_sweep;
use pi2_fluid::{margins, nyquist, LoopTf, PiGains, Stability};

fn main() {
    header(
        "Ablation: gain sweep",
        "responsiveness vs stability as PI2 gains scale",
    );

    println!("--- analytic: minimum gain margin over p' in [0.1%, 100%], R0 = 100 ms ---");
    let mut rows = vec![vec![
        "multiplier (x PIE gains)".to_string(),
        "min GM dB".into(),
        "min PM deg".into(),
        "nyquist".into(),
    ]];
    for &m in &[1.0, 2.0, 2.5, 3.0, 5.0, 10.0] {
        let mut min_gm = f64::INFINITY;
        let mut min_pm = f64::INFINITY;
        let mut all_stable = true;
        for i in 0..40 {
            let pp = 10f64.powf(-3.0 + 3.0 * i as f64 / 39.0);
            let tf = LoopTf {
                kind: pi2_fluid::LoopKind::RenoOnPSquared,
                gains: PiGains::pie().scaled(m),
                r0: 0.1,
                p0_prime: pp,
            };
            let mg = margins(&tf);
            min_gm = min_gm.min(mg.gain_margin_db);
            min_pm = min_pm.min(mg.phase_margin_deg);
            all_stable &= nyquist(&tf) == Stability::Stable;
        }
        rows.push(vec![
            f(m),
            f(min_gm),
            f(min_pm),
            if all_stable { "stable" } else { "UNSTABLE" }.to_string(),
        ]);
    }
    table(&rows);

    println!("--- empirical: figure 11(a) workload (5 Reno flows, 10 Mb/s, 100 ms) ---");
    let pts = gain_sweep(&[1.0, 2.5, 5.0, 10.0], 0xab);
    let mut rows = vec![vec![
        "multiplier".to_string(),
        "peak ms".into(),
        "mean ms".into(),
        "p99 ms".into(),
    ]];
    for p in &pts {
        rows.push(vec![
            f(p.multiplier),
            f(p.peak_ms),
            f(p.delay.mean),
            f(p.delay.p99),
        ]);
    }
    table(&rows);
    println!(
        "shape check: the analytic minimum gain margin shrinks ~20log10(m) dB with\n\
         the multiplier and crosses zero somewhere past the paper's 2.5x choice;\n\
         empirically, higher gains cut the start-up peak until instability costs\n\
         more than responsiveness gains."
    );
}
