//! Backend scaling bench: wall-clock cost of the packet backend at
//! 1 000 flows vs the fluid backend from 1 000 up to 1 000 000 flows,
//! plus one hybrid cell (packet foreground + fluid background).
//!
//! The fluid engine's cost per step is O(classes·log classes) and
//! independent of the flow population, so the headline claim — a
//! 100 000-flow fluid run finishes in less wall time than a 1 000-flow
//! packet run — is enforced here as a gate (exit 1 on violation) and
//! recorded in `BENCH_pi2.json` under the `hybrid` bench name when
//! `PI2_BENCH_HISTORY=1` (the same knob `ci.sh` uses for the scenario
//! families).

use pi2_aqm::Pi2Config;
use pi2_bench::header;
use pi2_experiments::{run_fluid, summarize_scenario_run, AqmKind, BgGroup, FlowGroup, Scenario};
use pi2_simcore::{Duration, Time};
use pi2_transport::{CcKind, EcnSetting};

/// Per-flow capacity share: 100 kb/s each keeps every population at the
/// same sane operating point (the fluid engine's wall cost does not
/// depend on the rates, only the class count and step count).
const BPS_PER_FLOW: u64 = 100_000;

fn scenario(n_flows: usize, secs: u64) -> Scenario {
    let mut sc = Scenario::new(
        AqmKind::Pi2(Pi2Config::default()),
        BPS_PER_FLOW * n_flows as u64,
    );
    sc.tcp.push(FlowGroup::new(
        n_flows,
        CcKind::Reno,
        EcnSetting::NotEcn,
        "reno",
        Duration::from_millis(50),
    ));
    sc.duration = Time::from_secs(secs);
    sc.warmup = Duration::from_secs((secs / 4) as i64);
    sc.seed = 7;
    sc
}

fn main() {
    header(
        "Backend scaling: packet vs fluid vs hybrid",
        "PI2, Reno, 100 kb/s per flow, 20 simulated seconds per cell",
    );
    let secs = 20u64;
    let mut metrics: Vec<(String, f64)> = vec![("sim_secs".to_string(), secs as f64)];

    // Packet reference: 1 000 flows, every packet an event.
    let sc = scenario(1_000, secs);
    let wall = std::time::Instant::now();
    let run = sc.run();
    let packet_wall = wall.elapsed().as_secs_f64();
    let s = summarize_scenario_run(&sc, &run);
    println!(
        "packet   {:>9} flows  wall {packet_wall:>8.3} s   util {:>5.1} %  qdelay {:>6.2} ms",
        1_000,
        100.0 * s.utilization,
        s.qdelay_s * 1e3
    );
    metrics.push(("packet_1k_wall_secs".to_string(), packet_wall));
    metrics.push(("packet_1k_utilization".to_string(), s.utilization));

    // Fluid sweep: same scenario shape, population 1k → 1M.
    let mut fluid_100k_wall = f64::INFINITY;
    for n in [1_000usize, 10_000, 100_000, 1_000_000] {
        let sc = scenario(n, secs);
        let wall = std::time::Instant::now();
        let r = run_fluid(&sc).expect("pi2 maps onto the fluid engine");
        let w = wall.elapsed().as_secs_f64();
        println!(
            "fluid    {:>9} flows  wall {w:>8.3} s   util {:>5.1} %  qdelay {:>6.2} ms",
            r.flow_count,
            100.0 * r.summary.utilization,
            r.summary.qdelay_s * 1e3
        );
        let tag = if n == 1_000_000 {
            "1m".to_string()
        } else {
            format!("{}k", n / 1_000)
        };
        metrics.push((format!("fluid_{tag}_wall_secs"), w));
        if n == 100_000 {
            fluid_100k_wall = w;
            metrics.push(("fluid_100k_utilization".to_string(), r.summary.utilization));
            metrics.push(("fluid_100k_qdelay_s".to_string(), r.summary.qdelay_s));
        }
    }

    // One hybrid cell: 10 packet foreground flows riding on a 990-flow
    // fluid background — the mode's intended shape (inspect a few real
    // flows inside a population too big to simulate per-packet).
    let mut sc = scenario(1_000, secs);
    sc.tcp[0].count = 10;
    sc.backend = pi2_experiments::Backend::Hybrid;
    sc.background = vec![BgGroup::new(
        990,
        CcKind::Reno,
        Duration::from_millis(50),
        "bg-reno",
    )];
    let wall = std::time::Instant::now();
    let run = sc.run();
    let hybrid_wall = wall.elapsed().as_secs_f64();
    let s = summarize_scenario_run(&sc, &run);
    let bg = run.background.as_ref().expect("hybrid run carries background");
    println!(
        "hybrid   {:>9} flows  wall {hybrid_wall:>8.3} s   util {:>5.1} %  qdelay {:>6.2} ms  \
         ({} packet + {} fluid)",
        1_000,
        100.0 * s.utilization,
        s.qdelay_s * 1e3,
        10,
        bg.flow_count
    );
    metrics.push(("hybrid_1k_wall_secs".to_string(), hybrid_wall));
    metrics.push(("hybrid_1k_utilization".to_string(), s.utilization));

    let speedup = packet_wall / fluid_100k_wall.max(1e-9);
    metrics.push(("fluid_100k_speedup_vs_packet_1k".to_string(), speedup));
    println!(
        "fluid 100k vs packet 1k: {speedup:.0}x faster \
         ({fluid_100k_wall:.3} s vs {packet_wall:.3} s)"
    );
    // The headline claim is a gate, not just a record.
    if fluid_100k_wall >= packet_wall {
        eprintln!(
            "BACKEND GATE FAILED: fluid at 100k flows ({fluid_100k_wall:.3} s) \
             must beat packet at 1k flows ({packet_wall:.3} s)"
        );
        std::process::exit(1);
    }
    if std::env::var("PI2_BENCH_HISTORY").as_deref() == Ok("1") {
        pi2_bench::perf::record_and_report("hybrid", metrics);
    }
}
