//! Figure 20: normalized per-flow rates (rate ÷ fair share) with
//! P1/mean/P99 across flows, for the same combinations as Figure 19.

use pi2_bench::{f, header, run_secs, table};
use pi2_experiments::fig19::fig19;
use pi2_stats::Summary;

fn main() {
    header(
        "Figure 20",
        "normalized per-flow rates across flow-count combinations (40 Mb/s, 10 ms)",
    );
    let runs = fig19(run_secs(60));
    let mut rows = vec![vec![
        "combo".to_string(),
        "pair".into(),
        "aqm".into(),
        "A p1".into(),
        "A mean".into(),
        "A p99".into(),
        "B p1".into(),
        "B mean".into(),
        "B p99".into(),
    ]];
    for r in &runs {
        let sa = Summary::of(&r.norm_a);
        let sb = Summary::of(&r.norm_b);
        let dash = |s: &Summary, v: f64| if s.n == 0 { "-".to_string() } else { f(v) };
        rows.push(vec![
            format!("A{}-B{}", r.a, r.b),
            match r.pair {
                pi2_experiments::grid::Pair::CubicVsEcnCubic => "Cubic/ECN-Cubic".to_string(),
                pi2_experiments::grid::Pair::CubicVsDctcp => "Cubic/DCTCP".to_string(),
            },
            r.aqm.to_string(),
            dash(&sa, sa.p1),
            dash(&sa, sa.mean),
            dash(&sa, sa.p99),
            dash(&sb, sb.p1),
            dash(&sb, sb.mean),
            dash(&sb, sb.p99),
        ]);
    }
    table(&rows);
    println!(
        "shape check: under coupled PI2 all normalized rates cluster around 1 for\n\
         every combination; under PIE the Cubic flows' normalized rate collapses\n\
         toward 0.1 whenever DCTCP flows are present."
    );
}
