//! Diff the newest recorded benchmark run against its predecessor, and
//! (optionally) gate on the result.
//!
//! ```text
//! cargo run -p pi2-bench --release --bin bench_compare                  # newest vs previous, all benches
//! cargo run ... --bin bench_compare -- --bench sim_throughput          # one bench only
//! cargo run ... --bin bench_compare -- --baseline BENCH_pi2.json \
//!                                       --candidate /tmp/smoke.json    # fresh run vs committed trajectory
//! ```
//!
//! With one history file (default: `PI2_BENCH_OUT` or the committed
//! `BENCH_pi2.json`), the newest run of each bench is compared against
//! the previous run of the same bench. With `--baseline`/`--candidate`,
//! the newest run per bench in the candidate file is compared against
//! the **fastest of the trailing five** runs in the baseline file — the
//! trailing-min is deliberate: this host's clock throttles bimodally
//! (the committed trajectory has same-code runs 25–180% apart, see
//! EXPERIMENTS.md "Timing variance"), so a single baseline sample may
//! itself be a slow-mode artifact.
//!
//! ## `PI2_PERF_GATE`
//!
//! `PI2_PERF_GATE=1` turns the comparison into a CI gate (exit 1) when
//! either check fails for `sim_throughput`:
//!
//! * **absolute**: a `*_ns_per_event` metric worsened by more than
//!   `PI2_PERF_TOL` (default 0.35 — generous, for the clock bimodality)
//!   against the baseline;
//! * **relative**: the candidate's PIE/PI2 per-event cost ratio leaves
//!   `[0.9, 2.0]`. Both AQMs run the identical engine, so host throttling
//!   scales them together and this ratio is machine-mode-independent; it
//!   pins down AQM-specific regressions that absolute numbers cannot
//!   (the committed 169 → 211 ns/event "regression" was throttling: the
//!   ratio stayed 1.44 → 1.40).

use pi2_bench::perf::{history_path, load_history, RunRecord};
use pi2_bench::table;
use std::path::PathBuf;
use std::process::exit;

/// Metrics that participate in the absolute gate check.
fn is_gated_metric(name: &str) -> bool {
    name.ends_with("_ns_per_event") && !name.starts_with("profile_")
}

/// Newest run of `bench`, plus (for baseline use) the per-metric minimum
/// over the trailing `window` runs of that bench.
fn newest<'a>(history: &'a [RunRecord], bench: &str) -> Option<&'a RunRecord> {
    history.iter().rev().find(|r| r.bench == bench)
}

fn trailing_min(history: &[RunRecord], bench: &str, window: usize) -> Option<RunRecord> {
    let runs: Vec<&RunRecord> = history
        .iter()
        .rev()
        .filter(|r| r.bench == bench)
        .take(window)
        .collect();
    let newest = *runs.first()?;
    let mut metrics = Vec::new();
    for (k, v) in &newest.metrics {
        let best = runs
            .iter()
            .filter_map(|r| r.metrics.iter().find(|(rk, _)| rk == k).map(|(_, rv)| *rv))
            .fold(*v, f64::min);
        metrics.push((k.clone(), best));
    }
    Some(RunRecord {
        timestamp_unix: newest.timestamp_unix,
        bench: bench.to_string(),
        metrics,
    })
}

fn parse_args() -> (Option<PathBuf>, Option<PathBuf>, Option<String>) {
    let mut baseline = None;
    let mut candidate = None;
    let mut bench = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => baseline = args.next().map(PathBuf::from),
            "--candidate" => candidate = args.next().map(PathBuf::from),
            "--bench" => bench = args.next(),
            "--help" | "-h" => {
                println!(
                    "usage: bench_compare [--bench <name>] [--baseline <path>] [--candidate <path>]"
                );
                exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                exit(2);
            }
        }
    }
    (baseline, candidate, bench)
}

/// One bench's comparison. Returns the gate violations found.
fn compare_bench(bench: &str, cur: &RunRecord, base: Option<&RunRecord>) -> Vec<String> {
    let mut violations = Vec::new();
    let tol = std::env::var("PI2_PERF_TOL")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.35);

    println!("== {bench}: newest run (timestamp_unix {})", cur.timestamp_unix);
    let Some(base) = base else {
        println!("   no baseline run to compare against");
        return violations;
    };

    let mut rows = vec![vec![
        "metric".to_string(),
        "baseline".into(),
        "current".into(),
        "delta".into(),
    ]];
    for (k, v) in &cur.metrics {
        let Some((_, b)) = base.metrics.iter().find(|(bk, _)| bk == k) else {
            continue;
        };
        let delta = if *b != 0.0 {
            format!("{:+.1}%", (v / b - 1.0) * 100.0)
        } else {
            "n/a".to_string()
        };
        rows.push(vec![k.clone(), pi2_bench::f(*b), pi2_bench::f(*v), delta]);
        if bench == "sim_throughput" && is_gated_metric(k) && *b > 0.0 && v / b > 1.0 + tol {
            violations.push(format!(
                "{k}: {v:.1} ns/event vs baseline {b:.1} (+{:.0}%, allowed +{:.0}%)",
                (v / b - 1.0) * 100.0,
                tol * 100.0
            ));
        }
    }
    table(&rows);

    // Machine-mode-independent pin: PIE and PI2 share the engine, so
    // host throttling cancels out of their ratio.
    if bench == "sim_throughput" {
        let get = |r: &RunRecord, k: &str| {
            r.metrics
                .iter()
                .find(|(mk, _)| mk == k)
                .map(|(_, v)| *v)
        };
        if let (Some(pie), Some(pi2)) = (
            get(cur, "pie_10flows_50mbps_ns_per_event"),
            get(cur, "pi2_10flows_50mbps_ns_per_event"),
        ) {
            let ratio = pie / pi2;
            println!("PIE/PI2 per-event cost ratio: {ratio:.3} (band 0.9..=2.0)");
            if !(0.9..=2.0).contains(&ratio) {
                violations.push(format!(
                    "PIE/PI2 ns/event ratio {ratio:.3} outside [0.9, 2.0] — AQM-specific regression"
                ));
            }
        }
    }
    violations
}

fn main() {
    let (baseline, candidate, bench_filter) = parse_args();
    let two_files = baseline.is_some() || candidate.is_some();
    let cand_path = candidate.unwrap_or_else(history_path);
    let base_path = baseline.unwrap_or_else(|| cand_path.clone());

    let cand_hist = load_history(&cand_path).unwrap_or_else(|e| {
        eprintln!("cannot read candidate history: {e}");
        exit(2);
    });
    let base_hist = load_history(&base_path).unwrap_or_else(|e| {
        eprintln!("cannot read baseline history: {e}");
        exit(2);
    });
    if cand_hist.is_empty() {
        eprintln!("candidate history {} has no runs", cand_path.display());
        exit(2);
    }

    let mut benches: Vec<String> = Vec::new();
    for r in &cand_hist {
        if !benches.contains(&r.bench) {
            benches.push(r.bench.clone());
        }
    }
    if let Some(b) = &bench_filter {
        benches.retain(|x| x == b);
        if benches.is_empty() {
            eprintln!("no runs of bench '{b}' in {}", cand_path.display());
            exit(2);
        }
    }

    let mut violations = Vec::new();
    for bench in &benches {
        let cur = newest(&cand_hist, bench).expect("bench name came from this history");
        // Same-file mode diffs newest vs previous; two-file mode diffs
        // the candidate against the trailing-min of the baseline
        // trajectory (robust to one slow-mode baseline sample).
        let base = if two_files {
            trailing_min(&base_hist, bench, 5)
        } else {
            let prior: Vec<RunRecord> = base_hist
                .iter()
                .filter(|r| &r.bench == bench)
                .cloned()
                .collect();
            if prior.len() >= 2 {
                Some(prior[prior.len() - 2].clone())
            } else {
                None
            }
        };
        violations.extend(compare_bench(bench, cur, base.as_ref()));
    }

    if std::env::var("PI2_PERF_GATE").ok().as_deref() == Some("1") && !violations.is_empty() {
        eprintln!("PERF GATE FAILED:");
        for v in &violations {
            eprintln!("  {v}");
        }
        exit(1);
    }
    if !violations.is_empty() {
        println!("(informational — set PI2_PERF_GATE=1 to fail on these)");
        for v in &violations {
            println!("  {v}");
        }
    }
}
