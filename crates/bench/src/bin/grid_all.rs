//! Figures 15–18 from a single run of the link×RTT coexistence grid
//! (each cell feeds all four figures, so this is 4× cheaper than running
//! the individual binaries).

use pi2_bench::{gridview, header, run_secs};
use pi2_experiments::grid::run_grid;

fn main() {
    header(
        "Figures 15-18",
        "the full coexistence grid: rate balance, delay, probability, utilization",
    );
    let secs = run_secs(60);
    eprintln!("running 100 cells x {secs} s simulated ... (set PI2_SECS to trade accuracy for time)");
    let cells = run_grid(secs);
    gridview::print_fig15(&cells);
    gridview::print_fig16(&cells);
    gridview::print_fig17(&cells);
    gridview::print_fig18(&cells);
    gridview::print_counters(&cells);
}
