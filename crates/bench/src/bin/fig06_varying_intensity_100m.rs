//! Figure 6: fixed-gain PI vs PI2 under varying traffic intensity,
//! 10:30:50:30:10 flows × 50 s, 100 Mb/s, RTT 10 ms.

use pi2_bench::{f, header, series_row, table};
use pi2_experiments::fig06::fig06;

fn main() {
    header(
        "Figure 6",
        "queue delay, PI (fixed gains) vs PI2; 10:30:50:30:10 Reno flows, 100 Mb/s, 10 ms",
    );
    let runs = fig06();
    let mut rows = vec![vec![
        "aqm".to_string(),
        "mean ms".into(),
        "p50 ms".into(),
        "p99 ms".into(),
        "max ms".into(),
        "steady-phase std ms".into(),
    ]];
    for r in &runs {
        rows.push(vec![
            r.aqm.to_string(),
            f(r.delay.mean),
            f(r.delay.p50),
            f(r.delay.p99),
            f(r.delay.max),
            f(r.steady_phase_std_ms),
        ]);
    }
    table(&rows);
    for r in &runs {
        println!("{} qdelay(ms) @5s: {}", r.aqm, series_row(&r.qdelay, 5));
    }
    println!(
        "\nshape check: 'pi2' stays pinned near the 20 ms target throughout. Note on\n\
         'pi': in this idealized substrate the fixed-gain controller remains small-\n\
         signal stable at this exact operating point (its Bode margins at the ~30 ms\n\
         loop RTT are still positive; see fig04_bode_pie), so the testbed's visible\n\
         limit cycle does not reappear here. Its failure mode — aggressive\n\
         over-suppression and underutilization — emerges at lower p; see the\n\
         fixed_gain_pi_oversuppresses_at_low_p integration test and EXPERIMENTS.md."
    );
}
