//! `obs_get` — scrape one endpoint of a running [`pi2_obs::ObsServer`].
//!
//! ```text
//! cargo run -p pi2-bench --bin obs_get -- 127.0.0.1:9090 /metrics
//! ```
//!
//! A std-`TcpStream` HTTP client (the workspace has no HTTP dependency,
//! and CI images have no curl guarantee). Prints the response body on
//! stdout; exits non-zero unless the server answered 200.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, path) = match args.as_slice() {
        [addr, path] => (addr, path),
        _ => {
            eprintln!("usage: obs_get <host:port> </metrics|/progress|/healthz|/cancel|/quit>");
            std::process::exit(2);
        }
    };
    let sockaddr: std::net::SocketAddr = match addr.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("obs_get: bad address {addr}: {e}");
            std::process::exit(2);
        }
    };
    match pi2_obs::http_get(sockaddr, path) {
        Ok((status, body)) => {
            if !status.contains("200") {
                eprintln!("obs_get: {addr}{path}: {status}");
                std::process::exit(1);
            }
            print!("{body}");
        }
        Err(e) => {
            eprintln!("obs_get: {addr}{path}: {e}");
            std::process::exit(1);
        }
    }
}
