//! Ablation: Curvy RED (the DualQ draft's example AQM, paper §3) vs PI2.
//!
//! Both encode the Classic probability as a square of a linear quantity —
//! but Curvy RED reads that quantity off the *queue delay* (so its
//! standing queue must grow with load, RED's original sin), while PI2's
//! integral action moves only `p'` and pins the delay at the target.

use pi2_bench::{f, header, table};
use pi2_experiments::scenario::{AqmKind, FlowGroup, Scenario};
use pi2_aqm::{CurvyRed, CurvyRedConfig};
use pi2_netsim::Aqm;
use pi2_simcore::{Duration, Time};
use pi2_transport::{CcKind, EcnSetting};

fn run(curvy: bool, flows: usize) -> (f64, f64) {
    // Scenario has no Curvy variant; run it via the generic path by
    // constructing the AQM directly for the curvy case.
    if curvy {
        use pi2_netsim::{MonitorConfig, PathConf, QueueConfig, Sim, SimConfig};
        use pi2_transport::{TcpConfig, TcpSource};
        let mut sim = Sim::new(
            SimConfig {
                queue: QueueConfig {
                    rate_bps: 10_000_000,
                    buffer_bytes: 40_000 * 1500,
                },
                seed: 0xc0,
                monitor: MonitorConfig {
                    warmup: Duration::from_secs(20),
                    ..MonitorConfig::default()
                },
            },
            Box::new(CurvyRed::new(CurvyRedConfig::default())) as Box<dyn Aqm>,
        );
        for _ in 0..flows {
            sim.add_flow(
                PathConf::symmetric(Duration::from_millis(100)),
                "reno",
                Time::ZERO,
                |id| {
                    Box::new(TcpSource::new(
                        id,
                        CcKind::Reno,
                        EcnSetting::NotEcn,
                        TcpConfig::default(),
                    ))
                },
            );
        }
        sim.run_until(Time::from_secs(80));
        let m = &sim.core.monitor;
        let s: Vec<f64> = m.sojourn_ms.iter().map(|&x| x as f64).collect();
        let util_samples = m.util_samples();
        let util: f64 = util_samples.iter().map(|&x| x as f64).sum::<f64>()
            / util_samples.len() as f64;
        (pi2_stats::mean(&s), util * 100.0)
    } else {
        let mut sc = Scenario::new(AqmKind::pi2_default(), 10_000_000);
        sc.tcp.push(FlowGroup::new(
            flows,
            CcKind::Reno,
            EcnSetting::NotEcn,
            "reno",
            Duration::from_millis(100),
        ));
        sc.duration = Time::from_secs(80);
        sc.warmup = Duration::from_secs(20);
        sc.seed = 0xc0;
        let r = sc.run();
        (r.delay_summary().mean, r.util_summary().mean)
    }
}

fn main() {
    header(
        "Ablation: Curvy RED vs PI2",
        "standing queue vs load: curve-read probability vs PI-controlled probability",
    );
    let mut rows = vec![vec![
        "flows".to_string(),
        "curvy delay ms".into(),
        "curvy util %".into(),
        "pi2 delay ms".into(),
        "pi2 util %".into(),
    ]];
    for &n in &[2usize, 5, 15, 40] {
        let (cd, cu) = run(true, n);
        let (pd, pu) = run(false, n);
        rows.push(vec![
            n.to_string(),
            f(cd),
            f(cu),
            f(pd),
            f(pu),
        ]);
    }
    table(&rows);
    println!(
        "shape check: Curvy RED's mean delay climbs with the flow count (the\n\
         operating point slides up its curve — the RED behaviour Hollot et al.\n\
         criticized), while PI2 holds ~20 ms at every load; utilizations comparable."
    );
}
