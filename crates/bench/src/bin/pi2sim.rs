//! `pi2sim` — run any dumbbell scenario against any AQM in this
//! workspace, from the command line.
//!
//! ```text
//! cargo run -p pi2-bench --release --bin pi2sim -- \
//!     --aqm coupled --rate 40M --rtt 10ms --flows 1xcubic,1xdctcp --secs 60
//! ```

use pi2_aqm::{
    Codel, CodelConfig, CoupledPi2, CoupledPi2Config, CurvyRed, CurvyRedConfig, DualPi2,
    DualPi2Config, FqConfig, FqDrr, Pi, PiConfig, Pi2, Pi2Config, Pie, PieConfig, Red, RedConfig,
};
use pi2_bench::cli::{parse_args, usage, CliArgs, MetricsFormat, TraceFormat};
use pi2_bench::perf::Json;
use pi2_experiments::{dynamics, topology};
use pi2_netsim::{
    Aqm, AuditSink, CsvSink, Ecn, ImpairmentConf, JsonlSink, LinkImpairments, MemorySink,
    MonitorConfig, PassAqm, PathConf, Qdisc, QueueConfig, Sim, SimConfig, UdpCbrSource,
};
use pi2_simcore::{Duration, Time};
use pi2_stats::Summary;
use pi2_transport::{TcpConfig, TcpSource};
use std::cell::RefCell;
use std::fs::File;
use std::io::BufWriter;
use std::rc::Rc;

fn build_sim(a: &CliArgs) -> Sim {
    let cfg = SimConfig {
        queue: QueueConfig {
            rate_bps: a.rate_bps,
            buffer_bytes: 40_000 * 1500,
        },
        seed: a.seed,
        monitor: MonitorConfig {
            warmup: Duration::from_secs(a.warmup_secs as i64),
            record_flow_sojourns: true,
            ..MonitorConfig::default()
        },
    };
    let target = a.target;
    match a.aqm.as_str() {
        "dualq" => {
            let mut dq = DualPi2Config::for_link(a.rate_bps);
            dq.target = target;
            Sim::with_qdisc(cfg, Box::new(DualPi2::new(dq)) as Box<dyn Qdisc>)
        }
        "fq" => Sim::with_qdisc(
            cfg,
            Box::new(FqDrr::new(FqConfig::for_link(a.rate_bps))) as Box<dyn Qdisc>,
        ),
        name => {
            let aqm: Box<dyn Aqm> = match name {
                "pi2" => Box::new(Pi2::new(Pi2Config {
                    target,
                    ..Pi2Config::default()
                })),
                "pie" => Box::new(Pie::new(PieConfig {
                    target,
                    ..PieConfig::paper_default()
                })),
                "bare-pie" => Box::new(Pie::new(PieConfig {
                    target,
                    ..PieConfig::bare()
                })),
                "pi" => Box::new(Pi::new(PiConfig {
                    target,
                    ..PiConfig::untuned_pie_gains()
                })),
                "coupled" => Box::new(CoupledPi2::new(CoupledPi2Config {
                    target,
                    ..CoupledPi2Config::default()
                })),
                "red" => Box::new(Red::new(RedConfig::for_link(
                    a.rate_bps,
                    target / 2,
                    target * 3,
                ))),
                "codel" => Box::new(Codel::new(CodelConfig {
                    target: target / 4,
                    ..CodelConfig::default()
                })),
                "curvy" => Box::new(CurvyRed::new(CurvyRedConfig {
                    range: target * 3,
                    ..CurvyRedConfig::default()
                })),
                "taildrop" => Box::new(PassAqm),
                other => unreachable!("validated AQM {other}"),
            };
            Sim::new(cfg, aqm)
        }
    }
}

/// Decorrelates the weather layer's RNG stream from the simulator's root
/// stream when both derive from the same `--seed`.
const WEATHER_SEED_XOR: u64 = 0x57EA_7AE5_0DD5_EED5;

/// The `--loss/--dup/--jitter` knobs as an impairment layer, applied
/// symmetrically to both directions. `None` when all are zero.
fn weather(a: &CliArgs) -> Option<LinkImpairments> {
    if !a.impaired() {
        return None;
    }
    Some(
        LinkImpairments::new(a.seed ^ WEATHER_SEED_XOR).symmetric(ImpairmentConf {
            loss: a.loss,
            dup: a.dup,
            jitter: a.jitter,
        }),
    )
}

/// `--scenario dynamics`: the step-response family (rate-step and
/// flow-churn, PIE vs PI2 vs DualPI2) with its spike/settle table.
fn run_dynamics(a: &CliArgs) {
    println!(
        "# pi2sim: scenario=dynamics seed={} loss={} dup={} jitter={}",
        a.seed, a.loss, a.dup, a.jitter
    );
    let runs = dynamics::dynamics(a.seed, weather(a));
    print!("{}", dynamics::render_table(&runs));
    if let Some(path) = &a.trace_out {
        let mut body = String::new();
        for r in &runs {
            let settle = r.settle_s.map_or("null".to_string(), |s| format!("{s}"));
            let series: Vec<String> = r
                .qdelay
                .iter()
                .map(|(t, v)| format!("[{t},{v}]"))
                .collect();
            body.push_str(&format!(
                "{{\"scenario\":\"dynamics\",\"disturbance\":\"{}\",\"aqm\":\"{}\",\
                 \"spike_ms\":{},\"settle_s\":{},\"revert_spike_ms\":{},\"qdelay\":[{}]}}\n",
                r.disturbance.name(),
                r.aqm,
                r.spike_ms,
                settle,
                r.revert_spike_ms,
                series.join(",")
            ));
        }
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("cannot write dynamics trace {path}: {e}");
            std::process::exit(1);
        }
        println!("dynamics trace: {} runs written to {path}", runs.len());
    }
    if a.csv {
        println!("disturbance,aqm,t_s,qdelay_ms");
        for r in &runs {
            for (t, d) in &r.qdelay {
                println!("{},{},{t},{d}", r.disturbance.name(), r.aqm);
            }
        }
    }
}

/// `--scenario topology`: multi-hop parking-lot / access-core layouts
/// under heavy-tailed mice cross-traffic (PI2 vs DualPI2 on every hop),
/// with per-hop fairness and mice-FCT percentile output. `--audit`
/// attaches the invariant auditor (per-hop packet conservation included)
/// to every cell.
fn run_topology(a: &CliArgs) {
    println!(
        "# pi2sim: scenario=topology seed={} audit={}",
        a.seed, a.audit
    );
    let wall = std::time::Instant::now();
    let runs = topology::topology(a.seed, a.audit);
    let wall_s = wall.elapsed().as_secs_f64();
    print!("{}", topology::render_table(&runs));
    // Leave a BENCH trajectory entry when opted in (same knob ci.sh
    // uses for the microbenches): the multi-hop event-loop throughput
    // plus the deterministic headline statistics per cell, so the
    // history can show both perf drift and behavior drift over time.
    if std::env::var("PI2_BENCH_HISTORY").as_deref() == Ok("1") {
        let total_events: u64 = runs.iter().map(|r| r.events_processed).sum();
        let mut metrics = vec![
            ("wall_secs".to_string(), wall_s),
            ("events_per_sec".to_string(), total_events as f64 / wall_s),
        ];
        for r in &runs {
            let cell = format!("{}_{}", r.topology.replace('-', "_"), r.aqm);
            metrics.push((format!("{cell}_events"), r.events_processed as f64));
            metrics.push((format!("{cell}_fct_p99_ms"), r.fct_ms.2));
            metrics.push((format!("{cell}_rate_ratio"), r.rate_ratio));
        }
        pi2_bench::perf::record_and_report("topology", metrics);
    }
    if let Some(path) = &a.trace_out {
        let mut body = String::new();
        for r in &runs {
            let hops: Vec<String> = r
                .hops
                .iter()
                .map(|h| {
                    format!(
                        "{{\"hop\":{},\"jain\":{},\"classic_mbps\":{},\
                         \"scalable_mbps\":{},\"mice_mbps\":{}}}",
                        h.hop, h.fairness, h.classic_mbps, h.scalable_mbps, h.mice_mbps
                    )
                })
                .collect();
            body.push_str(&format!(
                "{{\"scenario\":\"topology\",\"topology\":\"{}\",\"aqm\":\"{}\",\
                 \"mice_launched\":{},\"mice_completed\":{},\
                 \"fct_ms\":[{},{},{}],\"rate_ratio\":{},\"hops\":[{}]}}\n",
                r.topology,
                r.aqm,
                r.mice_launched,
                r.mice_completed,
                r.fct_ms.0,
                r.fct_ms.1,
                r.fct_ms.2,
                r.rate_ratio,
                hops.join(",")
            ));
        }
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("cannot write topology trace {path}: {e}");
            std::process::exit(1);
        }
        println!("topology trace: {} runs written to {path}", runs.len());
    }
    if a.csv {
        println!("topology,aqm,hop,jain,classic_mbps,scalable_mbps,mice_mbps");
        for r in &runs {
            for h in &r.hops {
                println!(
                    "{},{},{},{},{},{},{}",
                    r.topology, r.aqm, h.hop, h.fairness, h.classic_mbps, h.scalable_mbps,
                    h.mice_mbps
                );
            }
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let a = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg == usage() { 0 } else { 2 });
        }
    };
    if a.scenario.as_deref() == Some("dynamics") {
        run_dynamics(&a);
        return;
    }
    if a.scenario.as_deref() == Some("topology") {
        run_topology(&a);
        return;
    }

    let mut sim = build_sim(&a);
    if let Some(w) = weather(&a) {
        sim.core.set_impairments(w);
    }
    // `--metrics-out`: record the run into a `pi2_obs` registry (a pure
    // observer — the snapshot comes for free, the run's bits don't change).
    if a.metrics_out.is_some() {
        sim.core.enable_metrics();
    }
    // `--profile`: attach the event-loop self-profiler (PI2_PROFILE=1
    // enables it too, inside Sim construction).
    if a.profile {
        sim.enable_profiler();
    }
    // `--audit`: attach the invariant auditor even in release builds
    // (debug builds attach an unlabelled one by default). Standalone PI2
    // also gets the squaring-law check, since its probe exposes both p'
    // and the applied p = min(p'², 0.25).
    if a.audit {
        let mut audit = AuditSink::new(a.seed).with_label(&a.aqm);
        if a.aqm == "pi2" {
            audit = audit.expect_squared(0.25);
        }
        sim.core.enable_audit(audit);
    }
    // `--trace N`: a bounded in-memory sink we keep a handle to for the
    // post-run rendering.
    let mem_trace = if a.trace > 0 {
        let h = Rc::new(RefCell::new(MemorySink::new(a.trace)));
        sim.core.add_trace_sink(Box::new(Rc::clone(&h)));
        Some(h)
    } else {
        None
    };
    // `--trace-out PATH`: stream every event and AQM probe to disk.
    if let Some(path) = &a.trace_out {
        let f = File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create trace file {path}: {e}");
            std::process::exit(2);
        });
        let w = BufWriter::new(f);
        match a.trace_format {
            TraceFormat::Jsonl => sim.core.add_trace_sink(Box::new(JsonlSink::new(w))),
            TraceFormat::Csv => sim.core.add_trace_sink(Box::new(CsvSink::new(w))),
        }
    }
    for spec in &a.flows {
        for _ in 0..spec.count {
            let cc = spec.cc;
            let ecn = spec.ecn;
            sim.add_flow(PathConf::symmetric(a.rtt), &spec.label, Time::ZERO, {
                move |id| Box::new(TcpSource::new(id, cc, ecn, TcpConfig::default()))
            });
        }
    }
    if let Some(bps) = a.udp_bps {
        sim.add_flow(PathConf::symmetric(a.rtt), "udp", Time::ZERO, move |id| {
            Box::new(UdpCbrSource::new(id, bps, 1500, Ecn::NotEct))
        });
    }
    // `--restore`: replace the freshly built state with the checkpoint's.
    // Must come after every flow is added — the blob's schema hash covers
    // the flow set, and per-source state lands in the matching sources.
    if let Some(path) = &a.restore {
        let blob = std::fs::read(path).unwrap_or_else(|e| {
            eprintln!("cannot read checkpoint {path}: {e}");
            std::process::exit(2);
        });
        if let Err(e) = sim.restore(&blob) {
            eprintln!("checkpoint restore from {path} failed: {e:?}");
            std::process::exit(1);
        }
        println!("# restored {path} at t={}", sim.core.now());
    }
    let end = Time::from_secs(a.secs);
    // `--checkpoint-out`: pause mid-run (default: at the end), snapshot,
    // then keep running — saving is read-only, the run's bits don't change.
    if let Some(path) = &a.checkpoint_out {
        let at = a.checkpoint_at.map_or(end, |d| Time::ZERO + d).min(end);
        sim.run_until(at);
        let blob = sim.save();
        if let Err(e) = std::fs::write(path, &blob) {
            eprintln!("cannot write checkpoint {path}: {e}");
            std::process::exit(1);
        }
        println!("# checkpoint: {} bytes written to {path} at t={}", blob.len(), sim.core.now());
    }
    sim.run_until(end);
    if let Err(e) = sim.core.flush_trace_sinks() {
        eprintln!("trace sink error: {e}");
        std::process::exit(1);
    }
    // Detach the observers before borrowing the monitor for the summary.
    let profiler = sim.take_profiler();
    let metrics = sim.core.take_metrics();

    let m = &sim.core.monitor;
    println!(
        "# pi2sim: aqm={} rate={} rtt={} secs={} seed={}",
        a.aqm,
        a.rate_bps,
        a.rtt,
        a.secs,
        a.seed
    );
    let delay = Summary::of_f32(&m.sojourn_ms);
    println!(
        "queue delay [ms]: mean {:.2}  p50 {:.2}  p99 {:.2}  max {:.2}",
        delay.mean, delay.p50, delay.p99, delay.max
    );
    let util_samples = m.util_samples();
    let util: f64 = if util_samples.is_empty() {
        0.0
    } else {
        util_samples.iter().map(|&x| x as f64).sum::<f64>() / util_samples.len() as f64
    };
    println!("utilization: {:.1} %", 100.0 * util);
    // Per-label rows.
    let mut labels: Vec<String> = m.flows.iter().map(|f| f.label.clone()).collect();
    labels.sort();
    labels.dedup();
    for label in &labels {
        let idxs = m.flows_labelled(label);
        let tput = m.pooled_mean_tput_mbps(label);
        let sig: f64 = idxs
            .iter()
            .map(|&i| m.flows[i].signal_fraction())
            .sum::<f64>()
            / idxs.len().max(1) as f64;
        let sj = Summary::of_f32(&m.pooled_sojourns(label));
        println!(
            "{label:>10}: {} flows, {tput:.2} Mb/s total, signal {:.3} %, delay p99 {:.1} ms",
            idxs.len(),
            100.0 * sig,
            sj.p99
        );
    }
    // The always-on counting sink, full-run (warmup included).
    let tot = sim.core.counters.totals();
    println!(
        "counters: enq {} mark {} drop {} deq {}  aqm updates {}",
        tot.enqueued, tot.marked, tot.dropped, tot.dequeued, sim.core.counters.aqm_updates
    );
    if let Some(imp) = sim.core.impairments() {
        let s = imp.stats();
        println!(
            "weather: fwd {}/{} lost, {} dup; rev {}/{} lost, {} dup",
            s.fwd_lost, s.fwd_offered, s.fwd_dup, s.rev_lost, s.rev_offered, s.rev_dup
        );
    }
    if let Some(audit) = sim.core.audit() {
        println!(
            "audit: all invariants held over {} events, {} state probes",
            audit.events_seen(),
            audit.probes_seen()
        );
    }
    if let Some(prof) = &profiler {
        println!("# event-loop profile ({} events timed):", prof.total_events());
        print!("{}", prof.render_table());
    }
    if let Some(path) = &a.metrics_out {
        let snap = metrics.as_deref().expect("metrics were enabled for --metrics-out");
        let body = match a.metrics_format {
            MetricsFormat::Json => snap.registry().to_json(),
            MetricsFormat::Prom => {
                let text = snap.registry().to_prometheus();
                // Our own exposition output must always lint clean; a
                // failure here is a bug, not an input problem.
                if let Err(e) = pi2_obs::prom_lint(&text) {
                    eprintln!("metrics snapshot failed the exposition lint: {e}");
                    std::process::exit(1);
                }
                text
            }
        };
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("cannot write metrics snapshot {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "metrics snapshot: {} bytes ({}) written to {path}",
            body.len(),
            match a.metrics_format {
                MetricsFormat::Json => "json",
                MetricsFormat::Prom => "prometheus",
            }
        );
    }
    if a.csv {
        println!("t_s,qdelay_ms");
        for (t, d) in m.qdelay_series() {
            println!("{t},{d}");
        }
    }
    if let Some(h) = &mem_trace {
        println!("# first {} bottleneck events:", a.trace);
        print!("{}", h.borrow().render());
    }
    if let Some(path) = &a.trace_out {
        if a.trace_format == TraceFormat::Jsonl {
            match verify_jsonl_trace(path, &sim) {
                Ok(n) => println!("trace verified: {n} events, per-flow totals match monitor"),
                Err(e) => {
                    eprintln!("trace verification FAILED: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}

/// Re-parse a JSONL trace and check its per-flow mark/drop/dequeue totals
/// against the Monitor's independent accounting. Returns the event count.
fn verify_jsonl_trace(path: &str, sim: &Sim) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    if text.is_empty() {
        return Err("trace file is empty".to_string());
    }
    let m = &sim.core.monitor;
    let nflows = m.flows.len();
    let mut marks = vec![0u64; nflows];
    let mut drops = vec![0u64; nflows];
    let mut deqs = vec![0u64; nflows];
    let mut n = 0usize;
    for (i, line) in text.lines().enumerate() {
        let bad = |what: &str| format!("line {}: {what}", i + 1);
        let j = Json::parse(line).map_err(|e| bad(&e))?;
        let ev = j
            .get("ev")
            .and_then(|v| v.as_str())
            .ok_or_else(|| bad("missing \"ev\""))?
            .to_string();
        n += 1;
        if ev == "aqm" {
            continue;
        }
        let flow = j
            .get("flow")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| bad("missing \"flow\""))? as usize;
        if flow >= nflows {
            return Err(bad(&format!("unknown flow {flow}")));
        }
        match ev.as_str() {
            "enq" => {}
            "mark" => marks[flow] += 1,
            "drop" => drops[flow] += 1,
            "deq" => deqs[flow] += 1,
            other => return Err(bad(&format!("unknown event '{other}'"))),
        }
    }
    for (i, f) in m.flows.iter().enumerate() {
        if marks[i] != f.marked || drops[i] != f.dropped || deqs[i] != f.dequeued_pkts {
            return Err(format!(
                "flow {i}: trace mark/drop/deq {}/{}/{} but monitor has {}/{}/{}",
                marks[i], drops[i], deqs[i], f.marked, f.dropped, f.dequeued_pkts
            ));
        }
    }
    Ok(n)
}
