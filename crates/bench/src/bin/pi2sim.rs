//! `pi2sim` — run any dumbbell scenario against any AQM in this
//! workspace, from the command line.
//!
//! ```text
//! cargo run -p pi2-bench --release --bin pi2sim -- \
//!     --aqm coupled --rate 40M --rtt 10ms --flows 1xcubic,1xdctcp --secs 60
//! ```

use pi2_aqm::{
    Codel, CodelConfig, CoupledPi2, CoupledPi2Config, CurvyRed, CurvyRedConfig, DualPi2,
    DualPi2Config, FqConfig, FqDrr, Pi, PiConfig, Pi2, Pi2Config, Pie, PieConfig, Red, RedConfig,
};
use pi2_bench::cli::{parse_args, usage, CliArgs, MetricsFormat, TraceFormat};
use pi2_bench::perf::Json;
use pi2_experiments::{
    dynamics, run_fluid, topology, AqmKind, BgGroup, FlowGroup, FluidBackground, Scenario,
    SweepObserver, UdpGroup,
};
use pi2_netsim::{
    csv_field, Aqm, AuditSink, CsvSink, Ecn, ImpairmentConf, JsonlSink, LinkImpairments,
    MemorySink, MonitorConfig, PassAqm, PathConf, PerfettoSink, Qdisc, QueueConfig, Sim,
    SimConfig, SimMetrics, UdpCbrSource,
};
use pi2_obs::ObsServer;
use pi2_simcore::{Duration, Time};
use pi2_stats::Summary;
use pi2_transport::{TcpConfig, TcpSource};
use std::cell::RefCell;
use std::fs::File;
use std::io::BufWriter;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

fn build_sim(a: &CliArgs) -> Sim {
    let cfg = SimConfig {
        queue: QueueConfig {
            rate_bps: a.rate_bps,
            buffer_bytes: 40_000 * 1500,
        },
        seed: a.seed,
        monitor: MonitorConfig {
            warmup: Duration::from_secs(a.warmup_secs as i64),
            record_flow_sojourns: true,
            ..MonitorConfig::default()
        },
    };
    let target = a.target;
    match a.aqm.as_str() {
        "dualq" => {
            let mut dq = DualPi2Config::for_link(a.rate_bps);
            dq.target = target;
            Sim::with_qdisc(cfg, Box::new(DualPi2::new(dq)) as Box<dyn Qdisc>)
        }
        "fq" => Sim::with_qdisc(
            cfg,
            Box::new(FqDrr::new(FqConfig::for_link(a.rate_bps))) as Box<dyn Qdisc>,
        ),
        name => {
            let aqm: Box<dyn Aqm> = match name {
                "pi2" => Box::new(Pi2::new(Pi2Config {
                    target,
                    ..Pi2Config::default()
                })),
                "pie" => Box::new(Pie::new(PieConfig {
                    target,
                    ..PieConfig::paper_default()
                })),
                "bare-pie" => Box::new(Pie::new(PieConfig {
                    target,
                    ..PieConfig::bare()
                })),
                "pi" => Box::new(Pi::new(PiConfig {
                    target,
                    ..PiConfig::untuned_pie_gains()
                })),
                "coupled" => Box::new(CoupledPi2::new(CoupledPi2Config {
                    target,
                    ..CoupledPi2Config::default()
                })),
                "red" => Box::new(Red::new(RedConfig::for_link(
                    a.rate_bps,
                    target / 2,
                    target * 3,
                ))),
                "codel" => Box::new(Codel::new(CodelConfig {
                    target: target / 4,
                    ..CodelConfig::default()
                })),
                "curvy" => Box::new(CurvyRed::new(CurvyRedConfig {
                    range: target * 3,
                    ..CurvyRedConfig::default()
                })),
                "taildrop" => Box::new(PassAqm),
                other => unreachable!("validated AQM {other}"),
            };
            Sim::new(cfg, aqm)
        }
    }
}

/// Decorrelates the weather layer's RNG stream from the simulator's root
/// stream when both derive from the same `--seed`.
const WEATHER_SEED_XOR: u64 = 0x57EA_7AE5_0DD5_EED5;

/// The `--loss/--dup/--jitter` knobs as an impairment layer, applied
/// symmetrically to both directions. `None` when all are zero.
fn weather(a: &CliArgs) -> Option<LinkImpairments> {
    if !a.impaired() {
        return None;
    }
    Some(
        LinkImpairments::new(a.seed ^ WEATHER_SEED_XOR).symmetric(ImpairmentConf {
            loss: a.loss,
            dup: a.dup,
            jitter: a.jitter,
        }),
    )
}

/// Bind the `--serve` listener, announcing the bound address on stderr
/// only — stdout must stay bit-identical to an unserved run.
fn bind_server(addr: &str) -> ObsServer {
    let srv = ObsServer::bind(addr).unwrap_or_else(|e| {
        eprintln!("cannot serve on {addr}: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "# pi2sim: serving http://{}/ (/metrics /progress /healthz /cancel /quit)",
        srv.addr()
    );
    srv
}

/// `PI2_SERVE_HOLD=1` keeps the process alive after the run until a
/// client sends `GET /quit`, so a harness can scrape the final snapshots
/// without racing process exit.
fn hold_for_quit(srv: &ObsServer) {
    if std::env::var("PI2_SERVE_HOLD").as_deref() == Ok("1") {
        eprintln!("# pi2sim: run complete, holding for GET /quit (PI2_SERVE_HOLD=1)");
        srv.wait_quit();
    }
}

/// Bridges a running sweep to the [`ObsServer`]: every finished cell's
/// registry is merged commutatively (the same fold as
/// [`pi2_experiments::merged_metrics`]) and republished, so a mid-sweep
/// scrape sees a valid partial snapshot; `/cancel` is polled by the
/// runner at cell boundaries. A pure observer — sweep results stay
/// bit-identical whether or not a server is attached.
struct SweepServer {
    srv: ObsServer,
    scenario: &'static str,
    merged: Mutex<Option<SimMetrics>>,
    wall: std::time::Instant,
}

impl SweepServer {
    /// Bind and install as the sweep observer when `--serve` was given.
    fn install(a: &CliArgs, scenario: &'static str) -> Option<Arc<SweepServer>> {
        let addr = a.serve.as_deref()?;
        let obs = Arc::new(SweepServer {
            srv: bind_server(addr),
            scenario,
            merged: Mutex::new(None),
            wall: std::time::Instant::now(),
        });
        obs.publish_progress(0, 0);
        pi2_experiments::install_observer(obs.clone());
        Some(obs)
    }

    fn publish_progress(&self, done: usize, total: usize) {
        let wall = self.wall.elapsed().as_secs_f64();
        let fraction = if total == 0 {
            0.0
        } else {
            done as f64 / total as f64
        };
        let eta = if fraction >= 1.0 {
            "0.000".to_string()
        } else if done == 0 {
            "null".to_string()
        } else {
            format!("{:.3}", wall * (1.0 - fraction) / fraction)
        };
        let events = self
            .merged
            .lock()
            .unwrap()
            .as_ref()
            .map_or(0, |m| m.events_processed());
        let eps = if wall > 0.0 { events as f64 / wall } else { 0.0 };
        self.srv.publish_progress(format!(
            "{{\"scenario\":\"{}\",\"cells_done\":{done},\"cells_total\":{total},\
             \"fraction\":{fraction:.6},\"events_per_sec\":{eps:.1},\"eta_secs\":{eta}}}\n",
            self.scenario
        ));
    }
}

impl SweepObserver for SweepServer {
    fn cell_done(&self, done: usize, total: usize) {
        self.publish_progress(done, total);
    }

    fn cell_metrics(&self, metrics: &SimMetrics) {
        let mut merged = self.merged.lock().unwrap();
        match merged.as_mut() {
            Some(acc) => acc.merge(metrics),
            None => *merged = Some(metrics.clone()),
        }
        let text = merged.as_ref().expect("just set").registry().to_prometheus();
        self.srv.publish_metrics(text);
    }

    fn cancelled(&self) -> bool {
        self.srv.cancel_requested()
    }

    fn on_cancel(&self, done: usize, total: usize) {
        self.publish_progress(done, total);
        eprintln!(
            "# pi2sim: cancel honoured at a cell boundary ({done}/{total} cells); \
             completed cells are deterministic, so rerunning resumes the rest"
        );
    }
}

/// `--scenario dynamics`: the step-response family (rate-step and
/// flow-churn, PIE vs PI2 vs DualPI2) with its spike/settle table.
fn run_dynamics(a: &CliArgs) {
    let obs = SweepServer::install(a, "dynamics");
    println!(
        "# pi2sim: scenario=dynamics seed={} loss={} dup={} jitter={}",
        a.seed, a.loss, a.dup, a.jitter
    );
    let runs = dynamics::dynamics(a.seed, weather(a));
    // The optional Perfetto rerun below re-executes one cell; detach the
    // observer first so it cannot leak an extra cell into /metrics.
    if obs.is_some() {
        pi2_experiments::clear_observer();
    }
    print!("{}", dynamics::render_table(&runs));
    if let Some(path) = &a.trace_out {
        if a.trace_format == TraceFormat::Perfetto {
            export_dynamics_perfetto(a, path);
        } else {
            let mut body = String::new();
            for r in &runs {
                let settle = r.settle_s.map_or("null".to_string(), |s| format!("{s}"));
                let series: Vec<String> = r
                    .qdelay
                    .iter()
                    .map(|(t, v)| format!("[{t},{v}]"))
                    .collect();
                body.push_str(&format!(
                    "{{\"scenario\":\"dynamics\",\"disturbance\":\"{}\",\"aqm\":\"{}\",\
                     \"spike_ms\":{},\"settle_s\":{},\"revert_spike_ms\":{},\"qdelay\":[{}]}}\n",
                    r.disturbance.name(),
                    r.aqm,
                    r.spike_ms,
                    settle,
                    r.revert_spike_ms,
                    series.join(",")
                ));
            }
            if let Err(e) = std::fs::write(path, &body) {
                eprintln!("cannot write dynamics trace {path}: {e}");
                std::process::exit(1);
            }
            println!("dynamics trace: {} runs written to {path}", runs.len());
        }
    }
    if a.csv {
        println!("disturbance,aqm,t_s,qdelay_ms");
        for r in &runs {
            let (dist, aqm) = (csv_field(r.disturbance.name()), csv_field(r.aqm));
            for (t, d) in &r.qdelay {
                println!("{dist},{aqm},{t},{d}");
            }
        }
    }
    if let Some(obs) = obs {
        hold_for_quit(&obs.srv);
    }
}

/// `--scenario dynamics --trace-format perfetto`: rerun one representative
/// cell (PI2 under the rate-step disturbance) serially with the Perfetto
/// timeline sink attached, annotating the scheduled disturbance edges on
/// the bottleneck's track.
fn export_dynamics_perfetto(a: &CliArgs, path: &str) {
    let mut sc = dynamics::scenario_for(
        AqmKind::pi2_default(),
        dynamics::Disturbance::RateStep,
        a.seed,
    );
    sc.impairments = weather(a);
    let f = File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create trace file {path}: {e}");
        std::process::exit(2);
    });
    let sink = Rc::new(RefCell::new(PerfettoSink::new(BufWriter::new(f))));
    {
        let mut s = sink.borrow_mut();
        s.instant(
            Time::from_secs(dynamics::STEP_DOWN_S),
            "rate-step: 40 -> 10 Mb/s",
        );
        s.instant(
            Time::from_secs(dynamics::STEP_UP_S),
            "rate-step: 10 -> 40 Mb/s",
        );
    }
    let h = Rc::clone(&sink);
    let _ = sc.run_prepared(move |sim| sim.core.add_trace_sink(Box::new(h)));
    if let Err(e) = sink.borrow_mut().finish() {
        eprintln!("cannot write perfetto trace {path}: {e}");
        std::process::exit(1);
    }
    println!("dynamics perfetto trace: rate-step/pi2 cell written to {path}");
}

/// `--scenario topology`: multi-hop parking-lot / access-core layouts
/// under heavy-tailed mice cross-traffic (PI2 vs DualPI2 on every hop),
/// with per-hop fairness and mice-FCT percentile output. `--audit`
/// attaches the invariant auditor (per-hop packet conservation included)
/// to every cell.
fn run_topology(a: &CliArgs) {
    let obs = SweepServer::install(a, "topology");
    println!(
        "# pi2sim: scenario=topology seed={} audit={}",
        a.seed, a.audit
    );
    let wall = std::time::Instant::now();
    let runs = topology::topology(a.seed, a.audit);
    let wall_s = wall.elapsed().as_secs_f64();
    // The optional Perfetto rerun below re-executes one cell; detach the
    // observer first so it cannot leak an extra cell into /metrics.
    if obs.is_some() {
        pi2_experiments::clear_observer();
    }
    print!("{}", topology::render_table(&runs));
    // Leave a BENCH trajectory entry when opted in (same knob ci.sh
    // uses for the microbenches): the multi-hop event-loop throughput
    // plus the deterministic headline statistics per cell, so the
    // history can show both perf drift and behavior drift over time.
    if std::env::var("PI2_BENCH_HISTORY").as_deref() == Ok("1") {
        let total_events: u64 = runs.iter().map(|r| r.events_processed).sum();
        let mut metrics = vec![
            ("wall_secs".to_string(), wall_s),
            ("events_per_sec".to_string(), total_events as f64 / wall_s),
        ];
        for r in &runs {
            let cell = format!("{}_{}", r.topology.replace('-', "_"), r.aqm);
            metrics.push((format!("{cell}_events"), r.events_processed as f64));
            metrics.push((format!("{cell}_fct_p99_ms"), r.fct_ms.2));
            metrics.push((format!("{cell}_rate_ratio"), r.rate_ratio));
        }
        pi2_bench::perf::record_and_report("topology", metrics);
    }
    if let Some(path) = &a.trace_out {
        if a.trace_format == TraceFormat::Perfetto {
            export_topology_perfetto(a, path);
        } else {
            export_topology_jsonl(&runs, path);
        }
    }
    if a.csv {
        println!("topology,aqm,hop,jain,classic_mbps,scalable_mbps,mice_mbps");
        for r in &runs {
            let (topo, aqm) = (csv_field(r.topology), csv_field(r.aqm));
            for h in &r.hops {
                println!(
                    "{topo},{aqm},{},{},{},{},{}",
                    h.hop, h.fairness, h.classic_mbps, h.scalable_mbps, h.mice_mbps
                );
            }
        }
    }
    if let Some(obs) = obs {
        hold_for_quit(&obs.srv);
    }
}

/// The `--trace-out` JSONL body for the topology family (one line per
/// topology × AQM cell).
fn export_topology_jsonl(runs: &[topology::TopologyRun], path: &str) {
    {
        let mut body = String::new();
        for r in runs {
            let hops: Vec<String> = r
                .hops
                .iter()
                .map(|h| {
                    format!(
                        "{{\"hop\":{},\"jain\":{},\"classic_mbps\":{},\
                         \"scalable_mbps\":{},\"mice_mbps\":{}}}",
                        h.hop, h.fairness, h.classic_mbps, h.scalable_mbps, h.mice_mbps
                    )
                })
                .collect();
            body.push_str(&format!(
                "{{\"scenario\":\"topology\",\"topology\":\"{}\",\"aqm\":\"{}\",\
                 \"mice_launched\":{},\"mice_completed\":{},\
                 \"fct_ms\":[{},{},{}],\"rate_ratio\":{},\"hops\":[{}]}}\n",
                r.topology,
                r.aqm,
                r.mice_launched,
                r.mice_completed,
                r.fct_ms.0,
                r.fct_ms.1,
                r.fct_ms.2,
                r.rate_ratio,
                hops.join(",")
            ));
        }
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("cannot write topology trace {path}: {e}");
            std::process::exit(1);
        }
        println!("topology trace: {} runs written to {path}", runs.len());
    }
}

/// `--scenario topology --trace-format perfetto`: rerun one representative
/// cell (the 3-hop parking lot under PI2) serially with the Perfetto
/// timeline sink attached, annotating the mice arrival window. Hop tracks
/// beyond the bottleneck come from the sim's hop-event side channel.
fn export_topology_perfetto(a: &CliArgs, path: &str) {
    let f = File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create trace file {path}: {e}");
        std::process::exit(2);
    });
    let sink = Rc::new(RefCell::new(PerfettoSink::new(BufWriter::new(f))));
    {
        let mut s = sink.borrow_mut();
        s.instant(
            Time::from_secs(topology::MICE_START_S),
            "mice arrivals start",
        );
        s.instant(Time::from_secs(topology::MICE_STOP_S), "mice arrivals stop");
    }
    let h = Rc::clone(&sink);
    let _ = topology::run_one_prepared(
        topology::TopologyKind::ParkingLot3,
        AqmKind::pi2_default(),
        a.seed,
        a.audit,
        move |sim| sim.core.add_trace_sink(Box::new(h)),
    );
    if let Err(e) = sink.borrow_mut().finish() {
        eprintln!("cannot write perfetto trace {path}: {e}");
        std::process::exit(1);
    }
    println!("topology perfetto trace: parking-lot3/pi2 cell written to {path}");
}

/// The CLI AQM as an experiments [`AqmKind`], for the fluid and hybrid
/// backends (the flow-level engine compiles the controller's gains and
/// probability encoder; schemes without a PI core have no fluid law).
fn aqm_kind(a: &CliArgs) -> Result<AqmKind, String> {
    let target = a.target;
    Ok(match a.aqm.as_str() {
        "pi2" => AqmKind::Pi2(Pi2Config {
            target,
            ..Pi2Config::default()
        }),
        "pie" => AqmKind::Pie(PieConfig {
            target,
            ..PieConfig::paper_default()
        }),
        "bare-pie" => AqmKind::Pie(PieConfig {
            target,
            ..PieConfig::bare()
        }),
        "pi" => AqmKind::Pi(PiConfig {
            target,
            ..PiConfig::untuned_pie_gains()
        }),
        "coupled" => AqmKind::Coupled(CoupledPi2Config {
            target,
            ..CoupledPi2Config::default()
        }),
        "dualq" => {
            let mut dq = DualPi2Config::for_link(a.rate_bps);
            dq.target = target;
            AqmKind::DualQ(dq)
        }
        other => {
            return Err(format!(
                "--backend {} does not support --aqm {other} \
                 (PI-family controllers only: pi2, pie, bare-pie, pi, coupled, dualq)",
                a.backend
            ))
        }
    })
}

/// `--backend fluid`: compile the dumbbell onto the flow-level engine and
/// integrate it — no packets, no per-packet events, so flow counts in the
/// millions finish in seconds.
fn run_fluid_backend(a: &CliArgs) {
    for (flag, given) in [
        ("--trace-out", a.trace_out.is_some()),
        ("--checkpoint-out", a.checkpoint_out.is_some()),
        ("--restore", a.restore.is_some()),
        ("--serve", a.serve.is_some()),
        ("--trace", a.trace > 0),
    ] {
        if given {
            eprintln!("--backend fluid does not support {flag} (packet machinery only)");
            std::process::exit(2);
        }
    }
    let kind = aqm_kind(a).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let mut sc = Scenario::new(kind, a.rate_bps);
    for spec in &a.flows {
        sc.tcp
            .push(FlowGroup::new(spec.count, spec.cc, spec.ecn, &spec.label, a.rtt));
    }
    if let Some(bps) = a.udp_bps {
        sc.udp.push(UdpGroup {
            count: 1,
            rate_bps: bps,
            pkt_size: 1500,
            label: "udp".to_string(),
            rtt: a.rtt,
            start: Time::ZERO,
            stop: None,
        });
    }
    sc.duration = Time::from_secs(a.secs);
    sc.warmup = Duration::from_secs(a.warmup_secs as i64);
    sc.seed = a.seed;
    sc.sample_interval = Duration::from_millis(100);
    if let Some(w) = weather(a) {
        sc.impairments = Some(w);
    }
    let wall = std::time::Instant::now();
    let r = run_fluid(&sc).unwrap_or_else(|e| {
        eprintln!("--backend fluid: {e}");
        std::process::exit(2);
    });
    let wall_s = wall.elapsed().as_secs_f64();
    println!(
        "# pi2sim: backend=fluid aqm={} rate={} rtt={} secs={} seed={}",
        a.aqm, a.rate_bps, a.rtt, a.secs, a.seed
    );
    println!(
        "flows: {} across {} classes, {} rate reallocations, wall {wall_s:.3} s",
        r.flow_count,
        r.labels.len(),
        r.alloc_events
    );
    println!(
        "queue delay [ms]: mean {:.2}   utilization: {:.1} %   signal {:.3} %",
        r.summary.qdelay_s * 1e3,
        100.0 * r.summary.utilization,
        100.0 * r.summary.signal
    );
    for (i, label) in r.labels.iter().enumerate() {
        let per_flow_mbps = r.class_rates_pps[i] * 1500.0 * 8.0 / 1e6;
        println!(
            "{label:>10}: {} flows, {:.4} Mb/s per flow, {:.2} Mb/s total",
            r.counts[i] as u64,
            per_flow_mbps,
            per_flow_mbps * r.counts[i]
        );
    }
    if a.csv {
        println!("t_s,qdelay_ms");
        for s in &r.samples {
            println!("{},{}", s.t, s.qdelay * 1e3);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let a = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg == usage() { 0 } else { 2 });
        }
    };
    if a.scenario.as_deref() == Some("dynamics") {
        run_dynamics(&a);
        return;
    }
    if a.scenario.as_deref() == Some("topology") {
        run_topology(&a);
        return;
    }
    if a.backend == "fluid" {
        run_fluid_backend(&a);
        return;
    }

    // `--serve`: bind the observability endpoint before the run starts so
    // a harness can watch from t=0. Serving implies metrics (the /metrics
    // body) — both are pure observers, the run's bits don't change.
    let serve = a.serve.as_deref().map(bind_server);
    let mut sim = build_sim(&a);
    if let Some(w) = weather(&a) {
        sim.core.set_impairments(w);
    }
    // `--metrics-out`: record the run into a `pi2_obs` registry (a pure
    // observer — the snapshot comes for free, the run's bits don't change).
    if a.metrics_out.is_some() || serve.is_some() {
        sim.core.enable_metrics();
    }
    // `--profile`: attach the event-loop self-profiler (PI2_PROFILE=1
    // enables it too, inside Sim construction).
    if a.profile {
        sim.enable_profiler();
    }
    // `--audit`: attach the invariant auditor even in release builds
    // (debug builds attach an unlabelled one by default). Standalone PI2
    // also gets the squaring-law check, since its probe exposes both p'
    // and the applied p = min(p'², 0.25).
    if a.audit {
        let mut audit = AuditSink::new(a.seed).with_label(&a.aqm);
        if a.aqm == "pi2" {
            audit = audit.expect_squared(0.25);
        }
        sim.core.enable_audit(audit);
    }
    // `--trace N`: a bounded in-memory sink we keep a handle to for the
    // post-run rendering.
    let mem_trace = if a.trace > 0 {
        let h = Rc::new(RefCell::new(MemorySink::new(a.trace)));
        sim.core.add_trace_sink(Box::new(Rc::clone(&h)));
        Some(h)
    } else {
        None
    };
    // `--trace-out PATH`: stream every event and AQM probe to disk.
    if let Some(path) = &a.trace_out {
        let f = File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create trace file {path}: {e}");
            std::process::exit(2);
        });
        let w = BufWriter::new(f);
        match a.trace_format {
            TraceFormat::Jsonl => sim.core.add_trace_sink(Box::new(JsonlSink::new(w))),
            TraceFormat::Csv => sim.core.add_trace_sink(Box::new(CsvSink::new(w))),
            // The flush at end-of-run finalizes the timeline (flow
            // lifetime slices, track metadata, the closing bracket).
            TraceFormat::Perfetto => sim.core.add_trace_sink(Box::new(PerfettoSink::new(w))),
        }
    }
    for spec in &a.flows {
        for _ in 0..spec.count {
            let cc = spec.cc;
            let ecn = spec.ecn;
            sim.add_flow(PathConf::symmetric(a.rtt), &spec.label, Time::ZERO, {
                move |id| Box::new(TcpSource::new(id, cc, ecn, TcpConfig::default()))
            });
        }
    }
    if let Some(bps) = a.udp_bps {
        sim.add_flow(PathConf::symmetric(a.rtt), "udp", Time::ZERO, move |id| {
            Box::new(UdpCbrSource::new(id, bps, 1500, Ecn::NotEct))
        });
    }
    // `--backend hybrid`: attach the fluid background aggregate. Must come
    // before any restore — the checkpoint schema hash covers the
    // background's presence and shape. With no `--bg-flows` the run is the
    // packet path, bit for bit (nothing is attached at all).
    if a.backend == "hybrid" && !a.bg_flows.is_empty() {
        let kind = aqm_kind(&a).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        let groups: Vec<BgGroup> = a
            .bg_flows
            .iter()
            .map(|s| BgGroup::new(s.count, s.cc, a.rtt, &s.label))
            .collect();
        match FluidBackground::new(&groups, &kind, a.rate_bps) {
            Ok(bg) => sim.attach_background(Box::new(bg)),
            Err(e) => {
                eprintln!("--backend hybrid: {e}");
                std::process::exit(2);
            }
        }
    }
    // `--restore`: replace the freshly built state with the checkpoint's.
    // Must come after every flow is added — the blob's schema hash covers
    // the flow set, and per-source state lands in the matching sources.
    if let Some(path) = &a.restore {
        let blob = std::fs::read(path).unwrap_or_else(|e| {
            eprintln!("cannot read checkpoint {path}: {e}");
            std::process::exit(2);
        });
        if let Err(e) = sim.restore(&blob) {
            eprintln!("checkpoint restore from {path} failed: {e:?}");
            std::process::exit(1);
        }
        println!("# restored {path} at t={}", sim.core.now());
    }
    let end = Time::from_secs(a.secs);
    // `--checkpoint-out`: pause mid-run (default: at the end), snapshot,
    // then keep running — saving is read-only, the run's bits don't change.
    if let Some(path) = &a.checkpoint_out {
        let at = a.checkpoint_at.map_or(end, |d| Time::ZERO + d).min(end);
        sim.run_until(at);
        let blob = sim.save();
        if let Err(e) = std::fs::write(path, &blob) {
            eprintln!("cannot write checkpoint {path}: {e}");
            std::process::exit(1);
        }
        println!("# checkpoint: {} bytes written to {path} at t={}", blob.len(), sim.core.now());
    }
    match &serve {
        None => sim.run_until(end),
        Some(srv) => run_served(&a, srv, &mut sim, end),
    }
    if let Err(e) = sim.core.flush_trace_sinks() {
        eprintln!("trace sink error: {e}");
        std::process::exit(1);
    }
    // Detach the observers before borrowing the monitor for the summary.
    let profiler = sim.take_profiler();
    let metrics = sim.core.take_metrics();

    let m = &sim.core.monitor;
    println!(
        "# pi2sim: aqm={} rate={} rtt={} secs={} seed={}",
        a.aqm,
        a.rate_bps,
        a.rtt,
        a.secs,
        a.seed
    );
    let delay = Summary::of_f32(&m.sojourn_ms);
    println!(
        "queue delay [ms]: mean {:.2}  p50 {:.2}  p99 {:.2}  max {:.2}",
        delay.mean, delay.p50, delay.p99, delay.max
    );
    let util_samples = m.util_samples();
    let mut util: f64 = if util_samples.is_empty() {
        0.0
    } else {
        util_samples.iter().map(|&x| x as f64).sum::<f64>() / util_samples.len() as f64
    };
    // Hybrid runs: the monitor's samples normalize by the residual
    // foreground rate (capacity minus the background grant), which can
    // exceed 1 while the foreground drains queue. Report the shared link
    // instead — foreground plus granted background bits over nominal
    // capacity — matching `summarize_run`.
    if let Some(bg) = sim.background() {
        let span = m.measurement_span();
        let span_s = span.as_secs_f64();
        if span_s > 0.0 && a.rate_bps > 0 {
            let fg_bits: f64 = m
                .flows
                .iter()
                .map(|f| f.mean_tput_mbps(span) * 1e6 * span_s)
                .sum();
            let warm = Time::ZERO + Duration::from_secs(a.warmup_secs as i64);
            let mut bg_bits = 0.0;
            for i in 0..bg.series.len() {
                let (t, bps) = bg.series[i];
                let dt = if i + 1 < bg.series.len() {
                    (bg.series[i + 1].0 - t).as_secs_f64()
                } else if i > 0 {
                    (t - bg.series[i - 1].0).as_secs_f64()
                } else {
                    0.0
                };
                if t >= warm {
                    bg_bits += bps as f64 * dt;
                }
            }
            util = ((fg_bits + bg_bits) / (a.rate_bps as f64 * span_s)).min(1.0);
        }
    }
    println!("utilization: {:.1} %", 100.0 * util);
    // Per-label rows.
    let mut labels: Vec<String> = m.flows.iter().map(|f| f.label.clone()).collect();
    labels.sort();
    labels.dedup();
    for label in &labels {
        let idxs = m.flows_labelled(label);
        let tput = m.pooled_mean_tput_mbps(label);
        let sig: f64 = idxs
            .iter()
            .map(|&i| m.flows[i].signal_fraction())
            .sum::<f64>()
            / idxs.len().max(1) as f64;
        let sj = Summary::of_f32(&m.pooled_sojourns(label));
        println!(
            "{label:>10}: {} flows, {tput:.2} Mb/s total, signal {:.3} %, delay p99 {:.1} ms",
            idxs.len(),
            100.0 * sig,
            sj.p99
        );
    }
    // The always-on counting sink, full-run (warmup included).
    let tot = sim.core.counters.totals();
    println!(
        "counters: enq {} mark {} drop {} deq {}  aqm updates {}",
        tot.enqueued, tot.marked, tot.dropped, tot.dequeued, sim.core.counters.aqm_updates
    );
    if let Some(bg) = sim.background() {
        let mean_mbps = bg.bg_bytes * 8.0 / a.secs.max(1) as f64 / 1e6;
        println!(
            "background: {} fluid flows, mean {:.2} Mb/s served, {} controller grants",
            bg.agg.flow_count(),
            mean_mbps,
            bg.ticks
        );
    }
    if let Some(imp) = sim.core.impairments() {
        let s = imp.stats();
        println!(
            "weather: fwd {}/{} lost, {} dup; rev {}/{} lost, {} dup",
            s.fwd_lost, s.fwd_offered, s.fwd_dup, s.rev_lost, s.rev_offered, s.rev_dup
        );
    }
    if let Some(audit) = sim.core.audit() {
        println!(
            "audit: all invariants held over {} events, {} state probes",
            audit.events_seen(),
            audit.probes_seen()
        );
    }
    if let Some(prof) = &profiler {
        println!("# event-loop profile ({} events timed):", prof.total_events());
        print!("{}", prof.render_table());
    }
    if let Some(path) = &a.metrics_out {
        let snap = metrics.as_deref().expect("metrics were enabled for --metrics-out");
        let body = match a.metrics_format {
            MetricsFormat::Json => snap.registry().to_json(),
            MetricsFormat::Prom => {
                let text = snap.registry().to_prometheus();
                // Our own exposition output must always lint clean; a
                // failure here is a bug, not an input problem.
                if let Err(e) = pi2_obs::prom_lint(&text) {
                    eprintln!("metrics snapshot failed the exposition lint: {e}");
                    std::process::exit(1);
                }
                text
            }
        };
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("cannot write metrics snapshot {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "metrics snapshot: {} bytes ({}) written to {path}",
            body.len(),
            match a.metrics_format {
                MetricsFormat::Json => "json",
                MetricsFormat::Prom => "prometheus",
            }
        );
    }
    if a.csv {
        println!("t_s,qdelay_ms");
        for (t, d) in m.qdelay_series() {
            println!("{t},{d}");
        }
    }
    if let Some(h) = &mem_trace {
        println!("# first {} bottleneck events:", a.trace);
        print!("{}", h.borrow().render());
    }
    if let Some(path) = &a.trace_out {
        if a.trace_format == TraceFormat::Jsonl {
            match verify_jsonl_trace(path, &sim) {
                Ok(n) => println!("trace verified: {n} events, per-flow totals match monitor"),
                Err(e) => {
                    eprintln!("trace verification FAILED: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    if let Some(srv) = &serve {
        // Final snapshots carry the post-run registry (which includes the
        // event totals stamped at detach time), then optionally hold.
        if let Some(snap) = &metrics {
            srv.publish_metrics(snap.registry().to_prometheus());
        }
        hold_for_quit(srv);
    }
}

/// `--serve` on a single run: advance the sim in 250 ms sim-time slices,
/// refreshing /metrics and /progress between slices and polling /cancel.
/// Slicing is invisible — `run_until` in steps is bit-identical to one
/// call, and all serving chatter goes to stderr — so stdout matches an
/// unserved run. A cancel checkpoints the in-flight sim ([`Sim::save`])
/// and exits 130; the run resumes bit-identically via `--restore`.
fn run_served(a: &CliArgs, srv: &ObsServer, sim: &mut Sim, end: Time) {
    let slice = Duration::from_millis(250);
    let wall = std::time::Instant::now();
    let start = sim.core.now();
    loop {
        publish_single(srv, sim, start, end, wall.elapsed().as_secs_f64());
        let now = sim.core.now();
        if now >= end {
            break;
        }
        if srv.cancel_requested() {
            let path = a
                .checkpoint_out
                .clone()
                .unwrap_or_else(|| "pi2sim-cancel.ckpt".to_string());
            let blob = sim.save();
            if let Err(e) = std::fs::write(&path, &blob) {
                eprintln!("cannot write cancel checkpoint {path}: {e}");
                std::process::exit(1);
            }
            eprintln!(
                "# pi2sim: cancelled at t={}; {} bytes saved; resume with --restore {path}",
                sim.core.now(),
                blob.len()
            );
            std::process::exit(130);
        }
        sim.run_until((now + slice).min(end));
    }
}

/// Refresh the served /metrics and /progress snapshots from a single
/// in-flight run (read-only: live registry text plus the sim-time
/// progress report from [`pi2_simcore::progress`]).
fn publish_single(srv: &ObsServer, sim: &Sim, start: Time, end: Time, wall_secs: f64) {
    if let Some(m) = sim.core.metrics() {
        srv.publish_metrics(m.registry().to_prometheus());
    }
    let now = sim.core.now();
    let p = pi2_simcore::progress(start, now, end, sim.core.events.popped(), wall_secs);
    let eta = p.eta_secs.map_or("null".to_string(), |e| format!("{e:.3}"));
    srv.publish_progress(format!(
        "{{\"cell\":\"single\",\"sim_time_s\":{:.3},\"fraction\":{:.6},\
         \"events_per_sec\":{:.1},\"eta_secs\":{eta}}}\n",
        now.as_secs_f64(),
        p.fraction,
        p.events_per_sec
    ));
}

/// Re-parse a JSONL trace and check its per-flow mark/drop/dequeue totals
/// against the Monitor's independent accounting. Returns the event count.
fn verify_jsonl_trace(path: &str, sim: &Sim) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    if text.is_empty() {
        return Err("trace file is empty".to_string());
    }
    let m = &sim.core.monitor;
    let nflows = m.flows.len();
    let mut marks = vec![0u64; nflows];
    let mut drops = vec![0u64; nflows];
    let mut deqs = vec![0u64; nflows];
    let mut n = 0usize;
    for (i, line) in text.lines().enumerate() {
        let bad = |what: &str| format!("line {}: {what}", i + 1);
        let j = Json::parse(line).map_err(|e| bad(&e))?;
        let ev = j
            .get("ev")
            .and_then(|v| v.as_str())
            .ok_or_else(|| bad("missing \"ev\""))?
            .to_string();
        n += 1;
        if ev == "aqm" {
            continue;
        }
        let flow = j
            .get("flow")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| bad("missing \"flow\""))? as usize;
        if flow >= nflows {
            return Err(bad(&format!("unknown flow {flow}")));
        }
        match ev.as_str() {
            "enq" => {}
            "mark" => marks[flow] += 1,
            "drop" => drops[flow] += 1,
            "deq" => deqs[flow] += 1,
            other => return Err(bad(&format!("unknown event '{other}'"))),
        }
    }
    for (i, f) in m.flows.iter().enumerate() {
        if marks[i] != f.marked || drops[i] != f.dropped || deqs[i] != f.dequeued_pkts {
            return Err(format!(
                "flow {i}: trace mark/drop/deq {}/{}/{} but monitor has {}/{}/{}",
                marks[i], drops[i], deqs[i], f.marked, f.dropped, f.dequeued_pkts
            ));
        }
    }
    Ok(n)
}
