//! Figure 14: CDFs of per-packet queue delay with 5 ms and 20 ms targets,
//! under (a) 20 TCP and (b) 5 TCP + 2 UDP; PIE vs PI2.

use pi2_bench::{f, header, table};
use pi2_experiments::fig14::fig14;

fn main() {
    header(
        "Figure 14",
        "queue-delay CDFs at 5/20 ms targets (10 Mb/s, 100 ms)",
    );
    let runs = fig14();
    let mut rows = vec![vec![
        "panel".to_string(),
        "target".into(),
        "aqm".into(),
        "p25 ms".into(),
        "p50 ms".into(),
        "p75 ms".into(),
        "p95 ms".into(),
        "p99 ms".into(),
    ]];
    for r in &runs {
        rows.push(vec![
            if r.udp_mix { "5TCP+2UDP" } else { "20 TCP" }.to_string(),
            format!("{} ms", r.target_ms),
            r.aqm.to_string(),
            f(r.cdf.quantile(0.25)),
            f(r.cdf.quantile(0.50)),
            f(r.cdf.quantile(0.75)),
            f(r.cdf.quantile(0.95)),
            f(r.cdf.quantile(0.99)),
        ]);
    }
    table(&rows);
    // Print one CDF curve pair for plotting.
    println!("CDF curves (20 TCP, 20 ms target): x = delay ms, y = P[delay <= x]");
    for r in runs.iter().filter(|r| !r.udp_mix && r.target_ms == 20) {
        let curve = r.cdf.curve(20);
        let pts: Vec<String> = curve
            .iter()
            .map(|&(x, y)| format!("({x:.0},{y:.2})"))
            .collect();
        println!("  {}: {}", r.aqm, pts.join(" "));
    }
    println!(
        "\nshape check: for each (panel, target) the PI2 and PIE CDFs are close —\n\
         PI2's simplicity costs nothing in the delay distribution — and both track\n\
         their configured target."
    );
}
