//! Figure 19: per-flow rate ratio for flow-count combinations A:B from
//! 0:10 to 10:0 (A = Cubic, B = ECN-Cubic or DCTCP); 40 Mb/s, RTT 10 ms.

use pi2_bench::{f, header, run_secs, table};
use pi2_experiments::fig19::fig19;

fn main() {
    header(
        "Figure 19",
        "rate balance across flow-count combinations (40 Mb/s, 10 ms)",
    );
    let runs = fig19(run_secs(60));
    let mut rows = vec![vec![
        "combo".to_string(),
        "pair".into(),
        "aqm".into(),
        "per-flow ratio A/B".into(),
    ]];
    for r in &runs {
        rows.push(vec![
            format!("A{}-B{}", r.a, r.b),
            match r.pair {
                pi2_experiments::grid::Pair::CubicVsEcnCubic => "Cubic/ECN-Cubic".to_string(),
                pi2_experiments::grid::Pair::CubicVsDctcp => "Cubic/DCTCP".to_string(),
            },
            r.aqm.to_string(),
            r.ratio.map(f).unwrap_or_else(|| "-".into()),
        ]);
    }
    table(&rows);
    println!(
        "shape check: the Cubic/DCTCP per-flow ratio under PIE is far below 1 for\n\
         every combination; under coupled PI2 it stays near 1 irrespective of the\n\
         flow counts; the ECN-Cubic control pair is ~1 throughout."
    );
}
