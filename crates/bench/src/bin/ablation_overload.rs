//! Ablation: overload handling (paper §5). PI2 replaces PIE's overload
//! heuristics with a flat 25 % Classic-probability cap; beyond it the
//! queue grows and tail-drop takes over. This sweep drives rising
//! unresponsive UDP load through both AQMs on a finite (100 ms) buffer.

use pi2_bench::{f, header, table};
use pi2_experiments::overload::sweep;

fn main() {
    header(
        "Ablation: overload",
        "unresponsive UDP load sweep, 10 Mb/s link, 100 ms buffer, 2 Reno + 1 UDP",
    );
    let pts = sweep(0x0f10);
    let mut rows = vec![vec![
        "udp load".to_string(),
        "aqm".into(),
        "p50 delay ms".into(),
        "p99 delay ms".into(),
        "applied p %".into(),
        "aqm loss".into(),
        "taildrop loss".into(),
        "tcp Mb/s".into(),
    ]];
    for p in &pts {
        rows.push(vec![
            format!("{:.0}%", p.udp_load * 100.0),
            p.aqm.to_string(),
            f(p.delay.p50),
            f(p.delay.p99),
            f(p.udp_prob_pct),
            f(p.aqm_loss),
            f(p.overflow_loss),
            f(p.tcp_mbps),
        ]);
    }
    table(&rows);
    println!(
        "shape check: below saturation both AQMs hold the 20 ms target. Past ~100%\n\
         offered UDP load, PI2's applied probability pins at its 25% cap, the queue\n\
         rises to the physical buffer and tail-drop supplies the remaining loss —\n\
         exactly the §5 hand-over the paper prescribes instead of PIE's special cases."
    );
}
