//! Ablation: the queue-delay estimator (DESIGN.md modelling decision).
//!
//! PIE was built around a departure-rate estimator because hardware
//! cannot timestamp cheaply; CoDel argued for sojourn timestamps; in
//! simulation `qlen/C` is exact. PI2's controller should be robust to
//! all three — this run quantifies it on the Figure 11(a) workload.

use pi2_bench::{f, header, seed, table};
use pi2_experiments::ablation::estimator_choice;

fn main() {
    header(
        "Ablation: delay estimator",
        "PI2 under qlen/rate vs RFC 8033 rate-estimation vs sojourn timestamps",
    );
    let rs = estimator_choice(seed(0xe5));
    let mut rows = vec![vec![
        "estimator".to_string(),
        "mean ms".into(),
        "p50 ms".into(),
        "p99 ms".into(),
    ]];
    for (name, s) in &rs {
        rows.push(vec![name.to_string(), f(s.mean), f(s.p50), f(s.p99)]);
    }
    table(&rows);
    println!(
        "shape check: all three estimators hold the same target within a few ms —\n\
         the PI core, not the measurement method, does the work. (The rate\n\
         estimator matters under capacity changes, where it lags; see fig12.)"
    );
}
