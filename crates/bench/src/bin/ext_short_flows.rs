//! §6 short-flow claim: flow completion times under Web-like workloads
//! are "essentially the same" for PIE, bare-PIE and PI2.

use pi2_bench::{f, header, table};
use pi2_experiments::shortflows::{compare, WebWorkload};

fn main() {
    header(
        "Short flows",
        "flow completion times under light and heavy web-like workloads",
    );
    for (name, w) in [("light", WebWorkload::light()), ("heavy", WebWorkload::heavy())] {
        println!("--- {name} workload: {} flows/s, Pareto sizes, 10 Mb/s, 50 ms ---", w.arrivals_per_sec);
        let results = compare(&w);
        let mut rows = vec![vec![
            "aqm".to_string(),
            "short p50 s".into(),
            "short p99 s".into(),
            "long p50 s".into(),
            "long p99 s".into(),
            "completed".into(),
            "qdelay ms".into(),
        ]];
        for (i, r) in results.iter().enumerate() {
            let name = match i {
                0 => "pie (full)",
                1 => "pie (bare)",
                _ => "pi2",
            };
            rows.push(vec![
                name.to_string(),
                f(r.short_fct.p50),
                f(r.short_fct.p99),
                f(r.long_fct.p50),
                f(r.long_fct.p99),
                format!("{}/{}", r.completed, r.launched),
                f(r.qdelay_ms),
            ]);
        }
        table(&rows);
    }
    println!(
        "shape check: the three AQMs' FCT percentiles agree within noise on both\n\
         workloads, matching the paper's 'essentially the same' finding."
    );
}
