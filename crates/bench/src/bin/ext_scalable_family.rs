//! Extension: the whole Scalable family (paper §5 names "DCTCP,
//! Relentless, Scalable, ...") against Cubic under the coupled AQM.
//!
//! All four are B = 1 controls, but their window constants differ —
//! DCTCP `2/p`, half-packet `2/p`, Relentless `1/p`, Scalable TCP
//! `0.08/p` — so the k = 2 coupling tuned for DCTCP lands each at a
//! different (but bounded, predictable) balance point. Compare with
//! PIE, under which every one of them starves Cubic outright.

use pi2_bench::{f, header, run_secs, table};
use pi2_experiments::par_map;
use pi2_experiments::scenario::{AqmKind, FlowGroup, Scenario};
use pi2_simcore::{Duration, Time};
use pi2_transport::{CcKind, EcnSetting};

fn run(aqm: AqmKind, cc: CcKind, secs: u64) -> (f64, f64, f64) {
    let rtt = Duration::from_millis(10);
    let mut sc = Scenario::new(aqm, 40_000_000);
    sc.tcp.push(FlowGroup::new(
        1,
        CcKind::Cubic,
        EcnSetting::NotEcn,
        "cubic",
        rtt,
    ));
    sc.tcp.push(FlowGroup::new(1, cc, EcnSetting::Scalable, "scal", rtt));
    sc.duration = Time::from_secs(secs);
    sc.warmup = Duration::from_secs(secs as i64 / 3);
    sc.seed = 0xfa1;
    let r = sc.run();
    let c = r.per_flow_tput_mbps("cubic");
    let s = r.per_flow_tput_mbps("scal");
    (c, s, r.monitor.flows[1].signal_fraction())
}

fn main() {
    header(
        "Extension: the Scalable family",
        "Cubic vs each B=1 control (40 Mb/s, 10 ms), coupled PI2 vs PIE",
    );
    let secs = run_secs(60);
    let mut rows = vec![vec![
        "scalable cc".to_string(),
        "law".into(),
        "aqm".into(),
        "cubic Mb/s".into(),
        "scal Mb/s".into(),
        "ratio c/s".into(),
        "scal sig".into(),
    ]];
    let mut work = Vec::new();
    for (cc, law) in [
        (CcKind::Dctcp, "2/p"),
        (CcKind::ScalableHalfPkt, "2/p"),
        (CcKind::Relentless, "1/p"),
        (CcKind::ScalableTcp, "0.08/p"),
    ] {
        for aqm in [AqmKind::coupled_default(), AqmKind::pie_default()] {
            work.push((cc, law, aqm));
        }
    }
    let results = par_map(&work, |(cc, law, aqm)| {
        let (c, s, sig) = run(aqm.clone(), *cc, secs);
        (format!("{cc:?}"), law.to_string(), aqm.name(), c, s, sig)
    });
    for (cc, law, name, c, s, sig) in results {
        rows.push(vec![
            cc,
            law,
            name.to_string(),
            f(c),
            f(s),
            f(c / s.max(1e-9)),
            f(sig),
        ]);
    }
    table(&rows);
    println!(
        "shape check: under PIE the 2/p and 1/p controls starve Cubic. Under the\n\
         coupled AQM each lands at a bounded balance set by its window constant:\n\
         DCTCP and the half-packet idealization (both 2/p) sit at ~1; Relentless\n\
         (1/p, half the window at the same p) gives Cubic ~2x; Scalable TCP\n\
         (0.08/p, 25x gentler) is dominated by Cubic — k = 2 is a DCTCP-specific\n\
         constant, and the coupling transparently exposes each control's own\n\
         aggressiveness rather than hiding it."
    );
}
