//! Figure 4: Bode gain/phase margins of PIE for p from 0.0001 % to 100 %,
//! with tune ∈ {auto, 1, ½, ⅛}; R = 100 ms, α=0.125·tune, β=1.25·tune,
//! T = 32 ms.

use pi2_bench::{f, header, table};
use pi2_fluid::{margins, pie_tune_factor, LoopKind, LoopTf, PiGains};

fn main() {
    header(
        "Figure 4",
        "PIE Bode margins vs drop probability (R=100 ms, T=32 ms)",
    );
    let r0 = 0.1;
    let tunes: [(&str, Option<f64>); 4] = [
        ("auto", None),
        ("1", Some(1.0)),
        ("1/2", Some(0.5)),
        ("1/8", Some(0.125)),
    ];
    let mut rows = vec![vec![
        "p [%]".to_string(),
        "GM(auto) dB".into(),
        "PM(auto) deg".into(),
        "GM(1) dB".into(),
        "PM(1) deg".into(),
        "GM(1/2) dB".into(),
        "PM(1/2) deg".into(),
        "GM(1/8) dB".into(),
        "PM(1/8) deg".into(),
    ]];
    for i in 0..25 {
        let p = 10f64.powf(-6.0 + 6.0 * i as f64 / 24.0);
        let mut row = vec![format!("{:.4}", p * 100.0)];
        for &(_, tune) in &tunes {
            let factor = tune.unwrap_or_else(|| pie_tune_factor(p));
            let tf = LoopTf {
                kind: LoopKind::RenoOnP,
                gains: PiGains::pie().scaled(factor),
                r0,
                p0_prime: p.sqrt(),
            };
            let m = margins(&tf);
            row.push(f(m.gain_margin_db));
            row.push(f(m.phase_margin_deg));
        }
        rows.push(row);
    }
    table(&rows);
    println!(
        "shape check: fixed-tune margins run diagonally (≈20 dB per decade of p)\n\
         and cross zero at low p; tune=auto keeps both margins positive everywhere."
    );
}
