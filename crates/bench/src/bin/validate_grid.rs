//! Differential fluid ⇄ packet validation over the standard grid.
//!
//! Runs every matched configuration ({PI, PI2, PIE} × {Reno, Scalable})
//! through both the packet simulator and the fluid ODE, prints the
//! side-by-side comparison, and writes the machine-readable JSONL
//! agreement report. Exits non-zero if any tolerance is violated, so it
//! can gate CI.
//!
//! ```text
//! validate_grid [--out report.jsonl] [--tighten F] [--only NAME]
//!
//!   --out PATH    write the JSONL report to PATH (default: stdout,
//!                 after the human-readable table)
//!   --tighten F   scale every tolerance by F (e.g. 0.01 demonstrates
//!                 that a deliberately failed tolerance exits non-zero)
//!   --only NAME   run just the named configuration (e.g. pi2-reno)
//! ```

use pi2_validate::differential::{default_grid, run_config};
use std::io::Write;

fn main() {
    let mut out_path: Option<String> = None;
    let mut tighten: f64 = 1.0;
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            "--tighten" => {
                tighten = args
                    .next()
                    .expect("--tighten needs a factor")
                    .parse()
                    .expect("--tighten factor must be a number")
            }
            "--only" => only = Some(args.next().expect("--only needs a config name")),
            "--help" | "-h" => {
                eprintln!("usage: validate_grid [--out report.jsonl] [--tighten F] [--only NAME]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let mut grid = default_grid();
    if let Some(name) = &only {
        grid.retain(|c| &c.name == name);
        if grid.is_empty() {
            eprintln!("no such config: {name}");
            std::process::exit(2);
        }
    }
    for cfg in &mut grid {
        cfg.tol = cfg.tol.scaled(tighten);
    }

    // Stream the human-readable table as configs finish; collect JSONL.
    let mut jsonl: Vec<u8> = Vec::new();
    let mut all_pass = true;
    let mut reports = Vec::new();
    for cfg in &grid {
        let report = run_config(cfg);
        print!("{}", report.table());
        all_pass &= report.pass;
        reports.push(report);
    }
    // Re-emit through run_grid's writer path for the summary line without
    // re-running: serialize what we already have.
    for r in &reports {
        writeln!(jsonl, "{}", r.jsonl()).unwrap();
    }
    let failed: Vec<String> = reports
        .iter()
        .filter(|c| !c.pass)
        .map(|c| format!("\"{}\"", c.name))
        .collect();
    writeln!(
        jsonl,
        "{{\"summary\":{{\"configs\":{},\"pass\":{},\"failed\":[{}]}}}}",
        reports.len(),
        all_pass,
        failed.join(",")
    )
    .unwrap();

    match &out_path {
        Some(p) => std::fs::write(p, &jsonl).unwrap_or_else(|e| {
            eprintln!("cannot write {p}: {e}");
            std::process::exit(2);
        }),
        None => std::io::stdout().write_all(&jsonl).unwrap(),
    }

    // One-line verdict on stderr either way, so harnesses that keep
    // stdout for the report still see the outcome next to the exit code.
    if all_pass {
        eprintln!(
            "validate_grid: OK — {}/{} configs within tolerance",
            reports.len(),
            reports.len()
        );
    } else {
        eprintln!(
            "validate_grid: FAIL — {} of {} configs out of tolerance: [{}]",
            failed.len(),
            reports.len(),
            failed.join(",")
        );
        std::process::exit(1);
    }
}
