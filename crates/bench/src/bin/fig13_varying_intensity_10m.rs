//! Figure 13: PIE vs PI2 under varying traffic intensity,
//! 10:30:50:30:10 flows × 50 s, 10 Mb/s, RTT 100 ms.

use pi2_bench::{f, header, series_row, table};
use pi2_experiments::fig06::fig13;

fn main() {
    header(
        "Figure 13",
        "queue delay, PIE vs PI2; 10:30:50:30:10 Reno flows, 10 Mb/s, 100 ms",
    );
    let runs = fig13();
    let mut rows = vec![vec![
        "aqm".to_string(),
        "mean ms".into(),
        "p50 ms".into(),
        "p99 ms".into(),
        "max ms".into(),
        "steady-phase std ms".into(),
    ]];
    for r in &runs {
        rows.push(vec![
            r.aqm.to_string(),
            f(r.delay.mean),
            f(r.delay.p50),
            f(r.delay.p99),
            f(r.delay.max),
            f(r.steady_phase_std_ms),
        ]);
    }
    table(&rows);
    for r in &runs {
        println!("{} qdelay(ms) @5s: {}", r.aqm, series_row(&r.qdelay, 5));
    }
    println!(
        "\nshape check: PI2 shows less overshoot at each load change and smaller\n\
         upward fluctuations during the steady phases than PIE."
    );
}
