//! Extension: the DualQ Coupled AQM (Section 7's recommended deployment,
//! standardized later as RFC 9332 DualPI2) — "Data Centre to the Home".
//!
//! DCTCP and Cubic share a DualPI2 bottleneck: rates stay balanced as in
//! the single-queue coupled AQM, but the Scalable traffic now sees
//! low-millisecond queuing while Classic keeps its 20 ms target.

use pi2_bench::{f, header, run_secs, table};
use pi2_experiments::dualq::run;
use pi2_simcore::Duration;

fn main() {
    header(
        "Extension: DualQ",
        "DualPI2 two-queue coupled AQM vs the single-queue arrangement",
    );
    let secs = run_secs(60);
    let mut rows = vec![vec![
        "scenario".to_string(),
        "cubic Mb/s".into(),
        "dctcp Mb/s".into(),
        "ratio".into(),
        "L mean ms".into(),
        "L p99 ms".into(),
        "C mean ms".into(),
        "C p99 ms".into(),
        "util %".into(),
    ]];
    for (label, link, rtt_ms, nc, nd) in [
        ("40Mb 10ms 1v1", 40_000_000u64, 10i64, 1usize, 1usize),
        ("40Mb 10ms 5v5", 40_000_000, 10, 5, 5),
        ("12Mb 50ms 1v1", 12_000_000, 50, 1, 1),
        ("120Mb 20ms 2v2", 120_000_000, 20, 2, 2),
    ] {
        let r = run(
            link,
            Duration::from_millis(rtt_ms),
            nc,
            nd,
            secs,
            0xd0a1 + link,
        );
        rows.push(vec![
            label.to_string(),
            f(r.cubic_mbps),
            f(r.dctcp_mbps),
            f(r.cubic_mbps / r.dctcp_mbps.max(1e-9)),
            f(r.l_delay.mean),
            f(r.l_delay.p99),
            f(r.c_delay.mean),
            f(r.c_delay.p99),
            f(r.util_pct),
        ]);
    }
    table(&rows);
    println!(
        "shape check: DCTCP packets' queue delay collapses to sub-ms (native ramp +\n\
         near-priority scheduling) while Cubic keeps the 20 ms PI2 target at full\n\
         utilization. Windows stay k=2-coupled; rates skew somewhat toward DCTCP\n\
         because its RTT no longer includes the 20 ms Classic queue (the known\n\
         window-vs-rate balance property of the DualQ, cf. RFC 9332)."
    );
}
