//! Figure 12: queue delay under varying link capacity, 100:20:100 Mb/s
//! over 50:50:50 s, 20 Reno flows, 100 ms sampling; PIE vs PI2.
//!
//! Paper's headline numbers: peak 510 ms (PIE) vs 250 ms (PI2) at the
//! 50 s rate drop, and two further >100 ms oscillation peaks for PIE vs
//! none for PI2.

use pi2_bench::{f, header, table};
use pi2_experiments::fig12::fig12;

fn main() {
    header(
        "Figure 12",
        "queue delay under 100:20:100 Mb/s capacity steps (20 flows, 100 ms sampling)",
    );
    let runs = fig12();
    let mut rows = vec![vec![
        "aqm".to_string(),
        "peak after 50s drop (ms)".into(),
        "settling after drop (s)".into(),
        ">=100ms excursions 55-100s".into(),
        "peak after 100s restore (ms)".into(),
    ]];
    // A missing peak means the sampling window held no data (mis-scheduled
    // disturbance / truncated run) — print it as such, never as 0.
    let peak = |p: Option<f64>| p.map(f).unwrap_or_else(|| "no samples".into());
    for r in &runs {
        rows.push(vec![
            r.aqm.to_string(),
            peak(r.drop_peak_ms),
            r.settle_s.map(f).unwrap_or_else(|| "-".into()),
            r.late_excursions.to_string(),
            peak(r.restore_peak_ms),
        ]);
    }
    table(&rows);
    println!(
        "shape check: PI2's drop-transient peak is materially lower than PIE's\n\
         (paper: 250 vs 510 ms), PI2 has no late >=100 ms excursions where PIE has\n\
         ~2, and PI2 shows no visible overshoot when capacity is restored."
    );
}
