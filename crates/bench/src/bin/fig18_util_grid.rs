//! Figure 18: link utilization over the link×RTT grid.
//!
//! Tip: `grid_all` prints Figures 15–18 from a single grid run.

use pi2_bench::{gridview, header, run_secs};
use pi2_experiments::grid::run_grid;

fn main() {
    header("Figure 18", "link utilization over the link x RTT grid");
    let cells = run_grid(run_secs(60));
    gridview::print_fig18(&cells);
}
