//! Ablation: the coupling factor k (paper: analytic 1.19 from eq. (14),
//! empirical 2). Sweeps k and reports the Cubic/DCTCP rate balance.

use pi2_bench::{f, header, run_secs, table};
use pi2_experiments::ablation::k_sweep;

fn main() {
    header(
        "Ablation: k sweep",
        "Cubic/DCTCP per-flow rate ratio vs coupling factor (40 Mb/s, 10 ms)",
    );
    let pts = k_sweep(&[1.0, 1.19, 1.4, 2.0, 2.8, 4.0], run_secs(60));
    let mut rows = vec![vec!["k".to_string(), "Cubic/DCTCP ratio".into()]];
    for p in &pts {
        rows.push(vec![f(p.k), f(p.ratio)]);
    }
    table(&rows);
    println!(
        "shape check: the ratio rises monotonically with k (gentler Classic\n\
         signal); the paper's empirical k = 2 sits near balance for real-stack\n\
         dynamics, while the idealized eq.-(14) value 1.19 undershoots here\n\
         because our DCTCP reacts with the idealized once-per-RTT cut."
    );
}
