//! Figure 11: queue delay + throughput under (a) 5 TCP, (b) 50 TCP,
//! (c) 5 TCP + 2×6 Mb/s UDP; 10 Mb/s, RTT 100 ms; PIE vs PI2.

use pi2_bench::{f, header, series_row, table};
use pi2_experiments::fig11::fig11;

fn main() {
    header(
        "Figure 11",
        "queue delay and total throughput under three traffic mixes (10 Mb/s, 100 ms)",
    );
    let runs = fig11();
    let mut rows = vec![vec![
        "mix".to_string(),
        "aqm".into(),
        "delay mean ms".into(),
        "delay p99 ms".into(),
        "peak ms".into(),
        "util mean %".into(),
        "util p1 %".into(),
    ]];
    for r in &runs {
        rows.push(vec![
            r.mix.label().to_string(),
            r.aqm.to_string(),
            f(r.delay.mean),
            f(r.delay.p99),
            f(r.peak_ms),
            f(r.util.mean),
            f(r.util.p1),
        ]);
    }
    table(&rows);
    for r in &runs {
        println!(
            "{:<14} {:<4} qdelay(ms) @5s: {}",
            r.mix.label(),
            r.aqm,
            series_row(&r.qdelay, 5)
        );
    }
    println!(
        "\nshape check: PI2 shows less start-up overshoot and fewer damped\n\
         oscillations than PIE in every mix; both settle near the 20 ms target and\n\
         keep utilization high; the UDP overload mix pushes probability to its cap."
    );
}
