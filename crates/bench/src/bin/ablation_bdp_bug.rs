//! Ablation: footnote 5 — the paper's testbed had a Linux bug capping the
//! bandwidth-delay product at 1 MB, causing "anomalous results at the
//! high RTT end of the higher link rates" in Figures 15–18. Our simulator
//! has no such bug by default; this binary switches the artefact on
//! (`TcpConfig::max_cwnd` = 1 MB/MSS) to show exactly which grid cells it
//! poisons and how.

use pi2_bench::{f, header, run_secs, table};
use pi2_experiments::ablation::bdp_bug;

fn main() {
    header(
        "Ablation: the footnote-5 BDP bug",
        "Cubic vs ECN-Cubic under PIE, with and without the 1 MB window cap",
    );
    let secs = run_secs(40);
    let mut rows = vec![vec![
        "cell".to_string(),
        "BDP".into(),
        "ratio (free)".into(),
        "util % (free)".into(),
        "ratio (1MB cap)".into(),
        "util % (1MB cap)".into(),
    ]];
    for &(link, rtt) in &[(40u64, 20i64), (120, 50), (120, 100), (200, 50), (200, 100)] {
        let bdp_mb = link as f64 * rtt as f64 / 8.0 / 1000.0;
        let (r_free, u_free) = bdp_bug(link, rtt, false, secs, 0xbd);
        let (r_cap, u_cap) = bdp_bug(link, rtt, true, secs, 0xbd);
        rows.push(vec![
            format!("{link}Mb {rtt}ms"),
            format!("{bdp_mb:.2}MB"),
            f(r_free),
            f(u_free),
            f(r_cap),
            f(u_cap),
        ]);
    }
    table(&rows);
    println!(
        "shape check: cells whose BDP stays under ~1 MB are unaffected. Beyond it,\n\
         two effects reproduce the paper's anomalous high-BDP cells: (a) with the\n\
         1 MB cap, utilization pins at 2 x 1MB/RTT / link (the footnote-5 artefact\n\
         proper); (b) even uncapped, the drop-based flow starves against the\n\
         marked flow at extreme BDP — at p this small every loss costs Cubic a\n\
         multi-second recovery while ECN marking costs its rival nothing, so the\n\
         asymmetry compounds. Ironically the cap 'fixes' the ratio by pinning\n\
         both flows at the same window."
    );
}
