//! Appendix A: steady-state window laws validated in the packet
//! simulator, plus the eq. (14) coupling relation.

use pi2_bench::{f, header, table};
use pi2_experiments::appendix_a::{appendix_a, coupling_check, step_vs_probabilistic};

fn main() {
    header(
        "Appendix A",
        "steady-state window laws: measured vs closed form",
    );
    let points = appendix_a();
    let mut rows = vec![vec![
        "cc".to_string(),
        "p".into(),
        "measured W".into(),
        "predicted W".into(),
        "rel err".into(),
    ]];
    for pt in &points {
        rows.push(vec![
            pt.cc.to_string(),
            f(pt.p),
            f(pt.measured_w),
            f(pt.predicted_w),
            format!("{:.1}%", pt.rel_err * 100.0),
        ]);
    }
    table(&rows);

    println!("--- eq. (11) vs eq. (12): how DCTCP is marked changes the exponent ---");
    let (p, w_step, w_prob) = step_vs_probabilistic(0x57e9);
    let rows = vec![
        vec![
            "marking".to_string(),
            "realized p".into(),
            "measured W".into(),
            "2/p".into(),
            "2/p^2".into(),
        ],
        vec![
            "step threshold".into(),
            f(p),
            f(w_step),
            f(2.0 / p),
            f(2.0 / (p * p)),
        ],
        vec![
            "probabilistic".into(),
            f(p),
            f(w_prob),
            f(2.0 / p),
            f(2.0 / (p * p)),
        ],
    ];
    table(&rows);

    println!("--- eq. (14) coupling relation: pc = (ps/k)^2, k = 2 ---");
    let (_, pc, ps) = coupling_check(2.0, 3);
    println!(
        "realized: pc = {:.4}, ps = {:.4}, (ps/2)^2 = {:.4}",
        pc,
        ps,
        (ps / 2.0) * (ps / 2.0)
    );
    println!(
        "\nshape check: Reno tracks 1.22/sqrt(p), CReno 1.68/sqrt(p) at small BDP,\n\
         DCTCP and the half-packet scalable control track 2/p (probabilistic\n\
         marking, not the 2/p^2 step-marking law); the step-vs-probabilistic table\n\
         shows the exponent change directly (same fraction, very different W —\n\
         the Irteza et al. phenomenon the paper cites); the realized classic\n\
         probability follows the coupled square relation up to sawtooth-induced\n\
         convexity bias."
    );
}
