//! `perfetto_lint` — validate exported Perfetto (Chrome trace-event)
//! timelines.
//!
//! ```text
//! cargo run -p pi2-bench --bin perfetto_lint -- trace.json ...
//! ```
//!
//! Each file is checked with [`pi2_bench::perfetto_check`]: well-formed
//! JSON, known phases, per-track monotonic timestamps, non-negative
//! slice durations. Every file is checked; the run ends with a one-line
//! summary and exits non-zero if any file was invalid, so `ci.sh` can
//! gate on the exit code directly.

use pi2_bench::perfetto_check::check_perfetto;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: perfetto_lint <trace.json>...");
        std::process::exit(2);
    }
    let mut failed = 0usize;
    for path in &paths {
        let result = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read: {e}"))
            .and_then(|text| check_perfetto(&text));
        match result {
            Ok(r) => println!(
                "{path}: ok — {} records on {} tracks \
                 ({} counters, {} instants [{} drops, {} marks], {} slices)",
                r.records, r.tracks, r.counters, r.instants, r.drops, r.marks, r.slices
            ),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed += 1;
            }
        }
    }
    println!(
        "perfetto_lint: {}/{} timelines valid",
        paths.len() - failed,
        paths.len()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
