//! Extension: per-flow queuing vs coupled signalling (the trilemma
//! alternative of the paper's introduction).
//!
//! Cubic vs DCTCP over FQ-DRR and over the coupled single-queue PI2:
//! both solve coexistence, by different means with different costs —
//! FQ needs flow identification and per-flow state but isolates delays;
//! the coupled AQM keeps one FIFO but both classes share its delay
//! (which is what motivates the DualQ, see `ext_dualq`).

use pi2_bench::{f, header, run_secs, table};
use pi2_experiments::isolation::{run_coupled, run_fq};
use pi2_simcore::Duration;

fn main() {
    header(
        "Extension: FQ isolation",
        "Cubic vs DCTCP under per-flow queuing vs the coupled single queue",
    );
    let secs = run_secs(60);
    let rtt = Duration::from_millis(10);
    let runs = [
        run_fq(40_000_000, rtt, secs, 0xf0),
        run_coupled(40_000_000, rtt, secs, 0xf0),
    ];
    let mut rows = vec![vec![
        "scheme".to_string(),
        "ratio c/d".into(),
        "cubic mean ms".into(),
        "cubic p99 ms".into(),
        "dctcp mean ms".into(),
        "dctcp p99 ms".into(),
    ]];
    for r in &runs {
        rows.push(vec![
            r.scheme.to_string(),
            f(r.ratio),
            f(r.cubic_delay.mean),
            f(r.cubic_delay.p99),
            f(r.dctcp_delay.mean),
            f(r.dctcp_delay.p99),
        ]);
    }
    table(&rows);
    println!(
        "shape check: FQ balances the rates perfectly by scheduling — but without a\n\
         per-queue AQM each flow (DCTCP included: unmarked, it falls back to loss\n\
         probing) bloats its own queue to the backlog cap. Isolation alone does not\n\
         buy low latency; it needs AQM per queue (fq_codel) plus per-flow state and\n\
         flow inspection. The coupled PI2 delivers the 20 ms target in one FIFO,\n\
         and the DualQ (ext_dualq) adds sub-ms delay for the Scalable class with\n\
         just two queues and no flow identification — the paper's trilemma point."
    );
}
