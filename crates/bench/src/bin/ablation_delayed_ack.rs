//! Ablation: delayed ACKs and the CReno constant.
//!
//! The paper derives k = 1.19 from `W_creno = 1.68/√p` but validates
//! k = 2 empirically. A classic per-ACK-counting sender would see its
//! constant halve under delayed ACKs (1.68 → 1.19); our senders — like
//! modern Linux — count acked packets (RFC 3465 byte counting), so the
//! constant barely moves and the k-slack must come from elsewhere
//! (DCTCP's EWMA-delayed response). This binary measures both effects.

use pi2_bench::{f, header, run_secs, table};
use pi2_experiments::ablation::{delayed_ack_balance, delayed_ack_constant};

fn main() {
    header(
        "Ablation: delayed ACKs",
        "the CReno constant and the coexistence balance under RFC 1122 delayed ACKs",
    );
    println!("--- effective constant c in W = c/sqrt(p) (CReno mode, fixed p) ---");
    let mut rows = vec![vec![
        "p".to_string(),
        "per-packet ACKs".into(),
        "delayed ACKs".into(),
        "paper's models".into(),
    ]];
    for &p in &[0.01, 0.02, 0.05] {
        rows.push(vec![
            f(p),
            f(delayed_ack_constant(p, false, 0xda)),
            f(delayed_ack_constant(p, true, 0xda)),
            "1.68 vs 1.19".to_string(),
        ]);
    }
    table(&rows);

    println!("--- Cubic/DCTCP balance with delayed ACKs, k sweep (40 Mb/s, 10 ms) ---");
    let mut rows = vec![vec!["k".to_string(), "ratio".into()]];
    for &k in &[1.19, 1.4, 2.0, 2.8] {
        rows.push(vec![f(k), f(delayed_ack_balance(k, run_secs(60), 0xda))]);
    }
    table(&rows);
    println!(
        "shape check: with byte-counting senders the constant is ~insensitive to\n\
         delayed ACKs (both a bit under the deterministic 1.68 — stochastic loss\n\
         clusters), and k = 2 remains the balanced coupling either way. The paper's\n\
         analytic-1.19 vs empirical-2 gap is a transport-dynamics effect, not an\n\
         ACK-policy one."
    );
}
