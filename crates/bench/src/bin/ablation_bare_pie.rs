//! Ablation: bare-PIE vs full PIE (paper §5: the authors repeated every
//! experiment with the heuristics disabled and "saw no difference").

use pi2_bench::{f, header, seed, table};
use pi2_experiments::ablation::{bare_pie, bare_pie_bursts};

fn main() {
    header(
        "Ablation: bare-PIE",
        "full Linux PIE vs PIE with all extra heuristics disabled (figure 11 mixes)",
    );
    let results = bare_pie(seed(0xba7e));
    let mut rows = vec![vec![
        "mix".to_string(),
        "full mean ms".into(),
        "bare mean ms".into(),
        "full p99 ms".into(),
        "bare p99 ms".into(),
    ]];
    for (mix, full, bare) in &results {
        rows.push(vec![
            mix.to_string(),
            f(full.mean),
            f(bare.mean),
            f(full.p99),
            f(bare.p99),
        ]);
    }
    table(&rows);

    println!("--- the burst-allowance workload: 8 Mb/s on-off bursts over 2 TCP flows ---");
    let (full, bare) = bare_pie_bursts(seed(0xb1));
    let rows = vec![
        vec!["variant".to_string(), "burst loss fraction".into()],
        vec!["pie (full)".into(), f(full)],
        vec!["pie (bare)".into(), f(bare)],
    ];
    table(&rows);
    println!(
        "shape check: the summaries match within noise — PIE's burst allowance,\n\
         light-load suppression, delta clamps and 250 ms rule contribute nothing,\n\
         even on the bursty workload the allowance was designed for: the PI core's\n\
         incremental p already filters transient bursts, as the paper observed."
    );
}
