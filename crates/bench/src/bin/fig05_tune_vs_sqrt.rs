//! Figure 5: PIE's stepped `tune` factor vs the continuous `√(2p)` it
//! tracks — the empirical observation that led to PI2's analytic square.

use pi2_bench::{header, table};
use pi2_fluid::pie_tune_factor;

fn main() {
    header("Figure 5", "PIE 'tune' lookup table vs sqrt(2p)");
    let mut rows = vec![vec![
        "p".to_string(),
        "tune (stepped)".into(),
        "sqrt(2p)".into(),
        "ratio".into(),
    ]];
    for i in 0..29 {
        let p = 10f64.powf(-7.0 + 7.0 * i as f64 / 28.0);
        let stepped = pie_tune_factor(p);
        let continuous = (2.0 * p).sqrt();
        rows.push(vec![
            format!("{p:.2e}"),
            format!("{stepped:.2e}"),
            format!("{continuous:.2e}"),
            format!("{:.2}", stepped / continuous),
        ]);
    }
    table(&rows);
    println!(
        "shape check: the stepped factor stays within a small constant factor of\n\
         sqrt(2p) across seven decades (each step is a factor 2-4 wide), i.e. PIE's\n\
         heuristic scaling was implicitly implementing PI2's square."
    );
}
