//! Ablation: the two squaring implementations of Section 5 — multiply
//! `p'·p'`, or compare against `max(Y₁, Y₂)` ("think once to mark, think
//! twice to drop") — must be equivalent at system level.

use pi2_bench::{f, header, seed, table};
use pi2_experiments::ablation::square_mode;

fn main() {
    header(
        "Ablation: square mode",
        "p'*p' multiply vs max(Y1,Y2) two-compare drop decisions",
    );
    let (mul, two) = square_mode(seed(0x50));
    let rows = vec![
        vec![
            "mode".to_string(),
            "mean ms".into(),
            "p50 ms".into(),
            "p99 ms".into(),
        ],
        vec!["multiply".into(), f(mul.mean), f(mul.p50), f(mul.p99)],
        vec!["two-compare".into(), f(two.mean), f(two.p50), f(two.p99)],
    ];
    table(&rows);
    println!(
        "shape check: identical distributions up to seed noise — the hardware-\n\
         friendly two-compare form changes nothing."
    );
}
