//! End-to-end simulator throughput: how much wall-clock time one
//! simulated second costs per AQM, in events/second. Establishes that
//! figure regeneration is dominated by simulated traffic, not AQM
//! overhead. `PI2_SECS` sets the simulated seconds per iteration
//! (default 5); results append to `BENCH_pi2.json`.

use pi2_aqm::{Pi2, Pi2Config, Pie, PieConfig};
use pi2_bench::alloc_count::{self, CountingAlloc};
use pi2_bench::perf::{bench, measurement_rows, record_and_report, Measurement};
use pi2_bench::{header, run_secs, table};
use pi2_netsim::{Aqm, MonitorConfig, PathConf, QueueConfig, Sim, SimConfig};
use pi2_simcore::{Duration, Time};
use pi2_transport::{CcKind, EcnSetting, TcpConfig, TcpSource};

/// Count every allocator call so the steady-state section below can
/// report allocations per event (see `pi2_bench::alloc_count`).
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Ten Reno flows over a 50 Mb/s bottleneck, monitoring trimmed to the
/// counters only so the bench measures the engine, not sample recording.
fn build(aqm: Box<dyn Aqm>) -> Sim {
    build_with_sampling(aqm, Duration::from_secs(1))
}

fn build_with_sampling(aqm: Box<dyn Aqm>, sample_interval: Duration) -> Sim {
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps: 50_000_000,
                buffer_bytes: 60_000_000,
            },
            seed: 7,
            monitor: MonitorConfig {
                sample_interval,
                record_sojourns: false,
                record_probs: false,
                record_flow_tput: false,
                ..MonitorConfig::default()
            },
        },
        aqm,
    );
    for _ in 0..10 {
        sim.add_flow(
            PathConf::symmetric(Duration::from_millis(20)),
            "reno",
            Time::ZERO,
            |id| {
                Box::new(TcpSource::new(
                    id,
                    CcKind::Reno,
                    EcnSetting::NotEcn,
                    TcpConfig::default(),
                ))
            },
        );
    }
    sim
}

fn bench_aqm(name: &str, secs: u64, make: impl Fn() -> Box<dyn Aqm>) -> Measurement {
    bench(name, 1, 7, || {
        // Rebuild each iteration: a warm queue would make later
        // iterations measure a different (congested) regime.
        let mut sim = build(make());
        sim.run_until(Time::from_secs(secs));
        std::hint::black_box(sim.core.events.popped())
    })
}

/// The same PI2 run with the `pi2_obs` registry recording, bounding the
/// metrics overhead (`*_metrics_ns_per_event` vs the plain case above).
fn bench_pi2_metrics_on(secs: u64) -> Measurement {
    bench("pi2_10flows_50mbps_metrics", 1, 7, || {
        let mut sim = build(Box::new(Pi2::new(Pi2Config::default())));
        sim.core.enable_metrics();
        sim.run_until(Time::from_secs(secs));
        std::hint::black_box(
            sim.core
                .take_metrics()
                .map_or(0, |m| m.events_processed()),
        )
    })
}

/// Default ceiling for the `PI2_OVERHEAD_GATE` check: metrics-on may cost
/// at most this fraction more per event than metrics-off. Documented in
/// EXPERIMENTS.md; override with `PI2_OVERHEAD_TOL` (e.g. `0.25`).
const DEFAULT_OVERHEAD_TOL: f64 = 0.15;

fn main() {
    header(
        "Microbench: simulator throughput",
        "10 Reno flows, 50 Mb/s bottleneck — events/second of wall clock",
    );
    let secs = run_secs(5);
    println!("--- {secs} simulated seconds per iteration, 7 iterations ---");
    let ms = vec![
        bench_aqm("pie_10flows_50mbps", secs, || {
            Box::new(Pie::new(PieConfig::paper_default()))
        }),
        bench_aqm("pi2_10flows_50mbps", secs, || {
            Box::new(Pi2::new(Pi2Config::default()))
        }),
        bench_pi2_metrics_on(secs),
    ];
    table(&measurement_rows("event", &ms));

    let mut metrics = vec![("sim_secs".to_string(), secs as f64)];
    for m in &ms {
        metrics.push((format!("{}_events_per_sec", m.name), m.units_per_sec()));
        metrics.push((format!("{}_ns_per_event", m.name), m.ns_per_unit()));
    }

    // Event-loop self-profile of the PI2 case: wall-clock per event class
    // from one instrumented run, folded into the same perf record. The
    // profiled sim samples at 100 ms instead of the default 1 s: the
    // per-class mean of the rare `sample` tick is otherwise an average
    // over ~5 cold invocations — pure cache-miss lottery. 10× the ticks
    // keeps each one just as cold (they are still ~10^3 events apart)
    // while giving the mean statistical footing.
    {
        let mut sim = build_with_sampling(
            Box::new(Pi2::new(Pi2Config::default())),
            Duration::from_millis(100),
        );
        sim.enable_profiler();
        sim.run_until(Time::from_secs(secs));
        let prof = sim.take_profiler().expect("profiler was enabled");
        println!("--- event-loop profile (pi2, {secs} simulated s) ---");
        print!("{}", prof.render_table());
        metrics.extend(prof.metric_pairs());
    }

    // Allocation accounting (not timed): a warm-up past one overflow-
    // wheel rotation brings every pool and pre-sized series to its
    // high-water mark, `equalize_slot_capacities` levels the wheel slots
    // up to their observed peak, and the continuing steady-state loop
    // must then not touch the allocator at all. `tests/zero_alloc.rs`
    // asserts the same delta is exactly zero; here it is recorded in the
    // perf history so a regression shows up as a trajectory break too.
    {
        let mut sim = build(Box::new(Pi2::new(Pi2Config::default())));
        let total_secs = 36usize.saturating_add(secs as usize);
        // Periodic ticks are dominated by the 32 ms AQM control record.
        sim.core.monitor.reserve(total_secs * 40, total_secs * 6000);
        sim.run_until(Time::from_secs(36));
        sim.core.events.equalize_slot_capacities();
        let ev0 = sim.core.events.popped();
        let before = alloc_count::stats();
        sim.run_until(Time::from_secs(36 + secs));
        let d = alloc_count::stats().since(&before);
        let events = sim.core.events.popped() - ev0;
        let per_event = d.allocs as f64 / events.max(1) as f64;
        println!(
            "steady-state allocations: {} allocs / {} frees / {} bytes \
             over {events} events ({per_event:.6} allocs/event)",
            d.allocs, d.deallocs, d.bytes
        );
        metrics.push(("steady_state_allocs".to_string(), d.allocs as f64));
        metrics.push(("steady_state_allocs_per_event".to_string(), per_event));
    }

    // `PI2_OVERHEAD_GATE=1`: fail (exit 1) when the registry costs more
    // per event than the documented tolerance. CI runs this so a future
    // hot-path metrics hook cannot silently regress the simulator.
    let off = ms[1].ns_per_unit();
    let on = ms[2].ns_per_unit();
    let tol = std::env::var("PI2_OVERHEAD_TOL")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_OVERHEAD_TOL);
    let ratio = if off > 0.0 { on / off } else { 1.0 };
    metrics.push(("metrics_overhead_ratio".to_string(), ratio));
    println!(
        "metrics overhead: {on:.1} ns/event on vs {off:.1} ns/event off \
         (ratio {ratio:.3}, tolerance {:.2})",
        1.0 + tol
    );
    if std::env::var("PI2_OVERHEAD_GATE").ok().as_deref() == Some("1") && ratio > 1.0 + tol {
        eprintln!(
            "OVERHEAD GATE FAILED: metrics-on is {:.1}% slower per event (allowed {:.0}%)",
            100.0 * (ratio - 1.0),
            100.0 * tol
        );
        std::process::exit(1);
    }
    // Event totals from the always-on counting sink, recorded alongside
    // the timing metrics so perf history can spot behavioral drift too.
    let makes: [(&str, fn() -> Box<dyn Aqm>); 2] = [
        ("pie_10flows_50mbps", || {
            Box::new(Pie::new(PieConfig::paper_default()))
        }),
        ("pi2_10flows_50mbps", || {
            Box::new(Pi2::new(Pi2Config::default()))
        }),
    ];
    for (name, make) in makes {
        let mut sim = build(make());
        sim.run_until(Time::from_secs(secs));
        let t = sim.core.counters.totals();
        metrics.push((format!("{name}_enq_pkts"), t.enqueued as f64));
        metrics.push((format!("{name}_marked_pkts"), t.marked as f64));
        metrics.push((format!("{name}_dropped_pkts"), t.dropped as f64));
        metrics.push((format!("{name}_dequeued_pkts"), t.dequeued as f64));
    }
    record_and_report("sim_throughput", metrics);
}
