//! Figure 7: Bode margins of reno-PIE (auto-tuned), reno-PI2
//! (α=0.3125, β=3.125) and scalable-PI (α=0.625, β=6.25); R = 100 ms.

use pi2_bench::{f, header, table};
use pi2_fluid::{margins, LoopTf};

fn main() {
    header(
        "Figure 7",
        "Bode margins: reno-pie vs reno-pi2 vs scal-pi (R=100 ms, T=32 ms)",
    );
    let r0 = 0.1;
    let mut rows = vec![vec![
        "p' [%]".to_string(),
        "GM pie dB".into(),
        "PM pie deg".into(),
        "GM pi2 dB".into(),
        "PM pi2 deg".into(),
        "GM scal dB".into(),
        "PM scal deg".into(),
    ]];
    for i in 0..25 {
        let pp = 10f64.powf(-3.0 + 3.0 * i as f64 / 24.0);
        let pie = margins(&LoopTf::pie_auto(pp * pp, r0));
        let pi2 = margins(&LoopTf::pi2(pp, r0));
        let scal = margins(&LoopTf::scal_pi(pp, r0));
        rows.push(vec![
            format!("{:.3}", pp * 100.0),
            f(pie.gain_margin_db),
            f(pie.phase_margin_deg),
            f(pi2.gain_margin_db),
            f(pi2.phase_margin_deg),
            f(scal.gain_margin_db),
            f(scal.phase_margin_deg),
        ]);
    }
    table(&rows);
    println!(
        "shape check: pi2's gain margin is flattened (no 20 dB/decade diagonal) and\n\
         positive over the whole range despite gains 2.5x PIE's; scal-pi with doubled\n\
         gains tracks reno-pi2 closely; only at p' > ~60% do margins drift up."
    );
}
