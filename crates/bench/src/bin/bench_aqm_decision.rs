//! Per-packet decision cost: PIE vs PI2 vs coupled PI2 vs RED.
//!
//! The paper's simplicity claim: "squaring the output … is less
//! computationally expensive" than PIE's heuristic machinery. Each case
//! measures the hot path of one AQM — an enqueue decision at a realistic
//! operating point — plus the periodic controller update tick, via the
//! std-only harness in `pi2_bench::perf`. Results append to
//! `BENCH_pi2.json` (override with `PI2_BENCH_OUT`).

use pi2_aqm::{
    CoupledPi2, CoupledPi2Config, Pi2, Pi2Config, Pie, PieConfig, Red, RedConfig, SquareMode,
};
use pi2_bench::perf::{bench, measurement_rows, record_and_report, Measurement};
use pi2_bench::{header, table};
use pi2_netsim::{Aqm, Ecn, FlowId, Packet, QueueSnapshot};
use pi2_simcore::{Rng, Time};

/// A realistic operating point: a 30-packet standing queue on 10 Mb/s.
fn snap() -> QueueSnapshot {
    QueueSnapshot {
        qlen_bytes: 45_000,
        qlen_pkts: 30,
        link_rate_bps: 10_000_000,
        last_sojourn: Some(pi2_simcore::Duration::from_millis(21)),
    }
}

/// Decisions per timed iteration — large enough that `Instant` overhead
/// (tens of ns) vanishes against the measured work.
const DECISIONS: u64 = 100_000;

fn bench_decisions(name: &str, aqm: &mut dyn Aqm, pkt: &Packet) -> Measurement {
    let s = snap();
    // Drive the controller to a realistic probability before timing.
    for _ in 0..50 {
        aqm.update(&s, Time::ZERO);
    }
    let mut rng = Rng::new(1);
    bench(name, 3, 15, || {
        let mut passes = 0u64;
        for _ in 0..DECISIONS {
            let d = aqm.on_enqueue(std::hint::black_box(pkt), &s, Time::ZERO, &mut rng);
            passes += (d.action == pi2_netsim::Action::Pass) as u64;
        }
        std::hint::black_box(passes);
        DECISIONS
    })
}

fn bench_update(name: &str, aqm: &mut dyn Aqm) -> Measurement {
    let s = snap();
    bench(name, 3, 15, || {
        for _ in 0..DECISIONS {
            aqm.update(&s, Time::ZERO);
        }
        std::hint::black_box(aqm.control_variable());
        DECISIONS
    })
}

fn main() {
    header(
        "Microbench: AQM decision cost",
        "one enqueue decision / one controller tick, per AQM",
    );
    let pkt = Packet::data(FlowId(0), 0, 1500, Ecn::NotEct, Time::ZERO);
    let ect1 = Packet::data(FlowId(0), 0, 1500, Ecn::Ect1, Time::ZERO);

    let mut pie = Pie::new(PieConfig::paper_default());
    let mut pi2 = Pi2::new(Pi2Config::default());
    let mut pi2_two = Pi2::new(Pi2Config {
        square_mode: SquareMode::TwoCompare,
        ..Pi2Config::default()
    });
    let mut coupled = CoupledPi2::new(CoupledPi2Config::default());
    let mut red = Red::new(RedConfig::default());

    println!("--- enqueue decision ({DECISIONS} per iteration, 15 iterations) ---");
    let decisions = vec![
        bench_decisions("pie", &mut pie, &pkt),
        bench_decisions("pi2_multiply", &mut pi2, &pkt),
        bench_decisions("pi2_two_compare", &mut pi2_two, &pkt),
        bench_decisions("coupled_classic", &mut coupled, &pkt),
        bench_decisions("coupled_scalable", &mut coupled, &ect1),
        bench_decisions("red", &mut red, &pkt),
    ];
    table(&measurement_rows("decision", &decisions));

    println!("--- controller update tick ---");
    let updates = vec![
        bench_update("pie_update", &mut pie),
        bench_update("pi2_update", &mut pi2),
        bench_update("coupled_update", &mut coupled),
    ];
    table(&measurement_rows("tick", &updates));

    let mut metrics = Vec::new();
    for m in decisions.iter().chain(updates.iter()) {
        metrics.push((format!("{}_ns", m.name), m.ns_per_unit()));
        metrics.push((format!("{}_per_sec", m.name), m.units_per_sec()));
    }
    record_and_report("aqm_decision", metrics);
}
