//! Figure 16: queue delay (mean + P99) over the link×RTT grid.
//!
//! Tip: `grid_all` prints Figures 15–18 from a single grid run.

use pi2_bench::{gridview, header, run_secs};
use pi2_experiments::grid::run_grid;

fn main() {
    header("Figure 16", "queue delay over the link x RTT grid");
    let cells = run_grid(run_secs(60));
    gridview::print_fig16(&cells);
}
