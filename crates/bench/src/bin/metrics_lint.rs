//! `metrics_lint` — validate a `pi2sim --metrics-out` snapshot.
//!
//! ```text
//! cargo run -p pi2-bench --bin metrics_lint -- snap.json snap.prom ...
//! ```
//!
//! Format is sniffed per file: a body starting with `{` is checked as a
//! JSON snapshot (parsed with the workspace's own parser, schema version
//! and the three sections verified), anything else as Prometheus
//! exposition text via [`pi2_obs::prom_lint`]. Every file is checked
//! (a bad one doesn't mask later ones); the run ends with a one-line
//! summary and a non-zero exit if anything was invalid, so `ci.sh` can
//! gate on the exit code directly.

use pi2_bench::perf::Json;

fn lint_json(text: &str) -> Result<String, String> {
    let j = Json::parse(text)?;
    let schema = j
        .get("schema")
        .and_then(|v| v.as_f64())
        .ok_or("missing \"schema\" version")?;
    if schema != 1.0 {
        return Err(format!("unknown schema version {schema}"));
    }
    let mut n = 0usize;
    for section in ["counters", "gauges", "histograms"] {
        match j.get(section) {
            Some(Json::Obj(fields)) => n += fields.len(),
            Some(_) => return Err(format!("\"{section}\" is not an object")),
            None => return Err(format!("missing \"{section}\" section")),
        }
    }
    // Every histogram must carry the summary fields the exporters and
    // the grid column rely on.
    if let Some(Json::Obj(hists)) = j.get("histograms") {
        for (name, h) in hists {
            for field in ["count", "sum", "mean", "stddev", "p50", "p90", "p99"] {
                if h.get(field).is_none() {
                    return Err(format!("histogram {name} missing \"{field}\""));
                }
            }
        }
    }
    Ok(format!("json snapshot ok: {n} metrics"))
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: metrics_lint <snapshot.json|snapshot.prom>...");
        std::process::exit(2);
    }
    let mut failed = 0usize;
    for path in &paths {
        let result = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read: {e}"))
            .and_then(|text| {
                if text.trim_start().starts_with('{') {
                    lint_json(&text)
                } else {
                    pi2_obs::prom_lint(&text).map(|n| format!("prometheus text ok: {n} samples"))
                }
            });
        match result {
            Ok(msg) => println!("{path}: {msg}"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed += 1;
            }
        }
    }
    println!(
        "metrics_lint: {}/{} snapshots valid",
        paths.len() - failed,
        paths.len()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
