//! Structural validation for Chrome trace-event JSON timelines.
//!
//! [`pi2_netsim::PerfettoSink`] emits the JSON object form of the
//! trace-event format (`{"traceEvents":[...]}`, the flavour
//! ui.perfetto.dev ingests directly). This module re-parses an exported
//! file with the workspace's own [`Json`] parser and checks the
//! properties the exporter guarantees:
//!
//! * the body is one well-formed JSON object with a `traceEvents` array;
//! * every record carries a known phase (`C`, `i`, `X`, `M`) and the
//!   fields that phase requires;
//! * timestamps are non-decreasing per track — a track being one
//!   `(pid, tid, name)` triple for counters and instants (Perfetto sorts
//!   defensively, but our deterministic exporter has no excuse);
//! * slice durations are non-negative;
//! * drop/mark instants are tallied so callers can cross-check them
//!   against an independent count of the same run.
//!
//! Used by the `perfetto_lint` binary and the observability integration
//! tests.

use crate::perf::Json;
use std::collections::BTreeMap;

/// What a valid timeline contained, for cross-checks and summaries.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PerfettoReport {
    /// Total records in `traceEvents`.
    pub records: usize,
    /// `ph:"C"` counter samples.
    pub counters: usize,
    /// `ph:"i"` instant events.
    pub instants: usize,
    /// `ph:"X"` complete slices (flow lifetimes).
    pub slices: usize,
    /// `ph:"M"` metadata records (process/thread names).
    pub metadata: usize,
    /// Instants named `drop`.
    pub drops: usize,
    /// Instants named `mark`.
    pub marks: usize,
    /// Distinct `(pid, tid)` tracks seen on non-metadata records.
    pub tracks: usize,
}

fn field_u64(rec: &Json, key: &str, at: usize) -> Result<u64, String> {
    rec.get(key)
        .and_then(|v| v.as_f64())
        .map(|v| v as u64)
        .ok_or_else(|| format!("record {at}: missing numeric \"{key}\""))
}

fn field_f64(rec: &Json, key: &str, at: usize) -> Result<f64, String> {
    rec.get(key)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("record {at}: missing numeric \"{key}\""))
}

fn field_str<'a>(rec: &'a Json, key: &str, at: usize) -> Result<&'a str, String> {
    rec.get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("record {at}: missing string \"{key}\""))
}

/// Validate one exported timeline body. Returns the tally on success,
/// the first violation (with its record index) otherwise.
pub fn check_perfetto(text: &str) -> Result<PerfettoReport, String> {
    let j = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = j
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or("missing \"traceEvents\" array")?;
    if events.is_empty() {
        return Err("empty \"traceEvents\" array".to_string());
    }
    let mut report = PerfettoReport {
        records: events.len(),
        ..PerfettoReport::default()
    };
    // Last timestamp per (pid, tid, name) series; counters and instants
    // must never step backwards within their own track.
    let mut last_ts: BTreeMap<(u64, u64, String), f64> = BTreeMap::new();
    let mut tracks: BTreeMap<(u64, u64), ()> = BTreeMap::new();
    for (i, rec) in events.iter().enumerate() {
        let ph = field_str(rec, "ph", i)?;
        let name = field_str(rec, "name", i)?;
        let pid = field_u64(rec, "pid", i)?;
        if ph == "M" {
            report.metadata += 1;
            if name != "process_name" && name != "thread_name" {
                return Err(format!("record {i}: unknown metadata \"{name}\""));
            }
            continue;
        }
        let tid = field_u64(rec, "tid", i)?;
        let ts = field_f64(rec, "ts", i)?;
        if ts < 0.0 || !ts.is_finite() {
            return Err(format!("record {i}: bad timestamp {ts}"));
        }
        tracks.insert((pid, tid), ());
        match ph {
            "C" | "i" => {
                let key = (pid, tid, name.to_string());
                if let Some(&prev) = last_ts.get(&key) {
                    if ts < prev {
                        return Err(format!(
                            "record {i}: track pid={pid} tid={tid} \"{name}\" \
                             steps back {prev} -> {ts}"
                        ));
                    }
                }
                last_ts.insert(key, ts);
                if ph == "C" {
                    report.counters += 1;
                } else {
                    report.instants += 1;
                    match name {
                        "drop" => report.drops += 1,
                        "mark" => report.marks += 1,
                        _ => {}
                    }
                }
            }
            "X" => {
                let dur = field_f64(rec, "dur", i)?;
                if dur < 0.0 {
                    return Err(format!("record {i}: negative duration {dur}"));
                }
                report.slices += 1;
            }
            other => return Err(format!("record {i}: unknown phase \"{other}\"")),
        }
    }
    if report.counters == 0 {
        return Err("no counter samples — not a pi2sim timeline".to_string());
    }
    if report.metadata == 0 {
        return Err("no track metadata — finish() never ran".to_string());
    }
    report.tracks = tracks.len();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wrap(records: &str) -> String {
        format!("{{\"traceEvents\":[\n{records}\n]}}")
    }

    const GOOD: &str = r#"{"ph":"C","pid":1,"tid":0,"ts":0.000,"name":"queue_depth_pkts","args":{"value":1}},
{"ph":"i","s":"t","pid":100,"tid":1,"ts":5.250,"name":"drop","args":{"hop":0,"prob":0.5}},
{"ph":"i","s":"t","pid":100,"tid":1,"ts":9.000,"name":"mark","args":{"hop":0,"prob":0.5}},
{"ph":"X","pid":100,"tid":1,"ts":0.000,"dur":9.000,"name":"flow 0"},
{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"hop 0 (bottleneck)"}}"#;

    #[test]
    fn tallies_a_valid_timeline() {
        let r = check_perfetto(&wrap(GOOD)).expect("valid");
        assert_eq!(
            (r.records, r.counters, r.instants, r.slices, r.metadata),
            (5, 1, 2, 1, 1)
        );
        assert_eq!((r.drops, r.marks), (1, 1));
        assert_eq!(r.tracks, 2, "hop-0 counter track and flow-0 track");
    }

    #[test]
    fn rejects_backwards_timestamps_within_a_track() {
        let body = wrap(concat!(
            r#"{"ph":"C","pid":1,"tid":0,"ts":7.0,"name":"queue_depth_pkts","args":{"value":1}},"#,
            "\n",
            r#"{"ph":"C","pid":1,"tid":0,"ts":3.0,"name":"queue_depth_pkts","args":{"value":0}},"#,
            "\n",
            r#"{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"hop 0"}}"#
        ));
        let e = check_perfetto(&body).unwrap_err();
        assert!(e.contains("steps back"), "{e}");
    }

    #[test]
    fn distinct_tracks_may_interleave_timestamps() {
        // pid 2's early sample arriving after pid 1's late one is fine —
        // monotonicity is per track, not global stream order.
        let body = wrap(concat!(
            r#"{"ph":"C","pid":1,"tid":0,"ts":7.0,"name":"queue_depth_pkts","args":{"value":1}},"#,
            "\n",
            r#"{"ph":"C","pid":2,"tid":0,"ts":3.0,"name":"queue_depth_pkts","args":{"value":2}},"#,
            "\n",
            r#"{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"hop 0"}}"#
        ));
        let r = check_perfetto(&body).expect("per-track monotonic");
        assert_eq!(r.tracks, 2);
    }

    #[test]
    fn rejects_malformed_bodies() {
        assert!(check_perfetto("not json").is_err());
        assert!(check_perfetto("{}").unwrap_err().contains("traceEvents"));
        assert!(check_perfetto("{\"traceEvents\":[]}")
            .unwrap_err()
            .contains("empty"));
        let no_ph = wrap(r#"{"pid":1,"tid":0,"ts":0.0,"name":"x"}"#);
        assert!(check_perfetto(&no_ph).unwrap_err().contains("\"ph\""));
    }
}
