//! # pi2-bench — figure regeneration and microbenchmarks
//!
//! One binary per table/figure of the paper (see `DESIGN.md` for the
//! index), e.g.
//!
//! ```text
//! cargo run -p pi2-bench --release --bin fig06_varying_intensity_100m
//! cargo run -p pi2-bench --release --bin fig15_rate_balance_grid
//! cargo run -p pi2-bench --release --bin grid_all     # figs 15–18 in one run
//! ```
//!
//! Environment knobs:
//!
//! * `PI2_SECS=<n>` — per-run duration for the grid/combination sweeps
//!   (default 60; lower it for a quick pass);
//! * `PI2_SEED=<n>` — override the experiment seed;
//! * `PI2_THREADS=<n>` — worker count for the parallel sweep executor
//!   (default: available parallelism; output is bit-identical to serial
//!   for any value — see `pi2_experiments::runner`);
//! * `PI2_BENCH_OUT=<path>` — where the microbench history is appended
//!   (default: `BENCH_pi2.json` at the repo root).
//!
//! Microbenchmarks run through the std-only harness in [`perf`] (no
//! Criterion — the workspace builds with zero registry dependencies):
//!
//! ```text
//! cargo run -p pi2-bench --release --bin bench_aqm_decision
//! cargo run -p pi2-bench --release --bin bench_sim_throughput
//! ```
//!
//! They measure the per-packet drop-decision cost of PIE vs PI2 (the
//! paper's "less computationally expensive" claim) and raw simulator
//! throughput, print a median/P10/P90 table, and append each run to
//! `BENCH_pi2.json` so the numbers form a trajectory across commits.

use pi2_stats::{format_table, Align};

/// Read the per-run duration knob.
pub fn run_secs(default: u64) -> u64 {
    std::env::var("PI2_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Read the seed knob.
pub fn seed(default: u64) -> u64 {
    std::env::var("PI2_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Print a standard experiment header with the Table 1 defaults in force.
pub fn header(figure: &str, what: &str) {
    println!("== {figure}: {what}");
    println!(
        "   defaults (paper Table 1): target 20 ms, T = 32 ms, buffer 40000 pkt, \
         PIE α=2/16 β=20/16, PI2 α=5/16 β=50/16, coupled-PI α=10/16 β=100/16, k=2"
    );
    println!();
}

/// Print rows as an aligned table with the first column left-aligned.
pub fn table(rows: &[Vec<String>]) {
    print!("{}", format_table(rows, &[Align::Left]));
    println!();
}

/// Format a float with sensible width.
pub fn f(x: f64) -> String {
    if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Render a `(t, v)` series as a compact sparkline-style row of values at
/// the given stride, for eyeballing time series in a terminal.
pub fn series_row(series: &[(f64, f64)], stride: usize) -> String {
    series
        .iter()
        .step_by(stride.max(1))
        .map(|&(_, v)| format!("{v:.0}"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_fall_back_to_defaults() {
        std::env::remove_var("PI2_SECS");
        assert_eq!(run_secs(60), 60);
    }

    #[test]
    fn float_formatting_scales() {
        assert_eq!(f(512.3), "512");
        assert_eq!(f(12.345), "12.35");
        assert_eq!(f(0.0123), "0.0123");
    }

    #[test]
    fn series_row_strides() {
        let s = vec![(0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0)];
        assert_eq!(series_row(&s, 2), "1 3");
    }
}

pub mod alloc_count;
pub mod cli;
pub mod gridview;
pub mod perf;
pub mod perfetto_check;
