//! A self-contained, std-only microbenchmark harness.
//!
//! The workspace builds with no registry access, so this replaces the
//! usual Criterion setup with the minimum that still yields trustworthy
//! numbers:
//!
//! * [`bench`] runs a closure for a warmup phase and then N timed
//!   iterations on [`std::time::Instant`], reporting the median, P10 and
//!   P90 of per-iteration wall-clock — the median is robust to the odd
//!   scheduler hiccup that makes single-shot timings useless;
//! * the closure returns how many *work units* (AQM decisions, simulator
//!   events) the iteration performed, so results carry throughput
//!   (units/second at the median) alongside latency;
//! * [`append_run`] records every run in `BENCH_pi2.json` at the repo
//!   root (override with `PI2_BENCH_OUT=<path>`), building a perf
//!   trajectory across commits, and [`previous_run`] +
//!   [`format_comparison`] print the delta against the last recorded run
//!   of the same bench.
//!
//! The JSON layer is hand-rolled (std has none and the build is
//! offline); it covers exactly the subset the schema needs.
//!
//! # `BENCH_pi2.json` schema
//!
//! ```json
//! {
//!   "schema": 1,
//!   "runs": [
//!     {
//!       "timestamp_unix": 1723000000,
//!       "bench": "aqm_decision",
//!       "metrics": { "pie_ns": 41.2, "pi2_multiply_ns": 17.8 }
//!     }
//!   ]
//! }
//! ```
//!
//! `runs` is append-only and ordered by insertion; `metrics` keys are
//! bench-specific (`*_ns` medians, `*_per_sec` throughputs).

use std::path::{Path, PathBuf};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Timing + statistics
// ---------------------------------------------------------------------------

/// One benchmark's timing result.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Bench-local name of the measured case (e.g. `pi2_multiply`).
    pub name: String,
    /// Timed iterations (after warmup).
    pub iters: usize,
    /// Median per-iteration wall-clock, nanoseconds.
    pub median_ns: f64,
    /// 10th percentile per-iteration wall-clock, nanoseconds.
    pub p10_ns: f64,
    /// 90th percentile per-iteration wall-clock, nanoseconds.
    pub p90_ns: f64,
    /// Work units (decisions, events, …) one iteration performs.
    pub units_per_iter: f64,
}

impl Measurement {
    /// Throughput at the median iteration: work units per second.
    pub fn units_per_sec(&self) -> f64 {
        if self.median_ns <= 0.0 {
            return f64::INFINITY;
        }
        self.units_per_iter * 1e9 / self.median_ns
    }

    /// Median cost of one work unit, nanoseconds.
    pub fn ns_per_unit(&self) -> f64 {
        if self.units_per_iter <= 0.0 {
            return f64::NAN;
        }
        self.median_ns / self.units_per_iter
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice,
/// `q` ∈ [0, 1]. Empty input yields NaN.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Median of an unsorted slice (NaN when empty).
pub fn median(samples: &[f64]) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    percentile_sorted(&s, 0.5)
}

/// Run `f` `warmup` times untimed, then `iters` times timed. `f` returns
/// the number of work units the iteration performed (it should
/// [`std::hint::black_box`] its computation so the optimizer cannot
/// delete it).
pub fn bench<F: FnMut() -> u64>(name: &str, warmup: usize, iters: usize, mut f: F) -> Measurement {
    let iters = iters.max(1);
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples_ns = Vec::with_capacity(iters);
    let mut units = 0u64;
    for _ in 0..iters {
        let t0 = Instant::now();
        units = std::hint::black_box(f());
        samples_ns.push(t0.elapsed().as_nanos() as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Measurement {
        name: name.to_string(),
        iters,
        median_ns: percentile_sorted(&samples_ns, 0.5),
        p10_ns: percentile_sorted(&samples_ns, 0.1),
        p90_ns: percentile_sorted(&samples_ns, 0.9),
        units_per_iter: units as f64,
    }
}

/// Render measurements as table rows (pair with [`crate::table`]):
/// name, median/P10/P90 per work unit, and units/second.
pub fn measurement_rows(unit: &str, ms: &[Measurement]) -> Vec<Vec<String>> {
    let mut rows = vec![vec![
        "case".to_string(),
        format!("ns/{unit} (median)"),
        "P10".into(),
        "P90".into(),
        format!("{unit}s/sec"),
    ]];
    for m in ms {
        let per = m.units_per_iter.max(1.0);
        rows.push(vec![
            m.name.clone(),
            crate::f(m.median_ns / per),
            crate::f(m.p10_ns / per),
            crate::f(m.p90_ns / per),
            format!("{:.3e}", m.units_per_sec()),
        ]);
    }
    rows
}

// ---------------------------------------------------------------------------
// Minimal JSON (exactly the subset BENCH_pi2.json needs)
// ---------------------------------------------------------------------------

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    out.push_str(&format!("{x}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Errors carry a byte offset and reason.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string near byte {pos}")),
                };
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'r') => s.push('\r'),
                            Some(b'u') => {
                                let hex = b
                                    .get(*pos + 1..*pos + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or("bad \\u escape")?;
                                let code =
                                    u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {pos}")),
                        }
                        *pos += 1;
                    }
                    Some(&c0) if c0 < 0x80 => {
                        s.push(c0 as char);
                        *pos += 1;
                    }
                    Some(_) => {
                        // Advance over one UTF-8 scalar, not one byte. Decode
                        // from a 4-byte window — validating the whole remaining
                        // buffer here would make string parsing quadratic.
                        let end = (*pos + 4).min(b.len());
                        let c = match std::str::from_utf8(&b[*pos..end]) {
                            Ok(w) => w.chars().next().unwrap(),
                            Err(e) if e.valid_up_to() > 0 => {
                                std::str::from_utf8(&b[*pos..*pos + e.valid_up_to()])
                                    .unwrap()
                                    .chars()
                                    .next()
                                    .unwrap()
                            }
                            Err(_) => return Err("invalid UTF-8 in string".into()),
                        };
                        s.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let tok = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            tok.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number '{tok}' at byte {start}"))
        }
    }
}

// ---------------------------------------------------------------------------
// BENCH_pi2.json history
// ---------------------------------------------------------------------------

/// One recorded benchmark run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Seconds since the Unix epoch when the run was recorded.
    pub timestamp_unix: u64,
    /// Which bench produced it (`aqm_decision`, `sim_throughput`, …).
    pub bench: String,
    /// Metric name → value, insertion-ordered.
    pub metrics: Vec<(String, f64)>,
}

impl RunRecord {
    /// Build a record stamped with the current wall clock.
    pub fn now(bench: &str, metrics: Vec<(String, f64)>) -> RunRecord {
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        RunRecord {
            timestamp_unix: ts,
            bench: bench.to_string(),
            metrics,
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "timestamp_unix".into(),
                Json::Num(self.timestamp_unix as f64),
            ),
            ("bench".into(), Json::Str(self.bench.clone())),
            (
                "metrics".into(),
                Json::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<RunRecord, String> {
        let ts = v
            .get("timestamp_unix")
            .and_then(Json::as_f64)
            .ok_or("run missing timestamp_unix")? as u64;
        let bench = v
            .get("bench")
            .and_then(Json::as_str)
            .ok_or("run missing bench")?
            .to_string();
        let metrics = match v.get("metrics") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, m)| {
                    m.as_f64()
                        .map(|x| (k.clone(), x))
                        .ok_or_else(|| format!("metric '{k}' is not a number"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("run missing metrics object".into()),
        };
        Ok(RunRecord {
            timestamp_unix: ts,
            bench,
            metrics,
        })
    }
}

/// Where the history lives: `PI2_BENCH_OUT` if set, else
/// `BENCH_pi2.json` at the repository root (two levels up from this
/// crate's manifest).
pub fn history_path() -> PathBuf {
    if let Ok(p) = std::env::var("PI2_BENCH_OUT") {
        return PathBuf::from(p);
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_pi2.json")
}

/// Load every recorded run. A missing file is an empty history; a
/// malformed file or wrong schema version is an error.
pub fn load_history(path: &Path) -> Result<Vec<RunRecord>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    // An empty file (e.g. fresh from mktemp) is an empty history, same
    // as a missing one.
    if text.trim().is_empty() {
        return Ok(Vec::new());
    }
    let doc = Json::parse(&text)?;
    match doc.get("schema").and_then(Json::as_f64) {
        Some(s) if s == 1.0 => {}
        other => return Err(format!("unsupported BENCH_pi2.json schema: {other:?}")),
    }
    doc.get("runs")
        .and_then(Json::as_arr)
        .ok_or("missing runs array")?
        .iter()
        .map(RunRecord::from_json)
        .collect()
}

/// Append `record` to the history at `path` (read–modify–write of the
/// whole file; the history is small).
pub fn append_run(path: &Path, record: &RunRecord) -> Result<(), String> {
    let mut runs = load_history(path)?;
    runs.push(record.clone());
    let doc = Json::Obj(vec![
        ("schema".into(), Json::Num(1.0)),
        (
            "runs".into(),
            Json::Arr(runs.iter().map(RunRecord::to_json).collect()),
        ),
    ]);
    std::fs::write(path, doc.to_json() + "\n").map_err(|e| format!("{}: {e}", path.display()))
}

/// The most recent run of the same bench, if any.
pub fn previous_run<'a>(history: &'a [RunRecord], bench: &str) -> Option<&'a RunRecord> {
    history.iter().rev().find(|r| r.bench == bench)
}

/// Per-metric current/previous ratios for metrics present in both runs.
pub fn compare(current: &RunRecord, previous: &RunRecord) -> Vec<(String, f64)> {
    current
        .metrics
        .iter()
        .filter_map(|(k, v)| {
            previous
                .metrics
                .iter()
                .find(|(pk, _)| pk == k)
                .map(|(_, pv)| {
                    // A zero baseline has no meaningful ratio; report 1.0
                    // (no change) when the current value is also zero.
                    let ratio = if *pv != 0.0 {
                        v / pv
                    } else if *v == 0.0 {
                        1.0
                    } else {
                        f64::INFINITY
                    };
                    (k.clone(), ratio)
                })
        })
        .collect()
}

/// Human-readable delta lines against the previous run (empty when there
/// is no previous run).
pub fn format_comparison(current: &RunRecord, previous: Option<&RunRecord>) -> String {
    let Some(prev) = previous else {
        return String::new();
    };
    let mut out = format!(
        "vs previous run (timestamp_unix {}):\n",
        prev.timestamp_unix
    );
    for (k, ratio) in compare(current, prev) {
        out.push_str(&format!("  {k}: {:+.1}%\n", (ratio - 1.0) * 100.0));
    }
    out
}

/// Record a finished bench in the history file and print where it went
/// plus the delta against the previous run. Errors are reported, not
/// fatal — a read-only checkout must not fail the bench itself.
pub fn record_and_report(bench: &str, metrics: Vec<(String, f64)>) {
    let path = history_path();
    let record = RunRecord::now(bench, metrics);
    let prev = load_history(&path).ok().and_then(|h| {
        let p = previous_run(&h, bench).cloned();
        p
    });
    print!("{}", format_comparison(&record, prev.as_ref()));
    match append_run(&path, &record) {
        Ok(()) => println!("recorded in {}", path.display()),
        Err(e) => println!("note: could not record history: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_sorted(&s, 0.0), 1.0);
        assert_eq!(percentile_sorted(&s, 0.5), 3.0);
        assert_eq!(percentile_sorted(&s, 1.0), 5.0);
        assert_eq!(percentile_sorted(&s, 0.25), 2.0);
        assert!((percentile_sorted(&s, 0.1) - 1.4).abs() < 1e-12);
        assert!(percentile_sorted(&[], 0.5).is_nan());
        assert_eq!(percentile_sorted(&[7.0], 0.9), 7.0);
    }

    #[test]
    fn median_of_unsorted() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn bench_measures_and_counts_units() {
        let mut calls = 0u64;
        let m = bench("spin", 2, 11, || {
            calls += 1;
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            std::hint::black_box(acc);
            1000
        });
        assert_eq!(calls, 13, "warmup + timed iterations");
        assert_eq!(m.iters, 11);
        assert_eq!(m.units_per_iter, 1000.0);
        assert!(m.median_ns > 0.0);
        assert!(m.p10_ns <= m.median_ns && m.median_ns <= m.p90_ns);
        assert!(m.units_per_sec() > 0.0);
        assert!((m.ns_per_unit() - m.median_ns / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn json_round_trips() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Num(1.0)),
            (
                "runs".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("s".into(), Json::Str("a \"quoted\" na\\me\n".into())),
                    ("n".into(), Json::Num(-12.5)),
                    ("i".into(), Json::Num(1723000000.0)),
                    ("b".into(), Json::Bool(true)),
                    ("z".into(), Json::Null),
                    ("e".into(), Json::Arr(vec![])),
                ])]),
            ),
        ]);
        let text = doc.to_json();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // Integral numbers serialize without a fraction part.
        assert!(text.contains("1723000000"), "{text}");
        assert!(!text.contains("1723000000.0"), "{text}");
    }

    #[test]
    fn json_parses_whitespace_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , 2.5e1 , \"π → µ\" ] } ").unwrap();
        let arr = v.get("k").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1], Json::Num(25.0));
        assert_eq!(arr[2], Json::Str("π → µ".into()));
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, ]").is_err());
        assert!(Json::parse("{\"a\": 1} extra").is_err());
        assert!(Json::parse("{1: 2}").is_err());
    }

    #[test]
    fn history_append_parse_compare_round_trip() {
        let path = std::env::temp_dir().join(format!(
            "pi2_bench_history_test_{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        assert_eq!(load_history(&path).unwrap(), Vec::new(), "missing = empty");
        std::fs::write(&path, "").unwrap();
        assert_eq!(load_history(&path).unwrap(), Vec::new(), "empty = empty");

        let first = RunRecord {
            timestamp_unix: 100,
            bench: "aqm_decision".into(),
            metrics: vec![("pie_ns".into(), 40.0), ("pi2_ns".into(), 20.0)],
        };
        append_run(&path, &first).unwrap();
        let other = RunRecord {
            timestamp_unix: 150,
            bench: "sim_throughput".into(),
            metrics: vec![("events_per_sec".into(), 1e6)],
        };
        append_run(&path, &other).unwrap();
        let second = RunRecord {
            timestamp_unix: 200,
            bench: "aqm_decision".into(),
            metrics: vec![("pie_ns".into(), 50.0), ("new_ns".into(), 1.0)],
        };
        append_run(&path, &second).unwrap();

        let history = load_history(&path).unwrap();
        assert_eq!(history, vec![first.clone(), other.clone(), second.clone()]);

        // previous_run finds the latest record of the *same* bench.
        assert_eq!(previous_run(&history, "sim_throughput"), Some(&other));
        assert_eq!(previous_run(&history, "aqm_decision"), Some(&second));
        assert_eq!(previous_run(&history[..2], "aqm_decision"), Some(&first));
        assert_eq!(previous_run(&history, "nope"), None);

        // compare keeps only shared metrics, as current/previous ratios.
        let deltas = compare(&second, &first);
        assert_eq!(deltas, vec![("pie_ns".to_string(), 50.0 / 40.0)]);
        let report = format_comparison(&second, Some(&first));
        assert!(report.contains("pie_ns: +25.0%"), "{report}");
        assert_eq!(format_comparison(&second, None), "");

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn history_rejects_unknown_schema() {
        let path = std::env::temp_dir().join(format!(
            "pi2_bench_schema_test_{}.json",
            std::process::id()
        ));
        std::fs::write(&path, "{\"schema\": 2, \"runs\": []}").unwrap();
        assert!(load_history(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn measurement_rows_have_header_and_cases() {
        let m = Measurement {
            name: "pie".into(),
            iters: 5,
            median_ns: 1000.0,
            p10_ns: 900.0,
            p90_ns: 1100.0,
            units_per_iter: 100.0,
        };
        let rows = measurement_rows("decision", &[m]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], "case");
        assert_eq!(rows[1][0], "pie");
        assert_eq!(rows[1][1], "10.00"); // 1000 ns / 100 decisions
    }
}
