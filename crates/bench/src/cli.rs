//! Argument parsing for the `pi2sim` command-line runner.
//!
//! Hand-rolled (the workspace has no runtime dependencies) but complete:
//! units for rates (`10M`, `2.5G`, `400k`) and times (`20ms`, `1s`,
//! `500us`), flow-list syntax (`5xreno,1xdctcp,2xecn-cubic`), and helpful
//! errors.

use pi2_simcore::Duration;
use pi2_transport::{CcKind, EcnSetting};

/// A parsed flow group request.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowSpec {
    /// Number of flows.
    pub count: usize,
    /// Congestion control.
    pub cc: CcKind,
    /// ECN mode.
    pub ecn: EcnSetting,
    /// Label for reporting.
    pub label: String,
}

/// The parsed command line.
#[derive(Clone, Debug)]
pub struct CliArgs {
    /// AQM name (validated against the known set).
    pub aqm: String,
    /// Bottleneck rate in bits/s.
    pub rate_bps: u64,
    /// Base RTT.
    pub rtt: Duration,
    /// Flow groups.
    pub flows: Vec<FlowSpec>,
    /// Optional UDP load in bits/s.
    pub udp_bps: Option<u64>,
    /// Run length in seconds.
    pub secs: u64,
    /// Warm-up excluded from aggregates, seconds.
    pub warmup_secs: u64,
    /// RNG seed.
    pub seed: u64,
    /// AQM delay target.
    pub target: Duration,
    /// Emit the queue-delay time series as CSV on stdout.
    pub csv: bool,
    /// Attach the runtime invariant auditor ([`pi2_netsim::AuditSink`])
    /// regardless of build profile (debug builds attach it by default;
    /// see the `PI2_AUDIT` env knob).
    pub audit: bool,
    /// Print the first N per-packet trace events.
    pub trace: usize,
    /// Stream the full event trace to this file.
    pub trace_out: Option<String>,
    /// On-disk trace format for `--trace-out`.
    pub trace_format: TraceFormat,
    /// Write a metrics-registry snapshot to this file at end of run.
    pub metrics_out: Option<String>,
    /// On-disk snapshot format for `--metrics-out`.
    pub metrics_format: MetricsFormat,
    /// Attach the event-loop self-profiler and print the per-class
    /// breakdown (env `PI2_PROFILE=1` does the same).
    pub profile: bool,
    /// Named scenario family to run instead of a single dumbbell run:
    /// `dynamics` (step-response disturbances for PIE vs PI2 vs DualPI2)
    /// or `topology` (multi-hop parking-lot / access-core layouts under
    /// heavy-tailed mice cross-traffic).
    pub scenario: Option<String>,
    /// Path impairment: per-packet random loss probability, applied
    /// symmetrically to both directions. 0 (the default) is exact
    /// identity — no impairment layer is attached at all.
    pub loss: f64,
    /// Path impairment: duplication probability for surviving packets.
    pub dup: f64,
    /// Path impairment: maximum reordering jitter (uniform extra delay
    /// in `[0, jitter]` per surviving packet).
    pub jitter: Duration,
    /// Write a checkpoint of the full simulator state to this file.
    pub checkpoint_out: Option<String>,
    /// Simulation time at which the checkpoint is taken (default: end of
    /// run). Only meaningful with `--checkpoint-out`.
    pub checkpoint_at: Option<Duration>,
    /// Restore simulator state from this checkpoint before running. The
    /// scenario arguments (AQM, rate, flows, seed, ...) must match the
    /// run that produced the checkpoint.
    pub restore: Option<String>,
    /// Serve live metrics/progress over HTTP from this address (e.g.
    /// `127.0.0.1:9100`; port 0 picks an ephemeral port, printed to
    /// stderr). `GET /cancel` stops the run gracefully: single runs
    /// checkpoint for `--restore`, sweeps stop at the next cell boundary.
    pub serve: Option<String>,
    /// Execution backend: `packet` (default, per-packet events), `fluid`
    /// (flow-level ODE, no packets — scales to millions of flows), or
    /// `hybrid` (packet foreground + fluid background aggregate).
    pub backend: String,
    /// Hybrid mode's fluid background population, in the same flow-list
    /// syntax as `--flows`. Empty = no background (hybrid ≡ packet).
    pub bg_flows: Vec<FlowSpec>,
}

/// On-disk format for `--trace-out`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line (the default).
    Jsonl,
    /// Flat CSV with a header row.
    Csv,
    /// Chrome trace-event JSON — open directly in the Perfetto UI.
    Perfetto,
}

/// On-disk format for `--metrics-out`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricsFormat {
    /// A single JSON document (the default).
    Json,
    /// Prometheus text exposition format (version 0.0.4).
    Prom,
}

/// The AQMs `pi2sim` accepts.
pub const AQMS: &[&str] = &[
    "pi2", "pie", "bare-pie", "pi", "coupled", "red", "codel", "curvy", "taildrop", "dualq", "fq",
];

impl Default for CliArgs {
    fn default() -> Self {
        CliArgs {
            aqm: "pi2".to_string(),
            rate_bps: 10_000_000,
            rtt: Duration::from_millis(100),
            flows: vec![FlowSpec {
                count: 5,
                cc: CcKind::Reno,
                ecn: EcnSetting::NotEcn,
                label: "reno".to_string(),
            }],
            udp_bps: None,
            secs: 60,
            warmup_secs: 10,
            seed: 1,
            target: Duration::from_millis(20),
            csv: false,
            audit: false,
            trace: 0,
            trace_out: None,
            trace_format: TraceFormat::Jsonl,
            metrics_out: None,
            metrics_format: MetricsFormat::Json,
            profile: false,
            scenario: None,
            loss: 0.0,
            dup: 0.0,
            jitter: Duration::ZERO,
            checkpoint_out: None,
            checkpoint_at: None,
            restore: None,
            serve: None,
            backend: "packet".to_string(),
            bg_flows: Vec::new(),
        }
    }
}

impl CliArgs {
    /// True when any impairment knob is set (a weather layer must be
    /// attached).
    pub fn impaired(&self) -> bool {
        self.loss > 0.0 || self.dup > 0.0 || self.jitter > Duration::ZERO
    }
}

/// The scenario families `--scenario` accepts.
pub const SCENARIOS: &[&str] = &["dynamics", "topology"];

/// The execution backends `--backend` accepts.
pub const BACKENDS: &[&str] = &["packet", "fluid", "hybrid"];

/// Parse a probability in `[0, 1]`, accepting a trailing `%`.
pub fn parse_prob(s: &str) -> Result<f64, String> {
    let s = s.trim();
    let (num, scale) = match s.strip_suffix('%') {
        Some(n) => (n, 0.01),
        None => (s, 1.0),
    };
    let v: f64 = num
        .parse()
        .map_err(|_| format!("bad probability '{s}' (try 0.01 or 1%)"))?;
    let p = v * scale;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("probability '{s}' must be within [0, 1]"));
    }
    Ok(p)
}

/// Parse a rate like `10M`, `2.5G`, `400k`, `9000`.
pub fn parse_rate(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (num, mult) = match s.chars().last() {
        Some('k') | Some('K') => (&s[..s.len() - 1], 1e3),
        Some('m') | Some('M') => (&s[..s.len() - 1], 1e6),
        Some('g') | Some('G') => (&s[..s.len() - 1], 1e9),
        _ => (s, 1.0),
    };
    let v: f64 = num
        .parse()
        .map_err(|_| format!("bad rate '{s}' (try 10M, 400k, 2.5G)"))?;
    if v <= 0.0 {
        return Err(format!("rate must be positive, got '{s}'"));
    }
    Ok((v * mult) as u64)
}

/// Parse a time like `20ms`, `1s`, `500us`.
pub fn parse_time(s: &str) -> Result<Duration, String> {
    let s = s.trim();
    let (num, scale) = if let Some(n) = s.strip_suffix("ms") {
        (n, 1e-3)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1e-6)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1.0)
    } else {
        (s, 1e-3) // bare number: milliseconds
    };
    let v: f64 = num
        .parse()
        .map_err(|_| format!("bad time '{s}' (try 20ms, 1s, 500us)"))?;
    if v < 0.0 {
        return Err(format!("time must be non-negative, got '{s}'"));
    }
    Ok(Duration::from_secs_f64(v * scale))
}

/// Parse a flow list like `5xreno,1xdctcp,2xecn-cubic`.
pub fn parse_flows(s: &str) -> Result<Vec<FlowSpec>, String> {
    let mut out = Vec::new();
    for part in s.split(',').filter(|p| !p.is_empty()) {
        let (count, name) = match part.split_once('x') {
            Some((c, n)) => (
                c.parse::<usize>()
                    .map_err(|_| format!("bad flow count in '{part}'"))?,
                n,
            ),
            None => (1, part),
        };
        let (cc, ecn) = match name {
            "reno" => (CcKind::Reno, EcnSetting::NotEcn),
            "cubic" => (CcKind::Cubic, EcnSetting::NotEcn),
            "ecn-reno" => (CcKind::Reno, EcnSetting::Classic),
            "ecn-cubic" => (CcKind::Cubic, EcnSetting::Classic),
            "dctcp" => (CcKind::Dctcp, EcnSetting::Scalable),
            "scalable" => (CcKind::ScalableHalfPkt, EcnSetting::Scalable),
            "relentless" => (CcKind::Relentless, EcnSetting::Scalable),
            "stcp" => (CcKind::ScalableTcp, EcnSetting::Scalable),
            other => {
                return Err(format!(
                    "unknown congestion control '{other}' (reno, cubic, \
                     ecn-reno, ecn-cubic, dctcp, scalable, relentless, stcp)"
                ))
            }
        };
        out.push(FlowSpec {
            count,
            cc,
            ecn,
            label: name.to_string(),
        });
    }
    if out.is_empty() {
        return Err("no flows specified".to_string());
    }
    Ok(out)
}

/// Parse the full argument vector (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    let mut out = CliArgs::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--aqm" => {
                let v = value("--aqm")?;
                if !AQMS.contains(&v.as_str()) {
                    return Err(format!("unknown AQM '{v}' (one of {})", AQMS.join(", ")));
                }
                out.aqm = v.clone();
            }
            "--rate" => out.rate_bps = parse_rate(value("--rate")?)?,
            "--rtt" => out.rtt = parse_time(value("--rtt")?)?,
            "--flows" => out.flows = parse_flows(value("--flows")?)?,
            "--udp" => out.udp_bps = Some(parse_rate(value("--udp")?)?),
            "--secs" => {
                out.secs = value("--secs")?
                    .parse()
                    .map_err(|_| "bad --secs".to_string())?
            }
            "--warmup" => {
                out.warmup_secs = value("--warmup")?
                    .parse()
                    .map_err(|_| "bad --warmup".to_string())?
            }
            "--seed" => {
                out.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?
            }
            "--target" => out.target = parse_time(value("--target")?)?,
            "--csv" => out.csv = true,
            "--audit" => out.audit = true,
            "--trace" => {
                out.trace = value("--trace")?
                    .parse()
                    .map_err(|_| "bad --trace".to_string())?
            }
            "--trace-out" => out.trace_out = Some(value("--trace-out")?.clone()),
            "--trace-format" => {
                out.trace_format = match value("--trace-format")?.as_str() {
                    "jsonl" => TraceFormat::Jsonl,
                    "csv" => TraceFormat::Csv,
                    "perfetto" | "chrome-json" => TraceFormat::Perfetto,
                    other => {
                        return Err(format!(
                            "bad --trace-format '{other}' (jsonl, csv or perfetto)"
                        ))
                    }
                }
            }
            "--metrics-out" => out.metrics_out = Some(value("--metrics-out")?.clone()),
            "--metrics-format" => {
                out.metrics_format = match value("--metrics-format")?.as_str() {
                    "json" => MetricsFormat::Json,
                    "prom" | "prometheus" => MetricsFormat::Prom,
                    other => {
                        return Err(format!("bad --metrics-format '{other}' (json or prom)"))
                    }
                }
            }
            "--profile" => out.profile = true,
            "--scenario" => {
                let v = value("--scenario")?;
                if !SCENARIOS.contains(&v.as_str()) {
                    return Err(format!(
                        "unknown scenario '{v}' (one of {})",
                        SCENARIOS.join(", ")
                    ));
                }
                out.scenario = Some(v.clone());
            }
            "--loss" => out.loss = parse_prob(value("--loss")?)?,
            "--dup" => out.dup = parse_prob(value("--dup")?)?,
            "--jitter" => out.jitter = parse_time(value("--jitter")?)?,
            "--checkpoint-out" => out.checkpoint_out = Some(value("--checkpoint-out")?.clone()),
            "--checkpoint-at" => out.checkpoint_at = Some(parse_time(value("--checkpoint-at")?)?),
            "--restore" => out.restore = Some(value("--restore")?.clone()),
            "--serve" => out.serve = Some(value("--serve")?.clone()),
            "--backend" => {
                let v = value("--backend")?;
                if !BACKENDS.contains(&v.as_str()) {
                    return Err(format!(
                        "unknown backend '{v}' (one of {})",
                        BACKENDS.join(", ")
                    ));
                }
                out.backend = v.clone();
            }
            "--bg-flows" => out.bg_flows = parse_flows(value("--bg-flows")?)?,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    if out.warmup_secs >= out.secs {
        return Err("--warmup must be smaller than --secs".to_string());
    }
    if out.checkpoint_at.is_some() && out.checkpoint_out.is_none() {
        return Err("--checkpoint-at needs --checkpoint-out".to_string());
    }
    if !out.bg_flows.is_empty() && out.backend != "hybrid" {
        return Err("--bg-flows needs --backend hybrid".to_string());
    }
    if out.backend != "packet" && out.scenario.is_some() {
        return Err("--scenario only runs on the packet backend".to_string());
    }
    Ok(out)
}

/// The usage string.
pub fn usage() -> String {
    format!(
        "pi2sim — run a dumbbell scenario against an AQM\n\
         \n\
         options:\n\
         \x20 --aqm <name>      one of {} (default pi2)\n\
         \x20 --rate <bps>      bottleneck rate, e.g. 10M, 400k, 1G (default 10M)\n\
         \x20 --rtt <time>      base RTT, e.g. 100ms (default 100ms)\n\
         \x20 --flows <list>    e.g. 5xreno or 1xcubic,1xdctcp (default 5xreno)\n\
         \x20 --udp <bps>       add one CBR source at this rate\n\
         \x20 --secs <n>        run length (default 60)\n\
         \x20 --warmup <n>      warm-up excluded from stats (default 10)\n\
         \x20 --seed <n>        RNG seed (default 1)\n\
         \x20 --target <time>   AQM delay target (default 20ms)\n\
         \x20 --csv             also print the (t, queue delay ms) series as CSV\n\
         \x20 --audit           attach the invariant auditor (always on in debug\n\
         \x20                   builds; env PI2_AUDIT=1/0 overrides either way)\n\
         \x20 --trace <n>       print the first n per-packet bottleneck events\n\
         \x20 --trace-out <p>   stream every event + AQM state probe to this file\n\
         \x20 --trace-format <f> jsonl (default), csv, or perfetto (Chrome\n\
         \x20                   trace-event JSON for ui.perfetto.dev), for --trace-out\n\
         \x20 --metrics-out <p> write the end-of-run metrics snapshot (counters +\n\
         \x20                   histogram quantiles) to this file\n\
         \x20 --metrics-format <f> json (default) or prom, for --metrics-out\n\
         \x20 --profile         time the event loop per event class and print the\n\
         \x20                   breakdown (env PI2_PROFILE=1 does the same)\n\
         \x20 --scenario <name> run a scenario family instead ({}):\n\
         \x20                   dynamics = rate-step + flow-churn disturbances\n\
         \x20                   for PIE vs PI2 vs DualPI2, with spike/settle table\n\
         \x20 --loss <p>        network weather: random loss probability (0.01 or 1%)\n\
         \x20 --dup <p>         network weather: duplication probability\n\
         \x20 --jitter <time>   network weather: max reordering jitter, e.g. 5ms\n\
         \x20 --checkpoint-out <p> write a full simulator checkpoint to this file\n\
         \x20 --checkpoint-at <time> when to snapshot (default: end of run)\n\
         \x20 --restore <p>     resume from a checkpoint; pass the same scenario\n\
         \x20                   arguments as the run that produced it\n\
         \x20 --serve <addr>    serve /metrics, /progress, /healthz and /cancel over\n\
         \x20                   HTTP while running (e.g. 127.0.0.1:9100; port 0 =\n\
         \x20                   ephemeral, printed to stderr)\n\
         \x20 --backend <b>     execution backend: packet (default), fluid (flow-\n\
         \x20                   level ODE, no packets — handles millions of flows),\n\
         \x20                   or hybrid (packet foreground + fluid background)\n\
         \x20 --bg-flows <list> hybrid only: fluid background population in --flows\n\
         \x20                   syntax, e.g. 1000xreno or 50000xreno,50000xdctcp",
        AQMS.join("|"),
        SCENARIOS.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn rates_parse_with_units() {
        assert_eq!(parse_rate("10M").unwrap(), 10_000_000);
        assert_eq!(parse_rate("400k").unwrap(), 400_000);
        assert_eq!(parse_rate("2.5G").unwrap(), 2_500_000_000);
        assert_eq!(parse_rate("9000").unwrap(), 9000);
        assert!(parse_rate("fast").is_err());
        assert!(parse_rate("-3M").is_err());
    }

    #[test]
    fn times_parse_with_units() {
        assert_eq!(parse_time("20ms").unwrap(), Duration::from_millis(20));
        assert_eq!(parse_time("1s").unwrap(), Duration::from_secs(1));
        assert_eq!(parse_time("500us").unwrap(), Duration::from_micros(500));
        assert_eq!(parse_time("15").unwrap(), Duration::from_millis(15));
        assert!(parse_time("soon").is_err());
    }

    #[test]
    fn flow_lists_parse() {
        let f = parse_flows("5xreno,1xdctcp").unwrap();
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].count, 5);
        assert_eq!(f[0].cc, CcKind::Reno);
        assert_eq!(f[1].count, 1);
        assert_eq!(f[1].ecn, EcnSetting::Scalable);
        // Bare name means one flow.
        let f = parse_flows("cubic").unwrap();
        assert_eq!(f[0].count, 1);
        assert!(parse_flows("3xwarpspeed").is_err());
        assert!(parse_flows("").is_err());
    }

    #[test]
    fn full_command_line_parses() {
        let a = parse_args(&args(
            "--aqm coupled --rate 40M --rtt 10ms --flows 1xcubic,1xdctcp --secs 30 --seed 7 --trace 50",
        ))
        .unwrap();
        assert_eq!(a.trace, 50);
        assert_eq!(a.aqm, "coupled");
        assert_eq!(a.rate_bps, 40_000_000);
        assert_eq!(a.rtt, Duration::from_millis(10));
        assert_eq!(a.flows.len(), 2);
        assert_eq!(a.secs, 30);
        assert_eq!(a.seed, 7);
        assert_eq!(a.trace_out, None);
        assert_eq!(a.trace_format, TraceFormat::Jsonl);
    }

    #[test]
    fn trace_out_and_format_parse() {
        let a = parse_args(&args("--trace-out /tmp/t.csv --trace-format csv")).unwrap();
        assert_eq!(a.trace_out.as_deref(), Some("/tmp/t.csv"));
        assert_eq!(a.trace_format, TraceFormat::Csv);
        let p = parse_args(&args("--trace-out /tmp/t.json --trace-format perfetto")).unwrap();
        assert_eq!(p.trace_format, TraceFormat::Perfetto);
        let alias = parse_args(&args("--trace-format chrome-json")).unwrap();
        assert_eq!(alias.trace_format, TraceFormat::Perfetto);
        let e = parse_args(&args("--trace-format xml")).unwrap_err();
        assert!(e.contains("jsonl, csv or perfetto"));
    }

    #[test]
    fn serve_flag_parses() {
        let a = parse_args(&args("--serve 127.0.0.1:0")).unwrap();
        assert_eq!(a.serve.as_deref(), Some("127.0.0.1:0"));
        let d = parse_args(&[]).unwrap();
        assert_eq!(d.serve, None, "serving must be opt-in");
        assert!(parse_args(&args("--serve")).unwrap_err().contains("needs a value"));
    }

    #[test]
    fn metrics_and_profile_flags_parse() {
        let a = parse_args(&args("--metrics-out /tmp/m.prom --metrics-format prom --profile"))
            .unwrap();
        assert_eq!(a.metrics_out.as_deref(), Some("/tmp/m.prom"));
        assert_eq!(a.metrics_format, MetricsFormat::Prom);
        assert!(a.profile);
        let d = parse_args(&args("--metrics-out /tmp/m.json")).unwrap();
        assert_eq!(d.metrics_format, MetricsFormat::Json, "json is the default");
        assert!(!d.profile);
        let e = parse_args(&args("--metrics-format yaml")).unwrap_err();
        assert!(e.contains("json or prom"));
    }

    #[test]
    fn bad_aqm_is_rejected_with_the_list() {
        let e = parse_args(&args("--aqm wred")).unwrap_err();
        assert!(e.contains("unknown AQM"));
        assert!(e.contains("pi2"));
    }

    #[test]
    fn warmup_must_be_shorter_than_run() {
        assert!(parse_args(&args("--secs 10 --warmup 20")).is_err());
    }

    #[test]
    fn defaults_are_sane() {
        let a = parse_args(&[]).unwrap();
        assert_eq!(a.aqm, "pi2");
        assert_eq!(a.rate_bps, 10_000_000);
        assert!(!a.csv);
        assert!(!a.audit);
    }

    #[test]
    fn audit_flag_parses() {
        let a = parse_args(&args("--audit")).unwrap();
        assert!(a.audit);
    }

    #[test]
    fn probabilities_parse_with_percent() {
        assert_eq!(parse_prob("0.01").unwrap(), 0.01);
        assert_eq!(parse_prob("1%").unwrap(), 0.01);
        assert_eq!(parse_prob("0").unwrap(), 0.0);
        assert_eq!(parse_prob("100%").unwrap(), 1.0);
        assert!(parse_prob("1.5").is_err());
        assert!(parse_prob("-0.1").is_err());
        assert!(parse_prob("often").is_err());
    }

    #[test]
    fn weather_knobs_parse_and_default_off() {
        let d = parse_args(&[]).unwrap();
        assert!(!d.impaired(), "weather must default off");
        let a = parse_args(&args("--loss 1% --dup 0.005 --jitter 5ms")).unwrap();
        assert!(a.impaired());
        assert_eq!(a.loss, 0.01);
        assert_eq!(a.dup, 0.005);
        assert_eq!(a.jitter, Duration::from_millis(5));
    }

    #[test]
    fn checkpoint_flags_parse() {
        let a = parse_args(&args(
            "--checkpoint-out /tmp/c.ckpt --checkpoint-at 30s --restore /tmp/old.ckpt",
        ))
        .unwrap();
        assert_eq!(a.checkpoint_out.as_deref(), Some("/tmp/c.ckpt"));
        assert_eq!(a.checkpoint_at, Some(Duration::from_secs(30)));
        assert_eq!(a.restore.as_deref(), Some("/tmp/old.ckpt"));
        let d = parse_args(&[]).unwrap();
        assert_eq!(d.checkpoint_out, None);
        assert_eq!(d.restore, None);
        let e = parse_args(&args("--checkpoint-at 10s")).unwrap_err();
        assert!(e.contains("--checkpoint-out"));
    }

    #[test]
    fn backend_flag_parses_and_validates() {
        let d = parse_args(&[]).unwrap();
        assert_eq!(d.backend, "packet", "packet is the default backend");
        assert!(d.bg_flows.is_empty());
        let f = parse_args(&args("--backend fluid --flows 100000xreno")).unwrap();
        assert_eq!(f.backend, "fluid");
        let h = parse_args(&args("--backend hybrid --bg-flows 1000xreno,200xdctcp")).unwrap();
        assert_eq!(h.backend, "hybrid");
        assert_eq!(h.bg_flows.len(), 2);
        assert_eq!(h.bg_flows[0].count, 1000);
        assert_eq!(h.bg_flows[1].cc, CcKind::Dctcp);
        let e = parse_args(&args("--backend quantum")).unwrap_err();
        assert!(e.contains("unknown backend"));
        let e = parse_args(&args("--bg-flows 10xreno")).unwrap_err();
        assert!(e.contains("--backend hybrid"));
        let e = parse_args(&args("--backend fluid --scenario dynamics")).unwrap_err();
        assert!(e.contains("packet backend"));
    }

    #[test]
    fn scenario_flag_validates_name() {
        let a = parse_args(&args("--scenario dynamics --seed 9")).unwrap();
        assert_eq!(a.scenario.as_deref(), Some("dynamics"));
        let t = parse_args(&args("--scenario topology --audit")).unwrap();
        assert_eq!(t.scenario.as_deref(), Some("topology"));
        assert!(t.audit);
        let e = parse_args(&args("--scenario figure99")).unwrap_err();
        assert!(e.contains("unknown scenario"));
    }
}
