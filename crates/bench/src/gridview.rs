//! Shared printers for the Figures 15–18 grid (one grid run feeds four
//! figures).

use crate::{f, table};
use pi2_experiments::grid::{GridCell, Pair};

fn pair_label(p: Pair) -> &'static str {
    match p {
        Pair::CubicVsEcnCubic => "Cubic/ECN-Cubic",
        Pair::CubicVsDctcp => "Cubic/DCTCP",
    }
}

fn cell_key(c: &GridCell) -> String {
    format!("{}Mb {}ms", c.link_mbps, c.rtt_ms)
}

/// Figure 15: throughput-balance ratios.
pub fn print_fig15(cells: &[GridCell]) {
    println!("--- Figure 15: rate balance (non-ECN flow rate / ECN flow rate) ---");
    let mut rows = vec![vec![
        "cell".to_string(),
        "pair".into(),
        "aqm".into(),
        "ratio".into(),
        "cubic Mb/s".into(),
        "ecn-flow Mb/s".into(),
    ]];
    for c in cells {
        rows.push(vec![
            cell_key(c),
            pair_label(c.pair).to_string(),
            c.aqm.to_string(),
            f(c.rate_ratio),
            f(c.tputs.0),
            f(c.tputs.1),
        ]);
    }
    table(&rows);
    println!(
        "shape check: under PIE the Cubic/DCTCP ratio collapses (DCTCP starves\n\
         Cubic ~10x); under coupled PI2 it stays near 1 across the whole grid; the\n\
         Cubic/ECN-Cubic control pair is ~1 under both.\n"
    );
}

/// Figure 16: queue delay mean + P99.
pub fn print_fig16(cells: &[GridCell]) {
    println!("--- Figure 16: queue delay (ms), mean and P99 ---");
    let mut rows = vec![vec![
        "cell".to_string(),
        "pair".into(),
        "aqm".into(),
        "mean".into(),
        "p99".into(),
    ]];
    for c in cells {
        rows.push(vec![
            cell_key(c),
            pair_label(c.pair).to_string(),
            c.aqm.to_string(),
            f(c.delay.mean),
            f(c.delay.p99),
        ]);
    }
    table(&rows);
    println!(
        "shape check: both AQMs hold the mean near the 20 ms target; PI2 is no\n\
         worse, and at the smallest link rate (4 Mb/s) its P99 beats PIE's.\n"
    );
}

/// Figure 17: applied probability percentiles.
pub fn print_fig17(cells: &[GridCell]) {
    println!("--- Figure 17: mark/drop probability [%], P25/mean/P99 per flow ---");
    let mut rows = vec![vec![
        "cell".to_string(),
        "pair".into(),
        "aqm".into(),
        "cubic p25".into(),
        "cubic mean".into(),
        "cubic p99".into(),
        "ecn p25".into(),
        "ecn mean".into(),
        "ecn p99".into(),
    ]];
    for c in cells {
        rows.push(vec![
            cell_key(c),
            pair_label(c.pair).to_string(),
            c.aqm.to_string(),
            f(c.prob_cubic.p25),
            f(c.prob_cubic.mean),
            f(c.prob_cubic.p99),
            f(c.prob_ecn.p25),
            f(c.prob_ecn.mean),
            f(c.prob_ecn.p99),
        ]);
    }
    table(&rows);
    println!(
        "shape check: under coupled PI2 the DCTCP marking probability sits far\n\
         above the Cubic drop probability (ps vs (ps/2)^2), growing as link rate\n\
         falls; under PIE both flows see the same p.\n"
    );
}

/// Figure 18: utilization percentiles.
pub fn print_fig18(cells: &[GridCell]) {
    println!("--- Figure 18: link utilization [%], P1/mean/P99 ---");
    let mut rows = vec![vec![
        "cell".to_string(),
        "pair".into(),
        "aqm".into(),
        "p1".into(),
        "mean".into(),
        "p99".into(),
    ]];
    for c in cells {
        rows.push(vec![
            cell_key(c),
            pair_label(c.pair).to_string(),
            c.aqm.to_string(),
            f(c.util.p1),
            f(c.util.mean),
            f(c.util.p99),
        ]);
    }
    table(&rows);
    println!(
        "shape check: utilization stays high (>85-90% mean) across the grid for\n\
         both AQMs; dips appear only at large RTT x small rate where two flows\n\
         cannot fill the pipe at the 20 ms target.\n"
    );
}

/// Per-cell event-counter totals from the always-on counting sink, plus
/// the registry-histogram metrics column (whole-run sojourn P50/P99 and
/// dispatch-loop event count from `pi2_obs`).
pub fn print_counters(cells: &[GridCell]) {
    println!("--- per-cell event counters (whole run, warmup included) ---");
    let mut rows = vec![vec![
        "cell".to_string(),
        "pair".into(),
        "aqm".into(),
        "enq".into(),
        "mark".into(),
        "drop".into(),
        "deq".into(),
        "aqm upd".into(),
        "soj p50 ms".into(),
        "soj p99 ms".into(),
        "events".into(),
    ]];
    for c in cells {
        rows.push(vec![
            cell_key(c),
            pair_label(c.pair).to_string(),
            c.aqm.to_string(),
            c.counts.enqueued.to_string(),
            c.counts.marked.to_string(),
            c.counts.dropped.to_string(),
            c.counts.dequeued.to_string(),
            c.aqm_updates.to_string(),
            f(c.sojourn_p50_ms),
            f(c.sojourn_p99_ms),
            c.events_processed.to_string(),
        ]);
    }
    table(&rows);
}
