//! Per-packet decision cost: PIE vs PI2 vs coupled PI2 vs RED.
//!
//! The paper's simplicity claim: "squaring the output ... is less
//! computationally expensive" than PIE's heuristic machinery. These
//! benches measure the hot path of each AQM — one enqueue decision —
//! and the controller update tick.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pi2_aqm::{
    CoupledPi2, CoupledPi2Config, Pi2, Pi2Config, Pie, PieConfig, Red, RedConfig, SquareMode,
};
use pi2_netsim::{Aqm, Ecn, FlowId, Packet, QueueSnapshot};
use pi2_simcore::{Rng, Time};

fn snap() -> QueueSnapshot {
    QueueSnapshot {
        qlen_bytes: 45_000,
        qlen_pkts: 30,
        link_rate_bps: 10_000_000,
        last_sojourn: Some(pi2_simcore::Duration::from_millis(21)),
    }
}

fn bench_enqueue(c: &mut Criterion) {
    let mut group = c.benchmark_group("enqueue_decision");
    let s = snap();
    let pkt = Packet::data(FlowId(0), 0, 1500, Ecn::NotEct, Time::ZERO);
    let ect1 = Packet::data(FlowId(0), 0, 1500, Ecn::Ect1, Time::ZERO);

    let mut pie = Pie::new(PieConfig::paper_default());
    // Drive the controllers to a realistic operating point first.
    for _ in 0..50 {
        pie.update(&s, Time::ZERO);
    }
    let mut rng = Rng::new(1);
    group.bench_function("pie", |b| {
        b.iter(|| black_box(pie.on_enqueue(black_box(&pkt), &s, Time::ZERO, &mut rng)))
    });

    let mut pi2 = Pi2::new(Pi2Config::default());
    for _ in 0..50 {
        pi2.update(&s, Time::ZERO);
    }
    group.bench_function("pi2_multiply", |b| {
        b.iter(|| black_box(pi2.on_enqueue(black_box(&pkt), &s, Time::ZERO, &mut rng)))
    });

    let mut pi2_two = Pi2::new(Pi2Config {
        square_mode: SquareMode::TwoCompare,
        ..Pi2Config::default()
    });
    for _ in 0..50 {
        pi2_two.update(&s, Time::ZERO);
    }
    group.bench_function("pi2_two_compare", |b| {
        b.iter(|| black_box(pi2_two.on_enqueue(black_box(&pkt), &s, Time::ZERO, &mut rng)))
    });

    let mut coupled = CoupledPi2::new(CoupledPi2Config::default());
    for _ in 0..50 {
        coupled.update(&s, Time::ZERO);
    }
    group.bench_function("coupled_classic", |b| {
        b.iter(|| black_box(coupled.on_enqueue(black_box(&pkt), &s, Time::ZERO, &mut rng)))
    });
    group.bench_function("coupled_scalable", |b| {
        b.iter(|| black_box(coupled.on_enqueue(black_box(&ect1), &s, Time::ZERO, &mut rng)))
    });

    let mut red = Red::new(RedConfig::default());
    group.bench_function("red", |b| {
        b.iter(|| black_box(red.on_enqueue(black_box(&pkt), &s, Time::ZERO, &mut rng)))
    });
    group.finish();
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller_update");
    let s = snap();

    let mut pie = Pie::new(PieConfig::paper_default());
    group.bench_function("pie_update", |b| {
        b.iter(|| {
            pie.update(black_box(&s), Time::ZERO);
            black_box(pie.control_variable())
        })
    });

    let mut pi2 = Pi2::new(Pi2Config::default());
    group.bench_function("pi2_update", |b| {
        b.iter(|| {
            pi2.update(black_box(&s), Time::ZERO);
            black_box(pi2.control_variable())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_enqueue, bench_update);
criterion_main!(benches);
