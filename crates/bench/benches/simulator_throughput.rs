//! End-to-end simulator throughput: how much wall-clock time one
//! simulated second costs per AQM. Establishes that the figure
//! regeneration runs are dominated by simulated traffic, not AQM
//! overhead.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pi2_aqm::{Pi2, Pi2Config, Pie, PieConfig};
use pi2_netsim::{Aqm, MonitorConfig, PathConf, QueueConfig, Sim, SimConfig};
use pi2_simcore::{Duration, Time};
use pi2_transport::{CcKind, EcnSetting, TcpConfig, TcpSource};

fn build(aqm: Box<dyn Aqm>) -> Sim {
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps: 50_000_000,
                buffer_bytes: 60_000_000,
            },
            seed: 7,
            monitor: MonitorConfig {
                record_sojourns: false,
                record_probs: false,
                ..MonitorConfig::default()
            },
            trace_capacity: 0,
        },
        aqm,
    );
    for _ in 0..10 {
        sim.add_flow(
            PathConf::symmetric(Duration::from_millis(20)),
            "reno",
            Time::ZERO,
            |id| {
                Box::new(TcpSource::new(
                    id,
                    CcKind::Reno,
                    EcnSetting::NotEcn,
                    TcpConfig::default(),
                ))
            },
        );
    }
    sim
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_second");
    group.sample_size(10);
    group.bench_function("pie_10flows_50mbps", |b| {
        b.iter_batched(
            || build(Box::new(Pie::new(PieConfig::paper_default()))),
            |mut sim| {
                sim.run_until(Time::from_secs(1));
                sim.core.events.popped()
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("pi2_10flows_50mbps", |b| {
        b.iter_batched(
            || build(Box::new(Pi2::new(Pi2Config::default()))),
            |mut sim| {
                sim.run_until(Time::from_secs(1));
                sim.core.events.popped()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
