//! # pi2-validate — differential and metamorphic validation
//!
//! The reproduction has two independent models of the same system: the
//! packet-level simulator (`pi2-netsim` + `pi2-aqm` + `pi2-transport`,
//! the ground truth) and the fluid ODE integrator (`pi2-fluid::ode`, the
//! paper's analytical model). Each can be wrong on its own; it is much
//! harder for both to be wrong *in the same way*. This crate turns that
//! observation into an executable cross-check:
//!
//! * [`differential`] — run matched configurations (AQM kind × traffic
//!   class × RTT × rate) through both models and compare steady-state
//!   congestion-signal probability, mean queue delay, and per-flow rate
//!   fairness under per-metric tolerances, emitting a machine-readable
//!   JSONL agreement report (same hand-rolled JSONL conventions as
//!   `pi2_netsim::trace`).
//! * [`metamorphic`] — properties that relate *runs to other runs* rather
//!   than to fixed numbers: summary metrics are seed-invariant within a
//!   band, jointly scaling link rate and packet size is a symmetry, and
//!   the coupled AQM's Classic/Scalable probabilities obey the paper's
//!   `p_C = (p_S / k)²` coupling law. The generators here are reused by
//!   both the deterministic tier-1 tests and the feature-gated
//!   `proptests` suite.
//!
//! The third validation layer — the always-on runtime invariant auditor —
//! lives in `pi2_netsim::audit` so it can observe the event stream
//! in-process; this crate's tests exercise it end to end.

pub mod differential;
pub mod metamorphic;

pub use differential::{
    bands, default_grid, run_config, run_grid, ConfigReport, DiffAqm, DiffTraffic, GridReport,
    MatchedConfig, MetricReport, Tol, Tolerances,
};
pub use metamorphic::{coupling_scenario, run_summary, standard_scenario, SummaryMetrics};
