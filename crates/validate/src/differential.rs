//! The fluid ⇄ packet differential harness.
//!
//! One [`MatchedConfig`] describes a single physical situation — an AQM
//! at a bottleneck rate, a homogeneous set of long-running flows at a
//! base RTT — and knows how to express it in both formalisms:
//!
//! * packet level: a `pi2_experiments::Scenario` (the AQM implementations
//!   under test, real TCP machinery, stochastic mark/drop decisions);
//! * fluid level: a `pi2_fluid::FluidConfig` (the deterministic delay-ODE
//!   of Misra et al. with the paper's controller variants).
//!
//! The mapping follows the paper's Table 1 / Figure 7 pairings:
//!
//! | packet AQM                  | traffic      | fluid encoder + gains        |
//! |-----------------------------|--------------|------------------------------|
//! | `Pi` (untuned PIE gains)    | Reno         | `Direct`, `PiGains::pie()`   |
//! | `Pi` (default = scal gains) | Scalable     | `Direct`, `PiGains::scal_pi()`|
//! | `Pi2`                       | Reno         | `Squared`, `PiGains::pi2()`  |
//! | `CoupledPi2` (PI2 family)   | Scalable     | `Direct`, `PiGains::scal_pi()`|
//! | `Pie` (paper ECN rework)    | Reno         | `TunedDirect`, `PiGains::pie()`|
//! | `Pie` (paper ECN rework)    | Scalable     | `TunedDirect`, `PiGains::pie()`|
//!
//! (The coupled AQM's PI core runs at 2× the Classic PI2 gains and applies
//! `p'` directly to Scalable packets, which is exactly the `scal pi`
//! fluid loop.)
//!
//! Three steady-state metrics are compared per configuration, each with
//! its own [`Tol`]erance:
//!
//! * **signal probability** — the packet side's post-warm-up fraction of
//!   offered packets that were marked or dropped, against the fluid
//!   side's mean applied signal `s(p')` over the settled tail;
//! * **mean queue delay** — post-warm-up mean packet sojourn minus one
//!   packet serialization time (sojourns are measured at the *end* of
//!   transmission; the fluid `q/C` is pure waiting time), against the
//!   settled-tail mean of `q/C`;
//! * **per-flow rate ratio** — max/min of per-flow mean throughput. The
//!   fluid model's identical flows give exactly 1; the packet side must
//!   stay within the stochastic-fairness band of it.
//!
//! The comparison is `|packet − fluid| ≤ abs + rel · max(|packet|, |fluid|)`
//! per metric, and a machine-readable JSONL report (one object per
//! configuration) records every number that went into the verdict.

use pi2_aqm::{CoupledPi2Config, Pi2Config, PiConfig, PieConfig};
use pi2_experiments::{AqmKind, FlowGroup, RunResult, Scenario};
use pi2_fluid::{FluidConfig, FluidControllerKind, FluidSim, FluidTcpKind, PiGains};
use pi2_simcore::{Duration, Time};
use pi2_transport::{CcKind, EcnSetting};
use std::io::{self, Write};

/// Which AQM family guards the bottleneck (both sides of the check).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiffAqm {
    /// Plain PI: fixed PIE gains on Reno (Figure 6's straw man), the
    /// default Scalable gains on Scalable traffic (`scal pi`).
    Pi,
    /// The PI2 family: standalone `Pi2` for Classic traffic, the coupled
    /// single-queue AQM's Scalable path (`p'` applied directly) for
    /// Scalable traffic.
    Pi2,
    /// Linux PIE with the paper's ECN rework (marks at any `p`).
    Pie,
}

/// Which homogeneous traffic class drives the bottleneck.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiffTraffic {
    /// TCP Reno, no ECN: the Classic `W ∝ 1/√p` law.
    Reno,
    /// The half-packet-per-mark Scalable control on ECT(1): `W ∝ 1/p`.
    Scalable,
}

impl DiffTraffic {
    fn label(self) -> &'static str {
        match self {
            DiffTraffic::Reno => "reno",
            DiffTraffic::Scalable => "scal",
        }
    }
}

/// One per-metric tolerance: passes when
/// `|packet − fluid| ≤ abs + rel · max(|packet|, |fluid|)`.
#[derive(Clone, Copy, Debug)]
pub struct Tol {
    /// Relative term, as a fraction of the larger magnitude.
    pub rel: f64,
    /// Absolute floor, in the metric's own unit.
    pub abs: f64,
}

impl Tol {
    /// Does `(packet, fluid)` agree under this tolerance?
    pub fn ok(&self, packet: f64, fluid: f64) -> bool {
        (packet - fluid).abs() <= self.abs + self.rel * packet.abs().max(fluid.abs())
    }
}

/// The per-metric tolerances of one configuration.
#[derive(Clone, Copy, Debug)]
pub struct Tolerances {
    /// Congestion-signal probability (dimensionless).
    pub signal: Tol,
    /// Mean queue delay (seconds).
    pub qdelay: Tol,
    /// Per-flow rate ratio (dimensionless, fluid side ≡ 1).
    pub rate_ratio: Tol,
    /// Bottleneck utilization (fraction of capacity, 0..1).
    pub util: Tol,
}

impl Tolerances {
    /// The documented default band.
    ///
    /// The packet simulator is stochastic and the fluid model is a mean
    /// approximation that ignores slow-start, retransmission timers,
    /// burst allowances and integer-window effects, so the bands are
    /// deliberately loose in relative terms while still tight enough
    /// that any mapping bug (wrong gains, wrong encoder, wrong traffic
    /// law) lands far outside them:
    ///
    /// * signal probability: ±30 % relative ± 0.005 absolute — a wrong
    ///   encoder (p' vs p'²) is off by ~1/p' ≈ 5–10×;
    /// * queue delay: ±25 % relative ± 4 ms absolute around the 20 ms
    ///   target — a destabilized loop overshoots by the buffer depth;
    /// * rate ratio: ±60 % relative — identical long flows through one
    ///   queue land well under 1.6× max/min over a 40 s window, while
    ///   an unfair pathology (e.g. lockout) shows up as ≥3×;
    /// * utilization: ±10 % relative ± 0.05 absolute — both formalisms
    ///   saturate a long-flow bottleneck, so anything below ~0.85 of the
    ///   reference flags starvation (e.g. a runaway hybrid aggregate).
    pub fn default_band() -> Self {
        bands()
    }

    /// Scale every tolerance (both terms) by `f` — `f < 1` tightens.
    /// `validate_grid --tighten` uses this to demonstrate that a failed
    /// tolerance makes the harness exit non-zero.
    pub fn scaled(self, f: f64) -> Self {
        let s = |t: Tol| Tol { rel: t.rel * f, abs: t.abs * f };
        Tolerances {
            signal: s(self.signal),
            qdelay: s(self.qdelay),
            rate_ratio: s(self.rate_ratio),
            util: s(self.util),
        }
    }
}

/// The shared tolerance-band table — the single source both the
/// `validate_grid` bin (via [`Tolerances::default_band`]) and the
/// `tests/hybrid.rs` backend-conformance suite judge against, so the two
/// cannot drift apart. See [`Tolerances::default_band`] for the rationale
/// behind each band.
pub fn bands() -> Tolerances {
    Tolerances {
        signal: Tol { rel: 0.30, abs: 0.005 },
        qdelay: Tol { rel: 0.25, abs: 0.004 },
        rate_ratio: Tol { rel: 0.60, abs: 0.0 },
        util: Tol { rel: 0.10, abs: 0.05 },
    }
}

/// One physical situation expressed in both formalisms.
#[derive(Clone, Debug)]
pub struct MatchedConfig {
    /// Report key, e.g. `"pi2-reno"`.
    pub name: String,
    /// AQM family.
    pub aqm: DiffAqm,
    /// Traffic class.
    pub traffic: DiffTraffic,
    /// Number of long-running flows.
    pub n_flows: usize,
    /// Bottleneck rate in bits/s.
    pub rate_bps: u64,
    /// Two-way propagation delay (RTT excluding queuing).
    pub base_rtt: Duration,
    /// Packet-run length.
    pub duration: Time,
    /// Packet-run warm-up excluded from aggregates.
    pub warmup: Duration,
    /// Packet-run RNG seed.
    pub seed: u64,
    /// Fluid-run length; the settled tail (last third) is averaged.
    pub fluid_t_end: f64,
    /// Agreement bands.
    pub tol: Tolerances,
}

/// MTU-sized segments on both sides, as everywhere else in the repo.
const PKT_BYTES: f64 = 1500.0;

impl MatchedConfig {
    /// A matched configuration with the harness defaults: 12 Mb/s,
    /// 50 ms base RTT, 5 flows, 60 s packet run with 20 s warm-up.
    ///
    /// At this operating point the Reno equilibrium sits near p ≈ 0.8 %
    /// (p' ≈ 9 %) and the Scalable one near p' ≈ 14 % — comfortably
    /// inside every controller's caps and far from both the `p → 0`
    /// starvation corner and the 25 % Classic drop ceiling.
    pub fn new(aqm: DiffAqm, traffic: DiffTraffic) -> Self {
        let name = format!(
            "{}-{}",
            match aqm {
                DiffAqm::Pi => "pi",
                DiffAqm::Pi2 => "pi2",
                DiffAqm::Pie => "pie",
            },
            traffic.label()
        );
        MatchedConfig {
            name,
            aqm,
            traffic,
            n_flows: 5,
            rate_bps: 12_000_000,
            base_rtt: Duration::from_millis(50),
            duration: Time::from_secs(60),
            warmup: Duration::from_secs(20),
            seed: 7,
            fluid_t_end: 120.0,
            tol: Tolerances::default_band(),
        }
    }

    /// The packet-level half: a runnable scenario.
    pub fn scenario(&self) -> Scenario {
        let aqm = match (self.aqm, self.traffic) {
            (DiffAqm::Pi, DiffTraffic::Reno) => AqmKind::Pi(PiConfig::untuned_pie_gains()),
            (DiffAqm::Pi, DiffTraffic::Scalable) => AqmKind::Pi(PiConfig::default()),
            (DiffAqm::Pi2, DiffTraffic::Reno) => AqmKind::Pi2(Pi2Config::default()),
            (DiffAqm::Pi2, DiffTraffic::Scalable) => {
                AqmKind::Coupled(CoupledPi2Config::default())
            }
            (DiffAqm::Pie, _) => AqmKind::Pie(PieConfig::paper_default()),
        };
        let (cc, ecn) = match self.traffic {
            DiffTraffic::Reno => (CcKind::Reno, EcnSetting::NotEcn),
            DiffTraffic::Scalable => (CcKind::ScalableHalfPkt, EcnSetting::Scalable),
        };
        let mut sc = Scenario::new(aqm, self.rate_bps);
        sc.tcp.push(FlowGroup::new(
            self.n_flows,
            cc,
            ecn,
            self.traffic.label(),
            self.base_rtt,
        ));
        sc.duration = self.duration;
        sc.warmup = self.warmup;
        sc.seed = self.seed;
        sc
    }

    /// The fluid half: the matching ODE configuration.
    pub fn fluid(&self) -> FluidConfig {
        let (encoder, gains) = match (self.aqm, self.traffic) {
            (DiffAqm::Pi, DiffTraffic::Reno) => (FluidControllerKind::Direct, PiGains::pie()),
            (DiffAqm::Pi, DiffTraffic::Scalable) => {
                (FluidControllerKind::Direct, PiGains::scal_pi())
            }
            (DiffAqm::Pi2, DiffTraffic::Reno) => (FluidControllerKind::Squared, PiGains::pi2()),
            (DiffAqm::Pi2, DiffTraffic::Scalable) => {
                // The coupled AQM's core runs at 2× the Classic PI2 gains
                // and applies p' unsquared to ECT(1) — the scal-pi loop.
                (FluidControllerKind::Direct, PiGains::scal_pi())
            }
            (DiffAqm::Pie, _) => (FluidControllerKind::TunedDirect, PiGains::pie()),
        };
        FluidConfig {
            capacity_pps: self.rate_bps as f64 / 8.0 / PKT_BYTES,
            base_rtt: self.base_rtt.as_secs_f64(),
            n_flows: vec![(0.0, self.n_flows as f64)],
            tcp: match self.traffic {
                DiffTraffic::Reno => FluidTcpKind::Reno,
                DiffTraffic::Scalable => FluidTcpKind::Scalable,
            },
            encoder,
            gains,
            target: 0.020,
            dt: 0.001,
        }
    }
}

/// One metric's side-by-side numbers and verdict.
#[derive(Clone, Copy, Debug)]
pub struct MetricReport {
    /// Metric key (`"signal_prob"`, `"qdelay_s"`, `"rate_ratio"`).
    pub metric: &'static str,
    /// Packet-level value.
    pub packet: f64,
    /// Fluid-level value.
    pub fluid: f64,
    /// The band it was judged under.
    pub tol: Tol,
    /// Verdict.
    pub pass: bool,
}

impl MetricReport {
    fn judge(metric: &'static str, packet: f64, fluid: f64, tol: Tol) -> Self {
        MetricReport {
            metric,
            packet,
            fluid,
            tol,
            pass: tol.ok(packet, fluid),
        }
    }
}

/// One configuration's full comparison.
#[derive(Clone, Debug)]
pub struct ConfigReport {
    /// The configuration's report key.
    pub name: String,
    /// All metric comparisons.
    pub metrics: Vec<MetricReport>,
    /// True iff every metric passed.
    pub pass: bool,
}

impl ConfigReport {
    /// One JSONL object (no trailing newline), hand-rolled like
    /// `pi2_netsim::trace`.
    pub fn jsonl(&self) -> String {
        let mut s = format!("{{\"config\":\"{}\",\"pass\":{},\"metrics\":[", self.name, self.pass);
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"metric\":\"{}\",\"packet\":{:.6},\"fluid\":{:.6},\"rel_tol\":{},\"abs_tol\":{},\"pass\":{}}}",
                m.metric, m.packet, m.fluid, m.tol.rel, m.tol.abs, m.pass
            ));
        }
        s.push_str("]}");
        s
    }

    /// A human-readable multi-line table for terminal output.
    pub fn table(&self) -> String {
        let mut s = format!(
            "{:<14} {}\n",
            self.name,
            if self.pass { "PASS" } else { "FAIL" }
        );
        for m in &self.metrics {
            s.push_str(&format!(
                "  {:<12} packet {:>10.5}  fluid {:>10.5}  (rel {:.0}% + abs {})  {}\n",
                m.metric,
                m.packet,
                m.fluid,
                m.tol.rel * 100.0,
                m.tol.abs,
                if m.pass { "ok" } else { "DISAGREE" }
            ));
        }
        s
    }
}

/// A whole grid's verdict.
#[derive(Clone, Debug)]
pub struct GridReport {
    /// Per-configuration reports, in input order.
    pub configs: Vec<ConfigReport>,
    /// True iff every configuration passed.
    pub all_pass: bool,
}

/// Extract the packet side's three steady-state metrics.
fn packet_metrics(cfg: &MatchedConfig, run: &RunResult) -> (f64, f64, f64) {
    let label = cfg.traffic.label();
    let flows = run.monitor.flows_labelled(label);
    let (mut sent, mut signalled) = (0u64, 0u64);
    for &i in &flows {
        let f = &run.monitor.flows[i];
        sent += f.sent_pkts_postwarm;
        signalled += f.dropped_postwarm + f.marked_postwarm;
    }
    let signal = if sent == 0 { 0.0 } else { signalled as f64 / sent as f64 };

    // Sojourns are recorded when the packet finishes transmitting; the
    // fluid q/C is the wait *before* transmission, so remove one
    // serialization time.
    let serialization = PKT_BYTES * 8.0 / cfg.rate_bps as f64;
    let qdelay = if run.monitor.sojourn_ms.is_empty() {
        0.0
    } else {
        let mean_ms = run.monitor.sojourn_ms.iter().map(|&v| v as f64).sum::<f64>()
            / run.monitor.sojourn_ms.len() as f64;
        (mean_ms / 1e3 - serialization).max(0.0)
    };

    let span = run.monitor.measurement_span();
    let mut tputs: Vec<f64> = flows
        .iter()
        .map(|&i| run.monitor.flows[i].mean_tput_mbps(span))
        .collect();
    tputs.retain(|&t| t > 0.0);
    let ratio = match (
        tputs.iter().cloned().fold(f64::INFINITY, f64::min),
        tputs.iter().cloned().fold(0.0f64, f64::max),
    ) {
        (min, max) if min.is_finite() && min > 0.0 => max / min,
        _ => f64::INFINITY,
    };
    (signal, qdelay, ratio)
}

/// Extract the fluid side's metrics from the settled tail (last third).
fn fluid_metrics(cfg: &MatchedConfig) -> (f64, f64) {
    let fl = cfg.fluid();
    let encoder = fl.encoder;
    let samples = FluidSim::new(fl).run(cfg.fluid_t_end, 0.01);
    let tail_from = cfg.fluid_t_end * 2.0 / 3.0;
    let tail: Vec<_> = samples.iter().filter(|s| s.t >= tail_from).collect();
    assert!(!tail.is_empty(), "fluid run produced no tail samples");
    let n = tail.len() as f64;
    let signal = tail
        .iter()
        .map(|s| match encoder {
            FluidControllerKind::Squared => s.p_prime * s.p_prime,
            _ => s.p_prime,
        })
        .sum::<f64>()
        / n;
    let qdelay = tail.iter().map(|s| s.qdelay).sum::<f64>() / n;
    (signal, qdelay)
}

/// Run one matched configuration through both models and judge it.
pub fn run_config(cfg: &MatchedConfig) -> ConfigReport {
    let run = cfg.scenario().run();
    let (p_signal, p_qdelay, p_ratio) = packet_metrics(cfg, &run);
    let (f_signal, f_qdelay) = fluid_metrics(cfg);
    let metrics = vec![
        MetricReport::judge("signal_prob", p_signal, f_signal, cfg.tol.signal),
        MetricReport::judge("qdelay_s", p_qdelay, f_qdelay, cfg.tol.qdelay),
        // Identical fluid flows share the link exactly: the reference is 1.
        MetricReport::judge("rate_ratio", p_ratio, 1.0, cfg.tol.rate_ratio),
    ];
    let pass = metrics.iter().all(|m| m.pass);
    ConfigReport {
        name: cfg.name.clone(),
        metrics,
        pass,
    }
}

/// The standard grid: {PI, PI2, PIE} × {Reno, Scalable} — six matched
/// configurations covering every encoder (`Direct`, `Squared`,
/// `TunedDirect`), both window laws, and three distinct gain sets.
pub fn default_grid() -> Vec<MatchedConfig> {
    let mut out = Vec::new();
    for aqm in [DiffAqm::Pi, DiffAqm::Pi2, DiffAqm::Pie] {
        for traffic in [DiffTraffic::Reno, DiffTraffic::Scalable] {
            out.push(MatchedConfig::new(aqm, traffic));
        }
    }
    out
}

/// Run a grid, streaming one JSONL line per configuration to `out`,
/// followed by a `{"summary":...}` line.
pub fn run_grid<W: Write>(cfgs: &[MatchedConfig], out: &mut W) -> io::Result<GridReport> {
    let mut configs = Vec::with_capacity(cfgs.len());
    for cfg in cfgs {
        let report = run_config(cfg);
        writeln!(out, "{}", report.jsonl())?;
        configs.push(report);
    }
    let all_pass = configs.iter().all(|c| c.pass);
    let failed: Vec<&str> = configs
        .iter()
        .filter(|c| !c.pass)
        .map(|c| c.name.as_str())
        .collect();
    writeln!(
        out,
        "{{\"summary\":{{\"configs\":{},\"pass\":{},\"failed\":[{}]}}}}",
        configs.len(),
        all_pass,
        failed
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    Ok(GridReport { configs, all_pass })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_combines_relative_and_absolute_terms() {
        let t = Tol { rel: 0.1, abs: 0.01 };
        assert!(t.ok(1.0, 1.1));
        assert!(t.ok(0.0, 0.009));
        assert!(!t.ok(1.0, 1.2));
        assert!(t.ok(-1.0, -1.1), "signs handled via magnitudes");
    }

    #[test]
    fn scaling_tolerances_tightens_both_terms() {
        let t = Tolerances::default_band().scaled(0.01);
        assert!(t.signal.rel < 0.01);
        assert!(t.qdelay.abs < 1e-4);
    }

    #[test]
    fn grid_covers_every_aqm_traffic_pair_once() {
        let grid = default_grid();
        assert_eq!(grid.len(), 6);
        let names: Vec<&str> = grid.iter().map(|c| c.name.as_str()).collect();
        for want in ["pi-reno", "pi-scal", "pi2-reno", "pi2-scal", "pie-reno", "pie-scal"] {
            assert!(names.contains(&want), "missing {want} in {names:?}");
        }
    }

    #[test]
    fn jsonl_report_is_well_formed() {
        let r = ConfigReport {
            name: "x".into(),
            metrics: vec![MetricReport::judge(
                "signal_prob",
                0.01,
                0.011,
                Tol { rel: 0.3, abs: 0.005 },
            )],
            pass: true,
        };
        let line = r.jsonl();
        assert!(line.starts_with("{\"config\":\"x\""));
        assert!(line.contains("\"metric\":\"signal_prob\""));
        assert!(line.ends_with("]}"));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn fluid_halves_settle_near_the_target_delay() {
        // Cheap sanity on the mapping itself: every fluid half of the
        // grid must settle within a few ms of the 20 ms target.
        for cfg in default_grid() {
            let (signal, qdelay) = fluid_metrics(&cfg);
            assert!(
                (qdelay - 0.020).abs() < 0.008,
                "{}: fluid qdelay {:.1} ms",
                cfg.name,
                qdelay * 1e3
            );
            assert!(
                signal > 1e-4 && signal < 0.5,
                "{}: fluid signal {signal}",
                cfg.name
            );
        }
    }
}
