//! Metamorphic properties: relations between *runs*, not fixed numbers.
//!
//! A metamorphic test never needs to know the right answer — only how the
//! answer must transform when the input does. Three families are
//! provided as reusable generators, shared between the deterministic
//! tier-1 tests (`crates/validate/tests/metamorphic.rs`) and the
//! feature-gated randomized suite (`tests/proptests.rs`):
//!
//! * **seed invariance** — the RNG seed picks one sample path, not one
//!   physical system: post-warm-up summary metrics must agree across
//!   seeds within a stochastic band;
//! * **rate/MSS scaling symmetry** — multiplying link rate and segment
//!   size by the same factor leaves the system's packet-rate dynamics
//!   (delay in seconds, signal probability, packets per second)
//!   untouched;
//! * **the coupling law** — the coupled AQM gives Classic traffic
//!   `p_C = (p_S / k)²` with k = 2 (paper eq. (6)); both probabilities
//!   are measured from independent per-flow accounting, so the relation
//!   cross-checks the whole mark/drop path, not the controller alone.

use pi2_experiments::{AqmKind, FlowGroup, Scenario};
use pi2_simcore::{Duration, Time};
use pi2_transport::{CcKind, EcnSetting, TcpConfig};

/// Post-warm-up summary of one run, for run-to-run comparison.
#[derive(Clone, Copy, Debug)]
pub struct SummaryMetrics {
    /// Mean per-packet queue delay in ms.
    pub qdelay_ms: f64,
    /// Pooled mean throughput over the group, in Mb/s.
    pub tput_mbps: f64,
    /// Pooled congestion-signal probability (marks + drops over sent).
    pub signal: f64,
    /// Max/min per-flow throughput ratio within the group.
    pub rate_ratio: f64,
}

/// The label every [`standard_scenario`] flow group carries.
pub const GROUP: &str = "tcp";

/// A short homogeneous scenario: `n_flows` long-running flows of `cc`
/// through `aqm`, 30 s run with 10 s warm-up. The generator half of the
/// metamorphic suite — property tests vary its inputs and compare
/// [`run_summary`] outputs.
#[allow(clippy::too_many_arguments)]
pub fn standard_scenario(
    aqm: AqmKind,
    n_flows: usize,
    rate_bps: u64,
    rtt: Duration,
    cc: CcKind,
    ecn: EcnSetting,
    mss: usize,
    seed: u64,
) -> Scenario {
    let mut sc = Scenario::new(aqm, rate_bps);
    let mut group = FlowGroup::new(n_flows, cc, ecn, GROUP, rtt);
    group.tcp = TcpConfig {
        mss,
        ..TcpConfig::default()
    };
    sc.tcp.push(group);
    sc.duration = Time::from_secs(30);
    sc.warmup = Duration::from_secs(10);
    sc.seed = seed;
    sc
}

/// Run a scenario and reduce it to its [`SummaryMetrics`] over [`GROUP`].
pub fn run_summary(sc: &Scenario) -> SummaryMetrics {
    let run = sc.run();
    let flows = run.monitor.flows_labelled(GROUP);
    let (mut sent, mut signalled) = (0u64, 0u64);
    for &i in &flows {
        let f = &run.monitor.flows[i];
        sent += f.sent_pkts_postwarm;
        signalled += f.dropped_postwarm + f.marked_postwarm;
    }
    let qdelay_ms = if run.monitor.sojourn_ms.is_empty() {
        0.0
    } else {
        run.monitor.sojourn_ms.iter().map(|&v| v as f64).sum::<f64>()
            / run.monitor.sojourn_ms.len() as f64
    };
    let span = run.monitor.measurement_span();
    let tputs: Vec<f64> = flows
        .iter()
        .map(|&i| run.monitor.flows[i].mean_tput_mbps(span))
        .filter(|&t| t > 0.0)
        .collect();
    let min = tputs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = tputs.iter().cloned().fold(0.0f64, f64::max);
    SummaryMetrics {
        qdelay_ms,
        tput_mbps: run.tput_mbps(GROUP),
        signal: if sent == 0 { 0.0 } else { signalled as f64 / sent as f64 },
        rate_ratio: if min.is_finite() && min > 0.0 { max / min } else { f64::INFINITY },
    }
}

/// A mixed Classic/Scalable scenario through the coupled AQM, the input
/// to the k = 2 coupling-law check: `n_classic` Reno flows (label
/// `"classic"`, signalled by drop) share the queue with `n_scal`
/// half-packet Scalable flows (label `"scal"`, signalled by ECT(1)
/// mark).
pub fn coupling_scenario(n_classic: usize, n_scal: usize, seed: u64) -> Scenario {
    let mut sc = Scenario::new(AqmKind::coupled_default(), 12_000_000);
    let rtt = Duration::from_millis(50);
    sc.tcp.push(FlowGroup::new(
        n_classic,
        CcKind::Reno,
        EcnSetting::NotEcn,
        "classic",
        rtt,
    ));
    sc.tcp.push(FlowGroup::new(
        n_scal,
        CcKind::ScalableHalfPkt,
        EcnSetting::Scalable,
        "scal",
        rtt,
    ));
    sc.duration = Time::from_secs(60);
    sc.warmup = Duration::from_secs(20);
    sc.seed = seed;
    sc
}

/// Pooled post-warm-up signal probability of one label in a finished run.
pub fn label_signal(run: &pi2_experiments::RunResult, label: &str) -> f64 {
    let flows = run.monitor.flows_labelled(label);
    let (mut sent, mut signalled) = (0u64, 0u64);
    for &i in &flows {
        let f = &run.monitor.flows[i];
        sent += f.sent_pkts_postwarm;
        signalled += f.dropped_postwarm + f.marked_postwarm;
    }
    if sent == 0 {
        0.0
    } else {
        signalled as f64 / sent as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_the_requested_shape() {
        let sc = standard_scenario(
            AqmKind::pi2_default(),
            3,
            10_000_000,
            Duration::from_millis(40),
            CcKind::Reno,
            EcnSetting::NotEcn,
            1500,
            9,
        );
        assert_eq!(sc.tcp.len(), 1);
        assert_eq!(sc.tcp[0].count, 3);
        assert_eq!(sc.tcp[0].tcp.mss, 1500);
        assert_eq!(sc.seed, 9);

        let mixed = coupling_scenario(2, 2, 1);
        assert_eq!(mixed.tcp.len(), 2);
        assert_eq!(mixed.tcp[0].label, "classic");
        assert_eq!(mixed.tcp[1].label, "scal");
    }
}
