//! Randomized metamorphic properties over the generators in
//! `pi2_validate::metamorphic` — the same relations as the deterministic
//! `metamorphic.rs` suite, re-checked over random seeds and topologies.

// Entire suite gated off by default: `proptest` is a registry dependency
// the offline build cannot fetch. See the `proptests` feature in Cargo.toml.
#![cfg(feature = "proptests")]

use pi2_experiments::AqmKind;
use pi2_simcore::Duration;
use pi2_transport::{CcKind, EcnSetting};
use pi2_validate::metamorphic::{coupling_scenario, label_signal, run_summary, standard_scenario};
use proptest::prelude::*;

proptest! {
    // Every case simulates minutes of traffic; keep the default case
    // count small and let CI widen/narrow it via PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Two sample paths of the same physical system agree on post-warm-up
    /// summaries within the stochastic band.
    #[test]
    fn summaries_are_seed_invariant(seed_a in 0u64..1_000_000, seed_b in 0u64..1_000_000) {
        let sc = |seed| standard_scenario(
            AqmKind::pi2_default(),
            4,
            12_000_000,
            Duration::from_millis(40),
            CcKind::Reno,
            EcnSetting::NotEcn,
            1500,
            seed,
        );
        let a = run_summary(&sc(seed_a));
        let b = run_summary(&sc(seed_b));
        prop_assert!(
            (a.qdelay_ms - b.qdelay_ms).abs() <= 0.25 * a.qdelay_ms + 1.0,
            "qdelay {:.2} vs {:.2} ms (seeds {seed_a}, {seed_b})", a.qdelay_ms, b.qdelay_ms
        );
        prop_assert!(
            (a.signal - b.signal).abs() <= 0.30 * a.signal + 0.002,
            "signal {:.4} vs {:.4} (seeds {seed_a}, {seed_b})", a.signal, b.signal
        );
        prop_assert!(
            (a.tput_mbps - b.tput_mbps).abs() <= 0.10 * a.tput_mbps,
            "tput {:.2} vs {:.2} Mb/s (seeds {seed_a}, {seed_b})", a.tput_mbps, b.tput_mbps
        );
    }

    /// The k = 2 coupling law holds for any seed and any small mix of
    /// Classic and Scalable flows sharing the coupled AQM.
    #[test]
    fn coupling_law_holds_for_random_mixes(
        n_classic in 1usize..4,
        n_scal in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let run = coupling_scenario(n_classic, n_scal, seed).run();
        let p_classic = label_signal(&run, "classic");
        let p_scal = label_signal(&run, "scal");
        prop_assume!(p_classic > 1e-4 && p_scal > 1e-3);
        let predicted = (p_scal / 2.0) * (p_scal / 2.0);
        prop_assert!(
            (p_classic - predicted).abs() <= 0.45 * predicted + 0.003,
            "p_C {p_classic:.5} vs (p_S/2)^2 {predicted:.5} \
             ({n_classic} classic, {n_scal} scal, seed {seed})"
        );
    }
}
