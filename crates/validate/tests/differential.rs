//! The fluid ⇄ packet differential grid as tier-1 tests: one test per
//! matched configuration so a disagreement names its config in the test
//! list, plus the harness's own failure path (a deliberately tightened
//! tolerance must fail) and the JSONL report contract.

use pi2_validate::differential::{
    default_grid, run_config, run_grid, DiffAqm, DiffTraffic, MatchedConfig,
};

fn check(aqm: DiffAqm, traffic: DiffTraffic) {
    let cfg = MatchedConfig::new(aqm, traffic);
    let report = run_config(&cfg);
    assert!(
        report.pass,
        "fluid/packet disagreement:\n{}",
        report.table()
    );
}

#[test]
fn pi_reno_agrees_with_the_fluid_model() {
    check(DiffAqm::Pi, DiffTraffic::Reno);
}

#[test]
fn pi_scalable_agrees_with_the_fluid_model() {
    check(DiffAqm::Pi, DiffTraffic::Scalable);
}

#[test]
fn pi2_reno_agrees_with_the_fluid_model() {
    check(DiffAqm::Pi2, DiffTraffic::Reno);
}

#[test]
fn pi2_scalable_agrees_with_the_fluid_model() {
    check(DiffAqm::Pi2, DiffTraffic::Scalable);
}

#[test]
fn pie_reno_agrees_with_the_fluid_model() {
    check(DiffAqm::Pie, DiffTraffic::Reno);
}

#[test]
fn pie_scalable_agrees_with_the_fluid_model() {
    check(DiffAqm::Pie, DiffTraffic::Scalable);
}

/// The acceptance criterion's negative control: the harness must be able
/// to fail. Tightening the band 1000× turns the ordinary stochastic
/// residual into a violation, and the report records which metric broke.
#[test]
fn deliberately_tightened_tolerance_fails() {
    let mut cfg = MatchedConfig::new(DiffAqm::Pi2, DiffTraffic::Reno);
    cfg.tol = cfg.tol.scaled(0.001);
    let report = run_config(&cfg);
    assert!(
        !report.pass,
        "a 1000x tightened tolerance should not pass:\n{}",
        report.table()
    );
    assert!(
        report.metrics.iter().any(|m| !m.pass),
        "the failing metric must be identified"
    );
}

/// The grid report is one JSONL object per config plus a summary line,
/// and its pass verdicts match the per-config reports.
#[test]
fn grid_report_streams_parseable_jsonl() {
    // One cheap config: the full grid is covered by the per-config tests.
    let grid = vec![MatchedConfig::new(DiffAqm::Pi2, DiffTraffic::Scalable)];
    let mut out: Vec<u8> = Vec::new();
    let report = run_grid(&grid, &mut out).expect("writing to a Vec cannot fail");
    assert_eq!(report.configs.len(), 1);
    let text = String::from_utf8(out).expect("report is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "one config line + one summary line");
    assert!(lines[0].starts_with("{\"config\":\"pi2-scal\""));
    assert!(lines[0].contains("\"metric\":\"signal_prob\""));
    assert!(lines[0].contains("\"metric\":\"qdelay_s\""));
    assert!(lines[0].contains("\"metric\":\"rate_ratio\""));
    assert!(lines[1].starts_with("{\"summary\":"));
    assert!(lines[1].contains(&format!("\"pass\":{}", report.all_pass)));
    for line in lines {
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "balanced braces in {line}"
        );
    }
}

/// The standard grid covers every encoder and both window laws.
#[test]
fn default_grid_is_the_full_cross_product() {
    assert_eq!(default_grid().len(), 6);
}
