//! Deterministic metamorphic tests over the generators in
//! `pi2_validate::metamorphic`: fixed seeds here, the same relations
//! re-checked over random inputs in the feature-gated `proptests` suite.

use pi2_experiments::AqmKind;
use pi2_simcore::Duration;
use pi2_transport::{CcKind, EcnSetting};
use pi2_validate::metamorphic::{
    coupling_scenario, label_signal, run_summary, standard_scenario,
};

fn pi2_reno(mss: usize, rate_bps: u64, seed: u64) -> pi2_experiments::Scenario {
    standard_scenario(
        AqmKind::pi2_default(),
        4,
        rate_bps,
        Duration::from_millis(40),
        CcKind::Reno,
        EcnSetting::NotEcn,
        mss,
        seed,
    )
}

/// The seed selects a sample path, not a physical system: post-warm-up
/// summaries of the same scenario under different seeds stay in a narrow
/// stochastic band.
#[test]
fn summary_metrics_are_seed_invariant() {
    let runs: Vec<_> = [3u64, 17, 4242]
        .iter()
        .map(|&seed| run_summary(&pi2_reno(1500, 12_000_000, seed)))
        .collect();
    let base = runs[0];
    for (i, r) in runs.iter().enumerate().skip(1) {
        assert!(
            (r.qdelay_ms - base.qdelay_ms).abs() <= 0.25 * base.qdelay_ms + 1.0,
            "seed {i}: qdelay {:.2} ms vs {:.2} ms",
            r.qdelay_ms,
            base.qdelay_ms
        );
        assert!(
            (r.signal - base.signal).abs() <= 0.30 * base.signal + 0.002,
            "seed {i}: signal {:.4} vs {:.4}",
            r.signal,
            base.signal
        );
        assert!(
            (r.tput_mbps - base.tput_mbps).abs() <= 0.10 * base.tput_mbps,
            "seed {i}: tput {:.2} vs {:.2} Mb/s",
            r.tput_mbps,
            base.tput_mbps
        );
    }
}

/// Scaling link rate and MSS together is a symmetry: packets per second,
/// windows in packets, and therefore delay and signal probability are
/// unchanged; throughput in bits scales by the factor.
#[test]
fn rate_and_mss_scale_together_without_changing_dynamics() {
    let base = run_summary(&pi2_reno(1500, 12_000_000, 11));
    let scaled = run_summary(&pi2_reno(3000, 24_000_000, 11));
    assert!(
        (scaled.qdelay_ms - base.qdelay_ms).abs() <= 0.25 * base.qdelay_ms + 1.0,
        "qdelay: base {:.2} ms, 2x-scaled {:.2} ms",
        base.qdelay_ms,
        scaled.qdelay_ms
    );
    assert!(
        (scaled.signal - base.signal).abs() <= 0.30 * base.signal + 0.002,
        "signal: base {:.4}, 2x-scaled {:.4}",
        base.signal,
        scaled.signal
    );
    let tput_factor = scaled.tput_mbps / base.tput_mbps;
    assert!(
        (tput_factor - 2.0).abs() < 0.2,
        "throughput should double, got x{tput_factor:.2}"
    );
}

/// Paper eq. (6) with k = 2: through the coupled AQM, Classic traffic's
/// drop probability is the square of half the Scalable mark probability.
/// Both sides are measured from independent per-flow mark/drop counters,
/// so this cross-checks the whole decision path, not the controller.
#[test]
fn coupled_aqm_obeys_the_k2_coupling_law() {
    let run = coupling_scenario(2, 2, 5).run();
    let p_classic = label_signal(&run, "classic");
    let p_scal = label_signal(&run, "scal");
    assert!(
        p_classic > 1e-4 && p_scal > 1e-3,
        "both classes must see congestion (classic {p_classic:.5}, scal {p_scal:.5})"
    );
    let predicted = (p_scal / 2.0) * (p_scal / 2.0);
    assert!(
        (p_classic - predicted).abs() <= 0.40 * predicted + 0.002,
        "coupling law: measured p_C {p_classic:.5}, (p_S/2)^2 = {predicted:.5} (p_S {p_scal:.5})"
    );
}

/// The law is seed-robust: a different sample path lands in the same
/// band (this is the metamorphic relation the proptests suite widens).
#[test]
fn coupling_law_holds_across_seeds() {
    for seed in [1u64, 99] {
        let run = coupling_scenario(2, 2, seed).run();
        let p_classic = label_signal(&run, "classic");
        let p_scal = label_signal(&run, "scal");
        let predicted = (p_scal / 2.0) * (p_scal / 2.0);
        assert!(
            (p_classic - predicted).abs() <= 0.40 * predicted + 0.002,
            "seed {seed}: p_C {p_classic:.5} vs (p_S/2)^2 {predicted:.5}"
        );
    }
}
