//! Qdisc conformance: structural contracts every queueing discipline
//! (FIFO bottleneck, DualPI2, FQ-DRR) must uphold.

use pi2_aqm::{DualPi2, DualPi2Config, FqConfig, FqDrr, Pi2, Pi2Config};
use pi2_netsim::{Action, BottleneckQueue, Ecn, FlowId, Packet, Qdisc, QueueConfig};
use pi2_simcore::{Duration, Rng, Time};

fn all_qdiscs() -> Vec<Box<dyn Qdisc>> {
    vec![
        Box::new(BottleneckQueue::new(
            QueueConfig {
                rate_bps: 10_000_000,
                buffer_bytes: 1_000_000,
            },
            Box::new(Pi2::new(Pi2Config::default())),
        )),
        Box::new(DualPi2::new(DualPi2Config {
            buffer_bytes: 1_000_000,
            ..DualPi2Config::for_link(10_000_000)
        })),
        Box::new(FqDrr::new(FqConfig {
            buffer_bytes: 1_000_000,
            per_flow_delay_cap: None,
            ..FqConfig::for_link(10_000_000)
        })),
    ]
}

fn mixed_packet(rng: &mut Rng, seq: u64) -> Packet {
    let ecn = match rng.range_u64(0, 3) {
        0 => Ecn::NotEct,
        1 => Ecn::Ect0,
        _ => Ecn::Ect1,
    };
    let flow = FlowId(rng.range_u64(0, 4) as u32);
    let size = 100 + rng.range_u64(0, 1400) as usize;
    Packet::data(flow, seq, size, ecn, Time::ZERO)
}

/// Contract 1: exact byte/packet conservation across arbitrary
/// offer/pop interleavings.
#[test]
fn qdisc_conserves_bytes_and_packets() {
    for mut q in all_qdiscs() {
        let mut rng = Rng::new(11);
        let mut in_bytes: i64 = 0;
        let mut in_pkts: i64 = 0;
        let mut t = Time::ZERO;
        for i in 0..3000u64 {
            t += Duration::from_micros(300);
            if rng.chance(0.6) {
                let pkt = mixed_packet(&mut rng, i);
                let size = pkt.size as i64;
                let d = q.offer(pkt, t, &mut rng);
                if d.action != Action::Drop {
                    in_bytes += size;
                    in_pkts += 1;
                }
            } else if let Some((pkt, sojourn)) = q.pop(t) {
                in_bytes -= pkt.size as i64;
                in_pkts -= 1;
                assert!(sojourn >= Duration::ZERO);
            }
            assert_eq!(q.len_bytes() as i64, in_bytes, "{} bytes", q.stats().enqueued);
            assert_eq!(q.len_pkts() as i64, in_pkts);
        }
        // Drain completely.
        while q.pop(t).is_some() {
            t += Duration::from_micros(100);
        }
        assert_eq!(q.len_bytes(), 0);
        assert!(q.is_empty());
    }
}

/// Contract 2: the buffer limit binds.
#[test]
fn qdisc_respects_its_buffer() {
    for mut q in all_qdiscs() {
        let mut rng = Rng::new(12);
        for i in 0..2000u64 {
            q.offer(
                Packet::data(FlowId(0), i, 1500, Ecn::NotEct, Time::ZERO),
                Time::ZERO,
                &mut rng,
            );
            assert!(q.len_bytes() <= 1_000_000);
        }
        assert!(q.stats().overflowed > 0 || q.stats().aqm_dropped > 0);
    }
}

/// Contract 3: pop on empty is None and harmless; rate changes apply.
#[test]
fn qdisc_edge_cases() {
    for mut q in all_qdiscs() {
        assert!(q.pop(Time::ZERO).is_none());
        assert_eq!(q.head_size(), None);
        assert_eq!(q.rate_bps(), 10_000_000);
        q.set_rate_bps(25_000_000);
        assert_eq!(q.rate_bps(), 25_000_000);
        assert!(q.monitor_delay() == Duration::ZERO);
        assert!(q.control_variable().is_finite());
    }
}

/// Contract 4: stats counters are consistent with observed behaviour.
#[test]
fn qdisc_stats_add_up() {
    for mut q in all_qdiscs() {
        let mut rng = Rng::new(13);
        let mut admitted = 0u64;
        let mut t = Time::ZERO;
        for i in 0..500u64 {
            t += Duration::from_micros(500);
            let d = q.offer(mixed_packet(&mut rng, i), t, &mut rng);
            if d.action != Action::Drop {
                admitted += 1;
            }
        }
        assert_eq!(q.stats().enqueued, admitted);
        let mut popped = 0;
        while q.pop(t).is_some() {
            t += Duration::from_micros(100);
            popped += 1;
        }
        assert_eq!(q.stats().dequeued, popped);
        assert_eq!(q.stats().dequeued, admitted);
    }
}
