//! Property-based tests for the AQM controllers.

// Entire suite gated off by default: `proptest` is a registry dependency
// the offline build cannot fetch. See the `proptests` feature in Cargo.toml.
#![cfg(feature = "proptests")]

use pi2_aqm::{
    CoupledPi2, CoupledPi2Config, DualPi2, DualPi2Config, Pi2, Pi2Config, PiCore, Pie, PieConfig,
    SquareMode,
};
use pi2_netsim::{Aqm, Ecn, FlowId, Packet, Qdisc, QueueSnapshot};
use pi2_simcore::{Duration, Rng, Time};
use proptest::prelude::*;

fn snap(qlen_bytes: usize) -> QueueSnapshot {
    QueueSnapshot {
        qlen_bytes,
        qlen_pkts: qlen_bytes / 1500,
        link_rate_bps: 10_000_000,
        last_sojourn: None,
    }
}

proptest! {
    /// The PI core's probability stays in [0, 1] for any delay sequence.
    #[test]
    fn pi_core_probability_bounded(
        delays_ms in prop::collection::vec(0i64..5_000, 1..500),
        alpha in 0.01f64..2.0,
        beta in 0.01f64..20.0,
    ) {
        let mut core = PiCore::new(
            alpha,
            beta,
            Duration::from_millis(20),
            Duration::from_millis(32),
        );
        for d in delays_ms {
            let p = core.update(Duration::from_millis(d));
            prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    /// PI2's applied probability is always the square of (capped) p',
    /// hence never above the classic cap.
    #[test]
    fn pi2_applied_prob_is_capped_square(pp in 0.0f64..1.0) {
        let mut a = Pi2::new(Pi2Config::default());
        // Drive p' to an arbitrary point via direct updates.
        let mut core_driver = PiCore::new(0.3125, 3.125, Duration::from_millis(20), Duration::from_millis(32));
        core_driver.set_p(pp);
        // Reconstruct the expectation from the public API instead:
        let _ = core_driver;
        // classic_prob is (p')² clamped to 0.25 by construction.
        let p = a.classic_prob();
        prop_assert!(p <= 0.25 + 1e-12);
        // After many updates with huge delays, p' saturates at 1 and the
        // applied probability at the cap.
        for _ in 0..2000 {
            a.update(&snap(10_000_000), Time::ZERO);
        }
        prop_assert!((a.classic_prob() - 0.25).abs() < 1e-12);
        prop_assert!(a.p_prime() <= 1.0);
    }

    /// The two squaring implementations agree in distribution for any p'.
    #[test]
    fn square_modes_equivalent(pp in 0.0f64..1.0, seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let n = 20_000;
        let mut hits = [0usize; 2];
        for _ in 0..n {
            if Pi2::squared_signal(SquareMode::Multiply, pp, &mut rng) {
                hits[0] += 1;
            }
            if Pi2::squared_signal(SquareMode::TwoCompare, pp, &mut rng) {
                hits[1] += 1;
            }
        }
        let f0 = hits[0] as f64 / n as f64;
        let f1 = hits[1] as f64 / n as f64;
        // Both estimate pp²; allow generous sampling noise.
        prop_assert!((f0 - pp * pp).abs() < 0.03, "multiply {f0} vs {}", pp * pp);
        prop_assert!((f1 - pp * pp).abs() < 0.03, "two-compare {f1} vs {}", pp * pp);
    }

    /// The coupled AQM's two probabilities always satisfy pc ≤ (ps/k)²
    /// (equality below the caps), for any controller state.
    #[test]
    fn coupled_relation_invariant(
        delays_ms in prop::collection::vec(0i64..2_000, 1..200),
        k in 1.0f64..4.0,
    ) {
        let mut c = CoupledPi2::new(CoupledPi2Config {
            k,
            ..CoupledPi2Config::default()
        });
        for d in delays_ms {
            c.update(&snap((d as usize) * 1250), Time::ZERO);
            let ps = c.scalable_prob();
            let pc = c.classic_prob();
            prop_assert!((0.0..=1.0).contains(&ps));
            prop_assert!((0.0..=0.25).contains(&pc));
            let uncapped = (ps / k) * (ps / k);
            prop_assert!(pc <= uncapped + 1e-12);
        }
    }

    /// PIE's probability is bounded and its burst allowance never makes it
    /// negative, for arbitrary delay inputs and heuristic combinations.
    #[test]
    fn pie_probability_bounded(
        delays_ms in prop::collection::vec(0i64..3_000, 1..300),
        burst in any::<bool>(),
        suppress in any::<bool>(),
        clamp in any::<bool>(),
        high_rule in any::<bool>(),
    ) {
        let mut pie = Pie::new(PieConfig {
            max_burst: burst.then(|| Duration::from_millis(100)),
            suppress_when_light: suppress,
            clamp_delta: clamp,
            qdelay_high_rule: high_rule,
            estimator: pi2_aqm::DelayEstimator::QlenOverRate,
            ..PieConfig::paper_default()
        });
        for d in delays_ms {
            pie.update(&snap((d as usize) * 1250), Time::ZERO);
            let p = pie.prob();
            prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    /// DualPI2 conserves packets: everything admitted is eventually
    /// popped, in a valid order, with exact byte accounting.
    #[test]
    fn dualq_conserves_packets(
        ecns in prop::collection::vec(prop_oneof![Just(Ecn::NotEct), Just(Ecn::Ect1)], 1..100),
        seed in any::<u64>(),
    ) {
        let mut q = DualPi2::new(DualPi2Config::for_link(10_000_000));
        let mut rng = Rng::new(seed);
        let mut admitted = 0usize;
        let mut t = Time::ZERO;
        for (i, ecn) in ecns.iter().enumerate() {
            t += Duration::from_micros(500);
            let d = q.offer(
                Packet::data(FlowId(0), i as u64, 1500, *ecn, t),
                t,
                &mut rng,
            );
            if d.action != pi2_netsim::Action::Drop {
                admitted += 1;
            }
        }
        prop_assert_eq!(q.len_pkts(), admitted);
        let mut popped = 0usize;
        while q.pop(t).is_some() {
            t += Duration::from_micros(100);
            popped += 1;
        }
        prop_assert_eq!(popped, admitted);
        prop_assert_eq!(q.len_bytes(), 0);
        prop_assert!(q.is_empty());
    }
}
