//! AQM conformance suite: behavioural contracts every drop/mark policy in
//! this crate must uphold, run against each implementation uniformly.

use pi2_aqm::{
    Codel, CodelConfig, CoupledPi2, CoupledPi2Config, CurvyRed, CurvyRedConfig, Pi, Pi2,
    Pi2Config, PiConfig, Pie, PieConfig, Red, RedConfig, StepMark, StepMarkConfig,
};
use pi2_netsim::{Action, Aqm, Ecn, FlowId, Packet, QueueSnapshot};
use pi2_simcore::{Duration, Rng, Time};

fn all_aqms() -> Vec<Box<dyn Aqm>> {
    vec![
        Box::new(Pi2::new(Pi2Config::default())),
        Box::new(Pie::new(PieConfig::paper_default())),
        Box::new(Pie::new(PieConfig::bare())),
        Box::new(Pi::new(PiConfig::default())),
        Box::new(CoupledPi2::new(CoupledPi2Config::default())),
        Box::new(Red::new(RedConfig::default())),
        Box::new(Codel::new(CodelConfig::default())),
        Box::new(CurvyRed::new(CurvyRedConfig::default())),
        Box::new(StepMark::new(StepMarkConfig::default())),
    ]
}

fn snap(delay_ms: u64) -> QueueSnapshot {
    let bytes = (delay_ms * 1250) as usize; // 10 Mb/s
    QueueSnapshot {
        qlen_bytes: bytes,
        qlen_pkts: (bytes / 1500).max(if delay_ms == 0 { 0 } else { 3 }),
        link_rate_bps: 10_000_000,
        last_sojourn: (delay_ms > 0).then(|| Duration::from_millis(delay_ms as i64)),
    }
}

fn pkt(ecn: Ecn) -> Packet {
    Packet::data(FlowId(0), 0, 1500, ecn, Time::ZERO)
}

/// Drive periodic updates for `secs` of virtual time at a given delay.
fn settle(aqm: &mut dyn Aqm, delay_ms: u64, secs: u64) {
    let Some(iv) = aqm.update_interval() else {
        // Stateless AQMs settle through enqueues instead.
        let mut rng = Rng::new(1);
        for i in 0..(secs * 100) {
            aqm.on_enqueue(&pkt(Ecn::NotEct), &snap(delay_ms), Time::from_millis(10 * i), &mut rng);
        }
        return;
    };
    let mut t = Time::ZERO;
    let end = Time::from_secs(secs);
    while t < end {
        t += iv;
        aqm.update(&snap(delay_ms), t);
    }
}

/// Contract 1: an empty, idle queue must produce no congestion signals.
#[test]
fn no_signals_on_an_empty_queue() {
    for mut aqm in all_aqms() {
        settle(aqm.as_mut(), 0, 30);
        let mut rng = Rng::new(2);
        for _ in 0..500 {
            let d = aqm.on_enqueue(&pkt(Ecn::NotEct), &snap(0), Time::from_secs(31), &mut rng);
            assert_eq!(
                d.action,
                Action::Pass,
                "{} signals on an empty queue",
                aqm.name()
            );
        }
    }
}

/// Contract 2: sustained deep congestion must produce signals.
#[test]
fn sustained_congestion_produces_signals() {
    for mut aqm in all_aqms() {
        settle(aqm.as_mut(), 200, 60); // 200 ms standing queue
        let mut rng = Rng::new(3);
        let mut signals = 0;
        for i in 0..2000u64 {
            let d = aqm.on_enqueue(
                &pkt(Ecn::Ect1),
                &snap(200),
                Time::from_secs(60) + Duration::from_micros(i as i64),
                &mut rng,
            );
            if d.action != Action::Pass {
                signals += 1;
            }
        }
        assert!(
            signals > 20,
            "{}: only {signals}/2000 signals under 200 ms standing queue",
            aqm.name()
        );
    }
}

/// Contract 3: decisions never mark Not-ECT packets (they may only drop
/// or pass them).
#[test]
fn not_ect_is_never_marked() {
    for mut aqm in all_aqms() {
        settle(aqm.as_mut(), 100, 60);
        let mut rng = Rng::new(4);
        for i in 0..2000u64 {
            let d = aqm.on_enqueue(
                &pkt(Ecn::NotEct),
                &snap(100),
                Time::from_secs(60) + Duration::from_micros(i as i64),
                &mut rng,
            );
            assert_ne!(d.action, Action::Mark, "{} marked Not-ECT", aqm.name());
        }
    }
}

/// Contract 4: the reported decision probability is a valid probability.
#[test]
fn decision_probabilities_are_valid() {
    for mut aqm in all_aqms() {
        settle(aqm.as_mut(), 150, 60);
        let mut rng = Rng::new(5);
        for ecn in [Ecn::NotEct, Ecn::Ect0, Ecn::Ect1] {
            for i in 0..200u64 {
                let d = aqm.on_enqueue(
                    &pkt(ecn),
                    &snap(150),
                    Time::from_secs(60) + Duration::from_micros(i as i64),
                    &mut rng,
                );
                assert!(
                    (0.0..=1.0).contains(&d.prob) && d.prob.is_finite(),
                    "{}: prob {}",
                    aqm.name(),
                    d.prob
                );
            }
        }
    }
}

/// Contract 5: recovery — after congestion clears, the signal rate must
/// return to (near) zero.
#[test]
fn signals_stop_after_congestion_clears() {
    for mut aqm in all_aqms() {
        settle(aqm.as_mut(), 150, 60); // drive probability up
        settle(aqm.as_mut(), 0, 120); // then a long idle period
        let mut rng = Rng::new(6);
        let mut signals = 0;
        for i in 0..1000u64 {
            let d = aqm.on_enqueue(
                &pkt(Ecn::Ect1),
                &snap(1), // near-empty queue
                Time::from_secs(180) + Duration::from_micros(i as i64),
                &mut rng,
            );
            if d.action != Action::Pass {
                signals += 1;
            }
        }
        assert!(
            signals < 100,
            "{}: {signals}/1000 signals after recovery",
            aqm.name()
        );
    }
}

/// Contract 6: determinism — identical inputs and RNG seeds give
/// identical decision sequences.
#[test]
fn decisions_are_deterministic() {
    for (mut a, mut b) in all_aqms().into_iter().zip(all_aqms()) {
        settle(a.as_mut(), 80, 30);
        settle(b.as_mut(), 80, 30);
        let mut ra = Rng::new(7);
        let mut rb = Rng::new(7);
        for i in 0..500u64 {
            let t = Time::from_secs(30) + Duration::from_micros(i as i64);
            let da = a.on_enqueue(&pkt(Ecn::Ect0), &snap(80), t, &mut ra);
            let db = b.on_enqueue(&pkt(Ecn::Ect0), &snap(80), t, &mut rb);
            assert_eq!(da.action, db.action, "{} diverged", a.name());
        }
    }
}
