//! CoDel (Nichols & Jacobson, ACM Queue 2012) — the AQM that taught PIE
//! to measure the queue in units of time (paper Section 3: "Using units
//! of time for the queue was taught by the CoDel algorithm the year
//! before"). Included as a context baseline.
//!
//! CoDel works at *dequeue*: when every packet over an `interval` has
//! left with sojourn above `target`, it enters a dropping state and drops
//! at intervals shrinking with `interval/√count` (the control law that
//! pressures Reno-like flows harder the longer the queue stays bad).
//!
//! Because the simulator applies AQM verdicts at enqueue, this
//! implementation makes the drop decision for the *arriving* packet using
//! the sojourn state observed at dequeue — the standard adaptation for
//! enqueue-side frameworks (e.g. DPDK's). The control law and state
//! machine follow the CoDel pseudocode.

use pi2_netsim::{Aqm, Decision, Packet, QueueSnapshot};
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Rng, Time};

/// CoDel configuration.
#[derive(Clone, Copy, Debug)]
pub struct CodelConfig {
    /// Sojourn target (CoDel default 5 ms; set 20 ms to compare against
    /// the paper's AQMs at equal targets).
    pub target: Duration,
    /// Sliding window over which the sojourn must stay above target
    /// before dropping starts (default 100 ms ≈ a worst-case RTT).
    pub interval: Duration,
}

impl Default for CodelConfig {
    fn default() -> Self {
        CodelConfig {
            target: Duration::from_millis(5),
            interval: Duration::from_millis(100),
        }
    }
}

/// The CoDel AQM.
#[derive(Clone, Copy, Debug)]
pub struct Codel {
    cfg: CodelConfig,
    /// Deadline by which the sojourn must dip below target, once armed.
    first_above_time: Option<Time>,
    dropping: bool,
    drop_next: Time,
    count: u32,
    /// Count value when the previous dropping state ended, for the
    /// re-entry heuristic.
    last_count: u32,
    /// Latest sojourn observation.
    sojourn: Duration,
}

impl Codel {
    /// Build a CoDel instance.
    pub fn new(cfg: CodelConfig) -> Self {
        Codel {
            cfg,
            first_above_time: None,
            dropping: false,
            drop_next: Time::ZERO,
            count: 0,
            last_count: 0,
            sojourn: Duration::ZERO,
        }
    }

    /// `interval / √count` — the CoDel control law.
    fn control_law(&self, t: Time) -> Time {
        let step = self.cfg.interval.as_secs_f64() / (self.count.max(1) as f64).sqrt();
        t + Duration::from_secs_f64(step)
    }

    /// Update the should-drop state machine with a sojourn observation.
    fn observe(&mut self, sojourn: Duration, now: Time) -> bool {
        self.sojourn = sojourn;
        if sojourn < self.cfg.target {
            self.first_above_time = None;
            return false;
        }
        match self.first_above_time {
            None => {
                self.first_above_time = Some(now + self.cfg.interval);
                false
            }
            Some(deadline) => now >= deadline,
        }
    }
}

impl Aqm for Codel {
    fn on_enqueue(
        &mut self,
        _pkt: &Packet,
        snap: &QueueSnapshot,
        now: Time,
        _rng: &mut Rng,
    ) -> Decision {
        // Estimate how this AQM reports probability: the inverse of the
        // current drop spacing, normalized per packet (monitoring only).
        let prob = if self.dropping {
            (self.count as f64).sqrt() / 100.0
        } else {
            0.0
        };
        if snap.qlen_pkts <= 2 {
            return Decision::pass(prob);
        }
        let ok_to_drop = {
            // Use the instantaneous backlog delay as the arriving packet's
            // expected sojourn.
            let sojourn = snap.delay_from_qlen();
            self.observe(sojourn, now)
        };
        if self.dropping {
            if !ok_to_drop {
                self.dropping = false;
                return Decision::pass(prob);
            }
            if now >= self.drop_next {
                self.count += 1;
                self.drop_next = self.control_law(self.drop_next);
                return Decision::drop(prob);
            }
            Decision::pass(prob)
        } else if ok_to_drop {
            self.dropping = true;
            // Re-entry heuristic: resume near the previous drop rate if
            // the queue went bad again quickly.
            self.count = if self.count > 2 && self.count - self.last_count < self.count / 2 {
                self.count - self.last_count
            } else {
                1
            };
            self.last_count = self.count;
            self.drop_next = self.control_law(now);
            Decision::drop(prob)
        } else {
            Decision::pass(prob)
        }
    }

    fn on_dequeue(&mut self, _pkt: &Packet, sojourn: Duration, _snap: &QueueSnapshot, _now: Time) {
        self.sojourn = sojourn;
    }

    fn control_variable(&self) -> f64 {
        self.count as f64
    }

    fn name(&self) -> &'static str {
        "codel"
    }

    fn save_ckpt(&self, w: &mut CkptWriter) {
        w.bool(self.first_above_time.is_some());
        w.time(self.first_above_time.unwrap_or(Time::ZERO));
        w.bool(self.dropping);
        w.time(self.drop_next);
        w.u32(self.count);
        w.u32(self.last_count);
        w.duration(self.sojourn);
    }

    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let armed = r.bool()?;
        let deadline = r.time()?;
        self.first_above_time = armed.then_some(deadline);
        self.dropping = r.bool()?;
        self.drop_next = r.time()?;
        self.count = r.u32()?;
        self.last_count = r.u32()?;
        self.sojourn = r.duration()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_netsim::{Action, Ecn, FlowId};

    fn snap(delay_ms: u64) -> QueueSnapshot {
        // 10 Mb/s: delay_ms maps to 1250*delay_ms bytes.
        let bytes = (delay_ms * 1250) as usize;
        QueueSnapshot {
            qlen_bytes: bytes,
            qlen_pkts: (bytes / 1500).max(3),
            link_rate_bps: 10_000_000,
            last_sojourn: None,
        }
    }

    fn pkt() -> Packet {
        Packet::data(FlowId(0), 0, 1500, Ecn::NotEct, Time::ZERO)
    }

    #[test]
    fn no_drops_while_sojourn_below_target() {
        let mut c = Codel::new(CodelConfig::default());
        let mut rng = Rng::new(1);
        for i in 0..1000 {
            let d = c.on_enqueue(&pkt(), &snap(2), Time::from_millis(i), &mut rng);
            assert_eq!(d.action, Action::Pass);
        }
    }

    #[test]
    fn dropping_starts_after_one_interval_above_target() {
        let mut c = Codel::new(CodelConfig::default());
        let mut rng = Rng::new(1);
        // Sojourn 20 ms > 5 ms target, sustained.
        let d0 = c.on_enqueue(&pkt(), &snap(20), Time::from_millis(0), &mut rng);
        assert_eq!(d0.action, Action::Pass, "must wait a full interval first");
        let d1 = c.on_enqueue(&pkt(), &snap(20), Time::from_millis(50), &mut rng);
        assert_eq!(d1.action, Action::Pass);
        let d2 = c.on_enqueue(&pkt(), &snap(20), Time::from_millis(101), &mut rng);
        assert_eq!(d2.action, Action::Drop, "interval elapsed: drop");
        assert!(c.dropping);
    }

    #[test]
    fn drop_spacing_shrinks_with_count() {
        let mut c = Codel::new(CodelConfig::default());
        let mut rng = Rng::new(1);
        // Enter dropping state.
        c.on_enqueue(&pkt(), &snap(20), Time::from_millis(0), &mut rng);
        c.on_enqueue(&pkt(), &snap(20), Time::from_millis(101), &mut rng);
        let mut drops = Vec::new();
        for i in 102..2000u64 {
            let d = c.on_enqueue(&pkt(), &snap(20), Time::from_millis(i), &mut rng);
            if d.action == Action::Drop {
                drops.push(i);
            }
        }
        assert!(drops.len() >= 3, "sustained badness keeps dropping");
        // Gaps between successive drops shrink (interval/sqrt(count)).
        let gaps: Vec<u64> = drops.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.windows(2).all(|w| w[1] <= w[0] + 1),
            "gaps must be non-increasing: {gaps:?}"
        );
    }

    #[test]
    fn recovery_exits_dropping_state() {
        let mut c = Codel::new(CodelConfig::default());
        let mut rng = Rng::new(1);
        c.on_enqueue(&pkt(), &snap(20), Time::from_millis(0), &mut rng);
        c.on_enqueue(&pkt(), &snap(20), Time::from_millis(101), &mut rng);
        assert!(c.dropping);
        let d = c.on_enqueue(&pkt(), &snap(1), Time::from_millis(150), &mut rng);
        assert_eq!(d.action, Action::Pass);
        assert!(!c.dropping);
    }

}
