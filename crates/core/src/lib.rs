//! # pi2-aqm — the PI2 AQM and its baselines
//!
//! This crate is the paper's primary contribution plus everything it is
//! compared against:
//!
//! * [`PiCore`] — the textbook Proportional-Integral controller of eq. (4),
//!   shared by every controller here;
//! * [`Pi`] — a fixed-gain PI applying its probability directly (the
//!   oscillating `pi` curve of Figure 6, and the `scal pi` controller for
//!   Scalable-only traffic);
//! * [`Pie`] — the Linux/RFC 8033 PIE baseline with the stepwise "tune"
//!   auto-scaling of Figure 5 and every heuristic individually switchable
//!   (all off = the paper's "bare-PIE");
//! * [`Pi2`] — the contribution: the same PI core driving a linear
//!   pseudo-probability `p'`, squared at the drop/mark decision
//!   (Figure 8), with constant gains 2.5× PIE's;
//! * [`CoupledPi2`] — the single-queue coexistence AQM of Figure 9:
//!   ECN-classifies packets, marks Scalable traffic with `p'` and
//!   drops/marks Classic traffic with `(p'/k)²`, k = 2;
//! * [`DualPi2`] — the two-queue DualQ Coupled extension (the paper's
//!   Section 7 destination, the RFC 9332 direction): near-priority
//!   L queue with native ramp marking, C queue under PI2;
//! * baselines and comparators: [`Red`], [`Codel`], [`CurvyRed`] (the
//!   DualQ draft's example AQM), [`FqDrr`] per-flow queuing,
//!   [`StepMark`] (the original DCTCP step threshold, for the
//!   eq. (11)/(12) exponent demonstration), and [`FixedProb`] for
//!   steady-state law validation.
//!
//! Single-queue policies implement [`pi2_netsim::Aqm`] and attach to the
//! FIFO bottleneck; structured schemes ([`DualPi2`], [`FqDrr`])
//! implement [`pi2_netsim::Qdisc`] and replace the queue outright.
//! A conformance suite (`tests/conformance.rs`) holds every policy to
//! the same behavioural contracts.

pub mod codel;
pub mod coupled;
pub mod curvy;
pub mod dualq;
pub mod fixed;
pub mod fq;
pub mod estimator;
pub mod pi;
pub mod pi2;
pub mod pie;
pub mod red;
pub mod step;

pub use codel::{Codel, CodelConfig};
pub use coupled::{CoupledPi2, CoupledPi2Config};
pub use curvy::{CurvyRed, CurvyRedConfig};
pub use dualq::{DualPi2, DualPi2Config};
pub use estimator::{DelayEstimator, RateEstimator};
pub use fixed::FixedProb;
pub use fq::{FqConfig, FqDrr};
pub use pi::{Pi, PiConfig, PiCore};
pub use pi2::{Pi2, Pi2Config, SquareMode};
pub use pie::{Pie, PieConfig, TUNE_TABLE};
pub use red::{Red, RedConfig};
pub use step::{StepMark, StepMarkConfig};
