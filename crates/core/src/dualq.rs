//! The DualQ Coupled AQM — the paper's stated destination (Section 7:
//! "The recommended deployment applies each AQM to separate queues"),
//! later standardized as DualPI2 in RFC 9332. Implemented here as the
//! forward-looking extension of the single-queue PI2.
//!
//! Two queues share one link:
//!
//! * the **L queue** holds Scalable (ECT(1)/CE) traffic and is marked by
//!   `max(k·p', ramp(L sojourn))` — the coupled probability from the
//!   Classic controller, floored by a shallow native ramp so the L queue
//!   stays at sub-millisecond depth even without Classic traffic;
//! * the **C queue** holds Classic traffic, dropped/marked with `(p')²`
//!   exactly as in [`crate::Pi2`]; the PI core is driven by the C queue's
//!   delay.
//!
//! The scheduler is the time-shifted FIFO of the DualQ drafts: serve the
//! queue whose head has waited longest, after crediting the L queue with
//! `time_shift` — near-priority for L, with starvation protection for C.
//!
//! The result the paper trails in its conclusion: Scalable traffic gets
//! data-centre-like sub-millisecond queuing delay over the same link on
//! which Classic traffic keeps its usual 20 ms, at equal flow rates.

use crate::pi::PiCore;
use crate::pi2::{Pi2, SquareMode};
use pi2_netsim::ckpt::{read_packet, write_packet};
use pi2_netsim::{AqmState, Decision, Ecn, Packet, Qdisc, QueueStats};
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Rng, Time};
use std::collections::VecDeque;

/// DualPI2 configuration.
#[derive(Clone, Copy, Debug)]
pub struct DualPi2Config {
    /// Link rate in bits/s.
    pub rate_bps: u64,
    /// Shared physical buffer in bytes.
    pub buffer_bytes: usize,
    /// C-queue delay target τ₀ (Table 1: 20 ms).
    pub target: Duration,
    /// PI update interval T.
    pub t_update: Duration,
    /// PI gains on the linear `p'` (PI2 classic defaults).
    pub alpha_hz: f64,
    /// Proportional gain.
    pub beta_hz: f64,
    /// Coupling factor: L marking probability is `k·p'`.
    pub k: f64,
    /// Native L-queue ramp: marking begins at this sojourn...
    pub l_ramp_min: Duration,
    /// ...and reaches probability 1 at this sojourn.
    pub l_ramp_max: Duration,
    /// Scheduler time shift credited to the L queue's head.
    pub time_shift: Duration,
    /// Cap on the applied Classic probability.
    pub max_classic_prob: f64,
    /// Squaring implementation for the Classic decision.
    pub square_mode: SquareMode,
}

impl DualPi2Config {
    /// Defaults for a given link: paper Table 1 parameters on the Classic
    /// side, a 1–2 ms native ramp and a 2·target time shift on the L side.
    ///
    /// On slow links a 1 ms threshold would be less than a couple of
    /// packets' serialization time — too shallow for a Scalable control to
    /// fill the pipe — so, as RFC 9332 prescribes, the ramp is floored at
    /// two MTU serialization times.
    pub fn for_link(rate_bps: u64) -> Self {
        let two_mtu = Duration::serialization(2 * 1500, rate_bps);
        let ramp_min = Duration::from_millis(1).max(two_mtu);
        DualPi2Config {
            rate_bps,
            buffer_bytes: 40_000 * 1500,
            target: Duration::from_millis(20),
            t_update: Duration::from_millis(32),
            alpha_hz: 0.3125,
            beta_hz: 3.125,
            k: 2.0,
            l_ramp_min: ramp_min,
            l_ramp_max: ramp_min * 2,
            time_shift: Duration::from_millis(40),
            max_classic_prob: 0.25,
            square_mode: SquareMode::Multiply,
        }
    }
}

/// The DualQ Coupled qdisc.
///
/// ```
/// use pi2_aqm::{DualPi2, DualPi2Config};
/// use pi2_netsim::{Ecn, FlowId, Packet, Qdisc};
/// use pi2_simcore::{Rng, Time};
///
/// let mut q = DualPi2::new(DualPi2Config::for_link(10_000_000));
/// let mut rng = Rng::new(1);
/// // A Scalable packet lands in the L queue, a Classic one in C...
/// q.offer(Packet::data(FlowId(0), 0, 1500, Ecn::NotEct, Time::ZERO), Time::ZERO, &mut rng);
/// q.offer(Packet::data(FlowId(1), 0, 1000, Ecn::Ect1, Time::from_millis(1)), Time::from_millis(1), &mut rng);
/// // ...and the scheduler serves the L queue first (near-priority).
/// let (first, _) = q.pop(Time::from_millis(2)).unwrap();
/// assert_eq!(first.ecn, Ecn::Ect1);
/// ```
pub struct DualPi2 {
    cfg: DualPi2Config,
    core: PiCore,
    l: VecDeque<(Packet, Time)>,
    c: VecDeque<(Packet, Time)>,
    l_bytes: usize,
    c_bytes: usize,
    rate_bps: u64,
    stats: QueueStats,
    /// √(max_classic_prob), precomputed off the per-packet hot path.
    pp_cap: f64,
    /// Per-class counters for experiments.
    pub l_dequeued_bytes: u64,
    /// Classic-side departures.
    pub c_dequeued_bytes: u64,
}

impl DualPi2 {
    /// Build a DualPI2 qdisc.
    pub fn new(cfg: DualPi2Config) -> Self {
        assert!(cfg.rate_bps > 0);
        assert!(cfg.l_ramp_min < cfg.l_ramp_max);
        DualPi2 {
            core: PiCore::new(cfg.alpha_hz, cfg.beta_hz, cfg.target, cfg.t_update),
            // Pre-sized so steady-state offer/pop never reallocate: the L
            // queue stays packets-deep by design, the C queue holds a
            // ~target's worth of packets.
            l: VecDeque::with_capacity(256),
            c: VecDeque::with_capacity(1024),
            l_bytes: 0,
            c_bytes: 0,
            rate_bps: cfg.rate_bps,
            stats: QueueStats::default(),
            pp_cap: cfg.max_classic_prob.sqrt(),
            l_dequeued_bytes: 0,
            c_dequeued_bytes: 0,
            cfg,
        }
    }

    /// The linear pseudo-probability `p'`.
    pub fn p_prime(&self) -> f64 {
        self.core.p()
    }

    /// Current L-queue sojourn estimate (backlog over rate).
    fn l_delay(&self) -> Duration {
        Duration::serialization(self.l_bytes, self.rate_bps)
    }

    /// Current C-queue delay estimate: the age of the head packet.
    ///
    /// Unlike a single FIFO, `c_bytes/rate` would underestimate here —
    /// the C queue drains at only its share of the link while the
    /// scheduler serves L. The head packet's actual waiting time measures
    /// the delay the scheduler really imposes (the timestamp approach the
    /// DualQ drafts prescribe).
    fn c_delay(&self, now: Time) -> Duration {
        self.c
            .front()
            .map(|(_, t)| now.saturating_since(*t))
            .unwrap_or(Duration::ZERO)
    }

    /// The native L ramp probability for the given sojourn.
    fn ramp(&self, sojourn: Duration) -> f64 {
        let lo = self.cfg.l_ramp_min.as_secs_f64();
        let hi = self.cfg.l_ramp_max.as_secs_f64();
        let x = sojourn.as_secs_f64();
        ((x - lo) / (hi - lo)).clamp(0.0, 1.0)
    }

    /// The L-queue marking probability: `max(k·p', ramp)`.
    ///
    /// The coupled term `k·p'` applies *unconditionally* — it signals
    /// Classic-queue congestion, and the L queue being empty (which it
    /// almost always is, thanks to the scheduler) is no reason to withhold
    /// it. The native ramp term naturally vanishes when the L queue is
    /// shallow.
    pub fn l_prob(&self) -> f64 {
        (self.cfg.k * self.core.p())
            .max(self.ramp(self.l_delay()))
            .min(1.0)
    }

    /// The C-queue drop/mark probability `(p')²` (capped).
    pub fn classic_prob(&self) -> f64 {
        (self.core.p() * self.core.p()).min(self.cfg.max_classic_prob)
    }

    fn total_bytes(&self) -> usize {
        self.l_bytes + self.c_bytes
    }
}

impl Qdisc for DualPi2 {
    fn offer(&mut self, mut pkt: Packet, now: Time, rng: &mut Rng) -> Decision {
        if pkt.ecn.is_scalable() {
            let p = self.l_prob();
            if self.total_bytes() + pkt.size > self.cfg.buffer_bytes {
                self.stats.overflowed += 1;
                return Decision::drop(1.0);
            }
            let decision = if rng.chance(p) {
                pkt.ecn = Ecn::Ce;
                self.stats.aqm_marked += 1;
                Decision::mark(p)
            } else {
                Decision::pass(p)
            };
            self.l_bytes += pkt.size;
            self.stats.enqueued += 1;
            self.l.push_back((pkt, now));
            decision
        } else {
            let p = self.classic_prob();
            let pp_eff = self.core.p().min(self.pp_cap);
            if self.c.len() > 2 && Pi2::squared_signal(self.cfg.square_mode, pp_eff, rng) {
                if pkt.ecn.is_ect() {
                    if self.total_bytes() + pkt.size > self.cfg.buffer_bytes {
                        self.stats.overflowed += 1;
                        return Decision::drop(1.0);
                    }
                    pkt.ecn = Ecn::Ce;
                    self.stats.aqm_marked += 1;
                    self.c_bytes += pkt.size;
                    self.stats.enqueued += 1;
                    self.c.push_back((pkt, now));
                    return Decision::mark(p);
                }
                self.stats.aqm_dropped += 1;
                return Decision::drop(p);
            }
            if self.total_bytes() + pkt.size > self.cfg.buffer_bytes {
                self.stats.overflowed += 1;
                return Decision::drop(1.0);
            }
            self.c_bytes += pkt.size;
            self.stats.enqueued += 1;
            self.c.push_back((pkt, now));
            Decision::pass(p)
        }
    }

    fn pop(&mut self, now: Time) -> Option<(Packet, Duration)> {
        // Time-shifted FIFO: compare head waiting times, crediting L.
        let serve_l = match (self.l.front(), self.c.front()) {
            (Some((_, l_t)), Some((_, c_t))) => {
                now.saturating_since(*l_t) + self.cfg.time_shift >= now.saturating_since(*c_t)
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let (pkt, enq) = if serve_l {
            let e = self.l.pop_front()?;
            self.l_bytes -= e.0.size;
            self.l_dequeued_bytes += e.0.size as u64;
            e
        } else {
            let e = self.c.pop_front()?;
            self.c_bytes -= e.0.size;
            self.c_dequeued_bytes += e.0.size as u64;
            e
        };
        self.stats.dequeued += 1;
        self.stats.dequeued_bytes += pkt.size as u64;
        let sojourn = now.saturating_since(enq);
        Some((pkt, sojourn))
    }

    fn head_size(&self) -> Option<usize> {
        // The scheduler decision is taken at pop time; for serialization
        // scheduling both candidates have the same MTU-class sizes, so
        // report the one the scheduler would pick with zero elapsed time.
        match (self.l.front(), self.c.front()) {
            (Some((p, _)), None) => Some(p.size),
            (None, Some((p, _))) => Some(p.size),
            (Some((lp, lt)), Some((cp, ct))) => {
                if lt <= ct || self.cfg.time_shift >= *ct - *lt {
                    Some(lp.size)
                } else {
                    Some(cp.size)
                }
            }
            (None, None) => None,
        }
    }

    fn len_bytes(&self) -> usize {
        self.total_bytes()
    }

    fn len_pkts(&self) -> usize {
        self.l.len() + self.c.len()
    }

    fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    fn set_rate_bps(&mut self, rate_bps: u64) {
        assert!(rate_bps > 0);
        self.rate_bps = rate_bps;
    }

    fn update(&mut self, now: Time) {
        // The PI core is driven by the C queue's delay, per the DualQ
        // drafts; the L queue is governed by the coupled probability and
        // its native ramp.
        let qdelay = self.c_delay(now);
        self.core.update(qdelay);
    }

    fn update_interval(&self) -> Option<Duration> {
        Some(self.cfg.t_update)
    }

    fn control_variable(&self) -> f64 {
        self.core.p()
    }

    fn probe(&self) -> AqmState {
        let (alpha_term, beta_term) = self.core.last_terms();
        AqmState {
            p_prime: self.p_prime(),
            prob: self.classic_prob(),
            scalable_prob: self.l_prob(),
            alpha_term,
            beta_term,
            // The C-queue delay the PI core last acted on; the head-age
            // measure needs `now`, which this hook does not receive.
            qdelay: self.core.prev_qdelay(),
            ..AqmState::default()
        }
    }

    fn stats(&self) -> &QueueStats {
        &self.stats
    }

    fn monitor_delay(&self) -> Duration {
        // Report the C backlog over the full rate (a lower bound; exact
        // per-packet delays are recorded at dequeue). The head-age measure
        // needs `now`, which this monitoring hook does not receive.
        Duration::serialization(self.c_bytes, self.rate_bps)
    }

    fn save_ckpt(&self, w: &mut CkptWriter) {
        self.core.save_ckpt(w);
        for q in [&self.l, &self.c] {
            w.usize(q.len());
            for (pkt, enq_at) in q {
                write_packet(w, pkt);
                w.time(*enq_at);
            }
        }
        w.u64(self.rate_bps);
        w.u64(self.stats.enqueued);
        w.u64(self.stats.dequeued);
        w.u64(self.stats.dequeued_bytes);
        w.u64(self.stats.aqm_dropped);
        w.u64(self.stats.aqm_marked);
        w.u64(self.stats.overflowed);
        w.u64(self.l_dequeued_bytes);
        w.u64(self.c_dequeued_bytes);
    }

    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.core.restore_ckpt(r)?;
        // Byte totals are derived from the queue contents, not trusted
        // from the blob.
        let mut bytes = [0usize; 2];
        for (q, b) in [&mut self.l, &mut self.c].into_iter().zip(bytes.iter_mut()) {
            let n = r.usize()?;
            q.clear();
            for _ in 0..n {
                let pkt = read_packet(r)?;
                let enq_at = r.time()?;
                *b += pkt.size;
                q.push_back((pkt, enq_at));
            }
        }
        self.l_bytes = bytes[0];
        self.c_bytes = bytes[1];
        self.rate_bps = r.u64()?;
        if self.rate_bps == 0 {
            return Err(CkptError::Corrupt("zero link rate"));
        }
        self.stats.enqueued = r.u64()?;
        self.stats.dequeued = r.u64()?;
        self.stats.dequeued_bytes = r.u64()?;
        self.stats.aqm_dropped = r.u64()?;
        self.stats.aqm_marked = r.u64()?;
        self.stats.overflowed = r.u64()?;
        self.l_dequeued_bytes = r.u64()?;
        self.c_dequeued_bytes = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_netsim::{Action, FlowId};

    fn dq() -> DualPi2 {
        DualPi2::new(DualPi2Config::for_link(10_000_000))
    }

    fn pkt(ecn: Ecn, size: usize) -> Packet {
        Packet::data(FlowId(0), 0, size, ecn, Time::ZERO)
    }

    #[test]
    fn classifies_by_ecn() {
        let mut q = dq();
        let mut rng = Rng::new(1);
        q.offer(pkt(Ecn::Ect1, 1500), Time::ZERO, &mut rng);
        q.offer(pkt(Ecn::NotEct, 1500), Time::ZERO, &mut rng);
        q.offer(pkt(Ecn::Ect0, 1500), Time::ZERO, &mut rng);
        assert_eq!(q.l.len(), 1);
        assert_eq!(q.c.len(), 2);
        assert_eq!(q.len_pkts(), 3);
        assert_eq!(q.len_bytes(), 4500);
    }

    #[test]
    fn l_queue_has_near_priority() {
        let mut q = dq();
        let mut rng = Rng::new(1);
        // C packet enqueued first, L second: L must still be served first
        // because the time shift exceeds the head age difference.
        q.offer(pkt(Ecn::NotEct, 1500), Time::ZERO, &mut rng);
        q.offer(pkt(Ecn::Ect1, 1000), Time::from_millis(1), &mut rng);
        let (first, _) = q.pop(Time::from_millis(2)).unwrap();
        assert_eq!(first.ecn, Ecn::Ect1);
    }

    #[test]
    fn c_queue_not_starved_beyond_time_shift() {
        let mut q = dq();
        let mut rng = Rng::new(1);
        q.offer(pkt(Ecn::NotEct, 1500), Time::ZERO, &mut rng);
        // An L packet arriving 50 ms later (> 40 ms shift): C goes first.
        q.offer(pkt(Ecn::Ect1, 1000), Time::from_millis(50), &mut rng);
        let (first, _) = q.pop(Time::from_millis(51)).unwrap();
        assert_eq!(first.ecn, Ecn::NotEct);
    }

    #[test]
    fn ramp_floors_the_l_probability() {
        let mut q = dq();
        // At 10 Mb/s the ramp spans 2.4 ms (2 MTU) to 4.8 ms, i.e.
        // 3000..6000 bytes of backlog. p' = 0, deep L queue: must mark.
        q.l_bytes = 6000;
        assert_eq!(q.l_prob(), 1.0);
        q.l_bytes = 4500; // midpoint of the ramp
        assert!((q.l_prob() - 0.5).abs() < 1e-9, "{}", q.l_prob());
        q.l_bytes = 0;
        assert_eq!(q.l_prob(), 0.0);
        q.core.set_p(0.3);
        assert!((q.l_prob() - 0.6).abs() < 1e-12, "k*p' coupling");
    }

    #[test]
    fn coupling_relation_matches_figure_9() {
        let mut q = dq();
        q.core.set_p(0.4);
        assert!((q.classic_prob() - 0.16).abs() < 1e-12);
        assert!((q.l_prob() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn shared_buffer_overflows_jointly() {
        let mut q = DualPi2::new(DualPi2Config {
            buffer_bytes: 3000,
            ..DualPi2Config::for_link(10_000_000)
        });
        let mut rng = Rng::new(1);
        assert_eq!(q.offer(pkt(Ecn::Ect1, 1500), Time::ZERO, &mut rng).action, Action::Pass);
        assert_eq!(q.offer(pkt(Ecn::NotEct, 1500), Time::ZERO, &mut rng).action, Action::Pass);
        let d = q.offer(pkt(Ecn::Ect1, 1500), Time::ZERO, &mut rng);
        assert_eq!(d.action, Action::Drop);
        assert_eq!(q.stats().overflowed, 1);
    }

    #[test]
    fn scalable_never_dropped_by_aqm() {
        let mut q = dq();
        q.core.set_p(1.0);
        let mut rng = Rng::new(2);
        for i in 0..100 {
            let d = q.offer(pkt(Ecn::Ect1, 100), Time::from_millis(i), &mut rng);
            assert_ne!(d.action, Action::Drop);
        }
        assert_eq!(q.stats().aqm_dropped, 0);
    }

    #[test]
    fn probe_reports_coupled_probabilities() {
        let mut q = dq();
        q.core.set_p(0.4);
        let st = q.probe();
        assert!((st.p_prime - 0.4).abs() < 1e-12);
        assert!((st.prob - 0.16).abs() < 1e-12, "classic prob is p'²");
        assert!((st.scalable_prob - 0.8).abs() < 1e-12, "L prob is k·p'");
    }

    #[test]
    fn per_class_byte_accounting() {
        let mut q = dq();
        let mut rng = Rng::new(3);
        q.offer(pkt(Ecn::Ect1, 1000), Time::ZERO, &mut rng);
        q.offer(pkt(Ecn::NotEct, 500), Time::ZERO, &mut rng);
        q.pop(Time::from_millis(1));
        q.pop(Time::from_millis(2));
        assert_eq!(q.l_dequeued_bytes, 1000);
        assert_eq!(q.c_dequeued_bytes, 500);
        assert!(q.is_empty());
    }
}
