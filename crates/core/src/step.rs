//! Step-threshold ECN marking — the original data-centre DCTCP marker.
//!
//! Appendix A of the paper distinguishes two DCTCP window laws: under a
//! *step threshold* ("mark every packet while the queue exceeds K") the
//! DCTCP paper derives `W = 2/p²` (eq. (12)), because marking arrives in
//! on-off trains of RTT length; under the *probabilistic* marking of a
//! PI-controlled AQM the law is `W = 2/p` (eq. (11)) — the linearity PI2
//! exploits, and "the same phenomenon found empirically in Irteza et al
//! when comparing a step threshold with a RED ramp".
//!
//! This marker exists to demonstrate exactly that exponent change (see
//! `appendix_a::step_vs_probabilistic`).

use pi2_netsim::{Aqm, Decision, Packet, QueueSnapshot};
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Rng, Time};

/// Step-threshold marking configuration.
#[derive(Clone, Copy, Debug)]
pub struct StepMarkConfig {
    /// Queue-delay threshold K: ECT packets arriving while the backlog
    /// exceeds it are CE-marked.
    pub threshold: Duration,
}

impl Default for StepMarkConfig {
    fn default() -> Self {
        // The DCTCP deployment guideline: K ≈ RTT/7 for 10 GbE; for our
        // WAN-scale experiments a 5 ms step works as the data-centre
        // equivalent at megabit rates.
        StepMarkConfig {
            threshold: Duration::from_millis(5),
        }
    }
}

/// The step marker (drops nothing; Not-ECT packets pass untouched and
/// rely on the buffer limit).
#[derive(Clone, Copy, Debug)]
pub struct StepMark {
    cfg: StepMarkConfig,
    /// Marked / offered counters for the realized marking probability.
    marked: u64,
    offered: u64,
}

impl StepMark {
    /// Build a step marker.
    pub fn new(cfg: StepMarkConfig) -> Self {
        StepMark {
            cfg,
            marked: 0,
            offered: 0,
        }
    }

    /// The realized marking fraction so far.
    pub fn realized_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.marked as f64 / self.offered as f64
        }
    }
}

impl Aqm for StepMark {
    fn on_enqueue(
        &mut self,
        pkt: &Packet,
        snap: &QueueSnapshot,
        _now: Time,
        _rng: &mut Rng,
    ) -> Decision {
        self.offered += 1;
        let above = snap.delay_from_qlen() > self.cfg.threshold;
        if above && pkt.ecn.is_ect() {
            self.marked += 1;
            Decision::mark(1.0)
        } else {
            Decision::pass(0.0)
        }
    }

    fn control_variable(&self) -> f64 {
        self.realized_fraction()
    }

    fn name(&self) -> &'static str {
        "step-mark"
    }

    fn save_ckpt(&self, w: &mut CkptWriter) {
        w.u64(self.marked);
        w.u64(self.offered);
    }

    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.marked = r.u64()?;
        self.offered = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_netsim::{Action, Ecn, FlowId};

    fn snap(delay_ms: u64) -> QueueSnapshot {
        let bytes = (delay_ms * 1250) as usize; // 10 Mb/s
        QueueSnapshot {
            qlen_bytes: bytes,
            qlen_pkts: (bytes / 1500).max(1),
            link_rate_bps: 10_000_000,
            last_sojourn: None,
        }
    }

    #[test]
    fn marks_all_ect_above_threshold_none_below() {
        let mut m = StepMark::new(StepMarkConfig::default());
        let mut rng = Rng::new(1);
        let ect = Packet::data(FlowId(0), 0, 1500, Ecn::Ect1, Time::ZERO);
        for _ in 0..100 {
            assert_eq!(
                m.on_enqueue(&ect, &snap(10), Time::ZERO, &mut rng).action,
                Action::Mark
            );
            assert_eq!(
                m.on_enqueue(&ect, &snap(2), Time::ZERO, &mut rng).action,
                Action::Pass
            );
        }
        assert!((m.realized_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn not_ect_never_touched() {
        let mut m = StepMark::new(StepMarkConfig::default());
        let mut rng = Rng::new(1);
        let pkt = Packet::data(FlowId(0), 0, 1500, Ecn::NotEct, Time::ZERO);
        let d = m.on_enqueue(&pkt, &snap(50), Time::ZERO, &mut rng);
        assert_eq!(d.action, Action::Pass);
    }
}
