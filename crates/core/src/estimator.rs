//! Queue-delay estimation.
//!
//! PIE was designed for hardware, so instead of timestamping packets it
//! converts queue length to queuing delay with a regularly updated
//! departure-rate estimate (Little's law). The paper's PI2 qdisc inherits
//! that estimator from the Linux PIE code. We provide three modes:
//!
//! * [`DelayEstimator::RateEstimate`] — the RFC 8033 §5.1 departure-rate
//!   estimator, faithful to Linux PIE (default for PIE);
//! * [`DelayEstimator::Sojourn`] — the CoDel-style timestamp estimate,
//!   reading the last dequeued packet's sojourn;
//! * [`DelayEstimator::QlenOverRate`] — `qlen·8/C` with the configured
//!   link rate, exact in simulation when the rate is known.

use pi2_netsim::QueueSnapshot;
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Time};

/// Measurement threshold: a rate sample is taken once this many bytes have
/// departed (RFC 8033 `DQ_THRESHOLD`).
const DQ_THRESHOLD: u64 = 16 * 1024;

/// The RFC 8033 departure-rate estimator.
///
/// A measurement cycle starts when the queue holds at least
/// `DQ_THRESHOLD` (16 KiB) bytes; once that many bytes have departed, the cycle
/// yields a rate sample that is averaged 50/50 into the running estimate.
#[derive(Clone, Copy, Debug, Default)]
pub struct RateEstimator {
    in_measurement: bool,
    start: Time,
    dq_count: u64,
    /// Smoothed departure rate in bytes/s; 0 until the first sample.
    pub avg_dq_rate: f64,
}

impl RateEstimator {
    /// Create an estimator with no rate history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe a departure of `bytes` at `now` with `qlen_bytes` remaining.
    pub fn on_dequeue(&mut self, bytes: usize, qlen_bytes: usize, now: Time) {
        if !self.in_measurement {
            // Only start measuring when there is enough backlog for the
            // sample to reflect the service rate rather than the arrivals.
            if qlen_bytes as u64 + bytes as u64 >= DQ_THRESHOLD {
                self.in_measurement = true;
                self.start = now;
                self.dq_count = 0;
            } else {
                return;
            }
        }
        self.dq_count += bytes as u64;
        if self.dq_count >= DQ_THRESHOLD {
            let elapsed = now.saturating_since(self.start).as_secs_f64();
            if elapsed > 0.0 {
                // The sample covers exactly DQ_THRESHOLD bytes; the final
                // departure's overshoot belongs to the *next* cycle rather
                // than being discarded, keeping byte accounting exact
                // across cycle boundaries.
                let sample = DQ_THRESHOLD as f64 / elapsed;
                self.avg_dq_rate = if self.avg_dq_rate == 0.0 {
                    sample
                } else {
                    // RFC 8033 §5.1: 0.5/0.5 exponential smoothing.
                    0.5 * self.avg_dq_rate + 0.5 * sample
                };
            }
            // Restart immediately while enough backlog remains (the Linux
            // pie.c condition), carrying the overshoot into the new
            // cycle's count. Without backlog the next departures would
            // measure arrivals rather than service, so the partial count
            // is dropped along with the measurement.
            self.in_measurement = qlen_bytes as u64 >= DQ_THRESHOLD;
            self.start = now;
            self.dq_count = if self.in_measurement {
                self.dq_count - DQ_THRESHOLD
            } else {
                0
            };
        }
    }

    /// Serialize the measurement-cycle state (checkpointing).
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.bool(self.in_measurement);
        w.time(self.start);
        w.u64(self.dq_count);
        w.f64(self.avg_dq_rate);
    }

    /// Restore state captured by [`RateEstimator::save_ckpt`].
    pub fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.in_measurement = r.bool()?;
        self.start = r.time()?;
        self.dq_count = r.u64()?;
        self.avg_dq_rate = r.f64()?;
        Ok(())
    }

    /// Little's-law delay estimate for the given backlog.
    pub fn delay_of(&self, qlen_bytes: usize, link_rate_bps: u64) -> Duration {
        if self.avg_dq_rate > 0.0 {
            Duration::from_secs_f64(qlen_bytes as f64 / self.avg_dq_rate)
        } else if link_rate_bps == 0 {
            // No sample and no configured rate: there is nothing to divide
            // by (`Duration::serialization` asserts on a zero rate), so
            // report zero delay explicitly rather than a garbage estimate.
            Duration::ZERO
        } else {
            // No sample yet: fall back to the configured link rate.
            Duration::serialization(qlen_bytes, link_rate_bps)
        }
    }
}

/// Pluggable queue-delay estimation strategy.
#[derive(Clone, Copy, Debug)]
pub enum DelayEstimator {
    /// RFC 8033 departure-rate estimation (Linux PIE).
    RateEstimate(RateEstimator),
    /// Sojourn time of the most recently dequeued packet (CoDel-style).
    Sojourn,
    /// Queue length over the configured link rate (exact in simulation).
    QlenOverRate,
}

impl DelayEstimator {
    /// The Linux-PIE default.
    pub fn linux_default() -> Self {
        DelayEstimator::RateEstimate(RateEstimator::new())
    }

    /// Feed a departure observation (only the rate estimator uses it).
    pub fn on_dequeue(&mut self, bytes: usize, qlen_bytes: usize, now: Time) {
        if let DelayEstimator::RateEstimate(re) = self {
            re.on_dequeue(bytes, qlen_bytes, now);
        }
    }

    /// The smoothed departure rate in bytes/s, if this estimator keeps
    /// one and has taken at least one sample (telemetry probes).
    pub fn rate_estimate(&self) -> Option<f64> {
        match self {
            DelayEstimator::RateEstimate(re) if re.avg_dq_rate > 0.0 => Some(re.avg_dq_rate),
            _ => None,
        }
    }

    /// The checkpoint variant tag — part of the binary format, so the
    /// order is fixed: 0 = RateEstimate, 1 = Sojourn, 2 = QlenOverRate.
    fn ckpt_tag(&self) -> u8 {
        match self {
            DelayEstimator::RateEstimate(_) => 0,
            DelayEstimator::Sojourn => 1,
            DelayEstimator::QlenOverRate => 2,
        }
    }

    /// Serialize the estimator variant and any mutable state.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.u8(self.ckpt_tag());
        if let DelayEstimator::RateEstimate(re) = self {
            re.save_ckpt(w);
        }
    }

    /// Restore state captured by [`DelayEstimator::save_ckpt`]. The
    /// checkpointed variant must match the configured one — a checkpoint
    /// cannot change the estimation strategy.
    pub fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        if r.u8()? != self.ckpt_tag() {
            return Err(CkptError::Corrupt("delay estimator variant mismatch"));
        }
        if let DelayEstimator::RateEstimate(re) = self {
            re.restore_ckpt(r)?;
        }
        Ok(())
    }

    /// Estimate the current queuing delay.
    pub fn estimate(&self, snap: &QueueSnapshot) -> Duration {
        match self {
            DelayEstimator::RateEstimate(re) => {
                re.delay_of(snap.qlen_bytes, snap.link_rate_bps)
            }
            DelayEstimator::Sojourn => {
                if snap.qlen_pkts == 0 {
                    Duration::ZERO
                } else {
                    snap.last_sojourn.unwrap_or(Duration::ZERO)
                }
            }
            DelayEstimator::QlenOverRate => snap.delay_from_qlen(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(qlen_bytes: usize, rate: u64) -> QueueSnapshot {
        QueueSnapshot {
            qlen_bytes,
            qlen_pkts: qlen_bytes / 1500,
            link_rate_bps: rate,
            last_sojourn: Some(Duration::from_millis(7)),
        }
    }

    #[test]
    fn qlen_over_rate_is_exact() {
        let e = DelayEstimator::QlenOverRate;
        // 12500 B = 100 kbit at 10 Mb/s = 10 ms.
        assert_eq!(e.estimate(&snap(12_500, 10_000_000)), Duration::from_millis(10));
    }

    #[test]
    fn sojourn_reads_last_packet() {
        let e = DelayEstimator::Sojourn;
        assert_eq!(e.estimate(&snap(15_000, 10_000_000)), Duration::from_millis(7));
        // Empty queue reports zero even if a stale sojourn exists.
        let mut s = snap(0, 10_000_000);
        s.qlen_pkts = 0;
        assert_eq!(e.estimate(&s), Duration::ZERO);
    }

    #[test]
    fn rate_estimator_converges_to_service_rate() {
        let mut re = RateEstimator::new();
        // 10 Mb/s = 1.25 MB/s: a 1500 B packet departs every 1.2 ms from a
        // deep queue.
        let mut now = Time::ZERO;
        for _ in 0..200 {
            now += Duration::from_micros(1200);
            re.on_dequeue(1500, 100_000, now);
        }
        let rate = re.avg_dq_rate;
        assert!(
            (rate - 1_250_000.0).abs() / 1_250_000.0 < 0.05,
            "estimated {rate} B/s"
        );
        // Delay of a 12.5 kB backlog should be ~10 ms.
        let d = re.delay_of(12_500, 999); // link rate irrelevant once estimated
        assert!((d.as_millis_f64() - 10.0).abs() < 1.0, "{d:?}");
    }

    #[test]
    fn rate_estimator_needs_backlog_to_measure() {
        let mut re = RateEstimator::new();
        let mut now = Time::ZERO;
        // Shallow queue: departures must not produce a (bogus) rate sample.
        for _ in 0..100 {
            now += Duration::from_millis(10);
            re.on_dequeue(100, 200, now);
        }
        assert_eq!(re.avg_dq_rate, 0.0);
        // Fallback uses the link rate.
        let d = re.delay_of(12_500, 10_000_000);
        assert_eq!(d, Duration::from_millis(10));
    }

    #[test]
    fn rate_estimator_carries_threshold_overshoot() {
        // Two 10 000 B departures 10 ms apart cross the 16 384 B threshold
        // mid-packet. The first cycle samples exactly DQ_THRESHOLD bytes
        // over 10 ms; the 3 616 B overshoot seeds the next cycle, which
        // therefore completes after two more departures (23 616 ≥ 16 384)
        // over 20 ms.
        let mut re = RateEstimator::new();
        let deep = 100_000; // backlog stays well above the threshold
        re.on_dequeue(10_000, deep, Time::from_millis(10)); // starts cycle
        re.on_dequeue(10_000, deep, Time::from_millis(20));
        let s1 = DQ_THRESHOLD as f64 / 0.010;
        assert!((re.avg_dq_rate - s1).abs() < 1e-6, "{}", re.avg_dq_rate);
        re.on_dequeue(10_000, deep, Time::from_millis(30)); // carry: 13 616
        assert!((re.avg_dq_rate - s1).abs() < 1e-6, "no new sample yet");
        re.on_dequeue(10_000, deep, Time::from_millis(40)); // 23 616 ≥ thresh
        let s2 = DQ_THRESHOLD as f64 / 0.020;
        let expect = 0.5 * s1 + 0.5 * s2;
        assert!((re.avg_dq_rate - expect).abs() < 1e-6, "{}", re.avg_dq_rate);
    }

    #[test]
    fn rate_estimator_drops_overshoot_when_backlog_gone() {
        // A cycle completing onto an empty queue must not carry its
        // overshoot: the next (idle-period) departures would turn it into
        // an arrival-rate sample.
        let mut re = RateEstimator::new();
        re.on_dequeue(10_000, 100_000, Time::from_millis(10));
        re.on_dequeue(10_000, 0, Time::from_millis(20)); // samples, then stops
        let after_first = re.avg_dq_rate;
        assert!(after_first > 0.0);
        // Shallow-queue departures: measurement stays off, rate unchanged.
        re.on_dequeue(10_000, 0, Time::from_secs(10));
        assert_eq!(re.avg_dq_rate, after_first);
    }

    #[test]
    fn delay_of_zero_link_rate_without_sample_is_zero() {
        // Before the first sample and with no configured link rate there
        // is nothing to divide by; the fallback must be an explicit zero,
        // not a panic (Duration::serialization asserts rate > 0).
        let re = RateEstimator::new();
        assert_eq!(re.delay_of(50_000, 0), Duration::ZERO);
        // Once a sample exists, the link rate is irrelevant.
        let mut re = RateEstimator::new();
        re.on_dequeue(10_000, 100_000, Time::from_millis(10));
        re.on_dequeue(10_000, 100_000, Time::from_millis(20));
        assert!(re.delay_of(50_000, 0) > Duration::ZERO);
    }

    #[test]
    fn rate_estimate_accessor_reports_only_real_samples() {
        let mut e = DelayEstimator::linux_default();
        assert_eq!(e.rate_estimate(), None);
        e.on_dequeue(10_000, 100_000, Time::from_millis(10));
        e.on_dequeue(10_000, 100_000, Time::from_millis(20));
        let r = e.rate_estimate().expect("sample taken");
        assert!(r > 0.0);
        assert_eq!(DelayEstimator::QlenOverRate.rate_estimate(), None);
        assert_eq!(DelayEstimator::Sojourn.rate_estimate(), None);
    }

    #[test]
    fn rate_estimator_tracks_rate_change() {
        let mut re = RateEstimator::new();
        let mut now = Time::ZERO;
        for _ in 0..100 {
            now += Duration::from_micros(1200); // 10 Mb/s
            re.on_dequeue(1500, 100_000, now);
        }
        for _ in 0..200 {
            now += Duration::from_micros(6000); // 2 Mb/s
            re.on_dequeue(1500, 100_000, now);
        }
        let rate = re.avg_dq_rate;
        assert!(
            (rate - 250_000.0).abs() / 250_000.0 < 0.1,
            "estimated {rate} B/s after slowdown"
        );
    }
}
