//! The PI2 AQM (paper Section 4–5, Figure 8).
//!
//! PI2's insight: run the PI controller of eq. (4) on a pseudo-probability
//! `p'` that is *linear* in load (for Classic TCP, load ∝ √p, so
//! `p' = √p`), then square it at the drop/mark decision, `p = p'²`. The
//! squaring counterbalances the square root in the Classic window law, so
//! the loop gain no longer varies diagonally with load (Figure 7) and:
//!
//! * the heuristic tune table disappears — constant α and β suffice;
//! * the flat gain margin leaves room to raise the gains ×2.5 over PIE
//!   (total loop gain ≈ ×3.5, since `K_PI2/K_PIE ≈ 2.5·√2`), making PI2
//!   more responsive without instability.
//!
//! The squaring itself can be computed two ways (Section 5): multiply `p'`
//! by itself, or compare `p'` against the **maximum of two** pseudo-random
//! variables — "think once to mark, think twice to drop". Both are
//! provided; a test asserts they agree in distribution.

use crate::estimator::DelayEstimator;
use crate::pi::PiCore;
use pi2_netsim::{Aqm, AqmState, Decision, Packet, QueueSnapshot};
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Rng, Time};

/// How the squared decision is evaluated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SquareMode {
    /// Compute `p'²` and compare one random variable (natural in software).
    Multiply,
    /// Compare `p'` against `max(Y₁, Y₂)` of two random variables (natural
    /// in hardware; needs only half the random bits per variable).
    TwoCompare,
}

/// PI2 configuration (defaults: Figure 6/7's α = 0.3125, β = 3.125 —
/// 2.5× the PIE gains — target 20 ms, T = 32 ms).
#[derive(Clone, Copy, Debug)]
pub struct Pi2Config {
    /// Delay target τ₀.
    pub target: Duration,
    /// Update interval T.
    pub t_update: Duration,
    /// Integral gain α in Hz (on the *linear* variable `p'`).
    pub alpha_hz: f64,
    /// Proportional gain β in Hz.
    pub beta_hz: f64,
    /// Cap on the applied Classic probability (the paper replaces PIE's
    /// overload heuristics with a flat 25 % maximum; tail-drop handles
    /// anything beyond it).
    pub max_classic_prob: f64,
    /// Squaring implementation.
    pub square_mode: SquareMode,
    /// Queue-delay estimation strategy.
    pub estimator: DelayEstimator,
}

impl Default for Pi2Config {
    fn default() -> Self {
        Pi2Config {
            target: Duration::from_millis(20),
            t_update: Duration::from_millis(32),
            alpha_hz: 0.3125,
            beta_hz: 3.125,
            max_classic_prob: 0.25,
            square_mode: SquareMode::Multiply,
            estimator: DelayEstimator::QlenOverRate,
        }
    }
}

/// The standalone PI2 AQM for Classic traffic (Figure 8).
///
/// Every packet receives the squared probability `(p')²`; ECN-capable
/// packets are marked, others dropped. For mixed Classic/Scalable traffic
/// use [`crate::CoupledPi2`], which adds the ECN classifier and coupling.
///
/// ```
/// use pi2_aqm::{Pi2, Pi2Config};
/// use pi2_netsim::{Aqm, QueueSnapshot};
/// use pi2_simcore::{Duration, Time};
///
/// let mut aqm = Pi2::new(Pi2Config::default());
/// let congested = QueueSnapshot {
///     qlen_bytes: 75_000, // 60 ms at 10 Mb/s, target is 20 ms
///     qlen_pkts: 50,
///     link_rate_bps: 10_000_000,
///     last_sojourn: None,
/// };
/// for _ in 0..100 {
///     aqm.update(&congested, Time::ZERO); // one tick per T = 32 ms
/// }
/// // p' rose linearly; the applied probability is its square.
/// assert!(aqm.p_prime() > 0.0);
/// assert!((aqm.classic_prob() - (aqm.p_prime() * aqm.p_prime()).min(0.25)).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Pi2 {
    cfg: Pi2Config,
    core: PiCore,
    estimator: DelayEstimator,
    /// √(max_classic_prob), precomputed: the cap on p' (the per-packet
    /// hot path must not take a square root).
    pp_cap: f64,
}

impl Pi2 {
    /// Build a PI2 instance.
    pub fn new(cfg: Pi2Config) -> Self {
        Pi2 {
            cfg,
            core: PiCore::new(cfg.alpha_hz, cfg.beta_hz, cfg.target, cfg.t_update),
            estimator: cfg.estimator,
            pp_cap: cfg.max_classic_prob.sqrt(),
        }
    }

    /// The linear pseudo-probability `p'`.
    pub fn p_prime(&self) -> f64 {
        self.core.p()
    }

    /// The applied Classic probability `min((p')², cap)`.
    pub fn classic_prob(&self) -> f64 {
        (self.core.p() * self.core.p()).min(self.cfg.max_classic_prob)
    }

    /// Evaluate the squared Bernoulli decision for pseudo-probability `pp`
    /// under the configured mode. Exposed for the distribution-equivalence
    /// property test and the Criterion microbenches.
    pub fn squared_signal(mode: SquareMode, pp: f64, rng: &mut Rng) -> bool {
        match mode {
            SquareMode::Multiply => rng.chance(pp * pp),
            // P[max(Y1,Y2) < pp] = pp² for independent uniforms.
            SquareMode::TwoCompare => {
                let y1 = rng.next_f64();
                let y2 = rng.next_f64();
                y1.max(y2) < pp
            }
        }
    }
}

impl Aqm for Pi2 {
    fn on_enqueue(
        &mut self,
        pkt: &Packet,
        snap: &QueueSnapshot,
        _now: Time,
        rng: &mut Rng,
    ) -> Decision {
        let p = self.classic_prob();
        // Same tiny-queue guard as PIE (present in the Linux qdiscs).
        if snap.qlen_pkts <= 2 {
            return Decision::pass(p);
        }
        // Respect the cap exactly: clamp p' before squaring.
        let pp_eff = self.core.p().min(self.pp_cap);
        let signal = Self::squared_signal(self.cfg.square_mode, pp_eff, rng);
        if signal {
            if pkt.ecn.is_ect() {
                Decision::mark(p)
            } else {
                Decision::drop(p)
            }
        } else {
            Decision::pass(p)
        }
    }

    fn on_dequeue(&mut self, pkt: &Packet, _sojourn: Duration, snap: &QueueSnapshot, now: Time) {
        self.estimator.on_dequeue(pkt.size, snap.qlen_bytes, now);
    }

    fn update(&mut self, snap: &QueueSnapshot, _now: Time) {
        // The whole point: one unscaled eq.-(4) update on p', nothing else.
        let qdelay = self.estimator.estimate(snap);
        self.core.update(qdelay);
    }

    fn update_interval(&self) -> Option<Duration> {
        Some(self.cfg.t_update)
    }

    fn control_variable(&self) -> f64 {
        self.core.p()
    }

    fn probe(&self) -> AqmState {
        let (alpha_term, beta_term) = self.core.last_terms();
        AqmState {
            p_prime: self.p_prime(),
            prob: self.classic_prob(),
            alpha_term,
            beta_term,
            est_rate_bytes_per_sec: self.estimator.rate_estimate().unwrap_or(0.0),
            qdelay: self.core.prev_qdelay(),
            ..AqmState::default()
        }
    }

    fn name(&self) -> &'static str {
        "pi2"
    }

    fn save_ckpt(&self, w: &mut CkptWriter) {
        // cfg and pp_cap are construction-time constants; only the
        // controller and estimator carry run state.
        self.core.save_ckpt(w);
        self.estimator.save_ckpt(w);
    }

    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.core.restore_ckpt(r)?;
        self.estimator.restore_ckpt(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_netsim::{Action, Ecn, FlowId};

    fn snap(qlen_bytes: usize) -> QueueSnapshot {
        QueueSnapshot {
            qlen_bytes,
            qlen_pkts: qlen_bytes / 1500,
            link_rate_bps: 10_000_000,
            last_sojourn: None,
        }
    }

    fn pi2_with_pp(pp: f64) -> Pi2 {
        let mut a = Pi2::new(Pi2Config::default());
        a.core.set_p(pp);
        a
    }

    #[test]
    fn default_gains_are_2_5x_pie() {
        let cfg = Pi2Config::default();
        assert!((cfg.alpha_hz / (2.0 / 16.0) - 2.5).abs() < 1e-12);
        assert!((cfg.beta_hz / (20.0 / 16.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn applied_probability_is_square_of_p_prime() {
        let a = pi2_with_pp(0.3);
        assert!((a.classic_prob() - 0.09).abs() < 1e-12);
    }

    #[test]
    fn classic_cap_limits_applied_probability() {
        let a = pi2_with_pp(1.0);
        assert_eq!(a.classic_prob(), 0.25);
    }

    #[test]
    fn drop_frequency_matches_square() {
        let mut a = pi2_with_pp(0.3);
        let mut rng = Rng::new(11);
        let pkt = Packet::data(FlowId(0), 0, 1500, Ecn::NotEct, Time::ZERO);
        let s = snap(30_000);
        let n = 200_000;
        let drops = (0..n)
            .filter(|_| a.on_enqueue(&pkt, &s, Time::ZERO, &mut rng).action == Action::Drop)
            .count();
        let f = drops as f64 / n as f64;
        assert!((f - 0.09).abs() < 0.005, "drop frequency {f} vs 0.09");
    }

    #[test]
    fn two_compare_mode_matches_multiply_in_distribution() {
        let mut rng = Rng::new(13);
        let n = 400_000;
        for pp in [0.05, 0.3, 0.7] {
            let mut hits = [0usize; 2];
            for _ in 0..n {
                if Pi2::squared_signal(SquareMode::Multiply, pp, &mut rng) {
                    hits[0] += 1;
                }
                if Pi2::squared_signal(SquareMode::TwoCompare, pp, &mut rng) {
                    hits[1] += 1;
                }
            }
            let f0 = hits[0] as f64 / n as f64;
            let f1 = hits[1] as f64 / n as f64;
            assert!(
                (f0 - f1).abs() < 0.01,
                "modes diverge at pp={pp}: {f0} vs {f1}"
            );
            assert!((f0 - pp * pp).abs() < 0.01, "multiply off at pp={pp}: {f0}");
        }
    }

    #[test]
    fn ect_marked_not_dropped() {
        let mut a = pi2_with_pp(1.0);
        let mut rng = Rng::new(5);
        let ect = Packet::data(FlowId(0), 0, 1500, Ecn::Ect0, Time::ZERO);
        let s = snap(30_000);
        for _ in 0..1000 {
            let d = a.on_enqueue(&ect, &s, Time::ZERO, &mut rng);
            assert_ne!(d.action, Action::Drop, "PI2 marks ECT packets");
        }
    }

    #[test]
    fn tiny_queue_guard() {
        let mut a = pi2_with_pp(1.0);
        let mut rng = Rng::new(5);
        let pkt = Packet::data(FlowId(0), 0, 1500, Ecn::NotEct, Time::ZERO);
        let d = a.on_enqueue(&pkt, &snap(3000), Time::ZERO, &mut rng);
        assert_eq!(d.action, Action::Pass);
    }

    #[test]
    fn update_is_the_plain_pi_equation() {
        // PI2's update must have no tune scaling: two updates with a
        // constant 30 ms delay raise p' by exactly α·err each (after the
        // first which also sees the growth term).
        let mut a = Pi2::new(Pi2Config::default());
        let s = snap(37_500); // 30 ms at 10 Mb/s
        a.update(&s, Time::ZERO);
        let p1 = a.p_prime();
        a.update(&s, Time::ZERO);
        let p2 = a.p_prime();
        let expect = 0.3125 * 0.010; // α · (30ms − 20ms)
        assert!(((p2 - p1) - expect).abs() < 1e-12);
    }

    #[test]
    fn probe_reports_linear_and_squared_probabilities() {
        let mut a = Pi2::new(Pi2Config::default());
        let s = snap(37_500); // 30 ms at 10 Mb/s
        a.update(&s, Time::ZERO);
        let st = a.probe();
        assert_eq!(st.p_prime, a.p_prime());
        assert_eq!(st.prob, a.classic_prob());
        assert!(st.prob < st.p_prime, "output is the square of p'");
        assert_eq!(st.qdelay, Duration::from_millis(30));
        // 10 ms standing error, 30 ms growth from zero history.
        assert!((st.alpha_term - 0.3125 * 0.010).abs() < 1e-12);
        assert!((st.beta_term - 3.125 * 0.030).abs() < 1e-12);
        assert_eq!(st.scalable_prob, 0.0);
    }

    #[test]
    fn steady_state_p_prime_drives_same_p_as_pie_would() {
        // For the same Classic load the controller drives p' to √p, so the
        // applied probability equals PIE's p. Emulate: target drop prob
        // 0.04 -> p' must settle at 0.2.
        let mut a = pi2_with_pp(0.2);
        assert!((a.classic_prob() - 0.04).abs() < 1e-12);
        let _ = &mut a;
    }
}
