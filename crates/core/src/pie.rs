//! The PIE AQM (Pan et al. 2013; RFC 8033; Linux `sch_pie`).
//!
//! PIE runs the PI core of eq. (4) directly on the drop probability `p`
//! and compensates for the non-linear sensitivity of `p` at low load by
//! scaling Δp with a stepwise "tune" lookup table ([`TUNE_TABLE`]) — the
//! table Figure 5 shows tracking `√(2p)`. On top of that the Linux
//! implementation carries the heuristics listed in Section 5 of the paper;
//! each is individually switchable here so that the paper's three PIE
//! variants can all be expressed:
//!
//! * [`PieConfig::linux_default`] — full Linux PIE;
//! * [`PieConfig::paper_default`] — full PIE with the ECN-drop-above-10 %
//!   rule reworked as in the paper's evaluation;
//! * [`PieConfig::bare`] — "bare-PIE": tune only, all heuristics off.

use crate::estimator::DelayEstimator;
use crate::pi::PiCore;
use pi2_netsim::{Aqm, AqmState, Decision, Packet, QueueSnapshot};
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Rng, Time};

/// The stepwise Δp scaling of RFC 8033 §4.2 (extended during IETF review
/// down to 0.0001 % — the paper's Figure 5). Rows are
/// `(upper bound on p, divisor)`: while `p` is below the bound, Δp is
/// divided by the divisor.
pub const TUNE_TABLE: &[(f64, f64)] = &[
    (0.000001, 2048.0),
    (0.00001, 512.0),
    (0.0001, 128.0),
    (0.001, 32.0),
    (0.01, 8.0),
    (0.1, 2.0),
];

/// The auto-tune factor for a given probability: `1/divisor`, or 1 above
/// 10 %. This is the stepped curve of Figure 5.
pub fn tune_factor(p: f64) -> f64 {
    for &(bound, div) in TUNE_TABLE {
        if p < bound {
            return 1.0 / div;
        }
    }
    1.0
}

/// How Δp is scaled before integration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TuneMode {
    /// The RFC 8033 lookup table (Figure 5's `tune=auto`).
    Auto,
    /// A fixed factor (Figure 4's `tune=1`, `½`, `⅛` curves).
    Fixed(f64),
}

/// PIE configuration. Field defaults follow the paper's Table 1 where the
/// paper specifies a value, and RFC 8033 / Linux otherwise.
#[derive(Clone, Copy, Debug)]
pub struct PieConfig {
    /// Delay target τ₀ (Table 1: 20 ms).
    pub target: Duration,
    /// Update interval T (paper: 32 ms).
    pub t_update: Duration,
    /// Integral gain α (Table 1: 2/16 Hz).
    pub alpha_hz: f64,
    /// Proportional gain β (Table 1: 20/16 Hz).
    pub beta_hz: f64,
    /// Δp scaling mode.
    pub tune: TuneMode,
    /// Burst allowance (Table 1: 100 ms); `None` disables the heuristic.
    pub max_burst: Option<Duration>,
    /// Heuristic: no drop/mark while `p < 20 %` and the delay estimate is
    /// below half the target.
    pub suppress_when_light: bool,
    /// Heuristic: drop (rather than mark) ECN packets once `p` exceeds
    /// this threshold. Linux: `Some(0.1)`. The paper's evaluation reworked
    /// this rule away (`None` = always mark ECT packets).
    pub ecn_drop_above: Option<f64>,
    /// Heuristic: clamp Δp to 2 % while `p > 10 %`.
    pub clamp_delta: bool,
    /// Heuristic: force Δp = 2 % when the delay estimate exceeds 250 ms.
    pub qdelay_high_rule: bool,
    /// Exponential decay of `p` while the queue is idle (RFC 8033 §4.2).
    pub idle_decay: bool,
    /// Queue-delay estimation strategy (Linux PIE: departure-rate).
    pub estimator: DelayEstimator,
}

impl PieConfig {
    /// Full Linux PIE with the paper's Table 1 parameters.
    pub fn linux_default() -> Self {
        PieConfig {
            target: Duration::from_millis(20),
            t_update: Duration::from_millis(32),
            alpha_hz: 2.0 / 16.0,
            beta_hz: 20.0 / 16.0,
            tune: TuneMode::Auto,
            max_burst: Some(Duration::from_millis(100)),
            suppress_when_light: true,
            ecn_drop_above: Some(0.1),
            clamp_delta: true,
            qdelay_high_rule: true,
            idle_decay: true,
            estimator: DelayEstimator::linux_default(),
        }
    }

    /// The PIE variant the paper evaluates: full Linux heuristics, but the
    /// "drop ECN above 10 %" rule removed so ECT packets are always marked
    /// (avoiding the discontinuity in the Classic/Scalable rate ratio).
    pub fn paper_default() -> Self {
        PieConfig {
            ecn_drop_above: None,
            ..PieConfig::linux_default()
        }
    }

    /// "bare-PIE": the tune table (which is PIE's essence) with every
    /// extra heuristic disabled. The paper reports bare-PIE and full PIE
    /// were indistinguishable in all its experiments.
    pub fn bare() -> Self {
        PieConfig {
            max_burst: None,
            suppress_when_light: false,
            ecn_drop_above: None,
            clamp_delta: false,
            qdelay_high_rule: false,
            ..PieConfig::linux_default()
        }
    }
}

impl Default for PieConfig {
    fn default() -> Self {
        PieConfig::paper_default()
    }
}

/// The PIE AQM.
#[derive(Clone, Copy, Debug)]
pub struct Pie {
    cfg: PieConfig,
    core: PiCore,
    estimator: DelayEstimator,
    burst_allowance: Duration,
    qdelay: Duration,
}

impl Pie {
    /// Build a PIE instance.
    pub fn new(cfg: PieConfig) -> Self {
        Pie {
            cfg,
            core: PiCore::new(cfg.alpha_hz, cfg.beta_hz, cfg.target, cfg.t_update),
            estimator: cfg.estimator,
            burst_allowance: cfg.max_burst.unwrap_or(Duration::ZERO),
            qdelay: Duration::ZERO,
        }
    }

    /// Current drop probability.
    pub fn prob(&self) -> f64 {
        self.core.p()
    }

    /// Current queue-delay estimate (as of the last update).
    pub fn qdelay(&self) -> Duration {
        self.qdelay
    }
}

impl Aqm for Pie {
    fn on_enqueue(
        &mut self,
        pkt: &Packet,
        snap: &QueueSnapshot,
        _now: Time,
        rng: &mut Rng,
    ) -> Decision {
        let p = self.core.p();
        // RFC 8033 §4.1 safeguards.
        if self.burst_allowance > Duration::ZERO {
            return Decision::pass(p);
        }
        if self.cfg.suppress_when_light && p < 0.2 && self.core.prev_qdelay() < self.cfg.target / 2
        {
            return Decision::pass(p);
        }
        // Never drop when the queue holds no more than a couple of packets
        // (protects tiny windows; present in both Linux PIE and PI2).
        if snap.qlen_pkts <= 2 {
            return Decision::pass(p);
        }
        if rng.chance(p) {
            let may_mark = pkt.ecn.is_ect()
                && match self.cfg.ecn_drop_above {
                    Some(th) => p <= th,
                    None => true,
                };
            if may_mark {
                Decision::mark(p)
            } else {
                Decision::drop(p)
            }
        } else {
            Decision::pass(p)
        }
    }

    fn on_dequeue(&mut self, pkt: &Packet, _sojourn: Duration, snap: &QueueSnapshot, now: Time) {
        self.estimator.on_dequeue(pkt.size, snap.qlen_bytes, now);
    }

    fn update(&mut self, snap: &QueueSnapshot, _now: Time) {
        let qdelay = self.estimator.estimate(snap);
        let qdelay_old = self.core.prev_qdelay();
        let p = self.core.p();

        let mut delta = self.core.delta(qdelay);
        match self.cfg.tune {
            TuneMode::Auto => delta *= tune_factor(p),
            TuneMode::Fixed(f) => delta *= f,
        }
        if self.cfg.qdelay_high_rule && qdelay > Duration::from_millis(250) {
            delta = 0.02;
        }
        if self.cfg.clamp_delta && p >= 0.1 && delta > 0.02 {
            delta = 0.02;
        }
        self.core.integrate(delta, qdelay);

        if self.cfg.idle_decay && qdelay == Duration::ZERO && qdelay_old == Duration::ZERO {
            self.core.set_p(self.core.p() * 0.98);
        }

        // Burst-allowance bookkeeping (RFC 8033 §4.2).
        if let Some(max_burst) = self.cfg.max_burst {
            if self.burst_allowance > Duration::ZERO {
                self.burst_allowance =
                    (self.burst_allowance - self.cfg.t_update).max(Duration::ZERO);
            }
            if self.core.p() == 0.0
                && qdelay < self.cfg.target / 2
                && qdelay_old < self.cfg.target / 2
            {
                self.burst_allowance = max_burst;
            }
        }
        self.qdelay = qdelay;
    }

    fn update_interval(&self) -> Option<Duration> {
        Some(self.cfg.t_update)
    }

    fn control_variable(&self) -> f64 {
        self.core.p()
    }

    fn probe(&self) -> AqmState {
        // PIE controls p directly: the linear variable and the output
        // probability coincide. The α/β terms are reported unscaled — the
        // tune factor is exactly what PI2 removes, so seeing the raw
        // contributions next to the integrated p is the point.
        let (alpha_term, beta_term) = self.core.last_terms();
        AqmState {
            p_prime: self.core.p(),
            prob: self.core.p(),
            alpha_term,
            beta_term,
            burst_allowance: self.burst_allowance,
            est_rate_bytes_per_sec: self.estimator.rate_estimate().unwrap_or(0.0),
            qdelay: self.qdelay,
            ..AqmState::default()
        }
    }

    fn name(&self) -> &'static str {
        "pie"
    }

    fn save_ckpt(&self, w: &mut CkptWriter) {
        self.core.save_ckpt(w);
        self.estimator.save_ckpt(w);
        w.duration(self.burst_allowance);
        w.duration(self.qdelay);
    }

    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.core.restore_ckpt(r)?;
        self.estimator.restore_ckpt(r)?;
        self.burst_allowance = r.duration()?;
        self.qdelay = r.duration()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_netsim::{Action, Ecn, FlowId};

    fn snap(qlen_bytes: usize) -> QueueSnapshot {
        QueueSnapshot {
            qlen_bytes,
            qlen_pkts: qlen_bytes / 1500,
            link_rate_bps: 10_000_000,
            last_sojourn: None,
        }
    }

    fn pie_with_p(p: f64) -> Pie {
        let mut pie = Pie::new(PieConfig {
            max_burst: None,
            suppress_when_light: false,
            estimator: DelayEstimator::QlenOverRate,
            ..PieConfig::linux_default()
        });
        pie.core.set_p(p);
        pie
    }

    #[test]
    fn tune_table_matches_figure_5_steps() {
        assert_eq!(tune_factor(1e-7), 1.0 / 2048.0);
        assert_eq!(tune_factor(5e-6), 1.0 / 512.0);
        assert_eq!(tune_factor(5e-5), 1.0 / 128.0);
        assert_eq!(tune_factor(5e-4), 1.0 / 32.0);
        assert_eq!(tune_factor(5e-3), 1.0 / 8.0);
        assert_eq!(tune_factor(0.05), 1.0 / 2.0);
        assert_eq!(tune_factor(0.5), 1.0);
    }

    #[test]
    fn tune_table_tracks_sqrt_2p() {
        // Figure 5's claim: the stepped factor broadly fits √(2p). Check
        // each step's midpoint (geometric) is within a factor ~2.1 of the
        // continuous curve — the step quantization itself is a factor 2.
        for w in TUNE_TABLE.windows(2) {
            let (lo, _) = w[0];
            let (hi, div) = w[1];
            let mid = (lo * hi).sqrt();
            let continuous = (2.0 * mid).sqrt();
            let stepped = 1.0 / div;
            let ratio = stepped / continuous;
            assert!(
                (0.4..2.5).contains(&ratio),
                "step at p={mid:e}: stepped {stepped:e} vs sqrt(2p) {continuous:e}"
            );
        }
    }

    #[test]
    fn burst_allowance_suppresses_early_drops() {
        let mut pie = Pie::new(PieConfig {
            estimator: DelayEstimator::QlenOverRate,
            ..PieConfig::linux_default()
        });
        pie.core.set_p(0.9);
        let mut rng = Rng::new(1);
        let pkt = Packet::data(FlowId(0), 0, 1500, Ecn::NotEct, Time::ZERO);
        for _ in 0..100 {
            let d = pie.on_enqueue(&pkt, &snap(30_000), Time::ZERO, &mut rng);
            assert_eq!(d.action, Action::Pass, "burst allowance must suppress drops");
        }
    }

    #[test]
    fn burst_allowance_expires_after_updates() {
        let mut pie = Pie::new(PieConfig {
            suppress_when_light: false,
            estimator: DelayEstimator::QlenOverRate,
            ..PieConfig::linux_default()
        });
        // 100 ms / 32 ms = 4 updates to drain; keep qdelay high so it is
        // not refilled and p grows.
        for _ in 0..5 {
            pie.update(&snap(300_000), Time::ZERO);
        }
        pie.core.set_p(1.0);
        let mut rng = Rng::new(1);
        let pkt = Packet::data(FlowId(0), 0, 1500, Ecn::NotEct, Time::ZERO);
        let d = pie.on_enqueue(&pkt, &snap(300_000), Time::ZERO, &mut rng);
        assert_eq!(d.action, Action::Drop);
    }

    #[test]
    fn light_load_suppression_rule() {
        let mut pie = Pie::new(PieConfig {
            max_burst: None,
            estimator: DelayEstimator::QlenOverRate,
            ..PieConfig::linux_default()
        });
        pie.core.set_p(0.19);
        // prev_qdelay is zero (< target/2), p < 0.2 -> no drops at all.
        let mut rng = Rng::new(1);
        let pkt = Packet::data(FlowId(0), 0, 1500, Ecn::NotEct, Time::ZERO);
        for _ in 0..1000 {
            let d = pie.on_enqueue(&pkt, &snap(30_000), Time::ZERO, &mut rng);
            assert_eq!(d.action, Action::Pass);
        }
    }

    #[test]
    fn ecn_marked_below_threshold_dropped_above() {
        let mut rng = Rng::new(1);
        let ect = Packet::data(FlowId(0), 0, 1500, Ecn::Ect0, Time::ZERO);
        // p = 0.05 <= 0.1: ECT gets marks.
        let mut pie = pie_with_p(1.0);
        pie.cfg.ecn_drop_above = Some(0.1);
        pie.core.set_p(0.05);
        let mut saw_mark = false;
        for _ in 0..1000 {
            let d = pie.on_enqueue(&ect, &snap(30_000), Time::ZERO, &mut rng);
            assert_ne!(d.action, Action::Drop);
            saw_mark |= d.action == Action::Mark;
        }
        assert!(saw_mark);
        // p = 0.5 > 0.1: ECT gets dropped.
        pie.core.set_p(0.5);
        let mut saw_drop = false;
        for _ in 0..1000 {
            let d = pie.on_enqueue(&ect, &snap(30_000), Time::ZERO, &mut rng);
            assert_ne!(d.action, Action::Mark);
            saw_drop |= d.action == Action::Drop;
        }
        assert!(saw_drop);
    }

    #[test]
    fn paper_rework_always_marks_ect() {
        let mut pie = Pie::new(PieConfig {
            max_burst: None,
            suppress_when_light: false,
            estimator: DelayEstimator::QlenOverRate,
            ..PieConfig::paper_default()
        });
        pie.core.set_p(0.9);
        let mut rng = Rng::new(1);
        let ect = Packet::data(FlowId(0), 0, 1500, Ecn::Ect1, Time::ZERO);
        for _ in 0..1000 {
            let d = pie.on_enqueue(&ect, &snap(30_000), Time::ZERO, &mut rng);
            assert_ne!(d.action, Action::Drop, "reworked PIE never drops ECT");
        }
    }

    #[test]
    fn tiny_queue_never_dropped() {
        let mut pie = pie_with_p(1.0);
        let mut rng = Rng::new(1);
        let pkt = Packet::data(FlowId(0), 0, 1500, Ecn::NotEct, Time::ZERO);
        let d = pie.on_enqueue(&pkt, &snap(3000), Time::ZERO, &mut rng); // 2 pkts
        assert_eq!(d.action, Action::Pass);
    }

    #[test]
    fn delta_clamp_limits_growth_at_high_p() {
        let mut pie = Pie::new(PieConfig {
            max_burst: None,
            suppress_when_light: false,
            qdelay_high_rule: false,
            estimator: DelayEstimator::QlenOverRate,
            ..PieConfig::linux_default()
        });
        pie.core.set_p(0.5);
        // Enormous delay: unclamped delta would exceed 2%.
        pie.update(&snap(2_000_000), Time::ZERO);
        assert!(pie.prob() <= 0.52 + 1e-9, "p jumped to {}", pie.prob());
    }

    #[test]
    fn qdelay_high_rule_forces_two_percent_steps() {
        // Heuristic 5: when the delay estimate exceeds 250 ms, Δp is set
        // to 2% regardless of what eq. (4) would produce.
        let mut pie = Pie::new(PieConfig {
            max_burst: None,
            suppress_when_light: false,
            clamp_delta: false,
            estimator: DelayEstimator::QlenOverRate,
            ..PieConfig::linux_default()
        });
        // 400 ms of backlog at 10 Mb/s = 500 kB.
        pie.update(&snap(500_000), Time::ZERO);
        assert!((pie.prob() - 0.02).abs() < 1e-12, "p = {}", pie.prob());
        pie.update(&snap(500_000), Time::ZERO);
        assert!((pie.prob() - 0.04).abs() < 1e-12, "p = {}", pie.prob());
        // Without the rule, the same state produces a (tuned) eq.-(4)
        // delta instead.
        let mut bare = Pie::new(PieConfig {
            max_burst: None,
            suppress_when_light: false,
            clamp_delta: false,
            qdelay_high_rule: false,
            estimator: DelayEstimator::QlenOverRate,
            ..PieConfig::linux_default()
        });
        bare.update(&snap(500_000), Time::ZERO);
        assert!(bare.prob() != 0.02);
    }

    #[test]
    fn idle_decay_drains_p() {
        let mut pie = Pie::new(PieConfig {
            max_burst: None,
            suppress_when_light: false,
            estimator: DelayEstimator::QlenOverRate,
            ..PieConfig::linux_default()
        });
        pie.core.set_p(0.4);
        pie.update(&snap(0), Time::ZERO); // sets prev=0
        let p1 = pie.prob();
        pie.update(&snap(0), Time::ZERO); // idle decay active
        let p2 = pie.prob();
        assert!(p2 < p1, "idle decay should shrink p: {p1} -> {p2}");
    }

    #[test]
    fn auto_tune_slows_growth_at_low_p() {
        // Same queue state, one PIE at p≈0 with tune, one with tune fixed 1.
        let mk = |tune| {
            Pie::new(PieConfig {
                max_burst: None,
                suppress_when_light: false,
                tune,
                estimator: DelayEstimator::QlenOverRate,
                ..PieConfig::linux_default()
            })
        };
        let mut tuned = mk(TuneMode::Auto);
        let mut fixed = mk(TuneMode::Fixed(1.0));
        let s = snap(75_000); // 60 ms at 10 Mb/s: well above target
        tuned.update(&s, Time::ZERO);
        fixed.update(&s, Time::ZERO);
        assert!(tuned.prob() < fixed.prob());
        assert!(tuned.prob() > 0.0);
    }

    #[test]
    fn probe_reports_burst_allowance_and_delay() {
        let mut pie = Pie::new(PieConfig {
            estimator: DelayEstimator::QlenOverRate,
            ..PieConfig::linux_default()
        });
        let st = pie.probe();
        assert_eq!(st.burst_allowance, Duration::from_millis(100));
        pie.update(&snap(75_000), Time::ZERO); // 60 ms at 10 Mb/s
        let st = pie.probe();
        assert_eq!(st.burst_allowance, Duration::from_millis(68)); // −32 ms
        assert_eq!(st.qdelay, Duration::from_millis(60));
        assert_eq!(st.p_prime, st.prob, "PIE controls p directly");
        assert_eq!(st.est_rate_bytes_per_sec, 0.0, "no rate estimator here");
    }

    #[test]
    fn bare_pie_has_no_heuristics() {
        let cfg = PieConfig::bare();
        assert!(cfg.max_burst.is_none());
        assert!(!cfg.suppress_when_light);
        assert!(cfg.ecn_drop_above.is_none());
        assert!(!cfg.clamp_delta);
        assert!(!cfg.qdelay_high_rule);
        assert_eq!(cfg.tune, TuneMode::Auto, "tune is PIE's essence, stays on");
    }
}
