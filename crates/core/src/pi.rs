//! The Proportional-Integral core (paper eq. (4)) and the plain PI AQM.
//!
//! Every controller in this crate is built around the same two-term
//! update, run every interval `T`:
//!
//! ```text
//! p(t) = p(t−T) + α·(τ(t) − τ₀) + β·(τ(t) − τ(t−T))
//! ```
//!
//! where `τ` is the queuing delay, `τ₀` the target, and α, β gains in Hz.
//! The proportional term (β) pushes against queue *growth*; the integral
//! term (α) removes the standing error. What differs between PIE, PI and
//! PI2 is only (a) how the gains are scaled and (b) how the controlled
//! variable is encoded into a drop/mark probability.

use crate::estimator::DelayEstimator;
use pi2_netsim::{Aqm, AqmState, Decision, Packet, QueueSnapshot};
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Rng, Time};

/// The shared PI state machine.
///
/// ```
/// use pi2_aqm::PiCore;
/// use pi2_simcore::Duration;
/// let mut pi = PiCore::new(0.3125, 3.125, Duration::from_millis(20), Duration::from_millis(32));
/// // Queue delay above target: the probability must rise.
/// let p1 = pi.update(Duration::from_millis(30));
/// let p2 = pi.update(Duration::from_millis(30));
/// assert!(p2 > p1 && p1 > 0.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PiCore {
    /// Integral gain α in Hz.
    pub alpha_hz: f64,
    /// Proportional gain β in Hz.
    pub beta_hz: f64,
    /// Queuing-delay target τ₀.
    pub target: Duration,
    /// Update interval T.
    pub t_update: Duration,
    prev_qdelay: Duration,
    p: f64,
    last_alpha_term: f64,
    last_beta_term: f64,
}

impl PiCore {
    /// Create a PI core with probability 0 and no delay history.
    pub fn new(alpha_hz: f64, beta_hz: f64, target: Duration, t_update: Duration) -> Self {
        assert!(alpha_hz > 0.0 && beta_hz > 0.0, "gains must be positive");
        assert!(t_update > Duration::ZERO, "update interval must be positive");
        PiCore {
            alpha_hz,
            beta_hz,
            target,
            t_update,
            prev_qdelay: Duration::ZERO,
            p: 0.0,
            last_alpha_term: 0.0,
            last_beta_term: 0.0,
        }
    }

    /// The current controlled variable, in `[0, 1]`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Force the controlled variable (used by PIE's heuristics).
    pub fn set_p(&mut self, p: f64) {
        self.p = p.clamp(0.0, 1.0);
    }

    /// The raw Δp eq. (4) would apply for the given delay, *without*
    /// integrating it — callers scale it first (PIE's tune) or just add
    /// it. Records the two unscaled contributions for telemetry probes
    /// ([`PiCore::last_terms`]).
    pub fn delta(&mut self, qdelay: Duration) -> f64 {
        let err = (qdelay - self.target).as_secs_f64();
        let growth = (qdelay - self.prev_qdelay).as_secs_f64();
        self.last_alpha_term = self.alpha_hz * err;
        self.last_beta_term = self.beta_hz * growth;
        self.last_alpha_term + self.last_beta_term
    }

    /// The `(α·(τ − τ₀), β·(τ − τ_prev))` contributions of the most recent
    /// [`PiCore::delta`] evaluation, before any caller-side scaling.
    pub fn last_terms(&self) -> (f64, f64) {
        (self.last_alpha_term, self.last_beta_term)
    }

    /// Integrate a (possibly scaled) Δp and record the delay history.
    /// Returns the new controlled variable.
    pub fn integrate(&mut self, delta: f64, qdelay: Duration) -> f64 {
        self.p = (self.p + delta).clamp(0.0, 1.0);
        self.prev_qdelay = qdelay;
        self.p
    }

    /// Plain eq.-(4) update: integrate the unscaled delta.
    pub fn update(&mut self, qdelay: Duration) -> f64 {
        let d = self.delta(qdelay);
        self.integrate(d, qdelay)
    }

    /// Previous update's queue delay (PIE's `qdelay_old`).
    pub fn prev_qdelay(&self) -> Duration {
        self.prev_qdelay
    }

    /// Serialize the mutable controller state (checkpointing). Gains,
    /// target and interval are configuration and stay with the instance.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.duration(self.prev_qdelay);
        w.f64(self.p);
        w.f64(self.last_alpha_term);
        w.f64(self.last_beta_term);
    }

    /// Restore state captured by [`PiCore::save_ckpt`].
    pub fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.prev_qdelay = r.duration()?;
        self.p = r.f64()?;
        self.last_alpha_term = r.f64()?;
        self.last_beta_term = r.f64()?;
        if !(0.0..=1.0).contains(&self.p) {
            return Err(CkptError::Corrupt("PI probability outside [0, 1]"));
        }
        Ok(())
    }
}

/// Configuration for the plain [`Pi`] AQM.
#[derive(Clone, Copy, Debug)]
pub struct PiConfig {
    /// Integral gain α in Hz. Default: the paper's Scalable-PI gains
    /// (Table 1, `PI/PI2+DCTCP`: α = 10/16).
    pub alpha_hz: f64,
    /// Proportional gain β in Hz (Table 1: β = 100/16).
    pub beta_hz: f64,
    /// Delay target τ₀ (Table 1: 20 ms).
    pub target: Duration,
    /// Update interval T (paper: 32 ms).
    pub t_update: Duration,
    /// Cap on the applied probability.
    pub max_prob: f64,
    /// Queue-delay estimation strategy.
    pub estimator: DelayEstimator,
}

impl Default for PiConfig {
    fn default() -> Self {
        PiConfig {
            alpha_hz: 10.0 / 16.0,
            beta_hz: 100.0 / 16.0,
            target: Duration::from_millis(20),
            t_update: Duration::from_millis(32),
            max_prob: 1.0,
            estimator: DelayEstimator::QlenOverRate,
        }
    }
}

impl PiConfig {
    /// The fixed-gain configuration of Figure 6's `pi` curve: PIE's gains
    /// (α = 0.125, β = 1.25) with auto-tuning removed — the straw man that
    /// oscillates at low load.
    pub fn untuned_pie_gains() -> Self {
        PiConfig {
            alpha_hz: 0.125,
            beta_hz: 1.25,
            ..PiConfig::default()
        }
    }
}

/// A plain PI controller applying its probability directly to every
/// packet: marks ECN-capable packets, drops the rest.
///
/// With Scalable traffic this is the `scal pi` controller of Figure 7 —
/// linear and stable. With Classic traffic and fixed gains it is the
/// oscillating `pi` curve of Figure 6.
#[derive(Clone, Copy, Debug)]
pub struct Pi {
    core: PiCore,
    max_prob: f64,
    estimator: DelayEstimator,
}

impl Pi {
    /// Build from configuration.
    pub fn new(cfg: PiConfig) -> Self {
        Pi {
            core: PiCore::new(cfg.alpha_hz, cfg.beta_hz, cfg.target, cfg.t_update),
            max_prob: cfg.max_prob,
            estimator: cfg.estimator,
        }
    }

    /// Access the PI core (tests and experiments).
    pub fn core(&self) -> &PiCore {
        &self.core
    }
}

impl Aqm for Pi {
    fn on_enqueue(
        &mut self,
        pkt: &Packet,
        _snap: &QueueSnapshot,
        _now: Time,
        rng: &mut Rng,
    ) -> Decision {
        let p = self.core.p().min(self.max_prob);
        if rng.chance(p) {
            if pkt.ecn.is_ect() {
                Decision::mark(p)
            } else {
                Decision::drop(p)
            }
        } else {
            Decision::pass(p)
        }
    }

    fn on_dequeue(&mut self, pkt: &Packet, _sojourn: Duration, snap: &QueueSnapshot, now: Time) {
        self.estimator.on_dequeue(pkt.size, snap.qlen_bytes, now);
    }

    fn update(&mut self, snap: &QueueSnapshot, _now: Time) {
        let qdelay = self.estimator.estimate(snap);
        self.core.update(qdelay);
    }

    fn update_interval(&self) -> Option<Duration> {
        Some(self.core.t_update)
    }

    fn control_variable(&self) -> f64 {
        self.core.p()
    }

    fn probe(&self) -> AqmState {
        let (alpha_term, beta_term) = self.core.last_terms();
        AqmState {
            p_prime: self.core.p(),
            prob: self.core.p().min(self.max_prob),
            alpha_term,
            beta_term,
            est_rate_bytes_per_sec: self.estimator.rate_estimate().unwrap_or(0.0),
            qdelay: self.core.prev_qdelay(),
            ..AqmState::default()
        }
    }

    fn name(&self) -> &'static str {
        "pi"
    }

    fn save_ckpt(&self, w: &mut CkptWriter) {
        self.core.save_ckpt(w);
        self.estimator.save_ckpt(w);
    }

    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.core.restore_ckpt(r)?;
        self.estimator.restore_ckpt(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_netsim::{Ecn, FlowId};

    fn snap(qlen_bytes: usize) -> QueueSnapshot {
        QueueSnapshot {
            qlen_bytes,
            qlen_pkts: qlen_bytes / 1500,
            link_rate_bps: 10_000_000,
            last_sojourn: None,
        }
    }

    fn core() -> PiCore {
        PiCore::new(
            0.3125,
            3.125,
            Duration::from_millis(20),
            Duration::from_millis(32),
        )
    }

    #[test]
    fn p_starts_at_zero_and_stays_bounded() {
        let mut c = core();
        assert_eq!(c.p(), 0.0);
        for _ in 0..10_000 {
            c.update(Duration::from_secs(10)); // absurd delay
        }
        assert_eq!(c.p(), 1.0);
        for _ in 0..10_000 {
            c.update(Duration::ZERO);
        }
        assert_eq!(c.p(), 0.0);
    }

    #[test]
    fn integral_term_raises_p_on_standing_error() {
        let mut c = core();
        // Constant delay above target: first update has a growth term,
        // later ones only the integral part.
        let d1 = c.update(Duration::from_millis(30));
        let d2 = c.update(Duration::from_millis(30));
        let d3 = c.update(Duration::from_millis(30));
        assert!(d1 > 0.0);
        // Steady error of 10 ms: Δp = α·0.01 each tick.
        assert!(((d3 - d2) - 0.3125 * 0.01).abs() < 1e-12);
    }

    #[test]
    fn proportional_term_reacts_to_growth() {
        let mut c = core();
        // Delay at target (no integral error) but growing by 5 ms per tick.
        c.update(Duration::from_millis(20));
        let before = c.p();
        let after = c.update(Duration::from_millis(25));
        // err = 5ms·α, growth = 5ms·β.
        let expect = 0.3125 * 0.005 + 3.125 * 0.005;
        assert!(((after - before) - expect).abs() < 1e-12);
    }

    #[test]
    fn negative_error_pulls_p_down() {
        let mut c = core();
        c.set_p(0.5);
        c.update(Duration::from_millis(20)); // prime history at target
        let p1 = c.p();
        let p2 = c.update(Duration::from_millis(5)); // below target, shrinking
        assert!(p2 < p1);
    }

    #[test]
    fn pi_aqm_marks_ect_and_drops_not_ect() {
        let mut pi = Pi::new(PiConfig::default());
        pi.core.set_p(1.0);
        let mut rng = Rng::new(3);
        let s = snap(30_000);
        let ect = Packet::data(FlowId(0), 0, 1500, Ecn::Ect1, Time::ZERO);
        let not = Packet::data(FlowId(0), 0, 1500, Ecn::NotEct, Time::ZERO);
        let d1 = pi.on_enqueue(&ect, &s, Time::ZERO, &mut rng);
        let d2 = pi.on_enqueue(&not, &s, Time::ZERO, &mut rng);
        assert_eq!(d1.action, pi2_netsim::Action::Mark);
        assert_eq!(d2.action, pi2_netsim::Action::Drop);
    }

    #[test]
    fn pi_aqm_signal_frequency_tracks_p() {
        let mut pi = Pi::new(PiConfig::default());
        pi.core.set_p(0.3);
        let mut rng = Rng::new(5);
        let s = snap(30_000);
        let pkt = Packet::data(FlowId(0), 0, 1500, Ecn::Ect1, Time::ZERO);
        let n = 100_000;
        let marks = (0..n)
            .filter(|_| {
                pi.on_enqueue(&pkt, &s, Time::ZERO, &mut rng).action == pi2_netsim::Action::Mark
            })
            .count();
        let f = marks as f64 / n as f64;
        assert!((f - 0.3).abs() < 0.01, "mark frequency {f}");
    }

    #[test]
    fn max_prob_caps_decisions() {
        let mut pi = Pi::new(PiConfig {
            max_prob: 0.25,
            ..PiConfig::default()
        });
        pi.core.set_p(1.0);
        let mut rng = Rng::new(7);
        let s = snap(30_000);
        let pkt = Packet::data(FlowId(0), 0, 1500, Ecn::NotEct, Time::ZERO);
        let n = 100_000;
        let drops = (0..n)
            .filter(|_| {
                pi.on_enqueue(&pkt, &s, Time::ZERO, &mut rng).action == pi2_netsim::Action::Drop
            })
            .count();
        let f = drops as f64 / n as f64;
        assert!((f - 0.25).abs() < 0.01, "drop frequency {f}");
    }

    #[test]
    fn update_interval_matches_config() {
        let pi = Pi::new(PiConfig::default());
        assert_eq!(pi.update_interval(), Some(Duration::from_millis(32)));
    }
}
