//! Curvy RED — the example coupled AQM of the DualQ draft the paper cites
//! (Section 3: the IETF dual-queue specification "is written sufficiently
//! generically that it covers the PI2 approach, but the example AQM it
//! gives is based on a RED-like AQM called Curvy RED").
//!
//! Where PI2 *controls* a linear variable and squares it, Curvy RED reads
//! the probability directly off the queue: `p' = (τ/range)` clipped to
//! [0, 1], applied with exponent `u` ("curviness") for Classic traffic —
//! `p = (τ/range)^u`, u = 2 giving the same square relationship without a
//! controller. The comparison quantifies what the PI core buys: Curvy RED
//! pushes back against load with *delay* (its operating point slides up
//! the curve as load grows — RED's original sin, per Hollot et al.),
//! while PI2 holds delay at the target and moves only `p`.

use pi2_netsim::{Aqm, Decision, Packet, QueueSnapshot};
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Rng, Time};

/// Curvy RED configuration.
#[derive(Clone, Copy, Debug)]
pub struct CurvyRedConfig {
    /// Queue delay at which the pseudo-probability reaches 1.
    pub range: Duration,
    /// Curviness exponent `u` for Classic traffic (2 = PI2's square).
    pub curviness: i32,
    /// EWMA weight for smoothing the delay estimate (per decision).
    pub wq: f64,
}

impl Default for CurvyRedConfig {
    fn default() -> Self {
        CurvyRedConfig {
            range: Duration::from_millis(64),
            curviness: 2,
            wq: 0.05,
        }
    }
}

/// The Curvy RED AQM (single-queue form: Scalable packets get the linear
/// probability, Classic packets the curved one).
#[derive(Clone, Copy, Debug)]
pub struct CurvyRed {
    cfg: CurvyRedConfig,
    avg_delay_s: f64,
}

impl CurvyRed {
    /// Build a Curvy RED instance.
    pub fn new(cfg: CurvyRedConfig) -> Self {
        assert!(cfg.curviness >= 1);
        assert!((0.0..=1.0).contains(&cfg.wq));
        CurvyRed {
            cfg,
            avg_delay_s: 0.0,
        }
    }

    /// The linear (Scalable) probability for the smoothed delay.
    pub fn linear_prob(&self) -> f64 {
        (self.avg_delay_s / self.cfg.range.as_secs_f64()).clamp(0.0, 1.0)
    }

    /// The curved (Classic) probability.
    pub fn classic_prob(&self) -> f64 {
        self.linear_prob().powi(self.cfg.curviness)
    }
}

impl Aqm for CurvyRed {
    fn on_enqueue(
        &mut self,
        pkt: &Packet,
        snap: &QueueSnapshot,
        _now: Time,
        rng: &mut Rng,
    ) -> Decision {
        let inst = snap.delay_from_qlen().as_secs_f64();
        self.avg_delay_s = (1.0 - self.cfg.wq) * self.avg_delay_s + self.cfg.wq * inst;
        if snap.qlen_pkts <= 2 {
            return Decision::pass(self.classic_prob());
        }
        if pkt.ecn.is_scalable() {
            let p = self.linear_prob();
            if rng.chance(p) {
                Decision::mark(p)
            } else {
                Decision::pass(p)
            }
        } else {
            let p = self.classic_prob();
            if rng.chance(p) {
                if pkt.ecn.is_ect() {
                    Decision::mark(p)
                } else {
                    Decision::drop(p)
                }
            } else {
                Decision::pass(p)
            }
        }
    }

    fn control_variable(&self) -> f64 {
        self.linear_prob()
    }

    fn name(&self) -> &'static str {
        "curvy-red"
    }

    fn save_ckpt(&self, w: &mut CkptWriter) {
        w.f64(self.avg_delay_s);
    }

    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.avg_delay_s = r.f64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_netsim::{Action, Ecn, FlowId};

    fn snap(delay_ms: u64) -> QueueSnapshot {
        let bytes = (delay_ms * 1250) as usize; // 10 Mb/s
        QueueSnapshot {
            qlen_bytes: bytes,
            qlen_pkts: (bytes / 1500).max(3),
            link_rate_bps: 10_000_000,
            last_sojourn: None,
        }
    }

    fn settle(c: &mut CurvyRed, delay_ms: u64) {
        let mut rng = Rng::new(1);
        let pkt = Packet::data(FlowId(0), 0, 1500, Ecn::NotEct, Time::ZERO);
        for _ in 0..500 {
            c.on_enqueue(&pkt, &snap(delay_ms), Time::ZERO, &mut rng);
        }
    }

    #[test]
    fn classic_probability_is_square_of_linear() {
        let mut c = CurvyRed::new(CurvyRedConfig::default());
        settle(&mut c, 32); // half the 64 ms range
        assert!((c.linear_prob() - 0.5).abs() < 0.02, "{}", c.linear_prob());
        assert!((c.classic_prob() - 0.25).abs() < 0.02, "{}", c.classic_prob());
    }

    #[test]
    fn probability_saturates_at_range() {
        let mut c = CurvyRed::new(CurvyRedConfig::default());
        settle(&mut c, 200);
        assert_eq!(c.linear_prob(), 1.0);
        assert_eq!(c.classic_prob(), 1.0);
    }

    #[test]
    fn scalable_marked_at_linear_rate() {
        let mut c = CurvyRed::new(CurvyRedConfig::default());
        settle(&mut c, 32);
        let mut rng = Rng::new(3);
        let pkt = Packet::data(FlowId(0), 0, 1500, Ecn::Ect1, Time::ZERO);
        let n = 100_000;
        let marks = (0..n)
            .filter(|_| {
                c.on_enqueue(&pkt, &snap(32), Time::ZERO, &mut rng).action == Action::Mark
            })
            .count();
        let f = marks as f64 / n as f64;
        assert!((f - 0.5).abs() < 0.02, "mark rate {f}");
    }

    /// The structural difference from PI2: Curvy RED's delay *must* rise
    /// with load (p comes from the curve), while PI2's integral action
    /// pins delay at the target. Verified end-to-end in
    /// tests/aqm_control.rs; here, verify the curve monotonicity.
    #[test]
    fn probability_is_monotone_in_delay() {
        let mut prev = 0.0;
        for d in [4u64, 8, 16, 32, 48, 64] {
            let mut c = CurvyRed::new(CurvyRedConfig::default());
            settle(&mut c, d);
            assert!(c.classic_prob() >= prev);
            prev = c.classic_prob();
        }
    }
}
