//! The coupled PI + PI2 single-queue AQM (paper Section 5, Figure 9).
//!
//! One PI core (run with the Scalable gains of Table 1: α = 10/16,
//! β = 100/16) produces the Scalable marking probability `ps = p'`.
//! Packets are classified by their ECN field:
//!
//! * **ECT(1) or CE** → Scalable: mark with probability `ps` (never drop —
//!   "the marking level is often too high to use drop");
//! * **ECT(0)** → Classic with ECN: mark with probability `(ps/k)²`;
//! * **Not-ECT** → Classic: drop with probability `(ps/k)²`.
//!
//! The coupling factor `k = 2` makes one CReno flow and one DCTCP flow
//! share the link equally (eq. (14) derives 1.19 analytically from the
//! window laws; 2 was validated empirically and is also the gain-doubling
//! that optimal stability suggests). The Classic probability is capped at
//! 25 % and the Scalable at 100 %; overload beyond that is left to
//! tail-drop, as the paper prescribes.
//!
//! "Think once to mark, think twice to drop."

use crate::estimator::DelayEstimator;
use crate::pi::PiCore;
use crate::pi2::{Pi2, SquareMode};
use pi2_netsim::{Aqm, AqmState, Decision, Packet, QueueSnapshot};
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Rng, Time};

/// Configuration of the coupled AQM (defaults: paper Table 1, k = 2).
#[derive(Clone, Copy, Debug)]
pub struct CoupledPi2Config {
    /// Delay target τ₀ (Table 1: 20 ms).
    pub target: Duration,
    /// Update interval T (paper: 32 ms).
    pub t_update: Duration,
    /// Integral gain α in Hz (Table 1 `PI/PI2+DCTCP`: 10/16).
    pub alpha_hz: f64,
    /// Proportional gain β in Hz (Table 1: 100/16).
    pub beta_hz: f64,
    /// Coupling factor k: Classic probability is `(ps/k)²`.
    pub k: f64,
    /// Cap on the Scalable marking probability (paper: 100 %).
    pub max_scalable_prob: f64,
    /// Cap on the Classic mark/drop probability (paper: 25 %).
    pub max_classic_prob: f64,
    /// Squaring implementation for the Classic decision.
    pub square_mode: SquareMode,
    /// Queue-delay estimation strategy.
    pub estimator: DelayEstimator,
}

impl Default for CoupledPi2Config {
    fn default() -> Self {
        CoupledPi2Config {
            target: Duration::from_millis(20),
            t_update: Duration::from_millis(32),
            alpha_hz: 10.0 / 16.0,
            beta_hz: 100.0 / 16.0,
            k: 2.0,
            max_scalable_prob: 1.0,
            max_classic_prob: 0.25,
            square_mode: SquareMode::Multiply,
            estimator: DelayEstimator::QlenOverRate,
        }
    }
}

/// The coupled Classic/Scalable single-queue AQM.
#[derive(Clone, Copy, Debug)]
pub struct CoupledPi2 {
    cfg: CoupledPi2Config,
    core: PiCore,
    estimator: DelayEstimator,
    /// √(max_classic_prob), precomputed off the per-packet hot path.
    pp_cap: f64,
    /// 1/k, precomputed (multiplication beats division per packet).
    inv_k: f64,
}

impl CoupledPi2 {
    /// Build a coupled instance.
    pub fn new(cfg: CoupledPi2Config) -> Self {
        assert!(cfg.k > 0.0, "coupling factor must be positive");
        CoupledPi2 {
            cfg,
            core: PiCore::new(cfg.alpha_hz, cfg.beta_hz, cfg.target, cfg.t_update),
            estimator: cfg.estimator,
            pp_cap: cfg.max_classic_prob.sqrt(),
            inv_k: 1.0 / cfg.k,
        }
    }

    /// The Scalable marking probability `ps`.
    pub fn scalable_prob(&self) -> f64 {
        self.core.p().min(self.cfg.max_scalable_prob)
    }

    /// The Classic mark/drop probability `(ps/k)²` (capped).
    pub fn classic_prob(&self) -> f64 {
        let pp = self.core.p() * self.inv_k;
        (pp * pp).min(self.cfg.max_classic_prob)
    }
}

impl Aqm for CoupledPi2 {
    fn on_enqueue(
        &mut self,
        pkt: &Packet,
        snap: &QueueSnapshot,
        _now: Time,
        rng: &mut Rng,
    ) -> Decision {
        if pkt.ecn.is_scalable() {
            let ps = self.scalable_prob();
            if snap.qlen_pkts <= 2 {
                return Decision::pass(ps);
            }
            if rng.chance(ps) {
                Decision::mark(ps)
            } else {
                Decision::pass(ps)
            }
        } else {
            let pc = self.classic_prob();
            if snap.qlen_pkts <= 2 {
                return Decision::pass(pc);
            }
            let pp_eff = (self.core.p() * self.inv_k).min(self.pp_cap);
            if Pi2::squared_signal(self.cfg.square_mode, pp_eff, rng) {
                if pkt.ecn.is_ect() {
                    Decision::mark(pc)
                } else {
                    Decision::drop(pc)
                }
            } else {
                Decision::pass(pc)
            }
        }
    }

    fn on_dequeue(&mut self, pkt: &Packet, _sojourn: Duration, snap: &QueueSnapshot, now: Time) {
        self.estimator.on_dequeue(pkt.size, snap.qlen_bytes, now);
    }

    fn update(&mut self, snap: &QueueSnapshot, _now: Time) {
        let qdelay = self.estimator.estimate(snap);
        self.core.update(qdelay);
    }

    fn update_interval(&self) -> Option<Duration> {
        Some(self.cfg.t_update)
    }

    fn control_variable(&self) -> f64 {
        self.core.p()
    }

    fn probe(&self) -> AqmState {
        let (alpha_term, beta_term) = self.core.last_terms();
        AqmState {
            p_prime: self.core.p(),
            prob: self.classic_prob(),
            scalable_prob: self.scalable_prob(),
            alpha_term,
            beta_term,
            est_rate_bytes_per_sec: self.estimator.rate_estimate().unwrap_or(0.0),
            qdelay: self.core.prev_qdelay(),
            ..AqmState::default()
        }
    }

    fn name(&self) -> &'static str {
        "coupled-pi2"
    }

    fn save_ckpt(&self, w: &mut CkptWriter) {
        // cfg, pp_cap and inv_k are construction-time constants.
        self.core.save_ckpt(w);
        self.estimator.save_ckpt(w);
    }

    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.core.restore_ckpt(r)?;
        self.estimator.restore_ckpt(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_netsim::{Action, Ecn, FlowId};

    fn snap() -> QueueSnapshot {
        QueueSnapshot {
            qlen_bytes: 30_000,
            qlen_pkts: 20,
            link_rate_bps: 10_000_000,
            last_sojourn: None,
        }
    }

    fn coupled_with(ps: f64) -> CoupledPi2 {
        let mut c = CoupledPi2::new(CoupledPi2Config::default());
        c.core.set_p(ps);
        c
    }

    #[test]
    fn probability_relation_pc_equals_ps_over_k_squared() {
        let c = coupled_with(0.4);
        assert!((c.scalable_prob() - 0.4).abs() < 1e-12);
        assert!((c.classic_prob() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn caps_apply_per_class() {
        let c = coupled_with(1.0);
        assert_eq!(c.scalable_prob(), 1.0);
        assert_eq!(c.classic_prob(), 0.25);
    }

    #[test]
    fn scalable_packets_are_never_dropped() {
        let mut c = coupled_with(1.0);
        let mut rng = Rng::new(1);
        let pkt = Packet::data(FlowId(0), 0, 1500, Ecn::Ect1, Time::ZERO);
        for _ in 0..1000 {
            let d = c.on_enqueue(&pkt, &snap(), Time::ZERO, &mut rng);
            assert_eq!(d.action, Action::Mark);
        }
    }

    #[test]
    fn not_ect_dropped_ect0_marked_at_same_rate() {
        let mut c = coupled_with(0.6); // pc = 0.09
        let mut rng = Rng::new(2);
        let not_ect = Packet::data(FlowId(0), 0, 1500, Ecn::NotEct, Time::ZERO);
        let ect0 = Packet::data(FlowId(0), 0, 1500, Ecn::Ect0, Time::ZERO);
        let n = 200_000;
        let mut drops = 0;
        let mut marks = 0;
        for _ in 0..n {
            if c.on_enqueue(&not_ect, &snap(), Time::ZERO, &mut rng).action == Action::Drop {
                drops += 1;
            }
            if c.on_enqueue(&ect0, &snap(), Time::ZERO, &mut rng).action == Action::Mark {
                marks += 1;
            }
        }
        let fd = drops as f64 / n as f64;
        let fm = marks as f64 / n as f64;
        assert!((fd - 0.09).abs() < 0.005, "drop freq {fd}");
        assert!((fm - 0.09).abs() < 0.005, "mark freq {fm}");
    }

    #[test]
    fn signal_ratio_between_classes_counterbalances_aggression() {
        // At ps = 0.2: scalable sees 0.2, classic sees 0.01 — a 20× more
        // aggressive signal for the scalable control, the counterbalance
        // the paper engineers.
        let c = coupled_with(0.2);
        let ratio = c.scalable_prob() / c.classic_prob();
        assert!((ratio - 20.0).abs() < 1e-9);
    }

    #[test]
    fn equal_rate_coupling_condition_holds() {
        // eq. (14) with k: pc = (ps/k)². For CReno W = 1.68/√pc and DCTCP
        // W = 2/ps to be equal: ps = k·√pc with k = 2/1.68·... — check the
        // windows the coupled probabilities imply differ by < 20 % (k = 2
        // vs the analytic 1.19 is the empirical slack the paper accepts).
        let c = coupled_with(0.3);
        let pc = c.classic_prob();
        let ps = c.scalable_prob();
        let w_creno = 1.68 / pc.sqrt();
        let w_dctcp = 2.0 / ps;
        let ratio = w_creno / w_dctcp;
        assert!(
            (ratio - 1.68).abs() < 1e-9,
            "k=2 overshoots the analytic balance by exactly 2/1.19: {ratio}"
        );
    }

    #[test]
    fn tiny_queue_guard_for_both_classes() {
        let mut c = coupled_with(1.0);
        let mut rng = Rng::new(3);
        let tiny = QueueSnapshot {
            qlen_bytes: 3000,
            qlen_pkts: 2,
            link_rate_bps: 10_000_000,
            last_sojourn: None,
        };
        for ecn in [Ecn::NotEct, Ecn::Ect1] {
            let pkt = Packet::data(FlowId(0), 0, 1500, ecn, Time::ZERO);
            let d = c.on_enqueue(&pkt, &tiny, Time::ZERO, &mut rng);
            assert_eq!(d.action, Action::Pass);
        }
    }

    #[test]
    fn probe_reports_both_class_probabilities() {
        let c = coupled_with(0.4);
        let st = c.probe();
        assert!((st.p_prime - 0.4).abs() < 1e-12);
        assert!((st.scalable_prob - 0.4).abs() < 1e-12);
        assert!((st.prob - 0.04).abs() < 1e-12, "classic prob is (ps/k)²");
    }

    #[test]
    fn scalable_gains_are_double_classic_pi2() {
        let cfg = CoupledPi2Config::default();
        assert!((cfg.alpha_hz / 0.3125 - 2.0).abs() < 1e-12);
        assert!((cfg.beta_hz / 3.125 - 2.0).abs() < 1e-12);
    }
}
