//! Per-flow queuing (deficit round robin), the alternative the paper's
//! introduction weighs: "Per-flow queuing has been used to isolate each
//! flow from the impairments of others, but this adds a new dimension to
//! the trilemma; the need for the network to inspect within the IP layer
//! to identify flows, not to mention the extra complexity of multiple
//! queues."
//!
//! Implemented as a [`Qdisc`]: one FIFO per flow, served by byte-deficit
//! round robin, with optional per-queue AQM-style sojourn-threshold
//! dropping. Used by the isolation ablation to show that FQ solves
//! coexistence by scheduling (at per-flow state cost) where PI2 solves it
//! by coupled signalling in one queue.

use pi2_netsim::ckpt::{read_packet, write_packet};
use pi2_netsim::{Decision, FlowId, Packet, Qdisc, QueueStats};
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Rng, Time};
use std::collections::{HashMap, VecDeque};

/// FQ configuration.
#[derive(Clone, Copy, Debug)]
pub struct FqConfig {
    /// Link rate in bits/s.
    pub rate_bps: u64,
    /// Shared buffer limit in bytes.
    pub buffer_bytes: usize,
    /// DRR quantum in bytes (one MTU is the classic choice).
    pub quantum: usize,
    /// Optional per-queue sojourn threshold: arriving packets are dropped
    /// (or the per-flow backlog delay capped) once the flow's own backlog
    /// exceeds this delay at the fair rate. `None` = buffer-limit only.
    pub per_flow_delay_cap: Option<Duration>,
}

impl FqConfig {
    /// Defaults for a link.
    pub fn for_link(rate_bps: u64) -> Self {
        FqConfig {
            rate_bps,
            buffer_bytes: 40_000 * 1500,
            quantum: 1514,
            per_flow_delay_cap: Some(Duration::from_millis(50)),
        }
    }
}

struct FlowQueue {
    fifo: VecDeque<(Packet, Time)>,
    bytes: usize,
    deficit: i64,
}

/// A deficit-round-robin fair queue.
///
/// ```
/// use pi2_aqm::{FqConfig, FqDrr};
/// use pi2_netsim::{Ecn, FlowId, Packet, Qdisc};
/// use pi2_simcore::{Rng, Time};
///
/// let mut q = FqDrr::new(FqConfig::for_link(10_000_000));
/// let mut rng = Rng::new(1);
/// for seq in 0..4 {
///     q.offer(Packet::data(FlowId(0), seq, 1000, Ecn::NotEct, Time::ZERO), Time::ZERO, &mut rng);
/// }
/// q.offer(Packet::data(FlowId(1), 0, 1000, Ecn::NotEct, Time::ZERO), Time::ZERO, &mut rng);
/// // Flow 1's lone packet is served within the first round despite flow
/// // 0's head start.
/// let mut served_flow1 = false;
/// for _ in 0..2 {
///     served_flow1 |= q.pop(Time::from_millis(1)).unwrap().0.flow == FlowId(1);
/// }
/// assert!(served_flow1);
/// ```
pub struct FqDrr {
    cfg: FqConfig,
    queues: HashMap<FlowId, FlowQueue>,
    /// Active flows in round-robin order.
    round: VecDeque<FlowId>,
    total_bytes: usize,
    rate_bps: u64,
    stats: QueueStats,
}

impl FqDrr {
    /// Build an FQ instance.
    pub fn new(cfg: FqConfig) -> Self {
        assert!(cfg.rate_bps > 0 && cfg.quantum > 0);
        FqDrr {
            cfg,
            queues: HashMap::new(),
            round: VecDeque::new(),
            total_bytes: 0,
            rate_bps: cfg.rate_bps,
            stats: QueueStats::default(),
        }
    }

    /// Number of flows currently backlogged.
    pub fn active_flows(&self) -> usize {
        self.round.len()
    }

    /// The flow whose head DRR will serve next (skipping deficit top-ups).
    fn next_flow(&self) -> Option<FlowId> {
        self.round.front().copied()
    }
}

impl Qdisc for FqDrr {
    fn offer(&mut self, pkt: Packet, now: Time, _rng: &mut Rng) -> Decision {
        if self.total_bytes + pkt.size > self.cfg.buffer_bytes {
            self.stats.overflowed += 1;
            return Decision::drop(1.0);
        }
        let flow = pkt.flow;
        let q = self.queues.entry(flow).or_insert_with(|| FlowQueue {
            // Sized past a typical per-flow backlog so the steady-state
            // enqueue path never reallocates.
            fifo: VecDeque::with_capacity(64),
            bytes: 0,
            deficit: 0,
        });
        // Per-flow backlog cap: a flow may not queue more than its delay
        // cap's worth of bytes *at the full link rate* (a conservative
        // bound on its own sojourn given it gets at least a fair share).
        if let Some(cap) = self.cfg.per_flow_delay_cap {
            let cap_bytes = (self.rate_bps as f64 * cap.as_secs_f64() / 8.0) as usize;
            if q.bytes + pkt.size > cap_bytes.max(3 * pkt.size) {
                self.stats.aqm_dropped += 1;
                return Decision::drop(1.0);
            }
        }
        let was_empty = q.fifo.is_empty();
        let size = pkt.size;
        q.bytes += size;
        q.fifo.push_back((pkt, now));
        self.total_bytes += size;
        self.stats.enqueued += 1;
        if was_empty {
            self.round.push_back(flow);
        }
        Decision::pass(0.0)
    }

    fn pop(&mut self, now: Time) -> Option<(Packet, Duration)> {
        // DRR: rotate until a flow's deficit covers its head packet.
        let mut guard = self.round.len() + 1;
        while let Some(&flow) = self.round.front() {
            guard -= 1;
            let q = self.queues.get_mut(&flow).expect("active flow has a queue");
            let head_size = q.fifo.front().map(|(p, _)| p.size)?;
            if q.deficit < head_size as i64 {
                if guard == 0 {
                    // Full rotation without service: top everyone up once.
                    for f in &self.round {
                        if let Some(fq) = self.queues.get_mut(f) {
                            fq.deficit += self.cfg.quantum as i64;
                        }
                    }
                    guard = self.round.len();
                    continue;
                }
                q.deficit += self.cfg.quantum as i64;
                self.round.rotate_left(1);
                continue;
            }
            let (pkt, enq) = q.fifo.pop_front().expect("head exists");
            q.bytes -= pkt.size;
            q.deficit -= pkt.size as i64;
            self.total_bytes -= pkt.size;
            if q.fifo.is_empty() {
                // Flow leaves the round; reset its deficit (DRR rule).
                q.deficit = 0;
                self.round.pop_front();
            }
            self.stats.dequeued += 1;
            self.stats.dequeued_bytes += pkt.size as u64;
            return Some((pkt, now.saturating_since(enq)));
        }
        None
    }

    fn head_size(&self) -> Option<usize> {
        let flow = self.next_flow()?;
        self.queues
            .get(&flow)
            .and_then(|q| q.fifo.front().map(|(p, _)| p.size))
    }

    fn len_bytes(&self) -> usize {
        self.total_bytes
    }

    fn len_pkts(&self) -> usize {
        self.queues.values().map(|q| q.fifo.len()).sum()
    }

    fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    fn set_rate_bps(&mut self, rate_bps: u64) {
        assert!(rate_bps > 0);
        self.rate_bps = rate_bps;
    }

    fn update(&mut self, _now: Time) {}

    fn update_interval(&self) -> Option<Duration> {
        None
    }

    fn control_variable(&self) -> f64 {
        self.active_flows() as f64
    }

    fn stats(&self) -> &QueueStats {
        &self.stats
    }

    fn save_ckpt(&self, w: &mut CkptWriter) {
        // Serialize flows in round-robin order — the `round` deque, not
        // the HashMap's iteration order, which is nondeterministic. Flows
        // with an empty FIFO carry no state (deficit resets to 0 on
        // leaving the round), so the round covers everything that matters.
        w.usize(self.round.len());
        for flow in &self.round {
            let q = &self.queues[flow];
            w.u32(flow.0);
            w.i64(q.deficit);
            w.usize(q.fifo.len());
            for (pkt, enq_at) in &q.fifo {
                write_packet(w, pkt);
                w.time(*enq_at);
            }
        }
        w.u64(self.rate_bps);
        w.u64(self.stats.enqueued);
        w.u64(self.stats.dequeued);
        w.u64(self.stats.dequeued_bytes);
        w.u64(self.stats.aqm_dropped);
        w.u64(self.stats.aqm_marked);
        w.u64(self.stats.overflowed);
    }

    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.queues.clear();
        self.round.clear();
        self.total_bytes = 0;
        let flows = r.usize()?;
        for _ in 0..flows {
            let flow = FlowId(r.u32()?);
            let deficit = r.i64()?;
            let pkts = r.usize()?;
            if pkts == 0 {
                return Err(CkptError::Corrupt("backlogged flow with empty queue"));
            }
            let mut fifo = VecDeque::with_capacity(pkts.max(64));
            let mut bytes = 0;
            for _ in 0..pkts {
                let pkt = read_packet(r)?;
                let enq_at = r.time()?;
                bytes += pkt.size;
                fifo.push_back((pkt, enq_at));
            }
            self.total_bytes += bytes;
            let prev = self.queues.insert(flow, FlowQueue { fifo, bytes, deficit });
            if prev.is_some() {
                return Err(CkptError::Corrupt("duplicate flow in DRR round"));
            }
            self.round.push_back(flow);
        }
        self.rate_bps = r.u64()?;
        if self.rate_bps == 0 {
            return Err(CkptError::Corrupt("zero link rate"));
        }
        self.stats.enqueued = r.u64()?;
        self.stats.dequeued = r.u64()?;
        self.stats.dequeued_bytes = r.u64()?;
        self.stats.aqm_dropped = r.u64()?;
        self.stats.aqm_marked = r.u64()?;
        self.stats.overflowed = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_netsim::Ecn;

    fn fq() -> FqDrr {
        FqDrr::new(FqConfig {
            per_flow_delay_cap: None,
            ..FqConfig::for_link(10_000_000)
        })
    }

    fn pkt(flow: u32, seq: u64, size: usize) -> Packet {
        Packet::data(FlowId(flow), seq, size, Ecn::NotEct, Time::ZERO)
    }

    #[test]
    fn single_flow_behaves_fifo() {
        let mut q = fq();
        let mut rng = Rng::new(1);
        for i in 0..5 {
            q.offer(pkt(0, i, 1000), Time::ZERO, &mut rng);
        }
        for i in 0..5 {
            let (p, _) = q.pop(Time::from_millis(1)).unwrap();
            assert_eq!(p.seq, i);
        }
        assert!(q.pop(Time::from_millis(1)).is_none());
    }

    #[test]
    fn two_flows_interleave_fairly() {
        let mut q = fq();
        let mut rng = Rng::new(1);
        // Flow 0 queues 10 packets first, flow 1 queues 10 after — DRR
        // must still alternate service rather than drain flow 0 first.
        for i in 0..10 {
            q.offer(pkt(0, i, 1000), Time::ZERO, &mut rng);
        }
        for i in 0..10 {
            q.offer(pkt(1, i, 1000), Time::ZERO, &mut rng);
        }
        let mut first_ten = Vec::new();
        for _ in 0..10 {
            first_ten.push(q.pop(Time::from_millis(1)).unwrap().0.flow);
        }
        let f0 = first_ten.iter().filter(|f| f.0 == 0).count();
        let f1 = first_ten.iter().filter(|f| f.0 == 1).count();
        assert!((4..=6).contains(&f0), "flow 0 got {f0} of first 10");
        assert!((4..=6).contains(&f1), "flow 1 got {f1} of first 10");
    }

    #[test]
    fn unequal_packet_sizes_get_equal_bytes() {
        let mut q = fq();
        let mut rng = Rng::new(1);
        // Flow 0 sends 1500 B packets, flow 1 sends 500 B packets.
        for i in 0..30 {
            q.offer(pkt(0, i, 1500), Time::ZERO, &mut rng);
            q.offer(pkt(1, i, 500), Time::ZERO, &mut rng);
            q.offer(pkt(1, 100 + i, 500), Time::ZERO, &mut rng);
            q.offer(pkt(1, 200 + i, 500), Time::ZERO, &mut rng);
        }
        let mut bytes = [0usize; 2];
        for _ in 0..40 {
            let (p, _) = q.pop(Time::from_millis(1)).unwrap();
            bytes[p.flow.0 as usize] += p.size;
        }
        let ratio = bytes[0] as f64 / bytes[1] as f64;
        assert!(
            (0.7..1.4).contains(&ratio),
            "byte service should be ~equal: {bytes:?}"
        );
    }

    #[test]
    fn per_flow_cap_drops_only_the_hog() {
        let mut q = FqDrr::new(FqConfig {
            per_flow_delay_cap: Some(Duration::from_millis(10)), // 12.5 kB
            ..FqConfig::for_link(10_000_000)
        });
        let mut rng = Rng::new(1);
        let mut hog_drops = 0;
        for i in 0..100 {
            let d = q.offer(pkt(0, i, 1500), Time::ZERO, &mut rng);
            if d.action == pi2_netsim::Action::Drop {
                hog_drops += 1;
            }
        }
        assert!(hog_drops > 80, "hog should be capped, {hog_drops} drops");
        // A polite second flow is unaffected.
        let d = q.offer(pkt(1, 0, 1500), Time::ZERO, &mut rng);
        assert_eq!(d.action, pi2_netsim::Action::Pass);
    }

    #[test]
    fn byte_accounting_is_exact() {
        let mut q = fq();
        let mut rng = Rng::new(1);
        q.offer(pkt(0, 0, 700), Time::ZERO, &mut rng);
        q.offer(pkt(1, 0, 300), Time::ZERO, &mut rng);
        assert_eq!(q.len_bytes(), 1000);
        assert_eq!(q.len_pkts(), 2);
        q.pop(Time::from_millis(1));
        q.pop(Time::from_millis(1));
        assert_eq!(q.len_bytes(), 0);
        assert!(q.is_empty());
        assert_eq!(q.active_flows(), 0);
    }
}
