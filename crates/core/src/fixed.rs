//! A fixed-probability dropper/marker — not an AQM from the paper but the
//! instrument used to validate the Appendix A steady-state window laws:
//! hold `p` constant, measure the window the congestion control settles
//! at, compare with `W(p)`.

use pi2_netsim::{Aqm, Decision, Packet, QueueSnapshot};
use pi2_simcore::{Rng, Time};

/// Applies a constant signal probability to every packet (mark if
/// ECN-capable, drop otherwise).
#[derive(Clone, Copy, Debug)]
pub struct FixedProb {
    /// The constant probability.
    pub p: f64,
}

impl FixedProb {
    /// A fixed-probability signaller.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        FixedProb { p }
    }
}

impl Aqm for FixedProb {
    fn on_enqueue(
        &mut self,
        pkt: &Packet,
        _snap: &QueueSnapshot,
        _now: Time,
        rng: &mut Rng,
    ) -> Decision {
        if rng.chance(self.p) {
            if pkt.ecn.is_ect() {
                Decision::mark(self.p)
            } else {
                Decision::drop(self.p)
            }
        } else {
            Decision::pass(self.p)
        }
    }

    fn control_variable(&self) -> f64 {
        self.p
    }

    fn name(&self) -> &'static str {
        "fixed-prob"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_netsim::{Action, Ecn, FlowId};

    #[test]
    fn signals_at_the_configured_rate() {
        let mut aqm = FixedProb::new(0.2);
        let mut rng = Rng::new(1);
        let snap = QueueSnapshot {
            qlen_bytes: 0,
            qlen_pkts: 0,
            link_rate_bps: 1,
            last_sojourn: None,
        };
        let pkt = Packet::data(FlowId(0), 0, 1500, Ecn::NotEct, Time::ZERO);
        let n = 100_000;
        let drops = (0..n)
            .filter(|_| aqm.on_enqueue(&pkt, &snap, Time::ZERO, &mut rng).action == Action::Drop)
            .count();
        let f = drops as f64 / n as f64;
        assert!((f - 0.2).abs() < 0.01, "{f}");
    }
}
