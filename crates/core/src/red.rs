//! Random Early Detection (Floyd & Jacobson 1993), the baseline the PI
//! lineage reacted against.
//!
//! Hollot et al.'s control-theoretic analysis of RED is where the PI AQM
//! story starts (Section 3): RED couples queue delay to loss, pushing back
//! against higher load with *both* higher delay and higher loss. It is
//! included here as a context baseline and for the Curvy-RED-flavoured
//! comparisons in the ablation benches.

use pi2_netsim::{Aqm, Decision, Packet, QueueSnapshot};
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Rng, Time};

/// RED configuration (byte-based thresholds).
#[derive(Clone, Copy, Debug)]
pub struct RedConfig {
    /// Lower threshold on the average queue (bytes): below it, no drops.
    pub min_th_bytes: f64,
    /// Upper threshold (bytes): above it, drop probability jumps to 1
    /// (or ramps to 1 at `2·max_th` in gentle mode).
    pub max_th_bytes: f64,
    /// Drop probability at `max_th`.
    pub max_p: f64,
    /// EWMA weight for the average queue estimate.
    pub wq: f64,
    /// Gentle RED: ramp from `max_p` to 1 between `max_th` and `2·max_th`
    /// instead of jumping to 1.
    pub gentle: bool,
}

impl Default for RedConfig {
    fn default() -> Self {
        // Tuned for a 10 Mb/s link with ~20 ms nominal delay: thresholds at
        // 12.5 kB (10 ms) and 62.5 kB (50 ms).
        RedConfig {
            min_th_bytes: 12_500.0,
            max_th_bytes: 62_500.0,
            max_p: 0.1,
            wq: 0.002,
            gentle: true,
        }
    }
}

impl RedConfig {
    /// Derive thresholds from delay targets at a given link rate, the
    /// configuration style recommended for delay-oriented comparisons.
    pub fn for_link(rate_bps: u64, min_th: Duration, max_th: Duration) -> Self {
        let bytes_per_sec = rate_bps as f64 / 8.0;
        RedConfig {
            min_th_bytes: min_th.as_secs_f64() * bytes_per_sec,
            max_th_bytes: max_th.as_secs_f64() * bytes_per_sec,
            ..RedConfig::default()
        }
    }
}

/// The RED AQM.
#[derive(Clone, Copy, Debug)]
pub struct Red {
    cfg: RedConfig,
    avg: f64,
    /// Packets since the last drop, for the uniformization correction.
    count: i64,
}

impl Red {
    /// Build a RED instance.
    pub fn new(cfg: RedConfig) -> Self {
        assert!(cfg.min_th_bytes < cfg.max_th_bytes, "min_th must be below max_th");
        assert!((0.0..=1.0).contains(&cfg.max_p));
        Red {
            cfg,
            avg: 0.0,
            count: -1,
        }
    }

    /// The current averaged queue estimate in bytes.
    pub fn avg_bytes(&self) -> f64 {
        self.avg
    }

    fn base_prob(&self) -> f64 {
        let c = &self.cfg;
        if self.avg < c.min_th_bytes {
            0.0
        } else if self.avg < c.max_th_bytes {
            c.max_p * (self.avg - c.min_th_bytes) / (c.max_th_bytes - c.min_th_bytes)
        } else if c.gentle && self.avg < 2.0 * c.max_th_bytes {
            c.max_p + (1.0 - c.max_p) * (self.avg - c.max_th_bytes) / c.max_th_bytes
        } else {
            1.0
        }
    }
}

impl Aqm for Red {
    fn on_enqueue(
        &mut self,
        pkt: &Packet,
        snap: &QueueSnapshot,
        _now: Time,
        rng: &mut Rng,
    ) -> Decision {
        self.avg = (1.0 - self.cfg.wq) * self.avg + self.cfg.wq * snap.qlen_bytes as f64;
        let pb = self.base_prob();
        if pb <= 0.0 {
            self.count = -1;
            return Decision::pass(0.0);
        }
        if pb >= 1.0 {
            self.count = 0;
            return Decision::drop(1.0);
        }
        // Uniformization: spread drops evenly across the interval (the
        // original paper's count correction).
        self.count += 1;
        let pa = (pb / (1.0 - (self.count as f64) * pb).max(1e-9)).clamp(0.0, 1.0);
        if rng.chance(pa) {
            self.count = 0;
            if pkt.ecn.is_ect() {
                Decision::mark(pb)
            } else {
                Decision::drop(pb)
            }
        } else {
            Decision::pass(pb)
        }
    }

    fn control_variable(&self) -> f64 {
        self.base_prob()
    }

    fn name(&self) -> &'static str {
        "red"
    }

    fn save_ckpt(&self, w: &mut CkptWriter) {
        w.f64(self.avg);
        w.i64(self.count);
    }

    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.avg = r.f64()?;
        self.count = r.i64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_netsim::{Action, Ecn, FlowId};

    fn snap(qlen: usize) -> QueueSnapshot {
        QueueSnapshot {
            qlen_bytes: qlen,
            qlen_pkts: qlen / 1500,
            link_rate_bps: 10_000_000,
            last_sojourn: None,
        }
    }

    fn pkt() -> Packet {
        Packet::data(FlowId(0), 0, 1500, Ecn::NotEct, Time::ZERO)
    }

    #[test]
    fn no_drops_below_min_threshold() {
        let mut red = Red::new(RedConfig::default());
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            let d = red.on_enqueue(&pkt(), &snap(5_000), Time::ZERO, &mut rng);
            assert_eq!(d.action, Action::Pass);
        }
    }

    #[test]
    fn average_converges_to_queue_length() {
        let mut red = Red::new(RedConfig::default());
        let mut rng = Rng::new(1);
        for _ in 0..5000 {
            red.on_enqueue(&pkt(), &snap(40_000), Time::ZERO, &mut rng);
        }
        assert!((red.avg_bytes() - 40_000.0).abs() < 1_000.0, "avg {}", red.avg_bytes());
    }

    #[test]
    fn drop_rate_ramps_between_thresholds() {
        let mut red = Red::new(RedConfig {
            wq: 1.0, // track instantaneous queue for a crisp test
            ..RedConfig::default()
        });
        let mut rng = Rng::new(2);
        // Midpoint: base prob = max_p/2 = 0.05.
        let n = 100_000;
        let drops = (0..n)
            .filter(|_| {
                red.on_enqueue(&pkt(), &snap(37_500), Time::ZERO, &mut rng).action == Action::Drop
            })
            .count();
        let f = drops as f64 / n as f64;
        // The count correction makes the realized rate a bit higher than
        // pb; accept a broad band around 0.05.
        assert!((0.03..0.12).contains(&f), "drop rate {f}");
    }

    #[test]
    fn hard_drop_above_gentle_region() {
        let mut red = Red::new(RedConfig {
            wq: 1.0,
            gentle: true,
            ..RedConfig::default()
        });
        let mut rng = Rng::new(3);
        let d = red.on_enqueue(&pkt(), &snap(200_000), Time::ZERO, &mut rng);
        assert_eq!(d.action, Action::Drop);
        assert_eq!(d.prob, 1.0);
    }

    #[test]
    fn ect_marked_in_ramp_region() {
        let mut red = Red::new(RedConfig {
            wq: 1.0,
            max_p: 1.0,
            ..RedConfig::default()
        });
        let mut rng = Rng::new(4);
        let ect = Packet::data(FlowId(0), 0, 1500, Ecn::Ect0, Time::ZERO);
        let mut marks = 0;
        for _ in 0..1000 {
            if red.on_enqueue(&ect, &snap(60_000), Time::ZERO, &mut rng).action == Action::Mark {
                marks += 1;
            }
        }
        assert!(marks > 0);
    }

    #[test]
    fn for_link_derives_byte_thresholds() {
        let cfg = RedConfig::for_link(
            10_000_000,
            Duration::from_millis(10),
            Duration::from_millis(50),
        );
        assert!((cfg.min_th_bytes - 12_500.0).abs() < 1e-9);
        assert!((cfg.max_th_bytes - 62_500.0).abs() < 1e-9);
    }
}
