//! Property-based tests for the fluid-model toolkit.

// Entire suite gated off by default: `proptest` is a registry dependency
// the offline build cannot fetch. See the `proptests` feature in Cargo.toml.
#![cfg(feature = "proptests")]

use pi2_fluid::{
    margins, max_min_allocation, Complex, FluidConfig, FluidSim, LoopKind, LoopTf, PiGains,
};
use proptest::prelude::*;

fn finite(re: f64, im: f64) -> Complex {
    Complex::new(re, im)
}

proptest! {
    /// Field axioms (numerically): commutativity, associativity,
    /// distributivity.
    #[test]
    fn complex_field_axioms(
        a in (-1e3f64..1e3, -1e3f64..1e3),
        b in (-1e3f64..1e3, -1e3f64..1e3),
        c in (-1e3f64..1e3, -1e3f64..1e3),
    ) {
        let (a, b, c) = (finite(a.0, a.1), finite(b.0, b.1), finite(c.0, c.1));
        let close = |x: Complex, y: Complex| (x - y).abs() < 1e-6 * (1.0 + x.abs());
        prop_assert!(close(a + b, b + a));
        prop_assert!(close(a * b, b * a));
        prop_assert!(close((a + b) + c, a + (b + c)));
        prop_assert!(close(a * (b + c), a * b + a * c));
    }

    /// |z·w| = |z|·|w| and arg is additive (mod 2π).
    #[test]
    fn complex_polar_identities(
        a in (-1e2f64..1e2, -1e2f64..1e2),
        b in (-1e2f64..1e2, -1e2f64..1e2),
    ) {
        let (z, w) = (finite(a.0, a.1), finite(b.0, b.1));
        prop_assume!(z.abs() > 1e-3 && w.abs() > 1e-3);
        let prod = z * w;
        prop_assert!((prod.abs() - z.abs() * w.abs()).abs() < 1e-6 * prod.abs().max(1.0));
        let mut darg = z.arg() + w.arg() - prod.arg();
        while darg > std::f64::consts::PI {
            darg -= std::f64::consts::TAU;
        }
        while darg < -std::f64::consts::PI {
            darg += std::f64::consts::TAU;
        }
        prop_assert!(darg.abs() < 1e-6);
    }

    /// exp(z+w) = exp(z)·exp(w).
    #[test]
    fn complex_exp_homomorphism(
        a in (-3.0f64..3.0, -3.0f64..3.0),
        b in (-3.0f64..3.0, -3.0f64..3.0),
    ) {
        let (z, w) = (finite(a.0, a.1), finite(b.0, b.1));
        let lhs = (z + w).exp();
        let rhs = z.exp() * w.exp();
        prop_assert!((lhs - rhs).abs() < 1e-6 * lhs.abs().max(1.0));
    }

    /// Loop transfer functions evaluate to finite values on the jω axis
    /// for any valid operating point.
    #[test]
    fn loop_tf_finite_everywhere(
        p_prime in 1e-4f64..1.0,
        r0 in 1e-3f64..0.5,
        w_exp in -3.0f64..3.0,
    ) {
        let w = 10f64.powf(w_exp);
        for kind in [LoopKind::RenoOnP, LoopKind::RenoOnPSquared, LoopKind::ScalableOnP] {
            let tf = LoopTf {
                kind,
                gains: PiGains::pi2(),
                r0,
                p0_prime: p_prime,
            };
            let z = tf.eval(w);
            prop_assert!(z.abs().is_finite(), "{kind:?} blew up at w={w}");
        }
    }

    /// Margins are well-defined (finite or +inf, never NaN) across the
    /// operating space.
    #[test]
    fn margins_never_nan(p_prime in 1e-3f64..1.0, r0 in 5e-3f64..0.3) {
        let m = margins(&LoopTf::pi2(p_prime, r0));
        prop_assert!(!m.gain_margin_db.is_nan());
        prop_assert!(!m.phase_margin_deg.is_nan());
    }

    /// The fluid integrator preserves its invariants (bounded p', positive
    /// window, non-negative queue) for random configurations.
    #[test]
    fn fluid_sim_invariants(
        n in 1.0f64..40.0,
        rtt_ms in 5.0f64..200.0,
        mbps in 1.0f64..100.0,
    ) {
        let cfg = FluidConfig {
            capacity_pps: mbps * 1e6 / 8.0 / 1500.0,
            base_rtt: rtt_ms / 1000.0,
            n_flows: vec![(0.0, n)],
            dt: 0.002,
            ..FluidConfig::default()
        };
        let samples = FluidSim::new(cfg).run(10.0, 0.2);
        for s in samples {
            prop_assert!((0.0..=1.0).contains(&s.p_prime));
            prop_assert!(s.w.is_finite() && s.w > 0.0);
            prop_assert!(s.qdelay >= 0.0 && s.qdelay.is_finite());
        }
    }

    /// Max-min water-filling conservation: when total demand covers the
    /// capacity the shares sum to exactly it (within float tolerance);
    /// otherwise every flow gets precisely its demand.
    #[test]
    fn max_min_shares_sum_to_capacity_or_demand(
        capacity in 1.0f64..1e6,
        demands in prop::collection::vec(0.0f64..1e5, 1..64),
    ) {
        let shares = max_min_allocation(capacity, &demands);
        let total_demand: f64 = demands.iter().sum();
        let total_share: f64 = shares.iter().sum();
        let expect = total_demand.min(capacity);
        prop_assert!(
            (total_share - expect).abs() <= 1e-9 * expect.max(1.0),
            "shares sum {total_share}, expected {expect}"
        );
    }

    /// No flow is ever allocated more than it asked for.
    #[test]
    fn max_min_never_exceeds_demand(
        capacity in 1.0f64..1e6,
        demands in prop::collection::vec(0.0f64..1e5, 1..64),
    ) {
        let shares = max_min_allocation(capacity, &demands);
        for (s, d) in shares.iter().zip(&demands) {
            prop_assert!(*s <= d * (1.0 + 1e-12) + 1e-12, "share {s} > demand {d}");
        }
    }

    /// The allocation is symmetric: permuting the demand vector permutes
    /// the shares the same way (no positional bias from the internal
    /// sort's tie-breaking).
    #[test]
    fn max_min_is_permutation_equivariant(
        capacity in 1.0f64..1e6,
        demands in prop::collection::vec(0.0f64..1e5, 2..32),
        rot in 1usize..31,
    ) {
        let rot = rot % demands.len();
        let mut rotated = demands.clone();
        rotated.rotate_left(rot);
        let shares = max_min_allocation(capacity, &demands);
        let rot_shares = max_min_allocation(capacity, &rotated);
        for i in 0..demands.len() {
            let j = (i + rot) % demands.len();
            prop_assert!(
                (shares[j] - rot_shares[i]).abs() <= 1e-9 * shares[j].max(1.0),
                "share of demand {} moved: {} vs {}",
                demands[j],
                shares[j],
                rot_shares[i]
            );
        }
    }

    /// Adding one more (unconstrained) flow never increases anyone
    /// else's share: max-min allocations are monotone under contention.
    #[test]
    fn max_min_adding_a_flow_never_helps_the_others(
        capacity in 1.0f64..1e6,
        demands in prop::collection::vec(0.0f64..1e5, 1..32),
    ) {
        let before = max_min_allocation(capacity, &demands);
        let mut more = demands.clone();
        more.push(f64::INFINITY); // unconstrained newcomer
        let after = max_min_allocation(capacity, &more);
        for i in 0..demands.len() {
            prop_assert!(
                after[i] <= before[i] * (1.0 + 1e-9) + 1e-9,
                "flow {i} grew from {} to {}",
                before[i],
                after[i]
            );
        }
    }
}
