//! # pi2-fluid — fluid model and control-theoretic analysis
//!
//! Appendix B of the paper analyses the TCP/AQM loop with the fluid model
//! of Misra et al. and Hollot et al.: linearized transfer functions for
//! Reno on `p`, Reno on `p'²` and a scalable control on `p'`, closed with
//! the PI controller. This crate reproduces that analysis:
//!
//! * [`complex`] — minimal complex arithmetic (no external dependency);
//! * [`tf`] — the loop transfer functions (35)–(37) with their operating
//!   points, plus PIE's tune-scaled gains;
//! * [`bode`] — gain/phase margins on a log-frequency sweep (Figures 4
//!   and 7);
//! * [`ode`] — a nonlinear delay-ODE integrator for eqs. (15)–(26), the
//!   fast cross-check of the packet-level simulator;
//! * [`flow`] — the flow-level *execution backend*: max-min-fair
//!   bottleneck sharing over arbitrary class mixes with no per-packet
//!   events, plus the hybrid-mode external-signal coupling.

pub mod bode;
pub mod complex;
pub mod flow;
pub mod nyquist;
pub mod ode;
pub mod tf;

pub use bode::{margins, Margins};
pub use complex::Complex;
pub use flow::{
    max_min_allocation, max_min_weighted, FlowClass, FlowLevelConfig, FlowLevelSample,
    FlowLevelSim, FlowLevelState,
};
pub use nyquist::{nyquist, winding_number, Stability};
pub use ode::{FluidConfig, FluidControllerKind, FluidSim, FluidTcpKind};
pub use tf::{pie_tune_factor, LoopKind, LoopTf, PiGains};
