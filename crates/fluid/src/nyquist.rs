//! Nyquist stability test, complementing the Bode margins.
//!
//! Gain/phase margins read off single crossover points and can mislead
//! for conditionally stable loops (multiple crossings — possible here
//! because the delay term winds the phase indefinitely). The Nyquist
//! criterion is global: the closed loop `L/(1+L)` is stable iff the
//! Nyquist plot of `L(jω)` does not encircle `−1` (the open loops
//! (35)–(37) have no right-half-plane poles — one integrator on the axis,
//! handled by the standard indentation, plus stable first-order factors —
//! so the required encirclement count is zero).

use crate::complex::Complex;
use crate::tf::LoopTf;

/// Outcome of the Nyquist test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stability {
    /// No net encirclement of −1: the closed loop is stable.
    Stable,
    /// Net encirclements detected: the closed loop is unstable.
    Unstable,
}

/// Winding number of the Nyquist curve of `tf` around −1, counted over
/// `ω ∈ [w_min, w_max]` and closed by conjugate symmetry (negative
/// frequencies mirror the positive ones).
///
/// Returns the *net* number of counter-clockwise encirclements.
pub fn winding_number(tf: &LoopTf, w_min: f64, w_max: f64, n: usize) -> i32 {
    assert!(w_min > 0.0 && w_max > w_min && n >= 64);
    let minus_one = Complex::real(-1.0);
    // Accumulate the continuous argument of L(jω) − (−1) over the sweep.
    let log_lo = w_min.ln();
    let log_hi = w_max.ln();
    let mut total = 0.0f64;
    let mut prev = tf.eval(w_min) - minus_one;
    for i in 1..n {
        let w = (log_lo + (log_hi - log_lo) * i as f64 / (n - 1) as f64).exp();
        let z = tf.eval(w) - minus_one;
        // Angle increment between consecutive samples, in (−π, π].
        let d = (z / prev).arg();
        total += d;
        prev = z;
    }
    // Close the contour: the ω < 0 half contributes the same sweep by
    // conjugate symmetry, and the indentation around the integrator pole
    // at the origin maps to an infinite-radius arc sweeping −π.
    let closed = 2.0 * total - std::f64::consts::PI;
    (closed / std::f64::consts::TAU).round() as i32
}

/// The Nyquist verdict with a default sweep wide enough that `|L|` is
/// far from −1 at both ends (integrator dominance below, roll-off above).
pub fn nyquist(tf: &LoopTf) -> Stability {
    if winding_number(tf, 1e-4, 1e4, 200_000) == 0 {
        Stability::Stable
    } else {
        Stability::Unstable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bode::margins;
    use crate::tf::{LoopKind, PiGains};

    #[test]
    fn pi2_is_nyquist_stable_over_the_load_range() {
        for i in 0..15 {
            let pp = 10f64.powf(-3.0 + 3.0 * i as f64 / 14.0);
            assert_eq!(
                nyquist(&LoopTf::pi2(pp, 0.1)),
                Stability::Stable,
                "at p' = {pp:.4}"
            );
        }
    }

    #[test]
    fn untuned_pie_is_nyquist_unstable_at_low_p() {
        let tf = LoopTf {
            kind: LoopKind::RenoOnP,
            gains: PiGains::pie(),
            r0: 0.1,
            p0_prime: (1e-5f64).sqrt(),
        };
        assert_eq!(nyquist(&tf), Stability::Unstable);
    }

    #[test]
    fn nyquist_agrees_with_margin_signs() {
        // Wherever both margins are comfortably positive the loop must be
        // Nyquist-stable, and where the gain margin is clearly negative it
        // must not be.
        for i in 0..12 {
            let p = 10f64.powf(-6.0 + 6.0 * i as f64 / 11.0);
            let tf = LoopTf {
                kind: LoopKind::RenoOnP,
                gains: PiGains::pie(),
                r0: 0.1,
                p0_prime: p.sqrt(),
            };
            let m = margins(&tf);
            let verdict = nyquist(&tf);
            if m.gain_margin_db > 2.0 && m.phase_margin_deg > 5.0 {
                assert_eq!(verdict, Stability::Stable, "p = {p:e}, {m:?}");
            }
            if m.gain_margin_db < -2.0 {
                assert_eq!(verdict, Stability::Unstable, "p = {p:e}, {m:?}");
            }
        }
    }

    #[test]
    fn excess_gain_flips_the_verdict() {
        let base = LoopTf::pi2(0.05, 0.1);
        assert_eq!(nyquist(&base), Stability::Stable);
        let mut hot = base;
        hot.gains = hot.gains.scaled(20.0);
        assert_eq!(nyquist(&hot), Stability::Unstable);
    }
}
