//! Gain and phase margins (Figures 4 and 7).
//!
//! The loop is evaluated along `s = jω` on a logarithmic grid; the phase
//! is unwrapped (the delay term `e^{−jωR}` winds it down indefinitely) and
//! the two classical margins are read off:
//!
//! * **phase margin** — `180° + ∠L(jω_gc)` at the gain-crossover
//!   frequency `|L(jω_gc)| = 1`;
//! * **gain margin** — `−20·log₁₀|L(jω_pc)|` at the phase-crossover
//!   frequency `∠L(jω_pc) = −180°`.
//!
//! Negative margins mean the closed loop is unstable — the oscillating
//! queues of Figure 6's fixed-gain `pi` curve.

use crate::tf::LoopTf;

/// The two stability margins at one operating point.
#[derive(Clone, Copy, Debug)]
pub struct Margins {
    /// Gain margin in dB (`f64::INFINITY` if the phase never crosses
    /// −180° in the swept band).
    pub gain_margin_db: f64,
    /// Phase margin in degrees (`f64::INFINITY` if the gain never crosses
    /// unity in the swept band).
    pub phase_margin_deg: f64,
    /// Gain-crossover frequency in rad/s, if found.
    pub crossover_w: Option<f64>,
}

/// Compute margins for a loop transfer function.
///
/// Sweeps `ω ∈ [w_min, w_max]` with `n` log-spaced points; the defaults in
/// [`margins`] cover the paper's operating range comfortably.
pub fn margins_swept(tf: &LoopTf, w_min: f64, w_max: f64, n: usize) -> Margins {
    assert!(w_min > 0.0 && w_max > w_min && n >= 16);
    let log_lo = w_min.ln();
    let log_hi = w_max.ln();

    let mut prev_w = w_min;
    let mut prev = tf.eval(w_min);
    let mut prev_mag = prev.abs();
    let mut prev_phase = prev.arg(); // unwrapped phase accumulator
    let mut gain_margin_db = f64::INFINITY;
    let mut phase_margin_deg = f64::INFINITY;
    let mut crossover_w = None;
    let mut found_pc = false;
    let mut found_gc = false;

    for i in 1..n {
        let w = (log_lo + (log_hi - log_lo) * i as f64 / (n - 1) as f64).exp();
        let z = tf.eval(w);
        let mag = z.abs();
        // Unwrap: choose the branch of arg(z) closest to the previous
        // accumulated phase.
        let mut phase = z.arg();
        let two_pi = std::f64::consts::TAU;
        while phase - prev_phase > std::f64::consts::PI {
            phase -= two_pi;
        }
        while phase - prev_phase < -std::f64::consts::PI {
            phase += two_pi;
        }

        // Gain crossover: |L| falls through 1 (integrator ⇒ starts above).
        if !found_gc && prev_mag >= 1.0 && mag < 1.0 {
            // Log-linear interpolation on magnitude.
            let t = (prev_mag.ln() - 0.0) / (prev_mag.ln() - mag.ln());
            let wc = prev_w * (w / prev_w).powf(t);
            let ph = prev_phase + (phase - prev_phase) * t;
            phase_margin_deg = 180.0 + ph.to_degrees();
            crossover_w = Some(wc);
            found_gc = true;
        }
        // Phase crossover: unwrapped phase falls through −180°.
        let neg_pi = -std::f64::consts::PI;
        if !found_pc && prev_phase > neg_pi && phase <= neg_pi {
            let t = (prev_phase - neg_pi) / (prev_phase - phase);
            let m = prev_mag.ln() + (mag.ln() - prev_mag.ln()) * t;
            gain_margin_db = -20.0 * (m.exp()).log10();
            found_pc = true;
        }
        if found_gc && found_pc {
            break;
        }
        prev_w = w;
        prev_mag = mag;
        prev_phase = phase;
        prev = z;
        let _ = prev;
    }

    Margins {
        gain_margin_db,
        phase_margin_deg,
        crossover_w,
    }
}

/// Margins with the default sweep (10⁻⁴ … 10⁴ rad/s, 20 000 points) —
/// ample for R₀ up to seconds and T = 32 ms.
///
/// ```
/// use pi2_fluid::{margins, LoopTf};
/// let m = margins(&LoopTf::pi2(0.05, 0.1)); // p' = 5%, RTT 100 ms
/// assert!(m.gain_margin_db > 0.0);
/// assert!(m.phase_margin_deg > 0.0);
/// ```
pub fn margins(tf: &LoopTf) -> Margins {
    margins_swept(tf, 1e-4, 1e4, 20_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tf::{LoopKind, LoopTf, PiGains};

    #[test]
    fn pi2_margins_positive_over_full_load_range() {
        // Section 4's claim: with the ×2.5 gains, PI2's gain margin never
        // dips below zero anywhere over the full load range.
        for i in 0..40 {
            let p_prime = 10f64.powf(-3.0 + 3.0 * i as f64 / 39.0); // 1e-3..1
            let m = margins(&LoopTf::pi2(p_prime, 0.1));
            assert!(
                m.gain_margin_db > 0.0,
                "PI2 gain margin {:.2} dB at p'={p_prime:.4}",
                m.gain_margin_db
            );
            assert!(
                m.phase_margin_deg > 0.0,
                "PI2 phase margin {:.1}° at p'={p_prime:.4}",
                m.phase_margin_deg
            );
        }
    }

    #[test]
    fn pi2_gain_margin_is_flat() {
        // Figure 7: the PI2 gain margin stays within a narrow band while
        // p' sweeps two decades (PIE's untuned margin would vary by
        // ~20 dB/decade).
        let mut gms = Vec::new();
        for i in 0..20 {
            let p_prime = 10f64.powf(-2.0 + 2.0 * i as f64 / 19.0);
            gms.push(margins(&LoopTf::pi2(p_prime, 0.1)).gain_margin_db);
        }
        let max = gms.iter().cloned().fold(f64::MIN, f64::max);
        let min = gms.iter().cloned().fold(f64::MAX, f64::min);
        let pi2_span = max - min;
        // Contrast with the untuned Reno-on-p loop over the same sweep:
        // its margin is diagonal (~20 dB/decade), PI2's is flattened out.
        let mut pie_gms = Vec::new();
        for i in 0..20 {
            let p_prime: f64 = 10f64.powf(-2.0 + 2.0 * i as f64 / 19.0);
            let tf = LoopTf {
                kind: LoopKind::RenoOnP,
                gains: PiGains::pie(),
                r0: 0.1,
                p0_prime: p_prime,
            };
            pie_gms.push(margins(&tf).gain_margin_db);
        }
        let pie_span = pie_gms.iter().cloned().fold(f64::MIN, f64::max)
            - pie_gms.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            pi2_span < 12.0,
            "PI2 gain margin spans {min:.1}..{max:.1} dB over two decades"
        );
        assert!(
            pie_span > 2.5 * pi2_span,
            "PIE-untuned span {pie_span:.1} dB should dwarf PI2's {pi2_span:.1} dB"
        );
    }

    #[test]
    fn untuned_pie_margin_is_diagonal_and_goes_negative() {
        // Figure 4's tune=1 curve: fixed gains on the Reno-on-p loop give
        // a gain margin that falls as p shrinks and eventually goes
        // negative (instability at low load).
        let gm_at = |p: f64| {
            let tf = LoopTf {
                kind: LoopKind::RenoOnP,
                gains: PiGains::pie(), // no tune scaling
                r0: 0.1,
                p0_prime: p.sqrt(),
            };
            margins(&tf).gain_margin_db
        };
        let hi = gm_at(0.1);
        let mid = gm_at(1e-3);
        let lo = gm_at(1e-5);
        assert!(hi > mid && mid > lo, "margin not diagonal: {hi} {mid} {lo}");
        assert!(lo < 0.0, "expected instability at p=1e-5, got {lo:.1} dB");
        assert!(hi > 0.0);
    }

    #[test]
    fn auto_tuned_pie_margins_stay_positive() {
        // Figure 4's tune=auto curve: the lookup table keeps the margins
        // above zero across the whole range.
        for i in 0..30 {
            let p = 10f64.powf(-6.0 + 6.0 * i as f64 / 29.0);
            let m = margins(&LoopTf::pie_auto(p, 0.1));
            assert!(
                m.gain_margin_db > 0.0,
                "tuned PIE gain margin {:.1} dB at p={p:e}",
                m.gain_margin_db
            );
        }
    }

    #[test]
    fn scal_pi_margins_similar_to_pi2() {
        // Figure 7: the scal-pi curves sit close to reno-pi2 (the doubled
        // gains exactly offset the doubled TCP-block gain).
        for p_prime in [0.01, 0.05, 0.2, 0.8] {
            let a = margins(&LoopTf::pi2(p_prime, 0.1)).gain_margin_db;
            let b = margins(&LoopTf::scal_pi(p_prime, 0.1)).gain_margin_db;
            assert!(
                (a - b).abs() < 6.0,
                "margins diverge at p'={p_prime}: pi2 {a:.1} dB vs scal {b:.1} dB"
            );
        }
    }

    #[test]
    fn raising_gain_lowers_gain_margin() {
        let base = LoopTf::pi2(0.1, 0.1);
        let mut hot = base;
        hot.gains = hot.gains.scaled(4.0);
        let m0 = margins(&base).gain_margin_db;
        let m1 = margins(&hot).gain_margin_db;
        assert!(
            (m0 - m1 - 20.0 * 4f64.log10()).abs() < 1.0,
            "gain margin should drop by ~12 dB: {m0:.1} -> {m1:.1}"
        );
    }

    #[test]
    fn longer_rtt_erodes_margins() {
        let short = margins(&LoopTf::pi2(0.1, 0.02)).phase_margin_deg;
        let long = margins(&LoopTf::pi2(0.1, 0.3)).phase_margin_deg;
        assert!(long < short, "RTT 300 ms should have less margin: {long} vs {short}");
    }
}
