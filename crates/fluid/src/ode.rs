//! Nonlinear delay-ODE integration of the fluid model (eqs. (15)–(26)).
//!
//! The packet-level simulator in `pi2-netsim` is the ground truth of this
//! reproduction; this integrator is the fast cross-check. It integrates
//! the window/queue fluid equations of Misra et al. with the actual delay
//! terms (`W(t−R)`, `p(t−R)`) and a discrete PI controller ticking every
//! `T`, reproducing Figure 6-style dynamics in microseconds of CPU time:
//!
//! ```text
//! Reno:      dW/dt = 1/R(t) − ½·W(t)·W(t−R)/R(t−R) · s(t−R)     (15)/(18)
//! Scalable:  dW/dt = 1/R(t) − ½·W(t−R)/R(t−R) · s(t−R)          (22)
//! Queue:     dq/dt = N·W(t)/R(t) − C                            (16)
//! ```
//!
//! where `s` is the applied congestion signal: `p'` directly, `p'²`
//! (PI2), or `p` from tune-scaled gains (PIE).

use crate::tf::{pie_tune_factor, PiGains};

/// Which window law to integrate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FluidTcpKind {
    /// TCP Reno: multiplicative decrease ∝ W(t)·W(t−R).
    Reno,
    /// The scalable half-packet-per-mark control: decrease ∝ W(t−R).
    Scalable,
}

/// How the controller's variable is encoded into the applied signal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FluidControllerKind {
    /// Apply `p'` directly (plain PI; `scal pi` when paired with
    /// [`FluidTcpKind::Scalable`], the unstable `pi` when with Reno).
    Direct,
    /// Apply `(p')²` (PI2).
    Squared,
    /// Apply `p` directly with PIE's tune-scaled gains.
    TunedDirect,
}

/// Fluid-model configuration.
#[derive(Clone, Debug)]
pub struct FluidConfig {
    /// Link capacity in packets per second.
    pub capacity_pps: f64,
    /// Two-way propagation delay Tp in seconds (RTT excluding queue).
    pub base_rtt: f64,
    /// Flow-count schedule: `(time, N)` steps, first entry at t = 0.
    pub n_flows: Vec<(f64, f64)>,
    /// Window law.
    pub tcp: FluidTcpKind,
    /// Signal encoding.
    pub encoder: FluidControllerKind,
    /// PI gains.
    pub gains: PiGains,
    /// Delay target τ₀ in seconds.
    pub target: f64,
    /// Integration step in seconds (must divide the controller period).
    pub dt: f64,
}

impl Default for FluidConfig {
    fn default() -> Self {
        FluidConfig {
            capacity_pps: 10_000_000.0 / 8.0 / 1500.0, // 10 Mb/s of 1500 B packets
            base_rtt: 0.1,
            n_flows: vec![(0.0, 5.0)],
            tcp: FluidTcpKind::Reno,
            encoder: FluidControllerKind::Squared,
            gains: PiGains::pi2(),
            target: 0.020,
            dt: 0.001,
        }
    }
}

/// One integration sample.
#[derive(Clone, Copy, Debug)]
pub struct FluidSample {
    /// Time in seconds.
    pub t: f64,
    /// Queue delay τ = q/C in seconds.
    pub qdelay: f64,
    /// The controller's variable p'.
    pub p_prime: f64,
    /// Per-flow window in packets.
    pub w: f64,
}

/// The integrator.
///
/// ```
/// use pi2_fluid::{FluidConfig, FluidSim};
/// let samples = FluidSim::new(FluidConfig::default()).run(60.0, 0.1);
/// let late: Vec<f64> = samples.iter().filter(|s| s.t > 40.0).map(|s| s.qdelay).collect();
/// let mean = late.iter().sum::<f64>() / late.len() as f64;
/// assert!((mean - 0.020).abs() < 0.005); // settles on the 20 ms target
/// ```
pub struct FluidSim {
    cfg: FluidConfig,
    /// History of (W, R, applied signal) per step, for the delay terms.
    hist_w: Vec<f64>,
    hist_r: Vec<f64>,
    hist_s: Vec<f64>,
    w: f64,
    q: f64,
    p_prime: f64,
    prev_qdelay: f64,
    t: f64,
    steps: u64,
    ctrl_every: u64,
}

impl FluidSim {
    /// Create an integrator at the initial condition W = 1, q = 0, p' = 0.
    pub fn new(cfg: FluidConfig) -> Self {
        assert!(cfg.dt > 0.0 && cfg.capacity_pps > 0.0 && cfg.base_rtt > 0.0);
        assert!(!cfg.n_flows.is_empty(), "need at least one flow-count step");
        let ctrl_every = (cfg.gains.t_update / cfg.dt).round().max(1.0) as u64;
        FluidSim {
            hist_w: Vec::new(),
            hist_r: Vec::new(),
            hist_s: Vec::new(),
            w: 1.0,
            q: 0.0,
            p_prime: 0.0,
            prev_qdelay: 0.0,
            t: 0.0,
            steps: 0,
            ctrl_every,
            cfg,
        }
    }

    fn n_at(&self, t: f64) -> f64 {
        let mut n = self.cfg.n_flows[0].1;
        for &(at, nn) in &self.cfg.n_flows {
            if t >= at {
                n = nn;
            }
        }
        n
    }

    /// The applied congestion signal for the current p'.
    fn signal(&self) -> f64 {
        match self.cfg.encoder {
            FluidControllerKind::Direct | FluidControllerKind::TunedDirect => self.p_prime,
            FluidControllerKind::Squared => self.p_prime * self.p_prime,
        }
    }

    /// Look a round-trip into the past (clamped to the start of history).
    fn delayed(&self, r: f64) -> (f64, f64, f64) {
        let lag = (r / self.cfg.dt).round() as usize;
        let idx = self.hist_w.len().saturating_sub(lag.max(1));
        if self.hist_w.is_empty() {
            (self.w, self.cfg.base_rtt, 0.0)
        } else {
            (self.hist_w[idx], self.hist_r[idx], self.hist_s[idx])
        }
    }

    /// Integrate one step; returns the sample after the step.
    pub fn step(&mut self) -> FluidSample {
        let c = self.cfg.capacity_pps;
        let qdelay = self.q / c;
        let r = qdelay + self.cfg.base_rtt;
        let n = self.n_at(self.t);

        // Controller tick.
        if self.steps % self.ctrl_every == 0 {
            let err = qdelay - self.cfg.target;
            let growth = qdelay - self.prev_qdelay;
            let mut delta = self.cfg.gains.alpha * err + self.cfg.gains.beta * growth;
            if self.cfg.encoder == FluidControllerKind::TunedDirect {
                delta *= pie_tune_factor(self.p_prime);
            }
            self.p_prime = (self.p_prime + delta).clamp(0.0, 1.0);
            self.prev_qdelay = qdelay;
        }

        // Record history *before* updating, so delayed() sees the past.
        self.hist_w.push(self.w);
        self.hist_r.push(r);
        self.hist_s.push(self.signal());

        let (w_d, r_d, s_d) = self.delayed(r);
        let decrease = match self.cfg.tcp {
            FluidTcpKind::Reno => 0.5 * self.w * w_d / r_d * s_d,
            FluidTcpKind::Scalable => 0.5 * w_d / r_d * s_d,
        };
        let dw = 1.0 / r - decrease;
        let dq = n * self.w / r - c;

        self.w = (self.w + dw * self.cfg.dt).max(1e-3);
        self.q = (self.q + dq * self.cfg.dt).max(0.0);
        self.t += self.cfg.dt;
        self.steps += 1;

        FluidSample {
            t: self.t,
            qdelay: self.q / c,
            p_prime: self.p_prime,
            w: self.w,
        }
    }

    /// Run until `t_end`, sampling every `sample_every` seconds.
    pub fn run(&mut self, t_end: f64, sample_every: f64) -> Vec<FluidSample> {
        let mut out = Vec::new();
        let mut next_sample = 0.0;
        while self.t < t_end {
            let s = self.step();
            if s.t >= next_sample {
                out.push(s);
                next_sample += sample_every;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settle(cfg: FluidConfig, secs: f64) -> Vec<FluidSample> {
        FluidSim::new(cfg).run(secs, 0.01)
    }

    fn tail(samples: &[FluidSample], frac: f64) -> &[FluidSample] {
        let start = (samples.len() as f64 * (1.0 - frac)) as usize;
        &samples[start..]
    }

    #[test]
    fn pi2_reno_settles_on_target_delay() {
        let samples = settle(FluidConfig::default(), 120.0);
        let late = tail(&samples, 0.25);
        let mean: f64 = late.iter().map(|s| s.qdelay).sum::<f64>() / late.len() as f64;
        assert!(
            (mean - 0.020).abs() < 0.004,
            "fluid PI2 queue delay settles at {:.1} ms",
            mean * 1000.0
        );
    }

    #[test]
    fn reno_operating_point_matches_w0_sq_p0_sq_eq_2() {
        // Eq. (19): W₀²·p₀′² = 2 at equilibrium for Reno on a squared p'.
        let samples = settle(FluidConfig::default(), 200.0);
        let late = tail(&samples, 0.2);
        let w: f64 = late.iter().map(|s| s.w).sum::<f64>() / late.len() as f64;
        let pp: f64 = late.iter().map(|s| s.p_prime).sum::<f64>() / late.len() as f64;
        let product = w * w * pp * pp;
        assert!(
            (product - 2.0).abs() < 0.4,
            "W₀²p₀′² = {product:.2}, expected 2 (W={w:.1}, p'={pp:.4})"
        );
    }

    #[test]
    fn scalable_operating_point_matches_w0_p0_eq_2() {
        // Eq. (23): W₀·p₀′ = 2 for the scalable control on direct p'.
        let cfg = FluidConfig {
            tcp: FluidTcpKind::Scalable,
            encoder: FluidControllerKind::Direct,
            gains: crate::tf::PiGains::scal_pi(),
            ..FluidConfig::default()
        };
        let samples = settle(cfg, 200.0);
        let late = tail(&samples, 0.2);
        let w: f64 = late.iter().map(|s| s.w).sum::<f64>() / late.len() as f64;
        let pp: f64 = late.iter().map(|s| s.p_prime).sum::<f64>() / late.len() as f64;
        let product = w * pp;
        assert!(
            (product - 2.0).abs() < 0.4,
            "W₀p₀′ = {product:.2}, expected 2"
        );
    }

    #[test]
    fn untuned_pi_oscillates_where_pi2_does_not() {
        // Figure 6's premise at fluid level: few flows on a fast link keep
        // p very low, where fixed-gain PI on Reno loses its margins. The
        // deterministic fluid model damps the full packet-level limit
        // cycle, but the residual oscillation contrast is stark: PI2 is
        // quiescent to machine precision, fixed-gain PI is not.
        let base = FluidConfig {
            capacity_pps: 100_000_000.0 / 8.0 / 1500.0,
            base_rtt: 0.010,
            n_flows: vec![(0.0, 4.0)],
            dt: 0.0002,
            ..FluidConfig::default()
        };
        let pi = FluidConfig {
            tcp: FluidTcpKind::Reno,
            encoder: FluidControllerKind::Direct,
            gains: crate::tf::PiGains::pie(), // fixed, untuned
            ..base.clone()
        };
        let pi2 = FluidConfig {
            tcp: FluidTcpKind::Reno,
            encoder: FluidControllerKind::Squared,
            gains: crate::tf::PiGains::pi2(),
            ..base
        };
        let std_of = |cfg: FluidConfig| {
            let samples = settle(cfg, 60.0);
            let late = tail(&samples, 0.5);
            let mean: f64 = late.iter().map(|s| s.qdelay).sum::<f64>() / late.len() as f64;
            (late
                .iter()
                .map(|s| (s.qdelay - mean).powi(2))
                .sum::<f64>()
                / late.len() as f64)
                .sqrt()
        };
        let s_pi = std_of(pi);
        let s_pi2 = std_of(pi2);
        assert!(
            s_pi > 2e-4,
            "fixed-gain PI should show residual oscillation, std {:.3} ms",
            s_pi * 1000.0
        );
        assert!(
            s_pi2 < 1e-4,
            "PI2 should be quiescent, std {:.3} ms",
            s_pi2 * 1000.0
        );
    }

    #[test]
    fn load_step_raises_p_prime() {
        let cfg = FluidConfig {
            n_flows: vec![(0.0, 5.0), (60.0, 30.0)],
            ..FluidConfig::default()
        };
        let samples = settle(cfg, 120.0);
        let before: f64 = samples
            .iter()
            .filter(|s| s.t > 40.0 && s.t < 60.0)
            .map(|s| s.p_prime)
            .sum::<f64>()
            / samples.iter().filter(|s| s.t > 40.0 && s.t < 60.0).count() as f64;
        let after: f64 = samples
            .iter()
            .filter(|s| s.t > 100.0)
            .map(|s| s.p_prime)
            .sum::<f64>()
            / samples.iter().filter(|s| s.t > 100.0).count() as f64;
        // Section 4: load ∝ 1/W ∝ N, and p' is linear in load, so 6× the
        // flows must drive p' up ≈6× (and p = p'² up 36×).
        let ratio = after / before;
        assert!(
            (4.5..7.5).contains(&ratio),
            "p' ratio after 5→30 flows: {ratio:.2} (expected ≈ 6)"
        );
    }

    #[test]
    fn queue_never_negative_and_w_bounded() {
        let samples = settle(FluidConfig::default(), 30.0);
        for s in &samples {
            assert!(s.qdelay >= 0.0);
            assert!(s.w.is_finite() && s.w > 0.0);
            assert!((0.0..=1.0).contains(&s.p_prime));
        }
    }
}
