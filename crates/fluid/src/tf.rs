//! The loop transfer functions of Appendix B (eqs. (29)–(37)).
//!
//! All three loops share the PI + queue block `A(s)` of eq. (31),
//!
//! ```text
//! A(s) = κ_A (s/z_A + 1) / (W₀ · s · (s/s_A + 1)),
//!   κ_A = α·R₀/T,   z_A = α / (T(β + α/2)),   s_A = 1/R₀,
//! ```
//!
//! and differ in the TCP/marking block (eqs. (32)–(34)). The `W₀` factors
//! cancel in the complete loops (35)–(37), which is what this module
//! evaluates on the `s = jω` axis.

use crate::complex::Complex;

/// PI gains and timing, as used in the analysis.
#[derive(Clone, Copy, Debug)]
pub struct PiGains {
    /// Integral gain α in Hz.
    pub alpha: f64,
    /// Proportional gain β in Hz.
    pub beta: f64,
    /// Update interval T in seconds.
    pub t_update: f64,
}

impl PiGains {
    /// PIE's Table 1 gains.
    pub fn pie() -> Self {
        PiGains {
            alpha: 2.0 / 16.0,
            beta: 20.0 / 16.0,
            t_update: 0.032,
        }
    }

    /// PI2's Figure 7 gains (×2.5 PIE).
    pub fn pi2() -> Self {
        PiGains {
            alpha: 0.3125,
            beta: 3.125,
            t_update: 0.032,
        }
    }

    /// The Scalable-PI Figure 7 gains (×2 PI2).
    pub fn scal_pi() -> Self {
        PiGains {
            alpha: 0.625,
            beta: 6.25,
            t_update: 0.032,
        }
    }

    /// Scale both gains by a factor (PIE's tune, or ablation sweeps).
    pub fn scaled(self, f: f64) -> Self {
        PiGains {
            alpha: self.alpha * f,
            beta: self.beta * f,
            ..self
        }
    }
}

/// The stepwise PIE tune factor of Figure 5, re-exported here for the
/// analytic plots so `pi2-fluid` stays independent of the AQM crate.
/// Identical to `pi2_aqm::pie::tune_factor` (a cross-crate test pins them
/// together).
pub fn pie_tune_factor(p: f64) -> f64 {
    const TABLE: &[(f64, f64)] = &[
        (0.000001, 2048.0),
        (0.00001, 512.0),
        (0.0001, 128.0),
        (0.001, 32.0),
        (0.01, 8.0),
        (0.1, 2.0),
    ];
    for &(bound, div) in TABLE {
        if p < bound {
            return 1.0 / div;
        }
    }
    1.0
}

/// Which of the paper's three loops to evaluate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoopKind {
    /// Eq. (35): TCP Reno driven directly by `p` (PIE's structure).
    RenoOnP,
    /// Eq. (36): TCP Reno driven by a squared `p'` (PI2's structure).
    RenoOnPSquared,
    /// Eq. (37): a scalable control (−½ packet per mark) driven by `p'`.
    ScalableOnP,
}

/// A fully parameterized loop transfer function at one operating point.
#[derive(Clone, Copy, Debug)]
pub struct LoopTf {
    /// Loop structure.
    pub kind: LoopKind,
    /// PI gains (already tune-scaled if modelling PIE).
    pub gains: PiGains,
    /// Round-trip time R₀ in seconds at the operating point.
    pub r0: f64,
    /// The *scalable* pseudo-probability p₀′ at the operating point. For
    /// [`LoopKind::RenoOnP`] pass `p₀′ = √p₀`; the κ/s parameters below
    /// absorb the difference exactly as in the paper
    /// (`s_R = √2·p₀′/R₀ = √(2p₀)/R₀`, `κ_R = κ_S/2`).
    pub p0_prime: f64,
}

impl LoopTf {
    /// κ_A = α·R₀/T.
    fn kappa_a(&self) -> f64 {
        self.gains.alpha * self.r0 / self.gains.t_update
    }

    /// z_A = α / (T(β + α/2)).
    fn z_a(&self) -> f64 {
        self.gains.alpha / (self.gains.t_update * (self.gains.beta + self.gains.alpha / 2.0))
    }

    /// s_A = 1/R₀.
    fn s_a(&self) -> f64 {
        1.0 / self.r0
    }

    /// κ_S = 1/p₀′.
    ///
    /// Derived from the linearized window equations: for Reno on `p'²`
    /// (eq. (20)) the TCP-block numerator is `√2·C/N · R₀²C/(2N) =
    /// W₀²p₀'/2 = W₀·(1/p₀')` at the operating point `W₀²p₀'² = 2`; the
    /// scalable case (eq. (24)) gives the same `W₀·(1/p₀')` at
    /// `W₀p₀' = 2`. Together with `s_R = √2p₀'/R₀` this makes the
    /// low-frequency loop gain `κ_S·s_R = √2/R₀` independent of the
    /// operating point — the flatness PI2 is built on. (κ_R below stays
    /// `1/(2p₀) = κ_S/(2p₀')`, reproducing the diagonal PIE margin.)
    fn kappa_s(&self) -> f64 {
        1.0 / self.p0_prime
    }

    /// s_S = p₀′/(2R₀).
    fn s_s(&self) -> f64 {
        self.p0_prime / (2.0 * self.r0)
    }

    /// s_R = √2·p₀′/R₀.
    fn s_r(&self) -> f64 {
        std::f64::consts::SQRT_2 * self.p0_prime / self.r0
    }

    /// Evaluate the open-loop transfer function at `s = jω`.
    pub fn eval(&self, w: f64) -> Complex {
        let s = Complex::jw(w);
        let delay = (s * -self.r0).exp(); // e^{−sR₀}
        let pi_queue = (s / self.z_a() + 1.0) * self.kappa_a()
            / (s * (s / self.s_a() + 1.0));
        match self.kind {
            LoopKind::RenoOnP => {
                // κ_R = 1/(2p₀) = 1/(2p₀′²).
                let kappa_r = 1.0 / (2.0 * self.p0_prime * self.p0_prime);
                let denom = s / self.s_r() + (delay + 1.0) / 2.0;
                pi_queue * delay * kappa_r / denom
            }
            LoopKind::RenoOnPSquared => {
                let denom = s / self.s_r() + (delay + 1.0) / 2.0;
                pi_queue * delay * self.kappa_s() / denom
            }
            LoopKind::ScalableOnP => {
                let denom = s / self.s_s() + delay;
                pi_queue * delay * self.kappa_s() / denom
            }
        }
    }

    /// Convenience: the Figure 4 PIE loop at drop probability `p` with
    /// auto-tuned gains.
    pub fn pie_auto(p: f64, r0: f64) -> LoopTf {
        LoopTf {
            kind: LoopKind::RenoOnP,
            gains: PiGains::pie().scaled(pie_tune_factor(p)),
            r0,
            p0_prime: p.sqrt(),
        }
    }

    /// Convenience: the Figure 7 PI2 loop at pseudo-probability `p'`.
    pub fn pi2(p_prime: f64, r0: f64) -> LoopTf {
        LoopTf {
            kind: LoopKind::RenoOnPSquared,
            gains: PiGains::pi2(),
            r0,
            p0_prime: p_prime,
        }
    }

    /// Convenience: the Figure 7 scalable-PI loop at `p'`.
    pub fn scal_pi(p_prime: f64, r0: f64) -> LoopTf {
        LoopTf {
            kind: LoopKind::ScalableOnP,
            gains: PiGains::scal_pi(),
            r0,
            p0_prime: p_prime,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrator_dominates_at_low_frequency() {
        // |L| ~ κ/ω as ω→0 for all three loops.
        for kind in [
            LoopKind::RenoOnP,
            LoopKind::RenoOnPSquared,
            LoopKind::ScalableOnP,
        ] {
            let tf = LoopTf {
                kind,
                gains: PiGains::pi2(),
                r0: 0.1,
                p0_prime: 0.1,
            };
            let g1 = tf.eval(1e-4).abs();
            let g2 = tf.eval(2e-4).abs();
            assert!(
                (g1 / g2 - 2.0).abs() < 0.01,
                "{kind:?}: low-freq slope not −20 dB/dec ({g1} vs {g2})"
            );
        }
    }

    #[test]
    fn gain_rolls_off_at_high_frequency() {
        let tf = LoopTf::pi2(0.1, 0.1);
        assert!(tf.eval(1e4).abs() < 1e-2);
    }

    #[test]
    fn squared_loop_gain_is_2p_prime_times_the_p_loop() {
        // κ_S/κ_R = 2p₀′ with identical denominators — the Section 4
        // factor `2Kp₀'` by which squaring scales the effective gain
        // relative to incrementing p directly.
        let p0_prime = 0.05;
        let a = LoopTf {
            kind: LoopKind::RenoOnP,
            gains: PiGains::pie(),
            r0: 0.1,
            p0_prime,
        };
        let b = LoopTf {
            kind: LoopKind::RenoOnPSquared,
            gains: PiGains::pie(),
            r0: 0.1,
            p0_prime,
        };
        for w in [0.01, 0.1, 1.0, 10.0] {
            let ratio = b.eval(w).abs() / a.eval(w).abs();
            assert!(
                (ratio - 2.0 * p0_prime).abs() < 1e-9,
                "ratio {ratio} at ω={w}"
            );
        }
    }

    #[test]
    fn pi2_loop_gain_is_flat_above_the_tcp_pole() {
        // The headline property: above the TCP pole s_R the squared loop's
        // gain κ_S·s_R = √2/R₀ is independent of the operating point, so
        // the loop gain barely moves while p₀′ sweeps a decade-plus.
        // Pick ω above s_R = √2p'/R₀ for the whole p' range (s_R ≤ 14).
        let w = 50.0;
        let g_lo = LoopTf::pi2(0.05, 0.1).eval(w).abs();
        let g_hi = LoopTf::pi2(1.0, 0.1).eval(w).abs();
        let ratio = g_lo / g_hi;
        assert!(
            (0.5..2.0).contains(&ratio),
            "PI2 loop gain varies {ratio:.2}× across p' — should be ≈flat"
        );
        // Contrast: the unsquared Reno loop with the same fixed gains
        // varies as 1/p₀′ over the same sweep.
        let mk = |pp: f64| LoopTf {
            kind: LoopKind::RenoOnP,
            gains: PiGains::pie(),
            r0: 0.1,
            p0_prime: pp,
        };
        let ratio_pie = mk(0.05).eval(w).abs() / mk(1.0).eval(w).abs();
        assert!(
            ratio_pie > 10.0,
            "untuned Reno-on-p loop should vary steeply: {ratio_pie:.1}×"
        );
    }

    #[test]
    fn tune_factor_steps_match_aqm_crate_values() {
        assert_eq!(pie_tune_factor(1e-7), 1.0 / 2048.0);
        assert_eq!(pie_tune_factor(0.005), 1.0 / 8.0);
        assert_eq!(pie_tune_factor(0.5), 1.0);
    }

    #[test]
    fn delay_term_has_unit_magnitude() {
        let tf = LoopTf::pi2(0.1, 0.1);
        // Sanity via linearity: |L(jω)| continuous, finite at moderate ω.
        let g = tf.eval(1.0);
        assert!(g.abs().is_finite());
    }

    #[test]
    fn gains_presets_match_figure_7_caption() {
        let pie = PiGains::pie();
        assert!((pie.alpha - 0.125).abs() < 1e-12);
        assert!((pie.beta - 1.25).abs() < 1e-12);
        let pi2 = PiGains::pi2();
        assert!((pi2.alpha - 0.3125).abs() < 1e-12);
        let sc = PiGains::scal_pi();
        assert!((sc.alpha - 0.625).abs() < 1e-12);
        assert!((sc.beta - 6.25).abs() < 1e-12);
    }
}
