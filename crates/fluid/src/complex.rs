//! Minimal complex arithmetic for frequency-domain evaluation.
//!
//! Only what the Bode analysis needs: arithmetic, `exp` (for the delay
//! term `e^{-sR}`), magnitude and argument. Implemented here rather than
//! pulling in a numerics crate, keeping the workspace dependency-free at
//! runtime.

use core::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number `re + i·im` over `f64`.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Construct from rectangular parts.
    pub const fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// A purely real value.
    pub const fn real(re: f64) -> Complex {
        Complex { re, im: 0.0 }
    }

    /// A purely imaginary value `i·w` (the Fourier axis point `s = jω`).
    pub const fn jw(w: f64) -> Complex {
        Complex { re: 0.0, im: w }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Principal argument in radians, in `(−π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Complex {
        let r = self.re.exp();
        Complex::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Reciprocal `1/z`.
    pub fn recip(self) -> Complex {
        let d = self.re * self.re + self.im * self.im;
        Complex::new(self.re / d, -self.im / d)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex {
    type Output = Complex;
    fn add(self, rhs: f64) -> Complex {
        Complex::new(self.re + rhs, self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Complex {
        Complex::real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert!(close(z + Complex::ZERO, z));
        assert!(close(z * Complex::ONE, z));
        assert!(close(z * z.recip(), Complex::ONE));
        assert!(close(z / z, Complex::ONE));
        assert!(close(-(-z), z));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex::I * Complex::I, Complex::real(-1.0)));
    }

    #[test]
    fn abs_and_arg() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < 1e-12);
        assert!((Complex::jw(1.0).arg() - PI / 2.0).abs() < 1e-12);
        assert!((Complex::real(-1.0).arg() - PI).abs() < 1e-12);
    }

    #[test]
    fn exp_euler() {
        // e^{iπ} = −1.
        let z = Complex::jw(PI).exp();
        assert!(close(z, Complex::real(-1.0)));
        // e^{−jωR} has unit magnitude for any ω, R.
        for w in [0.1, 1.0, 100.0] {
            let d = (Complex::jw(-w * 0.1)).exp();
            assert!((d.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn division_matches_multiplication() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 3.0);
        assert!(close(a / b * b, a));
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex::new(2.0, 5.0);
        assert!(close(z * z.conj(), Complex::real(z.abs() * z.abs())));
        assert_eq!(z.conj().arg(), -z.arg());
    }

    #[test]
    fn scalar_ops() {
        let z = Complex::new(1.0, 1.0);
        assert!(close(z * 2.0, Complex::new(2.0, 2.0)));
        assert!(close(z / 2.0, Complex::new(0.5, 0.5)));
        assert!(close(z + 1.0, Complex::new(2.0, 1.0)));
    }
}
