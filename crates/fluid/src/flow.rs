//! Flow-level (rate-based) execution engine: max-min-fair bottleneck
//! sharing with fluid window dynamics, no per-packet events.
//!
//! Where [`crate::ode::FluidSim`] integrates the delay-ODE for a single
//! homogeneous flow population as a *cross-check*, this module is an
//! *execution backend*: it carries an arbitrary mix of flow classes
//! (Reno/Scalable, per-class RTT, optional application rate caps, staggered
//! start/stop) over one bottleneck. Cost per integration step is
//! O(classes · log classes) regardless of how many flows each class
//! represents, so a 1M-flow sweep costs the same as a 10-flow one. The
//! only "events" are rate reallocations — recomputations of the max-min
//! share whenever the set of binding constraints changes — and controller
//! ticks; there are no per-packet events at all.
//!
//! The same window laws as the ODE integrator apply (undelayed form, so
//! the equilibrium operating points of eqs. (19)/(23) are preserved while
//! staying O(1) memory per class):
//!
//! ```text
//! Reno:      dW/dt = 1/R − ½·W²/R · s        Scalable: dW/dt = 1/R − ½·W/R · s
//! Queue:     dq/dt = Σᵢ Nᵢ·min(Wᵢ/Rᵢ, capᵢ) − C
//! ```
//!
//! with `s` the applied signal: `p'²` for classic flows under a squared
//! encoder, `min(k·p', 1)` for scalable flows under the same (the DualPI2
//! coupling), `p'` under direct encoders.

use crate::ode::{FluidControllerKind, FluidTcpKind};
use crate::tf::{pie_tune_factor, PiGains};

/// Max-min-fair (water-filling) allocation of `capacity` across flows
/// with the given `demands`.
///
/// Properties (certified by the vendored proptest suite):
/// * the allocation sums to `min(capacity, Σ demands)`;
/// * no flow is allocated more than its demand;
/// * the result is invariant to permutation of the demand vector
///   (equal demands always receive equal shares);
/// * adding a flow never increases any existing flow's share.
///
/// Negative or non-finite demands are treated as zero. Runs in
/// O(n log n) on a deterministic sort (ties broken by index).
pub fn max_min_allocation(capacity: f64, demands: &[f64]) -> Vec<f64> {
    let weighted: Vec<(f64, f64)> = demands
        .iter()
        .map(|&d| (if d.is_finite() && d > 0.0 { d } else { 0.0 }, 1.0))
        .collect();
    max_min_weighted(capacity, &weighted)
}

/// Weighted water-filling: entry `i` stands for `count_i` identical flows
/// each demanding `demand_i`; returns the *per-flow* rate of each entry.
///
/// This is the allocator the flow-level engine runs every step — classes
/// aggregate millions of flows into one entry, so allocation cost is
/// independent of population size.
pub fn max_min_weighted(capacity: f64, classes: &[(f64, f64)]) -> Vec<f64> {
    let n = classes.len();
    let mut alloc = vec![0.0; n];
    if n == 0 || !(capacity > 0.0) {
        return alloc;
    }
    // Sort indices by per-flow demand ascending, index as tie-break so the
    // fill order (and thus float rounding) is reproducible.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        classes[a]
            .0
            .total_cmp(&classes[b].0)
            .then(a.cmp(&b))
    });
    let mut remaining_cap = capacity;
    let mut remaining_flows: f64 = classes.iter().map(|&(d, c)| if d > 0.0 && c > 0.0 { c } else { 0.0 }).sum();
    for (pos, &i) in order.iter().enumerate() {
        let (demand, count) = classes[i];
        if !(demand > 0.0) || !(count > 0.0) {
            continue;
        }
        if remaining_flows <= 0.0 || remaining_cap <= 0.0 {
            break;
        }
        let fair = remaining_cap / remaining_flows;
        if demand <= fair {
            alloc[i] = demand;
            remaining_cap -= demand * count;
            remaining_flows -= count;
        } else {
            // Every remaining entry demands more than the fair share:
            // split the rest equally per flow.
            for &j in &order[pos..] {
                let (dj, cj) = classes[j];
                if dj > 0.0 && cj > 0.0 {
                    alloc[j] = fair;
                }
            }
            break;
        }
    }
    alloc
}

/// One class of identical flows in the flow-level engine.
#[derive(Clone, Debug)]
pub struct FlowClass {
    /// How many flows this class aggregates (fractional allowed).
    pub count: f64,
    /// Window law.
    pub tcp: FluidTcpKind,
    /// Two-way propagation delay in seconds (RTT excluding queue).
    pub base_rtt: f64,
    /// Optional per-flow application rate cap in packets per second.
    pub rate_cap_pps: Option<f64>,
    /// Class becomes active at this time (seconds).
    pub start: f64,
    /// Class stops at this time if set (seconds).
    pub stop: Option<f64>,
}

impl FlowClass {
    /// An always-on, unconstrained class.
    pub fn new(count: f64, tcp: FluidTcpKind, base_rtt: f64) -> Self {
        FlowClass {
            count,
            tcp,
            base_rtt,
            rate_cap_pps: None,
            start: 0.0,
            stop: None,
        }
    }

    fn active(&self, t: f64) -> bool {
        t >= self.start && self.stop.map_or(true, |s| t < s) && self.count > 0.0
    }
}

/// Flow-level engine configuration.
#[derive(Clone, Debug)]
pub struct FlowLevelConfig {
    /// Bottleneck capacity in packets per second.
    pub capacity_pps: f64,
    /// The flow classes sharing the bottleneck.
    pub classes: Vec<FlowClass>,
    /// Signal encoding of the AQM being modeled.
    pub encoder: FluidControllerKind,
    /// PI gains.
    pub gains: PiGains,
    /// Delay target τ₀ in seconds.
    pub target: f64,
    /// Coupling factor k: scalable flows under a squared encoder see
    /// `min(k·p', 1)` (DualPI2's coupled marking).
    pub coupling: f64,
    /// Integration step in seconds.
    pub dt: f64,
}

impl Default for FlowLevelConfig {
    fn default() -> Self {
        FlowLevelConfig {
            capacity_pps: 10_000_000.0 / 8.0 / 1500.0,
            classes: vec![FlowClass::new(5.0, FluidTcpKind::Reno, 0.1)],
            encoder: FluidControllerKind::Squared,
            gains: PiGains::pi2(),
            target: 0.020,
            coupling: 2.0,
            dt: 0.001,
        }
    }
}

/// One sample of the flow-level engine.
#[derive(Clone, Copy, Debug)]
pub struct FlowLevelSample {
    /// Time in seconds.
    pub t: f64,
    /// Queue delay τ = q/C in seconds.
    pub qdelay: f64,
    /// The controller's linear variable p'.
    pub p_prime: f64,
    /// The traffic-weighted applied signal (the fluid analogue of the
    /// packet side's marked+dropped over sent).
    pub signal: f64,
    /// Link utilization in [0, 1] this step.
    pub util: f64,
    /// Aggregate offered arrival rate in packets per second.
    pub arrival_pps: f64,
}

/// Complete dynamic state of a [`FlowLevelSim`], for checkpointing.
///
/// Pure data so this crate stays dependency-free; the simulator's
/// checkpoint writer serializes it field by field.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowLevelState {
    /// Time in seconds.
    pub t: f64,
    /// Integration steps taken.
    pub steps: u64,
    /// Queue backlog in packets.
    pub q: f64,
    /// Controller variable p'.
    pub p_prime: f64,
    /// Queue delay at the previous controller tick.
    pub prev_qdelay: f64,
    /// Per-class window in packets.
    pub w: Vec<f64>,
    /// Rate reallocation events so far.
    pub alloc_events: u64,
}

/// The flow-level engine.
///
/// ```
/// use pi2_fluid::{FlowClass, FlowLevelConfig, FlowLevelSim, FluidTcpKind};
/// let cfg = FlowLevelConfig {
///     classes: vec![FlowClass::new(100_000.0, FluidTcpKind::Reno, 0.1)],
///     capacity_pps: 1.0e9 / 8.0 / 1500.0,
///     ..FlowLevelConfig::default()
/// };
/// let samples = FlowLevelSim::new(cfg).run(60.0, 0.1);
/// assert!(samples.last().unwrap().qdelay.is_finite());
/// ```
pub struct FlowLevelSim {
    cfg: FlowLevelConfig,
    w: Vec<f64>,
    q: f64,
    p_prime: f64,
    prev_qdelay: f64,
    t: f64,
    steps: u64,
    ctrl_every: u64,
    alloc_events: u64,
    /// Which classes were demand-bound (vs fair-share-bound) last step;
    /// a change is one "rate reallocation event".
    binding: Vec<u8>,
    /// Per-flow rate time-integral per class since `begin_measurement`.
    rate_integral: Vec<f64>,
    meas_from: Option<f64>,
}

impl FlowLevelSim {
    /// Create the engine at W = 1, q = 0, p' = 0 for every class.
    pub fn new(cfg: FlowLevelConfig) -> Self {
        assert!(cfg.dt > 0.0 && cfg.capacity_pps > 0.0);
        assert!(!cfg.classes.is_empty(), "need at least one flow class");
        for cl in &cfg.classes {
            assert!(cl.base_rtt > 0.0, "class base_rtt must be positive");
        }
        let ctrl_every = (cfg.gains.t_update / cfg.dt).round().max(1.0) as u64;
        let n = cfg.classes.len();
        FlowLevelSim {
            w: vec![1.0; n],
            q: 0.0,
            p_prime: 0.0,
            prev_qdelay: 0.0,
            t: 0.0,
            steps: 0,
            ctrl_every,
            alloc_events: 0,
            binding: vec![0; n],
            rate_integral: vec![0.0; n],
            meas_from: None,
            cfg,
        }
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &FlowLevelConfig {
        &self.cfg
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.t
    }

    /// Rate reallocation events so far (binding-set changes of the
    /// max-min allocation — the flow-level analogue of enqueue events).
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }

    /// The applied signal for one class at the current p'.
    fn class_signal(&self, tcp: FluidTcpKind) -> f64 {
        match (self.cfg.encoder, tcp) {
            (FluidControllerKind::Squared, FluidTcpKind::Reno) => self.p_prime * self.p_prime,
            (FluidControllerKind::Squared, FluidTcpKind::Scalable) => {
                (self.cfg.coupling * self.p_prime).min(1.0)
            }
            _ => self.p_prime,
        }
    }

    /// The classic (drop/mark probability) signal at the current p'.
    pub fn classic_signal(&self) -> f64 {
        match self.cfg.encoder {
            FluidControllerKind::Squared => self.p_prime * self.p_prime,
            _ => self.p_prime,
        }
    }

    /// Start accumulating per-class mean rates from the current time.
    pub fn begin_measurement(&mut self) {
        self.rate_integral.iter_mut().for_each(|r| *r = 0.0);
        self.meas_from = Some(self.t);
    }

    /// Mean per-flow rate of each class (pps) since `begin_measurement`.
    pub fn mean_class_rates_pps(&self) -> Vec<f64> {
        let span = self.meas_from.map_or(0.0, |from| self.t - from);
        if span <= 0.0 {
            return vec![0.0; self.cfg.classes.len()];
        }
        self.rate_integral.iter().map(|&r| r / span).collect()
    }

    /// Per-flow max-min allocation (pps) of each class right now.
    pub fn class_rates_pps(&self) -> Vec<f64> {
        let qdelay = self.q / self.cfg.capacity_pps;
        let demands: Vec<(f64, f64)> = self
            .cfg
            .classes
            .iter()
            .enumerate()
            .map(|(i, cl)| {
                if cl.active(self.t) {
                    let r = cl.base_rtt + qdelay;
                    let mut d = self.w[i] / r;
                    if let Some(cap) = cl.rate_cap_pps {
                        d = d.min(cap);
                    }
                    (d, cl.count)
                } else {
                    (0.0, 0.0)
                }
            })
            .collect();
        max_min_weighted(self.cfg.capacity_pps, &demands)
    }

    /// Integrate one step; returns the sample after the step.
    pub fn step(&mut self) -> FlowLevelSample {
        let c = self.cfg.capacity_pps;
        let qdelay = self.q / c;

        // Controller tick, identical to the delay-ODE integrator.
        if self.steps % self.ctrl_every == 0 {
            let err = qdelay - self.cfg.target;
            let growth = qdelay - self.prev_qdelay;
            let mut delta = self.cfg.gains.alpha * err + self.cfg.gains.beta * growth;
            if self.cfg.encoder == FluidControllerKind::TunedDirect {
                delta *= pie_tune_factor(self.p_prime);
            }
            self.p_prime = (self.p_prime + delta).clamp(0.0, 1.0);
            self.prev_qdelay = qdelay;
        }

        // Offered demand per class, then the max-min shares.
        let n = self.cfg.classes.len();
        let mut demands = vec![(0.0, 0.0); n];
        let mut arrival = 0.0;
        for (i, cl) in self.cfg.classes.iter().enumerate() {
            if !cl.active(self.t) {
                // Restart fresh when (re)activated.
                self.w[i] = 1.0;
                continue;
            }
            let r = cl.base_rtt + qdelay;
            let mut d = self.w[i] / r;
            if let Some(cap) = cl.rate_cap_pps {
                d = d.min(cap);
            }
            demands[i] = (d, cl.count);
            arrival += d * cl.count;
        }
        let shares = max_min_weighted(c, &demands);

        // A class is demand-bound when its share equals its demand;
        // count binding-set flips as reallocation events.
        let mut flipped = false;
        for i in 0..n {
            let bound = (demands[i].0 > 0.0 && shares[i] >= demands[i].0 * (1.0 - 1e-12)) as u8;
            if bound != self.binding[i] {
                flipped = true;
                self.binding[i] = bound;
            }
        }
        if flipped {
            self.alloc_events += 1;
        }

        if self.meas_from.is_some() {
            for i in 0..n {
                self.rate_integral[i] += shares[i] * self.cfg.dt;
            }
        }

        // Window dynamics (undelayed fluid laws) and queue integration.
        // The sample's `signal` is the traffic-weighted applied signal —
        // the fluid analogue of the packet side's (marked + dropped) /
        // sent, which weights each class by its share of the arrivals.
        let mut sig_rate = 0.0;
        let mut rate_sum = 0.0;
        for (i, cl) in self.cfg.classes.iter().enumerate() {
            if !cl.active(self.t) {
                continue;
            }
            let r = cl.base_rtt + qdelay;
            let s = self.class_signal(cl.tcp);
            let w = self.w[i];
            let mut rate = w / r;
            if let Some(cap) = cl.rate_cap_pps {
                rate = rate.min(cap);
            }
            sig_rate += cl.count * rate * s;
            rate_sum += cl.count * rate;
            let decrease = match cl.tcp {
                FluidTcpKind::Reno => 0.5 * w * w / r * s,
                FluidTcpKind::Scalable => 0.5 * w / r * s,
            };
            let mut next = (w + (1.0 / r - decrease) * self.cfg.dt).max(1e-3);
            if let Some(cap) = cl.rate_cap_pps {
                // App-limited: the window never builds past the cap.
                next = next.min(cap * r);
            }
            self.w[i] = next;
        }

        let served = if self.q > 0.0 { c } else { arrival.min(c) };
        self.q = (self.q + (arrival - c) * self.cfg.dt).max(0.0);
        self.t += self.cfg.dt;
        self.steps += 1;

        FlowLevelSample {
            t: self.t,
            qdelay: self.q / c,
            p_prime: self.p_prime,
            signal: if rate_sum > 0.0 {
                sig_rate / rate_sum
            } else {
                self.classic_signal()
            },
            util: (served / c).min(1.0),
            arrival_pps: arrival,
        }
    }

    /// Run until `t_end`, sampling every `sample_every` seconds.
    /// Callable repeatedly: sampling resumes from the current time.
    pub fn run(&mut self, t_end: f64, sample_every: f64) -> Vec<FlowLevelSample> {
        let mut out = Vec::new();
        let mut next_sample = self.t;
        while self.t < t_end {
            let s = self.step();
            if s.t >= next_sample {
                out.push(s);
                next_sample += sample_every;
            }
        }
        out
    }

    /// Advance the window dynamics only, driven by an *external* AQM.
    ///
    /// This is the hybrid-mode coupling: the packet-level simulator owns
    /// the queue and the controller; each controller tick it hands the
    /// aggregate its measured `classic_signal` (the AQM's linear variable
    /// already encoded to a probability), the scalable-side probability,
    /// and the current queue delay. Returns the aggregate offered rate in
    /// packets per second after advancing by `dt` seconds.
    pub fn tick_external(
        &mut self,
        dt: f64,
        classic_signal: f64,
        scalable_signal: f64,
        qdelay: f64,
    ) -> f64 {
        let sub = self.cfg.dt.min(dt.max(1e-9));
        let steps = (dt / sub).round().max(1.0) as u64;
        let h = dt / steps as f64;
        for _ in 0..steps {
            for (i, cl) in self.cfg.classes.iter().enumerate() {
                if !cl.active(self.t) {
                    self.w[i] = 1.0;
                    continue;
                }
                let r = cl.base_rtt + qdelay;
                let s = match cl.tcp {
                    FluidTcpKind::Reno => classic_signal,
                    FluidTcpKind::Scalable => scalable_signal,
                };
                let w = self.w[i];
                let decrease = match cl.tcp {
                    FluidTcpKind::Reno => 0.5 * w * w / r * s,
                    FluidTcpKind::Scalable => 0.5 * w / r * s,
                };
                let mut next = (w + (1.0 / r - decrease) * h).max(1e-3);
                if let Some(cap) = cl.rate_cap_pps {
                    next = next.min(cap * r);
                }
                self.w[i] = next;
            }
            self.t += h;
            self.steps += 1;
        }
        let mut offered = 0.0;
        for (i, cl) in self.cfg.classes.iter().enumerate() {
            if cl.active(self.t) {
                let r = cl.base_rtt + qdelay;
                let mut d = self.w[i] / r;
                if let Some(cap) = cl.rate_cap_pps {
                    d = d.min(cap);
                }
                offered += d * cl.count;
            }
        }
        offered
    }

    /// Export the complete dynamic state for checkpointing.
    pub fn state(&self) -> FlowLevelState {
        FlowLevelState {
            t: self.t,
            steps: self.steps,
            q: self.q,
            p_prime: self.p_prime,
            prev_qdelay: self.prev_qdelay,
            w: self.w.clone(),
            alloc_events: self.alloc_events,
        }
    }

    /// Restore state exported by [`Self::state`]. The class count must
    /// match the configuration this engine was built with.
    pub fn restore_state(&mut self, s: &FlowLevelState) {
        assert_eq!(
            s.w.len(),
            self.cfg.classes.len(),
            "checkpoint class count mismatch"
        );
        self.t = s.t;
        self.steps = s.steps;
        self.q = s.q;
        self.p_prime = s.p_prime;
        self.prev_qdelay = s.prev_qdelay;
        self.w = s.w.clone();
        self.alloc_events = s.alloc_events;
        self.binding.iter_mut().for_each(|b| *b = 0);
        self.rate_integral.iter_mut().for_each(|r| *r = 0.0);
        self.meas_from = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tail_mean(samples: &[FlowLevelSample], frac: f64, f: impl Fn(&FlowLevelSample) -> f64) -> f64 {
        let start = (samples.len() as f64 * (1.0 - frac)) as usize;
        let late = &samples[start..];
        late.iter().map(&f).sum::<f64>() / late.len() as f64
    }

    #[test]
    fn allocator_unconstrained_split_is_equal() {
        let a = max_min_allocation(90.0, &[1e9, 1e9, 1e9]);
        for x in &a {
            assert!((x - 30.0).abs() < 1e-9, "equal split, got {a:?}");
        }
    }

    #[test]
    fn allocator_small_demand_is_met_and_rest_split() {
        let a = max_min_allocation(90.0, &[10.0, 1e9, 1e9]);
        assert!((a[0] - 10.0).abs() < 1e-9);
        assert!((a[1] - 40.0).abs() < 1e-9);
        assert!((a[2] - 40.0).abs() < 1e-9);
    }

    #[test]
    fn allocator_underload_gives_everyone_their_demand() {
        let a = max_min_allocation(100.0, &[10.0, 20.0, 30.0]);
        assert_eq!(a, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn allocator_handles_zero_and_negative_demands() {
        let a = max_min_allocation(60.0, &[0.0, -5.0, f64::NAN, 100.0]);
        assert_eq!(&a[..3], &[0.0, 0.0, 0.0]);
        assert!((a[3] - 60.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_allocator_matches_expanded_form() {
        // 3 flows at demand 10 + 2 flows at demand 50, capacity 70:
        // the three small ones get 10 each, the two big ones split 40.
        let per_class = max_min_weighted(70.0, &[(10.0, 3.0), (50.0, 2.0)]);
        assert!((per_class[0] - 10.0).abs() < 1e-9);
        assert!((per_class[1] - 20.0).abs() < 1e-9);
        let expanded = max_min_allocation(70.0, &[10.0, 10.0, 10.0, 50.0, 50.0]);
        assert!((expanded[0] - 10.0).abs() < 1e-9);
        assert!((expanded[4] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn flow_level_pi2_reno_settles_on_target() {
        let samples = FlowLevelSim::new(FlowLevelConfig::default()).run(120.0, 0.01);
        let mean = tail_mean(&samples, 0.25, |s| s.qdelay);
        assert!(
            (mean - 0.020).abs() < 0.004,
            "flow-level PI2 qdelay settles at {:.1} ms",
            mean * 1000.0
        );
        let util = tail_mean(&samples, 0.25, |s| s.util);
        assert!(util > 0.95, "bottleneck should be saturated, util {util:.3}");
    }

    #[test]
    fn flow_level_matches_delay_ode_equilibrium() {
        // The undelayed flow-level model and the delay-ODE integrator
        // share the eq. (19) operating point: same signal, same qdelay.
        let flow = FlowLevelSim::new(FlowLevelConfig::default()).run(120.0, 0.01);
        let ode = crate::ode::FluidSim::new(crate::ode::FluidConfig::default()).run(120.0, 0.01);
        let f_q = tail_mean(&flow, 0.25, |s| s.qdelay);
        let o_start = (ode.len() as f64 * 0.75) as usize;
        let o_q = ode[o_start..].iter().map(|s| s.qdelay).sum::<f64>() / (ode.len() - o_start) as f64;
        assert!(
            (f_q - o_q).abs() < 0.004,
            "flow-level qdelay {f_q:.4} vs ODE {o_q:.4}"
        );
    }

    #[test]
    fn scalable_class_sees_coupled_signal() {
        let cfg = FlowLevelConfig {
            classes: vec![FlowClass::new(5.0, FluidTcpKind::Scalable, 0.1)],
            ..FlowLevelConfig::default()
        };
        let mut sim = FlowLevelSim::new(cfg);
        let samples = sim.run(120.0, 0.01);
        let mean = tail_mean(&samples, 0.25, |s| s.qdelay);
        assert!(
            (mean - 0.020).abs() < 0.006,
            "scalable class settles near target, got {:.1} ms",
            mean * 1000.0
        );
        // Scalable equilibrium: W₀·(k·p₀') = 2 (eq. 23 with coupled signal).
        let pp = tail_mean(&samples, 0.25, |s| s.p_prime);
        let w = sim.state().w[0];
        let product = w * (2.0 * pp).min(1.0);
        assert!(
            (product - 2.0).abs() < 0.5,
            "W·k·p' = {product:.2}, expected ≈ 2"
        );
    }

    #[test]
    fn capped_class_never_exceeds_cap_and_rest_absorbs() {
        let cfg = FlowLevelConfig {
            classes: vec![
                FlowClass {
                    rate_cap_pps: Some(50.0),
                    ..FlowClass::new(2.0, FluidTcpKind::Reno, 0.1)
                },
                FlowClass::new(5.0, FluidTcpKind::Reno, 0.1),
            ],
            ..FlowLevelConfig::default()
        };
        let mut sim = FlowLevelSim::new(cfg);
        sim.run(40.0, 0.5);
        sim.begin_measurement();
        sim.run(80.0, 0.5);
        let rates = sim.mean_class_rates_pps();
        assert!(rates[0] <= 50.0 + 1e-6, "capped class at {:.1} pps", rates[0]);
        assert!(rates[1] > rates[0], "uncapped class should get more");
    }

    #[test]
    fn hundred_thousand_flows_cost_the_same_as_ten() {
        // The whole point: population size must not change step cost.
        let big = FlowLevelConfig {
            capacity_pps: 10.0e9 / 8.0 / 1500.0,
            classes: vec![FlowClass::new(100_000.0, FluidTcpKind::Reno, 0.05)],
            ..FlowLevelConfig::default()
        };
        let samples = FlowLevelSim::new(big).run(60.0, 0.5);
        let last = samples.last().unwrap();
        assert!(last.qdelay.is_finite() && last.p_prime.is_finite());
    }

    #[test]
    fn state_round_trip_is_bit_identical() {
        let mut a = FlowLevelSim::new(FlowLevelConfig::default());
        a.run(30.0, 1.0);
        let snap = a.state();
        let mut b = FlowLevelSim::new(FlowLevelConfig::default());
        b.restore_state(&snap);
        for _ in 0..5_000 {
            let sa = a.step();
            let sb = b.step();
            assert_eq!(sa.qdelay.to_bits(), sb.qdelay.to_bits());
            assert_eq!(sa.p_prime.to_bits(), sb.p_prime.to_bits());
        }
    }

    #[test]
    fn tick_external_responds_to_signal() {
        let cfg = FlowLevelConfig {
            classes: vec![FlowClass::new(10.0, FluidTcpKind::Reno, 0.05)],
            ..FlowLevelConfig::default()
        };
        let mut sim = FlowLevelSim::new(cfg);
        // No signal: the aggregate ramps up.
        let mut rate = 0.0;
        for _ in 0..200 {
            rate = sim.tick_external(0.032, 0.0, 0.0, 0.0);
        }
        let unthrottled = rate;
        // Heavy signal: it backs off.
        for _ in 0..200 {
            rate = sim.tick_external(0.032, 0.5, 1.0, 0.0);
        }
        assert!(
            rate < unthrottled / 2.0,
            "signal should throttle the aggregate: {rate:.1} vs {unthrottled:.1}"
        );
    }
}
