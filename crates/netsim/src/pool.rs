//! Slab pools for event payloads.
//!
//! The event queue used to carry [`Packet`](crate::packet::Packet) and
//! [`Ack`](crate::sim::Ack) payloads *inside* the `Event` enum, which
//! inflated every queue entry to the size of the largest variant (an `Ack`
//! with three SACK blocks is ~112 bytes). Every push, pop and slot-sort in
//! the timing wheel then moved that much memory per event — several times
//! the cost of the AQM decision itself.
//!
//! [`Pool`] fixes this by parking the payload in a slab and threading a
//! 4-byte handle through the event queue instead. The hot path becomes
//! index recycling:
//!
//! * `insert` pops a free slot (or extends the slab while warming up),
//! * `take` moves the payload out and pushes the slot back on the free
//!   list,
//!
//! so after warm-up the enqueue→dequeue→deliver cycle performs **zero**
//! heap allocations — the property the bench harness asserts with its
//! counting allocator.
//!
//! ## Determinism
//!
//! Free slots are recycled LIFO, so slab layout is a pure function of the
//! insert/take sequence, and handles never feed back into simulation
//! logic (they are resolved before any handler runs). Pooled runs are
//! therefore bit-identical to the old by-value representation.

use pi2_simcore::{CkptError, CkptReader, CkptWriter};

/// Handle into a [`Pool`]. Only meaningful to the pool that issued it.
pub type Handle = u32;

/// A slab allocator with LIFO free-slot recycling and occupancy
/// accounting.
#[derive(Debug, Default)]
pub struct Pool<T> {
    slots: Vec<Option<T>>,
    free: Vec<Handle>,
    /// Peak number of simultaneously live payloads.
    high_water: usize,
}

impl<T> Pool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        Pool {
            slots: Vec::new(),
            free: Vec::new(),
            high_water: 0,
        }
    }

    /// Pre-size for `n` simultaneously live payloads so the warm-up phase
    /// itself stays off the allocator.
    pub fn reserve(&mut self, n: usize) {
        self.slots.reserve(n.saturating_sub(self.slots.len()));
        self.free.reserve(n.saturating_sub(self.free.len()));
    }

    /// Park `val` and return its handle.
    #[inline]
    pub fn insert(&mut self, val: T) -> Handle {
        match self.free.pop() {
            Some(h) => {
                debug_assert!(self.slots[h as usize].is_none(), "free list points at a live slot");
                self.slots[h as usize] = Some(val);
                h
            }
            None => {
                // Handles are u32 by design (they ride inside `Event`);
                // a slab past 2^32 slots would silently alias handle 0
                // under an unchecked `as` cast, so fail loudly instead.
                let h = Handle::try_from(self.slots.len())
                    .expect("pool exceeded the u32 handle space");
                self.slots.push(Some(val));
                let live = self.slots.len() - self.free.len();
                if live > self.high_water {
                    self.high_water = live;
                }
                h
            }
        }
    }

    /// Move the payload out of `h` and recycle the slot.
    ///
    /// Panics if `h` is not a live handle of this pool — that would mean
    /// an event was duplicated or resolved twice, which the simulator
    /// never does.
    #[inline]
    pub fn take(&mut self, h: Handle) -> T {
        let val = self.slots[h as usize]
            .take()
            .expect("pool handle resolved twice (or never issued)");
        self.free.push(h);
        val
    }

    /// Borrow the payload behind a live handle.
    pub fn get(&self, h: Handle) -> &T {
        self.slots[h as usize]
            .as_ref()
            .expect("pool handle is not live")
    }

    /// Number of currently live payloads.
    pub fn in_use(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Peak number of simultaneously live payloads since construction.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total slots ever created (live + recycled).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Serialize the pool slot-positionally: every slot in index order
    /// (occupancy flag + payload via `f`), then the free list, then the
    /// high-water mark. The positional layout is what keeps every handle
    /// already threaded through the event queue valid after a restore.
    pub fn save_ckpt<F>(&self, w: &mut CkptWriter, mut f: F)
    where
        F: FnMut(&mut CkptWriter, &T),
    {
        w.usize(self.slots.len());
        for slot in &self.slots {
            w.bool(slot.is_some());
            if let Some(val) = slot {
                f(w, val);
            }
        }
        w.usize(self.free.len());
        for &h in &self.free {
            w.u32(h);
        }
        w.usize(self.high_water);
    }

    /// Rebuild a pool from [`Pool::save_ckpt`] bytes, decoding payloads
    /// with `f`. Validates that the free list exactly covers the vacant
    /// slots (in order), so a corrupt stream cannot produce a pool whose
    /// recycling diverges from the saved run.
    pub fn restore_ckpt<F>(r: &mut CkptReader, mut f: F) -> Result<Pool<T>, CkptError>
    where
        F: FnMut(&mut CkptReader) -> Result<T, CkptError>,
    {
        let n = r.usize()?;
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            if r.bool()? {
                slots.push(Some(f(r)?));
            } else {
                slots.push(None);
            }
        }
        let free_n = r.usize()?;
        let mut free = Vec::with_capacity(free_n);
        for _ in 0..free_n {
            let h = r.u32()?;
            match slots.get(h as usize) {
                Some(None) => free.push(h),
                _ => return Err(CkptError::Corrupt("pool free list points at a live slot")),
            }
        }
        let vacant = slots.iter().filter(|s| s.is_none()).count();
        if vacant != free.len() {
            return Err(CkptError::Corrupt("pool free list does not cover vacant slots"));
        }
        let high_water = r.usize()?;
        if high_water > n {
            return Err(CkptError::Corrupt("pool high-water exceeds slot count"));
        }
        Ok(Pool {
            slots,
            free,
            high_water,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_roundtrips() {
        let mut p = Pool::new();
        let a = p.insert("a");
        let b = p.insert("b");
        assert_eq!(p.in_use(), 2);
        assert_eq!(p.take(a), "a");
        assert_eq!(p.take(b), "b");
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn slots_recycle_lifo() {
        let mut p = Pool::new();
        let a = p.insert(1);
        let b = p.insert(2);
        p.take(a);
        p.take(b);
        // LIFO: the most recently freed slot (b's) is reused first.
        assert_eq!(p.insert(3), b);
        assert_eq!(p.insert(4), a);
        // No slab growth happened on reuse.
        assert_eq!(p.capacity(), 2);
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut p = Pool::new();
        let h: Vec<_> = (0..5).map(|i| p.insert(i)).collect();
        assert_eq!(p.high_water(), 5);
        for x in h {
            p.take(x);
        }
        let _ = p.insert(9);
        assert_eq!(p.high_water(), 5, "recycling must not move the peak");
    }

    #[test]
    fn get_borrows_without_freeing() {
        let mut p = Pool::new();
        let h = p.insert(42);
        assert_eq!(*p.get(h), 42);
        assert_eq!(p.in_use(), 1);
        assert_eq!(p.take(h), 42);
    }

    #[test]
    #[should_panic(expected = "resolved twice")]
    fn double_take_panics() {
        let mut p = Pool::new();
        let h = p.insert(1);
        p.take(h);
        p.take(h);
    }

    #[test]
    fn ckpt_round_trip_preserves_handles_and_recycling() {
        let mut p = Pool::new();
        let a = p.insert(10u64);
        let b = p.insert(20u64);
        let c = p.insert(30u64);
        p.take(b);
        let mut w = CkptWriter::new();
        p.save_ckpt(&mut w, |w, v| w.u64(*v));
        let bytes = w.into_bytes();
        let mut r = CkptReader::new(&bytes);
        let mut q: Pool<u64> = Pool::restore_ckpt(&mut r, |r| r.u64()).unwrap();
        r.finish().unwrap();
        assert_eq!(*q.get(a), 10);
        assert_eq!(*q.get(c), 30);
        assert_eq!(q.in_use(), 2);
        assert_eq!(q.high_water(), 3);
        // The recycled slot comes back first, exactly as in the original.
        assert_eq!(q.insert(99), b);
        assert_eq!(q.capacity(), p.capacity());
    }

    #[test]
    fn ckpt_rejects_free_list_aliasing_a_live_slot() {
        let mut w = CkptWriter::new();
        // One live slot, but a free list claiming it is vacant.
        w.usize(1);
        w.bool(true);
        w.u64(7);
        w.usize(1);
        w.u32(0);
        w.usize(1);
        let bytes = w.into_bytes();
        let mut r = CkptReader::new(&bytes);
        let res: Result<Pool<u64>, _> = Pool::restore_ckpt(&mut r, |r| r.u64());
        assert!(matches!(res, Err(CkptError::Corrupt(_))));
    }
}
