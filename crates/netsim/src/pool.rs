//! Slab pools for event payloads.
//!
//! The event queue used to carry [`Packet`](crate::packet::Packet) and
//! [`Ack`](crate::sim::Ack) payloads *inside* the `Event` enum, which
//! inflated every queue entry to the size of the largest variant (an `Ack`
//! with three SACK blocks is ~112 bytes). Every push, pop and slot-sort in
//! the timing wheel then moved that much memory per event — several times
//! the cost of the AQM decision itself.
//!
//! [`Pool`] fixes this by parking the payload in a slab and threading a
//! 4-byte handle through the event queue instead. The hot path becomes
//! index recycling:
//!
//! * `insert` pops a free slot (or extends the slab while warming up),
//! * `take` moves the payload out and pushes the slot back on the free
//!   list,
//!
//! so after warm-up the enqueue→dequeue→deliver cycle performs **zero**
//! heap allocations — the property the bench harness asserts with its
//! counting allocator.
//!
//! ## Determinism
//!
//! Free slots are recycled LIFO, so slab layout is a pure function of the
//! insert/take sequence, and handles never feed back into simulation
//! logic (they are resolved before any handler runs). Pooled runs are
//! therefore bit-identical to the old by-value representation.

/// Handle into a [`Pool`]. Only meaningful to the pool that issued it.
pub type Handle = u32;

/// A slab allocator with LIFO free-slot recycling and occupancy
/// accounting.
#[derive(Debug, Default)]
pub struct Pool<T> {
    slots: Vec<Option<T>>,
    free: Vec<Handle>,
    /// Peak number of simultaneously live payloads.
    high_water: usize,
}

impl<T> Pool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        Pool {
            slots: Vec::new(),
            free: Vec::new(),
            high_water: 0,
        }
    }

    /// Pre-size for `n` simultaneously live payloads so the warm-up phase
    /// itself stays off the allocator.
    pub fn reserve(&mut self, n: usize) {
        self.slots.reserve(n.saturating_sub(self.slots.len()));
        self.free.reserve(n.saturating_sub(self.free.len()));
    }

    /// Park `val` and return its handle.
    #[inline]
    pub fn insert(&mut self, val: T) -> Handle {
        match self.free.pop() {
            Some(h) => {
                debug_assert!(self.slots[h as usize].is_none(), "free list points at a live slot");
                self.slots[h as usize] = Some(val);
                h
            }
            None => {
                let h = self.slots.len() as Handle;
                self.slots.push(Some(val));
                let live = self.slots.len() - self.free.len();
                if live > self.high_water {
                    self.high_water = live;
                }
                h
            }
        }
    }

    /// Move the payload out of `h` and recycle the slot.
    ///
    /// Panics if `h` is not a live handle of this pool — that would mean
    /// an event was duplicated or resolved twice, which the simulator
    /// never does.
    #[inline]
    pub fn take(&mut self, h: Handle) -> T {
        let val = self.slots[h as usize]
            .take()
            .expect("pool handle resolved twice (or never issued)");
        self.free.push(h);
        val
    }

    /// Borrow the payload behind a live handle.
    pub fn get(&self, h: Handle) -> &T {
        self.slots[h as usize]
            .as_ref()
            .expect("pool handle is not live")
    }

    /// Number of currently live payloads.
    pub fn in_use(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Peak number of simultaneously live payloads since construction.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total slots ever created (live + recycled).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_roundtrips() {
        let mut p = Pool::new();
        let a = p.insert("a");
        let b = p.insert("b");
        assert_eq!(p.in_use(), 2);
        assert_eq!(p.take(a), "a");
        assert_eq!(p.take(b), "b");
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn slots_recycle_lifo() {
        let mut p = Pool::new();
        let a = p.insert(1);
        let b = p.insert(2);
        p.take(a);
        p.take(b);
        // LIFO: the most recently freed slot (b's) is reused first.
        assert_eq!(p.insert(3), b);
        assert_eq!(p.insert(4), a);
        // No slab growth happened on reuse.
        assert_eq!(p.capacity(), 2);
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut p = Pool::new();
        let h: Vec<_> = (0..5).map(|i| p.insert(i)).collect();
        assert_eq!(p.high_water(), 5);
        for x in h {
            p.take(x);
        }
        let _ = p.insert(9);
        assert_eq!(p.high_water(), 5, "recycling must not move the peak");
    }

    #[test]
    fn get_borrows_without_freeing() {
        let mut p = Pool::new();
        let h = p.insert(42);
        assert_eq!(*p.get(h), 42);
        assert_eq!(p.in_use(), 1);
        assert_eq!(p.take(h), 42);
    }

    #[test]
    #[should_panic(expected = "resolved twice")]
    fn double_take_panics() {
        let mut p = Pool::new();
        let h = p.insert(1);
        p.take(h);
        p.take(h);
    }
}
