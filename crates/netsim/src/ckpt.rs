//! Checkpoint codecs for the substrate's payload types.
//!
//! The simulator's checkpoint format (see [`pi2_simcore::ckpt`]) is a
//! flat, explicitly-ordered field stream; this module holds the encoders
//! and decoders for the two payload types that cross the event queue —
//! [`Packet`] and [`Ack`] — so every component that snapshots in-flight
//! traffic ([`crate::pool::Pool`] slabs, qdisc FIFOs) serializes them
//! byte-identically.

use crate::packet::{Ecn, FlowId, Packet};
use crate::sim::Ack;
use pi2_simcore::{CkptError, CkptReader, CkptWriter};

/// Write `ecn` as a one-byte tag.
pub fn write_ecn(w: &mut CkptWriter, ecn: Ecn) {
    w.u8(match ecn {
        Ecn::NotEct => 0,
        Ecn::Ect0 => 1,
        Ecn::Ect1 => 2,
        Ecn::Ce => 3,
    });
}

/// Read an ECN tag written by [`write_ecn`].
pub fn read_ecn(r: &mut CkptReader) -> Result<Ecn, CkptError> {
    Ok(match r.u8()? {
        0 => Ecn::NotEct,
        1 => Ecn::Ect0,
        2 => Ecn::Ect1,
        3 => Ecn::Ce,
        _ => return Err(CkptError::Corrupt("unknown ECN tag")),
    })
}

/// Write every field of a data packet, in declaration order.
pub fn write_packet(w: &mut CkptWriter, pkt: &Packet) {
    w.u32(pkt.flow.0);
    w.u64(pkt.seq);
    w.usize(pkt.size);
    write_ecn(w, pkt.ecn);
    w.time(pkt.sent_at);
    w.bool(pkt.retransmit);
    w.bool(pkt.path_dup);
}

/// Read a packet written by [`write_packet`].
pub fn read_packet(r: &mut CkptReader) -> Result<Packet, CkptError> {
    Ok(Packet {
        flow: FlowId(r.u32()?),
        seq: r.u64()?,
        size: r.usize()?,
        ecn: read_ecn(r)?,
        sent_at: r.time()?,
        retransmit: r.bool()?,
        path_dup: r.bool()?,
    })
}

/// Write every field of an ACK, in declaration order. Each SACK slot is
/// a presence flag plus the `[start, end)` pair (zeros when absent).
pub fn write_ack(w: &mut CkptWriter, ack: &Ack) {
    w.u32(ack.flow.0);
    w.u64(ack.cum_seq);
    w.bool(ack.ece);
    w.u64(ack.ce_total);
    w.u64(ack.pkts_total);
    w.time(ack.echo_ts);
    w.bool(ack.echo_rtx);
    for slot in &ack.sack {
        w.bool(slot.is_some());
        let (s, e) = slot.unwrap_or((0, 0));
        w.u64(s);
        w.u64(e);
    }
}

/// Read an ACK written by [`write_ack`].
pub fn read_ack(r: &mut CkptReader) -> Result<Ack, CkptError> {
    let flow = FlowId(r.u32()?);
    let cum_seq = r.u64()?;
    let ece = r.bool()?;
    let ce_total = r.u64()?;
    let pkts_total = r.u64()?;
    let echo_ts = r.time()?;
    let echo_rtx = r.bool()?;
    let mut sack = Ack::NO_SACK;
    for slot in &mut sack {
        let present = r.bool()?;
        let s = r.u64()?;
        let e = r.u64()?;
        *slot = present.then_some((s, e));
    }
    Ok(Ack {
        flow,
        cum_seq,
        ece,
        ce_total,
        pkts_total,
        echo_ts,
        echo_rtx,
        sack,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_simcore::Time;

    #[test]
    fn packet_round_trips_every_field() {
        let mut pkt = Packet::data(FlowId(7), 42, 1500, Ecn::Ect1, Time::from_millis(3));
        pkt.retransmit = true;
        pkt.path_dup = true;
        let mut w = CkptWriter::new();
        write_packet(&mut w, &pkt);
        let bytes = w.into_bytes();
        let mut r = CkptReader::new(&bytes);
        let back = read_packet(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.flow, pkt.flow);
        assert_eq!(back.seq, pkt.seq);
        assert_eq!(back.size, pkt.size);
        assert_eq!(back.ecn, pkt.ecn);
        assert_eq!(back.sent_at, pkt.sent_at);
        assert_eq!(back.retransmit, pkt.retransmit);
        assert_eq!(back.path_dup, pkt.path_dup);
    }

    #[test]
    fn ack_round_trips_sack_blocks() {
        let ack = Ack {
            flow: FlowId(2),
            cum_seq: 100,
            ece: true,
            ce_total: 5,
            pkts_total: 90,
            echo_ts: Time::from_millis(17),
            echo_rtx: true,
            sack: [Some((120, 130)), None, Some((140, 145))],
        };
        let mut w = CkptWriter::new();
        write_ack(&mut w, &ack);
        let bytes = w.into_bytes();
        let mut r = CkptReader::new(&bytes);
        let back = read_ack(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.flow, ack.flow);
        assert_eq!(back.cum_seq, ack.cum_seq);
        assert_eq!(back.ece, ack.ece);
        assert_eq!(back.ce_total, ack.ce_total);
        assert_eq!(back.pkts_total, ack.pkts_total);
        assert_eq!(back.echo_ts, ack.echo_ts);
        assert_eq!(back.echo_rtx, ack.echo_rtx);
        assert_eq!(back.sack, ack.sack);
    }

    #[test]
    fn bad_ecn_tag_is_corrupt() {
        let mut w = CkptWriter::new();
        w.u8(9);
        let bytes = w.into_bytes();
        let mut r = CkptReader::new(&bytes);
        assert!(matches!(read_ecn(&mut r), Err(CkptError::Corrupt(_))));
    }
}
