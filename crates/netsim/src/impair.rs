//! Path-level fault injection — the "network weather" layer.
//!
//! The simulator's default path is ideal: packets that survive the
//! bottleneck AQM always arrive, in order, after a fixed propagation
//! delay, and so do ACKs. Real paths lose, reorder and duplicate
//! packets, and the paper's dynamics claims (Section 5: PI2's ×3.5 loop
//! gain recovers from disturbances faster than PIE) only matter if they
//! survive such weather. This module injects it deterministically:
//!
//! * **random loss** — each packet (or ACK) crossing a direction is
//!   dropped with probability `loss`;
//! * **reordering via jitter** — a surviving packet picks up a uniform
//!   extra delay in `[0, jitter]`; jitter larger than the inter-packet
//!   spacing yields genuine reordering at the receiver;
//! * **duplication** — with probability `dup` a second copy of a
//!   surviving packet is injected, with its own jitter draw.
//!
//! Impairments apply *after* the bottleneck (forward direction: between
//! dequeue and delivery; reverse: on the ACK path), so the AQM, the
//! queue, and the audit's enqueue/dequeue conservation are untouched —
//! what changes is only what the endpoints observe.
//!
//! ## Determinism
//!
//! The layer draws from its **own seeded RNG stream**
//! ([`LinkImpairments::seed`]), never from the simulator's root RNG.
//! Two consequences, both load-bearing for the test suite:
//!
//! * the same seed gives bit-identical impaired runs, across any
//!   `PI2_THREADS` setting (each run owns its state);
//! * an all-zero impairment config is *exact identity*: zero-probability
//!   [`pi2_simcore::Rng::chance`] calls consume no variate and the
//!   jitter draw is guarded, so no randomness is consumed at all, no
//!   extra events are scheduled, and the run is bit-identical to one
//!   with no impairment layer attached.

use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Rng};

/// Impairments applied to one direction of a path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ImpairmentConf {
    /// Probability that a packet is silently lost in transit.
    pub loss: f64,
    /// Probability that a surviving packet is delivered twice.
    pub dup: f64,
    /// Maximum extra propagation delay, drawn uniformly from
    /// `[0, jitter]` per surviving packet. Zero means no draw at all.
    pub jitter: Duration,
}

impl ImpairmentConf {
    /// The identity: no loss, no duplication, no jitter.
    pub const OFF: ImpairmentConf = ImpairmentConf {
        loss: 0.0,
        dup: 0.0,
        jitter: Duration::ZERO,
    };

    /// True when this direction is the identity transform.
    pub fn is_off(&self) -> bool {
        self.loss <= 0.0 && self.dup <= 0.0 && self.jitter <= Duration::ZERO
    }
}

impl Default for ImpairmentConf {
    fn default() -> Self {
        ImpairmentConf::OFF
    }
}

/// Full impairment configuration: one [`ImpairmentConf`] per direction
/// plus the layer's independent RNG seed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkImpairments {
    /// Data direction (bottleneck dequeue → receiver).
    pub fwd: ImpairmentConf,
    /// ACK direction (receiver → sender).
    pub rev: ImpairmentConf,
    /// Seed of the layer's own RNG stream. Kept separate from the
    /// simulator's root seed so attaching an (all-zero) impairment layer
    /// cannot shift any other random decision in the run.
    pub seed: u64,
}

impl LinkImpairments {
    /// An identity configuration (both directions off) around `seed`.
    pub fn new(seed: u64) -> Self {
        LinkImpairments {
            fwd: ImpairmentConf::OFF,
            rev: ImpairmentConf::OFF,
            seed,
        }
    }

    /// Builder: set the data-direction impairments.
    pub fn forward(mut self, conf: ImpairmentConf) -> Self {
        self.fwd = conf;
        self
    }

    /// Builder: set the ACK-direction impairments.
    pub fn reverse(mut self, conf: ImpairmentConf) -> Self {
        self.rev = conf;
        self
    }

    /// Builder: the same impairments in both directions.
    pub fn symmetric(self, conf: ImpairmentConf) -> Self {
        self.forward(conf).reverse(conf)
    }

    /// True when both directions are the identity.
    pub fn is_off(&self) -> bool {
        self.fwd.is_off() && self.rev.is_off()
    }
}

/// Per-direction impairment accounting, for reports and the audit's
/// path-conservation cross-check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ImpairStats {
    /// Packets offered to the forward direction (= bottleneck dequeues
    /// while the layer was attached).
    pub fwd_offered: u64,
    /// Forward packets lost in transit.
    pub fwd_lost: u64,
    /// Forward duplicates injected.
    pub fwd_dup: u64,
    /// ACKs offered to the reverse direction.
    pub rev_offered: u64,
    /// ACKs lost in transit.
    pub rev_lost: u64,
    /// ACK duplicates injected.
    pub rev_dup: u64,
}

impl ImpairStats {
    /// Forward packets actually scheduled for delivery (originals that
    /// survived, duplicates excluded).
    pub fn fwd_passed(&self) -> u64 {
        self.fwd_offered - self.fwd_lost
    }

    /// ACKs actually scheduled for arrival (originals that survived).
    pub fn rev_passed(&self) -> u64 {
        self.rev_offered - self.rev_lost
    }
}

/// The fate of one packet crossing an impaired direction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathFate {
    /// Extra delay of the original copy; `None` when it was lost.
    pub delay: Option<Duration>,
    /// Extra delay of an injected duplicate, if any. Lost packets are
    /// never duplicated (the copy branch sits past the loss point).
    pub dup_delay: Option<Duration>,
}

impl PathFate {
    /// The identity fate: delivered once, on time.
    pub const CLEAN: PathFate = PathFate {
        delay: Some(Duration::ZERO),
        dup_delay: None,
    };
}

/// Runtime state of the impairment layer: configuration, its private
/// RNG stream, and accounting.
#[derive(Debug)]
pub struct ImpairState {
    conf: LinkImpairments,
    rng: Rng,
    stats: ImpairStats,
}

impl ImpairState {
    /// Instantiate the layer from its configuration.
    pub fn new(conf: LinkImpairments) -> Self {
        ImpairState {
            conf,
            rng: Rng::new(conf.seed),
            stats: ImpairStats::default(),
        }
    }

    /// The configuration this layer runs.
    pub fn conf(&self) -> &LinkImpairments {
        &self.conf
    }

    /// Accounting so far.
    pub fn stats(&self) -> ImpairStats {
        self.stats
    }

    /// Serialize the layer's mutable state — its private RNG stream and
    /// the per-direction accounting — in a fixed field order
    /// (checkpointing). The configuration is not written; restore targets
    /// a layer built from the same [`LinkImpairments`].
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        for word in self.rng.state() {
            w.u64(word);
        }
        w.u64(self.stats.fwd_offered);
        w.u64(self.stats.fwd_lost);
        w.u64(self.stats.fwd_dup);
        w.u64(self.stats.rev_offered);
        w.u64(self.stats.rev_lost);
        w.u64(self.stats.rev_dup);
    }

    /// Restore state captured by [`ImpairState::save_ckpt`].
    pub fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.u64()?;
        }
        self.rng = Rng::from_state(s);
        self.stats.fwd_offered = r.u64()?;
        self.stats.fwd_lost = r.u64()?;
        self.stats.fwd_dup = r.u64()?;
        self.stats.rev_offered = r.u64()?;
        self.stats.rev_lost = r.u64()?;
        self.stats.rev_dup = r.u64()?;
        Ok(())
    }

    /// Decide the fate of one forward (data) packet.
    pub fn forward(&mut self) -> PathFate {
        let conf = self.conf.fwd;
        self.stats.fwd_offered += 1;
        let fate = Self::decide(&conf, &mut self.rng);
        if fate.delay.is_none() {
            self.stats.fwd_lost += 1;
        }
        if fate.dup_delay.is_some() {
            self.stats.fwd_dup += 1;
        }
        fate
    }

    /// Decide the fate of one reverse (ACK) packet.
    pub fn reverse(&mut self) -> PathFate {
        let conf = self.conf.rev;
        self.stats.rev_offered += 1;
        let fate = Self::decide(&conf, &mut self.rng);
        if fate.delay.is_none() {
            self.stats.rev_lost += 1;
        }
        if fate.dup_delay.is_some() {
            self.stats.rev_dup += 1;
        }
        fate
    }

    /// One packet's draws, in fixed order: loss, then (if it survived)
    /// jitter, duplication, and the duplicate's jitter. Every draw is
    /// guarded so a zero-rate knob consumes no variate — the identity
    /// property the determinism tests pin down.
    fn decide(conf: &ImpairmentConf, rng: &mut Rng) -> PathFate {
        if rng.chance(conf.loss) {
            return PathFate {
                delay: None,
                dup_delay: None,
            };
        }
        fn jitter(c: &ImpairmentConf, rng: &mut Rng) -> Duration {
            if c.jitter > Duration::ZERO {
                Duration::from_secs_f64(rng.next_f64() * c.jitter.as_secs_f64())
            } else {
                Duration::ZERO
            }
        }
        let delay = jitter(conf, rng);
        let dup_delay = if rng.chance(conf.dup) {
            Some(jitter(conf, rng))
        } else {
            None
        };
        PathFate {
            delay: Some(delay),
            dup_delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy(loss: f64, dup: f64, jitter_ms: i64) -> ImpairmentConf {
        ImpairmentConf {
            loss,
            dup,
            jitter: Duration::from_millis(jitter_ms),
        }
    }

    #[test]
    fn off_config_is_identity_and_consumes_no_randomness() {
        let mut st = ImpairState::new(LinkImpairments::new(7));
        let before = st.rng.next_u64();
        // Re-seed so the comparison stream is aligned again.
        let mut st = ImpairState::new(LinkImpairments::new(7));
        for _ in 0..100 {
            assert_eq!(st.forward(), PathFate::CLEAN);
            assert_eq!(st.reverse(), PathFate::CLEAN);
        }
        // No draw was consumed: the next raw output is the stream's first.
        assert_eq!(st.rng.next_u64(), before);
        let s = st.stats();
        assert_eq!(s.fwd_offered, 100);
        assert_eq!((s.fwd_lost, s.fwd_dup, s.rev_lost, s.rev_dup), (0, 0, 0, 0));
    }

    #[test]
    fn loss_rate_is_roughly_honoured() {
        let conf = LinkImpairments::new(42).forward(lossy(0.3, 0.0, 0));
        let mut st = ImpairState::new(conf);
        for _ in 0..10_000 {
            st.forward();
        }
        let lost = st.stats().fwd_lost as f64 / 10_000.0;
        assert!((0.25..0.35).contains(&lost), "observed loss {lost}");
    }

    #[test]
    fn duplication_and_jitter_apply_only_to_survivors() {
        let conf = LinkImpairments::new(9).forward(lossy(0.5, 1.0, 10));
        let mut st = ImpairState::new(conf);
        for _ in 0..1000 {
            let fate = st.forward();
            match fate.delay {
                None => assert!(fate.dup_delay.is_none(), "lost packets never duplicate"),
                Some(d) => {
                    assert!(d <= Duration::from_millis(10));
                    let dd = fate.dup_delay.expect("dup probability 1");
                    assert!(dd <= Duration::from_millis(10));
                }
            }
        }
        let s = st.stats();
        assert_eq!(s.fwd_dup, s.fwd_offered - s.fwd_lost);
        assert_eq!(s.fwd_passed(), s.fwd_offered - s.fwd_lost);
    }

    #[test]
    fn same_seed_same_fates() {
        let conf = LinkImpairments::new(1234).symmetric(lossy(0.1, 0.05, 5));
        let run = || {
            let mut st = ImpairState::new(conf);
            let fates: Vec<PathFate> = (0..500)
                .map(|i| if i % 3 == 0 { st.reverse() } else { st.forward() })
                .collect();
            (fates, st.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn builders_compose() {
        let imp = LinkImpairments::new(5)
            .forward(lossy(0.01, 0.0, 2))
            .reverse(lossy(0.02, 0.0, 0));
        assert!(!imp.is_off());
        assert_eq!(imp.fwd.loss, 0.01);
        assert_eq!(imp.rev.loss, 0.02);
        assert!(LinkImpairments::new(5).is_off());
        let sym = LinkImpairments::new(5).symmetric(lossy(0.1, 0.1, 1));
        assert_eq!(sym.fwd, sym.rev);
    }
}
