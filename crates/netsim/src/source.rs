//! Unresponsive traffic sources.
//!
//! The paper's "Mixture of TCP and UDP traffic" experiments (Figures 11c
//! and 14b) add two 6 Mb/s UDP flows to a 10 Mb/s bottleneck — deliberate
//! overload that exercises the AQM's maximum-probability cap and the
//! tail-drop backstop. [`UdpCbrSource`] reproduces that iperf-style
//! constant-bit-rate load.

use crate::packet::{Ecn, FlowId, Packet};
use crate::sim::{SimCore, Source, TimerKind};
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Time};

/// Encode an `Option<u64>` timer-arming id (presence flag + value, zero
/// placeholder when absent) — shared by the CBR sources' checkpoints.
fn write_opt_timer(w: &mut CkptWriter, t: Option<u64>) {
    w.bool(t.is_some());
    w.u64(t.unwrap_or(0));
}

/// Decode the counterpart of [`write_opt_timer`].
fn read_opt_timer(r: &mut CkptReader) -> Result<Option<u64>, CkptError> {
    let present = r.bool()?;
    let v = r.u64()?;
    Ok(present.then_some(v))
}

/// A constant-bit-rate UDP sender. It never reacts to congestion: packets
/// are emitted on a fixed tick regardless of drops, like `iperf -u`.
pub struct UdpCbrSource {
    id: FlowId,
    rate_bps: u64,
    pkt_size: usize,
    ecn: Ecn,
    seq: u64,
    active: bool,
    expected_timer: Option<u64>,
}

impl UdpCbrSource {
    /// Create a CBR source sending `rate_bps` in packets of `pkt_size`
    /// bytes. UDP probes in the paper are Not-ECT, but the ECN field is
    /// configurable for overload tests on ECN traffic.
    pub fn new(id: FlowId, rate_bps: u64, pkt_size: usize, ecn: Ecn) -> Self {
        assert!(rate_bps > 0, "CBR rate must be positive");
        assert!(pkt_size > 0, "packet size must be positive");
        UdpCbrSource {
            id,
            rate_bps,
            pkt_size,
            ecn,
            seq: 0,
            active: false,
            expected_timer: None,
        }
    }

    fn interval(&self) -> Duration {
        Duration::serialization(self.pkt_size, self.rate_bps)
    }

    fn send_and_rearm(&mut self, core: &mut SimCore) {
        let pkt = Packet::data(self.id, self.seq, self.pkt_size, self.ecn, core.now());
        self.seq += 1;
        core.send_packet(pkt);
        let id = core.schedule_timer(self.id, TimerKind::Send, self.interval());
        self.expected_timer = Some(id);
    }
}

impl Source for UdpCbrSource {
    fn on_start(&mut self, core: &mut SimCore) {
        if self.active {
            return;
        }
        self.active = true;
        self.send_and_rearm(core);
    }

    fn on_stop(&mut self, _core: &mut SimCore) {
        self.active = false;
        self.expected_timer = None;
    }

    fn on_deliver(&mut self, _pkt: Packet, _core: &mut SimCore) {
        // UDP has no feedback channel.
    }

    fn on_timer(&mut self, kind: TimerKind, id: u64, core: &mut SimCore) {
        if kind != TimerKind::Send || !self.active || self.expected_timer != Some(id) {
            return; // stale timer from before a stop/restart
        }
        self.send_and_rearm(core);
    }

    fn save_ckpt(&self, w: &mut CkptWriter) {
        w.u64(self.seq);
        w.bool(self.active);
        write_opt_timer(w, self.expected_timer);
    }

    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.seq = r.u64()?;
        self.active = r.bool()?;
        self.expected_timer = read_opt_timer(r)?;
        Ok(())
    }
}

/// An on-off CBR source: bursts at `rate_bps` for `on` time, sleeps for
/// `off`, repeats. The workload PIE's burst allowance was designed for —
/// transient bursts arriving at an otherwise idle queue.
pub struct OnOffCbrSource {
    id: FlowId,
    rate_bps: u64,
    pkt_size: usize,
    on: Duration,
    off: Duration,
    seq: u64,
    active: bool,
    /// True while inside an ON period.
    bursting: bool,
    period_start: Time,
    expected_timer: Option<u64>,
}

impl OnOffCbrSource {
    /// Create an on-off source (Not-ECT, like a hardware video burst).
    pub fn new(id: FlowId, rate_bps: u64, pkt_size: usize, on: Duration, off: Duration) -> Self {
        assert!(rate_bps > 0 && pkt_size > 0);
        assert!(on > Duration::ZERO && off >= Duration::ZERO);
        OnOffCbrSource {
            id,
            rate_bps,
            pkt_size,
            on,
            off,
            seq: 0,
            active: false,
            bursting: false,
            period_start: Time::ZERO,
            expected_timer: None,
        }
    }

    fn interval(&self) -> Duration {
        Duration::serialization(self.pkt_size, self.rate_bps)
    }

    fn tick(&mut self, core: &mut SimCore) {
        let now = core.now();
        if self.bursting {
            if now.saturating_since(self.period_start) >= self.on {
                // Burst over: sleep until the next period.
                self.bursting = false;
                self.period_start = now;
                let id = core.schedule_timer(self.id, TimerKind::Send, self.off);
                self.expected_timer = Some(id);
                return;
            }
            let pkt = Packet::data(self.id, self.seq, self.pkt_size, Ecn::NotEct, now);
            self.seq += 1;
            core.send_packet(pkt);
            let id = core.schedule_timer(self.id, TimerKind::Send, self.interval());
            self.expected_timer = Some(id);
        } else {
            // Waking from the OFF period.
            self.bursting = true;
            self.period_start = now;
            self.tick(core);
        }
    }
}

impl Source for OnOffCbrSource {
    fn on_start(&mut self, core: &mut SimCore) {
        if self.active {
            return;
        }
        self.active = true;
        self.bursting = true;
        self.period_start = core.now();
        self.tick(core);
    }

    fn on_stop(&mut self, _core: &mut SimCore) {
        self.active = false;
        self.expected_timer = None;
    }

    fn on_deliver(&mut self, _pkt: Packet, _core: &mut SimCore) {}

    fn on_timer(&mut self, kind: TimerKind, id: u64, core: &mut SimCore) {
        if kind != TimerKind::Send || !self.active || self.expected_timer != Some(id) {
            return;
        }
        self.tick(core);
    }

    fn save_ckpt(&self, w: &mut CkptWriter) {
        w.u64(self.seq);
        w.bool(self.active);
        w.bool(self.bursting);
        w.time(self.period_start);
        write_opt_timer(w, self.expected_timer);
    }

    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.seq = r.u64()?;
        self.active = r.bool()?;
        self.bursting = r.bool()?;
        self.period_start = r.time()?;
        self.expected_timer = read_opt_timer(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aqm::PassAqm;
    use crate::queue::QueueConfig;
    use crate::sim::{PathConf, Sim, SimConfig};
    use pi2_simcore::Time;

    #[test]
    fn cbr_rate_is_accurate() {
        let mut sim = Sim::new(
            SimConfig {
                queue: QueueConfig {
                    rate_bps: 100_000_000, // uncongested
                    buffer_bytes: usize::MAX,
                },
                ..SimConfig::default()
            },
            Box::new(PassAqm),
        );
        sim.add_flow(
            PathConf::symmetric(Duration::from_millis(10)),
            "udp",
            Time::ZERO,
            |id| Box::new(UdpCbrSource::new(id, 6_000_000, 1500, Ecn::NotEct)),
        );
        sim.run_until(Time::from_secs(10));
        let acc = sim.core.monitor.flow(crate::packet::FlowId(0));
        let mbps = acc.dequeued_bytes as f64 * 8.0 / 10.0 / 1e6;
        assert!((mbps - 6.0).abs() < 0.05, "CBR rate {mbps} Mb/s");
    }

    #[test]
    fn onoff_duty_cycle_is_respected() {
        let mut sim = Sim::new(
            SimConfig {
                queue: QueueConfig {
                    rate_bps: 100_000_000,
                    buffer_bytes: usize::MAX,
                },
                ..SimConfig::default()
            },
            Box::new(PassAqm),
        );
        // 8 Mb/s bursts, 100 ms on / 400 ms off => 20% duty => 1.6 Mb/s avg.
        sim.add_flow(
            PathConf::symmetric(Duration::from_millis(10)),
            "burst",
            Time::ZERO,
            |id| {
                Box::new(OnOffCbrSource::new(
                    id,
                    8_000_000,
                    1000,
                    Duration::from_millis(100),
                    Duration::from_millis(400),
                ))
            },
        );
        sim.run_until(Time::from_secs(10));
        let acc = sim.core.monitor.flow(crate::packet::FlowId(0));
        let mbps = acc.dequeued_bytes as f64 * 8.0 / 10.0 / 1e6;
        assert!((mbps - 1.6).abs() < 0.15, "on-off average {mbps:.2} Mb/s");
    }

    #[test]
    fn stop_halts_emission() {
        let mut sim = Sim::new(SimConfig::default(), Box::new(PassAqm));
        let id = sim.add_flow(
            PathConf::symmetric(Duration::from_millis(10)),
            "udp",
            Time::ZERO,
            |id| Box::new(UdpCbrSource::new(id, 1_000_000, 1000, Ecn::NotEct)),
        );
        sim.stop_flow_at(id, Time::from_secs(1));
        sim.run_until(Time::from_secs(3));
        let sent_at_stop = sim.core.monitor.flow(id).sent_pkts;
        // ~125 packets in the first second, none after.
        assert!(sent_at_stop > 100 && sent_at_stop < 150, "{sent_at_stop}");
    }
}
