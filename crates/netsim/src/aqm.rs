//! The AQM interface between the queue and a drop/mark policy.
//!
//! An [`Aqm`] sees three things, mirroring where a Linux qdisc hooks in:
//!
//! * every **enqueue** attempt, where it must decide to pass, CE-mark, or
//!   drop the packet (Linux PIE and PI2 both decide at enqueue);
//! * every **dequeue**, so it can run a departure-rate estimator the way
//!   Linux PIE does (`dq_rate_estimator`), or read sojourn timestamps;
//! * a periodic **update** tick (the paper's `T` = 32 ms), where the PI
//!   core recomputes its probability.

use crate::packet::Packet;
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Rng, Time};

/// What to do with a packet at enqueue time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Admit the packet unchanged.
    Pass,
    /// Admit the packet but set its ECN field to CE.
    Mark,
    /// Discard the packet.
    Drop,
}

/// An enqueue decision plus the probability that produced it, for
/// per-packet probability accounting (paper Figure 17 reports P25/mean/P99
/// of the applied mark/drop probability).
#[derive(Clone, Copy, Debug)]
pub struct Decision {
    /// The verdict.
    pub action: Action,
    /// The mark/drop probability that was in force for this packet's
    /// traffic class when the decision was taken.
    pub prob: f64,
}

impl Decision {
    /// A pass decision taken under probability `prob`.
    pub fn pass(prob: f64) -> Self {
        Decision { action: Action::Pass, prob }
    }
    /// A mark decision taken under probability `prob`.
    pub fn mark(prob: f64) -> Self {
        Decision { action: Action::Mark, prob }
    }
    /// A drop decision taken under probability `prob`.
    pub fn drop(prob: f64) -> Self {
        Decision { action: Action::Drop, prob }
    }
}

/// Instantaneous queue state handed to the AQM at each hook.
#[derive(Clone, Copy, Debug)]
pub struct QueueSnapshot {
    /// Bytes currently queued (including the packet in transmission).
    pub qlen_bytes: usize,
    /// Packets currently queued.
    pub qlen_pkts: usize,
    /// Current bottleneck link rate in bits/s.
    pub link_rate_bps: u64,
    /// Sojourn time of the most recently dequeued packet, if any packet
    /// has been dequeued yet (CoDel-style timestamp estimate).
    pub last_sojourn: Option<Duration>,
}

impl QueueSnapshot {
    /// Queue delay estimated from queue length and the configured link
    /// rate (`qlen · 8 / C`). This is the estimate a hardware PIE would
    /// compute when a departure-rate measurement is not yet available.
    pub fn delay_from_qlen(&self) -> Duration {
        Duration::serialization(self.qlen_bytes, self.link_rate_bps)
    }
}

/// A structured snapshot of an AQM's internal control state, captured at
/// each update tick and streamed to trace sinks (`"ev":"aqm"` lines in a
/// JSONL trace).
///
/// Fields an AQM does not maintain stay at their zero defaults — a probe
/// reports what the policy actually computes, e.g. only DualPI2/coupled
/// PI2 fill `scalable_prob`, only PIE fills `burst_allowance`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AqmState {
    /// The linear controlled variable: `p'` for PI2/coupled/DualPI2, `p`
    /// itself for PIE/PI (they control the output probability directly).
    pub p_prime: f64,
    /// The classic-traffic output probability actually applied to
    /// drops/marks (`p = p'²` for PI2, capped `p` for PIE/PI).
    pub prob: f64,
    /// The scalable-traffic (L4S) marking probability, where the scheme
    /// has one (coupled PI2, DualPI2); otherwise 0.
    pub scalable_prob: f64,
    /// The proportional contribution `α·(qdelay − target)` of the last
    /// controller update.
    pub alpha_term: f64,
    /// The integral-path contribution `β·(qdelay − qdelay_prev)` of the
    /// last controller update.
    pub beta_term: f64,
    /// Remaining PIE burst allowance; zero for AQMs without one.
    pub burst_allowance: Duration,
    /// The departure-rate estimator's smoothed rate in bytes/s, when a
    /// RFC 8033-style estimator is active and has sampled; otherwise 0.
    pub est_rate_bytes_per_sec: f64,
    /// The queue-delay input of the last controller update.
    pub qdelay: Duration,
}

/// A drop/mark policy attached to the bottleneck queue.
pub trait Aqm {
    /// Decide the fate of `pkt`, which the queue is about to admit.
    fn on_enqueue(
        &mut self,
        pkt: &Packet,
        snap: &QueueSnapshot,
        now: Time,
        rng: &mut Rng,
    ) -> Decision;

    /// Observe a departure; `sojourn` is the packet's time in the queue
    /// including its own serialization.
    fn on_dequeue(&mut self, pkt: &Packet, sojourn: Duration, snap: &QueueSnapshot, now: Time) {
        let _ = (pkt, sojourn, snap, now);
    }

    /// Periodic controller update. Called every [`Aqm::update_interval`]
    /// if that returns `Some`.
    fn update(&mut self, snap: &QueueSnapshot, now: Time) {
        let _ = (snap, now);
    }

    /// How often [`Aqm::update`] should run; `None` for stateless AQMs.
    fn update_interval(&self) -> Option<Duration> {
        None
    }

    /// The internal controlled variable for monitoring: `p` for PIE, the
    /// pseudo-probability `p'` for PI2/PI.
    fn control_variable(&self) -> f64 {
        0.0
    }

    /// Snapshot the internal control state for telemetry. The default
    /// reports [`Aqm::control_variable`] as both `p'` and the output
    /// probability; policies with richer state override this.
    fn probe(&self) -> AqmState {
        AqmState {
            p_prime: self.control_variable(),
            prob: self.control_variable(),
            ..AqmState::default()
        }
    }

    /// Human-readable name used in experiment output tables.
    fn name(&self) -> &'static str;

    /// Serialize all mutable controller state in a fixed field order
    /// (checkpointing). The default writes nothing, which is correct only
    /// for stateless policies ([`PassAqm`], test stubs) — every stateful
    /// AQM overrides this.
    fn save_ckpt(&self, w: &mut CkptWriter) {
        let _ = w;
    }

    /// Restore state captured by [`Aqm::save_ckpt`] into a freshly
    /// constructed instance of the same policy and configuration.
    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let _ = r;
        Ok(())
    }
}

/// The trivial AQM: admit everything (tail-drop behaviour comes from the
/// queue's byte limit). Used as the baseline and in substrate tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct PassAqm;

impl Aqm for PassAqm {
    fn on_enqueue(
        &mut self,
        _pkt: &Packet,
        _snap: &QueueSnapshot,
        _now: Time,
        _rng: &mut Rng,
    ) -> Decision {
        Decision::pass(0.0)
    }

    fn name(&self) -> &'static str {
        "taildrop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Ecn, FlowId};

    #[test]
    fn pass_aqm_always_passes() {
        let mut aqm = PassAqm;
        let mut rng = Rng::new(1);
        let snap = QueueSnapshot {
            qlen_bytes: 10_000,
            qlen_pkts: 7,
            link_rate_bps: 10_000_000,
            last_sojourn: None,
        };
        let pkt = Packet::data(FlowId(0), 0, 1500, Ecn::NotEct, Time::ZERO);
        for _ in 0..100 {
            let d = aqm.on_enqueue(&pkt, &snap, Time::ZERO, &mut rng);
            assert_eq!(d.action, Action::Pass);
        }
        assert_eq!(aqm.update_interval(), None);
        assert_eq!(aqm.control_variable(), 0.0);
    }

    #[test]
    fn snapshot_delay_from_qlen() {
        let snap = QueueSnapshot {
            qlen_bytes: 12_500, // 100_000 bits
            qlen_pkts: 10,
            link_rate_bps: 10_000_000, // 10 Mb/s -> 10 ms
            last_sojourn: None,
        };
        assert_eq!(snap.delay_from_qlen(), Duration::from_millis(10));
    }
}
