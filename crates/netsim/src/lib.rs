//! # pi2-netsim — packet-level network simulation substrate
//!
//! This crate models everything the PI2 paper's Linux testbed provided
//! around the AQM: packets with ECN codepoints, a bottleneck FIFO queue
//! whose admission is delegated to an [`Aqm`] implementation, a serializing
//! link with propagation delays, traffic sources, and measurement hooks.
//!
//! The base topology is the paper's dumbbell (Figure 10) collapsed to its
//! essentials: every flow shares one bottleneck queue + link in the forward
//! direction; the reverse (ACK) path is uncongested and modelled as a pure
//! delay, which is how the paper's testbed behaved for its workloads.
//! Multi-hop layouts — parking-lot chains and small access/core trees with
//! per-path RTT mixes — grow from that dumbbell via [`sim::SimCore::add_hop`]
//! and static per-flow routes; see [`topology::Topology`].
//!
//! Design follows the event-driven, sans-io ethos: the [`sim::Sim`] loop
//! owns all state, dispatches [`sim::Event`]s in deterministic order, and
//! never touches wall-clock time or sockets.

pub mod aqm;
pub mod audit;
pub mod background;
pub mod ckpt;
pub mod impair;
pub mod metrics;
pub mod monitor;
pub mod packet;
pub mod perfetto;
pub mod pool;
pub mod queue;
pub mod sim;
pub mod source;
pub mod topology;
pub mod trace;

pub use aqm::{Action, Aqm, AqmState, Decision, PassAqm, QueueSnapshot};
pub use audit::AuditSink;
pub use background::{Background, BackgroundAggregate, MIN_FOREGROUND_FRACTION};
pub use impair::{ImpairState, ImpairStats, ImpairmentConf, LinkImpairments, PathFate};
pub use metrics::SimMetrics;
pub use monitor::{FlowAccount, Monitor, MonitorConfig};
pub use packet::{Ecn, FlowId, Packet};
pub use pool::Pool;
pub use queue::{BottleneckQueue, Qdisc, QueueConfig, QueueStats};
pub use sim::{
    event_class, Ack, Event, PathConf, Sim, SimConfig, SimCore, Source, TimerKind, EVENT_CLASSES,
};
pub use source::{OnOffCbrSource, UdpCbrSource};
pub use topology::Topology;
pub use perfetto::PerfettoSink;
pub use trace::{
    csv_field, CountingSink, CsvSink, FlowCounts, JsonlSink, MemorySink, TraceCounts, TraceEvent,
    TraceSink,
};
