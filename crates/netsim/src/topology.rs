//! Declarative multi-hop layouts over [`SimCore::add_hop`] /
//! [`SimCore::set_route`].
//!
//! A [`Topology`] is the static shape of a network: how many hops exist,
//! each hop's ingress propagation delay, and a set of *named paths* (hop
//! sequences) that flows are later pinned to. The two stock constructors
//! cover the shapes the PI2/DualPI2 evaluation literature leans on:
//!
//! * [`Topology::parking_lot`] — the classic chain where long flows
//!   traverse every bottleneck and per-hop cross traffic enters and
//!   leaves at each link;
//! * [`Topology::access_core`] — a small ISP-like tree where per-leaf
//!   access links feed one shared core bottleneck, giving per-path RTT
//!   and capacity mixes.
//!
//! The struct itself owns no qdiscs: [`Topology::install`] instantiates
//! the extra hops onto a live [`SimCore`] through a caller-supplied qdisc
//! factory, so the same layout can be run under any AQM family. Hop 0 is
//! always the simulator's primary bottleneck (the monitored, traced
//! queue); every named path that includes hop 0 leads with it, matching
//! the routing constraint documented on [`SimCore::set_route`].

use crate::queue::Qdisc;
use crate::sim::SimCore;
use pi2_simcore::Duration;

/// A static multi-hop layout: hop count, per-hop ingress propagation and
/// named hop-sequence paths. See the module docs.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Ingress propagation delay per hop id. Entry 0 is kept only so
    /// indices align with hop ids (sources inject at their first hop with
    /// no ingress leg).
    hop_prop: Vec<Duration>,
    /// Named paths: `(name, hop sequence)`, in insertion order.
    paths: Vec<(String, Vec<u32>)>,
}

impl Topology {
    /// A parking-lot chain of `hops` bottlenecks (hop 0 first) with a
    /// uniform inter-hop propagation delay. Named paths:
    ///
    /// * `"e2e"` — traverses every hop, `[0, 1, …, hops-1]`;
    /// * `"cross0" … "cross<hops-1>"` — single-hop cross traffic at each
    ///   link.
    ///
    /// # Panics
    /// Panics if `hops` is 0.
    pub fn parking_lot(hops: usize, prop: Duration) -> Self {
        assert!(hops >= 1, "a parking lot needs at least one hop");
        let mut paths = vec![(
            "e2e".to_string(),
            (0..hops as u32).collect::<Vec<u32>>(),
        )];
        for k in 0..hops as u32 {
            paths.push((format!("cross{k}"), vec![k]));
        }
        Topology {
            hop_prop: vec![prop; hops],
            paths,
        }
    }

    /// A small ISP-like access/core tree: `leaves` access links each
    /// feeding one shared core bottleneck. Leaf 0's access link is the
    /// primary bottleneck (hop 0); the core is the last hop id. Named
    /// paths:
    ///
    /// * `"leaf0" … "leaf<leaves-1>"` — access link then core,
    ///   `[k, core]`;
    /// * `"core"` — traffic entering at the core only, `[core]`.
    ///
    /// # Panics
    /// Panics if `leaves` is 0.
    pub fn access_core(leaves: usize, prop: Duration) -> Self {
        assert!(leaves >= 1, "an access/core tree needs at least one leaf");
        let core = leaves as u32;
        let mut paths = Vec::with_capacity(leaves + 1);
        for k in 0..leaves as u32 {
            paths.push((format!("leaf{k}"), vec![k, core]));
        }
        paths.push(("core".to_string(), vec![core]));
        Topology {
            hop_prop: vec![prop; leaves + 1],
            paths,
        }
    }

    /// Total number of hops, including the primary bottleneck.
    pub fn hop_count(&self) -> usize {
        self.hop_prop.len()
    }

    /// The hop sequence of a named path.
    ///
    /// # Panics
    /// Panics on an unknown path name.
    pub fn path(&self, name: &str) -> &[u32] {
        &self
            .paths
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("topology has no path named {name:?}"))
            .1
    }

    /// All named paths, in insertion order.
    pub fn paths(&self) -> impl Iterator<Item = (&str, &[u32])> {
        self.paths.iter().map(|(n, p)| (n.as_str(), p.as_slice()))
    }

    /// Instantiate the extra hops (ids `1..hop_count`) onto a live core.
    /// `make` receives each hop id and returns its qdisc; hop 0 is the
    /// core's existing primary bottleneck and is not rebuilt. Call once,
    /// before registering routed flows.
    pub fn install<F>(&self, core: &mut SimCore, mut make: F)
    where
        F: FnMut(u32) -> Box<dyn Qdisc>,
    {
        for hop in 1..self.hop_count() as u32 {
            let id = core.add_hop(make(hop), self.hop_prop[hop as usize]);
            assert_eq!(id, hop, "hops must be installed onto a hop-free core");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parking_lot_shapes_its_paths() {
        let t = Topology::parking_lot(3, Duration::from_millis(5));
        assert_eq!(t.hop_count(), 3);
        assert_eq!(t.path("e2e"), &[0, 1, 2]);
        assert_eq!(t.path("cross0"), &[0]);
        assert_eq!(t.path("cross2"), &[2]);
        assert_eq!(t.paths().count(), 4);
    }

    #[test]
    fn access_core_funnels_into_the_last_hop() {
        let t = Topology::access_core(3, Duration::from_millis(2));
        assert_eq!(t.hop_count(), 4);
        assert_eq!(t.path("leaf0"), &[0, 3]);
        assert_eq!(t.path("leaf2"), &[2, 3]);
        assert_eq!(t.path("core"), &[3]);
    }

    #[test]
    #[should_panic(expected = "no path named")]
    fn unknown_path_panics() {
        Topology::parking_lot(2, Duration::ZERO).path("nope");
    }
}
