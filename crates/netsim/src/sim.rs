//! The event-driven dumbbell simulator.
//!
//! [`SimCore`] owns the clock, the bottleneck queue+link, per-flow path
//! delays, the RNG and the measurement [`Monitor`]. [`Sim`] adds the
//! traffic sources (trait objects implementing [`Source`]) and runs the
//! dispatch loop. The split into two structs is what lets a source receive
//! `&mut SimCore` while the source collection itself is mutably borrowed.
//!
//! ## Packet life cycle
//!
//! ```text
//! sender --send_packet()--> [AQM verdict] --FIFO--> link serialization
//!        --Deliver event (fwd one-way delay)--> receiver logic in Source
//!        --send_ack()--> AckArrive event (rev one-way delay) --> sender logic
//! ```
//!
//! Drops at the AQM are silent: the sender only learns about them through
//! duplicate ACKs or an RTO, exactly as on a real network.
//!
//! ## Multi-hop topologies
//!
//! [`SimCore::add_hop`] adds further store-and-forward hops (each its own
//! qdisc+AQM+link), and [`SimCore::set_route`] steers a flow across a
//! static hop sequence — parking-lot chains and small access/core graphs
//! are built from exactly these two calls. A routed packet repeats the
//! `[AQM verdict] → FIFO → serialization → inter-hop propagation` cycle
//! at every hop before the final `Deliver` leg; ACKs still travel the
//! uncongested reverse path in one go. End-to-end flow measurement
//! (throughput, sojourn, completion) is recorded where a packet leaves
//! the *last* queue on its route, drop/mark verdicts are recorded at
//! every hop, and the trace-event stream remains the primary
//! bottleneck's (hop 0), so single-hop runs are bit-identical to what
//! they were before hops existed.

use crate::aqm::{Action, Decision};
use crate::audit::AuditSink;
use crate::background::{Background, BackgroundAggregate};
use crate::ckpt::{read_ack, read_packet, write_ack, write_packet};
use crate::impair::{ImpairState, LinkImpairments};
use crate::metrics::SimMetrics;
use crate::monitor::{Monitor, MonitorConfig};
use crate::packet::{FlowId, Packet};
use crate::pool::{Handle, Pool};
use crate::queue::{BottleneckQueue, Qdisc, QueueConfig};
use crate::trace::{TraceCounts, TraceEvent, TraceSink};
use pi2_obs::LoopProfiler;
use pi2_simcore::{
    CkptError, CkptReader, CkptWriter, Duration, EventEntry, EventQueue, Rng, SchemaHasher, Time,
};

/// One-way delays of a flow's path, excluding the bottleneck queue.
#[derive(Clone, Copy, Debug)]
pub struct PathConf {
    /// Sender → receiver propagation (applied after the bottleneck).
    pub fwd: Duration,
    /// Receiver → sender propagation for ACKs.
    pub rev: Duration,
}

impl PathConf {
    /// Split a base RTT evenly across the two directions.
    pub fn symmetric(base_rtt: Duration) -> Self {
        PathConf {
            fwd: base_rtt / 2,
            rev: base_rtt - base_rtt / 2,
        }
    }

    /// The base (unloaded) round-trip time.
    pub fn base_rtt(&self) -> Duration {
        self.fwd + self.rev
    }
}

/// An acknowledgement travelling the uncongested reverse path.
#[derive(Clone, Copy, Debug)]
pub struct Ack {
    /// The flow this ACK belongs to.
    pub flow: FlowId,
    /// Cumulative ACK: the next sequence number the receiver expects.
    pub cum_seq: u64,
    /// RFC 3168-style congestion echo: a CE-marked data packet has been
    /// received since the previous ACK was generated.
    pub ece: bool,
    /// Cumulative count of CE-marked data packets the receiver has seen;
    /// Scalable (DCTCP) senders diff this to recover the exact per-RTT
    /// marked fraction that drives their α EWMA.
    pub ce_total: u64,
    /// Cumulative count of data packets the receiver has seen (marked or
    /// not), the denominator for the marked fraction.
    pub pkts_total: u64,
    /// Echo of the triggering data packet's send timestamp, for sender-side
    /// RTT sampling (the simulator's stand-in for the TCP timestamp option).
    pub echo_ts: Time,
    /// True if the triggering data packet was a retransmission; the sender
    /// skips RTT sampling on such echoes (Karn's algorithm).
    pub echo_rtx: bool,
    /// SACK blocks: up to three `[start, end)` ranges of out-of-order data
    /// the receiver holds above `cum_seq`, most relevant first (RFC 2018).
    /// All-`None` when the receiver has no out-of-order data.
    pub sack: [Option<(u64, u64)>; 3],
}

impl Ack {
    /// An ACK with no SACK information.
    pub const NO_SACK: [Option<(u64, u64)>; 3] = [None, None, None];
}

/// Timer classes a source can arm.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TimerKind {
    /// TCP retransmission timeout.
    Rto,
    /// Paced/CBR transmission tick.
    Send,
    /// Source-defined auxiliary timer.
    User(u32),
}

/// Everything that can happen in the simulated world.
///
/// `Deliver` and `AckArrive` carry 4-byte [`Pool`] handles rather than
/// their payloads: parking the `Packet`/`Ack` in a slab keeps every
/// event-queue entry small (the largest variant is `SetPath`), which is
/// what makes the timing wheel's per-event moves cheap. The dispatch loop
/// resolves a handle exactly once, immediately before invoking the
/// handler, so no handle outlives its event.
#[derive(Debug)]
pub enum Event {
    /// The bottleneck link finished serializing the head packet.
    Dequeue,
    /// A data packet reaches its receiver (handle into
    /// [`SimCore::packets`]).
    Deliver(Handle),
    /// An ACK reaches its sender (handle into [`SimCore::acks`]).
    AckArrive(Handle),
    /// A timer armed by a source fires.
    Timer {
        /// Owning flow.
        flow: FlowId,
        /// Which of the flow's timers.
        kind: TimerKind,
        /// Arming sequence number, for lazy cancellation.
        id: u64,
    },
    /// Periodic AQM controller update (the paper's T = 32 ms).
    AqmUpdate,
    /// Periodic measurement sample.
    Sample,
    /// Change the bottleneck link rate (Figure 12's varying capacity).
    SetLinkRate(u64),
    /// Activate a source (traffic-intensity steps in Figures 6/13).
    SourceOn(FlowId),
    /// Deactivate a source.
    SourceOff(FlowId),
    /// Reconfigure a flow's path delays (scheduled RTT-step disturbances).
    /// Packets and ACKs already in flight keep the delay they departed
    /// with; only subsequent departures see the new path.
    SetPath(FlowId, PathConf),
    /// An extra hop's link (see [`SimCore::add_hop`]) finished serializing
    /// its head packet. The primary bottleneck (hop 0) keeps using
    /// [`Event::Dequeue`].
    HopDequeue(u32),
    /// A data packet arrives at an extra hop for admission (handle into
    /// [`SimCore::packets`]).
    HopArrive(u32, Handle),
    /// Periodic controller update for an extra hop's AQM (hop 0 keeps
    /// using [`Event::AqmUpdate`]).
    HopAqmUpdate(u32),
}

/// One store-and-forward hop past the primary bottleneck, created by
/// [`SimCore::add_hop`]. Each hop owns its own qdisc+AQM+link and an
/// ingress propagation leg; flows are steered across hops by static
/// per-flow routes ([`SimCore::set_route`]).
struct HopState {
    /// The hop's queueing discipline and link.
    qdisc: Box<dyn Qdisc>,
    /// Ingress propagation delay: how long a packet takes to reach this
    /// hop after leaving the previous hop on its route. (The flow's
    /// [`PathConf::fwd`] still covers the final leg past the last hop.)
    prop: Duration,
    /// True while the hop's link is serializing a packet.
    transmitting: bool,
    /// Per-hop `(size, rate) -> serialization time` cache, mirroring
    /// [`SimCore::ser_cache`].
    ser_cache: (usize, u64, Duration),
    /// Admissions the core observed (non-drop verdicts), kept separately
    /// from the qdisc's own stats so `finish_audit` has an independent
    /// per-hop conservation cross-check.
    enqueued: u64,
    /// Departures the core observed.
    dequeued: u64,
}

/// The shared simulation state handed to sources.
pub struct SimCore {
    /// The pending-event queue; also the simulation clock.
    pub events: EventQueue<Event>,
    /// Root deterministic RNG (fork per-flow streams from it).
    pub rng: Rng,
    /// The bottleneck queueing discipline and link.
    pub queue: Box<dyn Qdisc>,
    /// Measurement collection.
    pub monitor: Monitor,
    /// Always-on per-flow event counters (plain integer increments; kept
    /// regardless of whether any sink is attached).
    pub counters: TraceCounts,
    /// Slab of in-flight data packets (between dequeue and delivery);
    /// [`Event::Deliver`] carries handles into it.
    pub packets: Pool<Packet>,
    /// Slab of in-flight ACKs; [`Event::AckArrive`] carries handles into
    /// it.
    pub acks: Pool<Ack>,
    sinks: Vec<Box<dyn TraceSink>>,
    audit: Option<Box<AuditSink>>,
    metrics: Option<Box<SimMetrics>>,
    impair: Option<Box<ImpairState>>,
    paths: Vec<PathConf>,
    /// Extra hops past the primary bottleneck; hop id `h >= 1` lives at
    /// `hops[h - 1]` (hop 0 is [`SimCore::queue`]).
    hops: Vec<HopState>,
    /// Per-flow hop routes in traversal order. An empty entry means the
    /// default single-hop route `[0]` (no allocation for default flows).
    routes: Vec<Vec<u32>>,
    /// Post-warmup per-flow egress bytes at each hop, indexed
    /// `[hop][flow]` — the per-hop fairness instrument. Row 0 is the
    /// primary bottleneck.
    hop_flow_bytes: Vec<Vec<u64>>,
    transmitting: bool,
    timer_seq: u64,
    /// One-entry `(size, rate) -> serialization time` cache. Almost every
    /// transmission is an MSS-sized packet on an unchanged link rate, so
    /// this removes a u128 division from the per-dequeue path.
    ser_cache: (usize, u64, Duration),
}

impl SimCore {
    fn new(queue: Box<dyn Qdisc>, seed: u64, monitor_cfg: MonitorConfig) -> Self {
        SimCore {
            events: EventQueue::new(),
            rng: Rng::new(seed),
            queue,
            monitor: Monitor::new(monitor_cfg),
            counters: TraceCounts::new(),
            packets: Pool::new(),
            acks: Pool::new(),
            sinks: Vec::new(),
            audit: None,
            metrics: None,
            impair: None,
            paths: Vec::new(),
            hops: Vec::new(),
            routes: Vec::new(),
            hop_flow_bytes: vec![Vec::new()],
            transmitting: false,
            timer_seq: 0,
            ser_cache: (0, 0, Duration::ZERO),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> Time {
        self.events.now()
    }

    /// Attach a streaming trace sink. Every bottleneck event and AQM
    /// control-state snapshot from now on is forwarded to it; multiple
    /// sinks receive the same stream in attachment order. Sinks are pure
    /// observers — they never touch the RNG or the queue — so attaching
    /// one cannot change a run's outcome.
    pub fn add_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sinks.push(sink);
    }

    /// Flush every attached sink, stopping at (and returning) the first
    /// error. Call at end of run before reading file-backed output.
    pub fn flush_trace_sinks(&mut self) -> std::io::Result<()> {
        for sink in &mut self.sinks {
            sink.flush()?;
        }
        Ok(())
    }

    /// Detach and return all attached sinks (flush first if their output
    /// matters).
    pub fn take_trace_sinks(&mut self) -> Vec<Box<dyn TraceSink>> {
        std::mem::take(&mut self.sinks)
    }

    /// Attach the runtime invariant auditor (see [`crate::audit`]). Like
    /// any sink it is a pure observer, so auditing never changes a run's
    /// outcome; unlike plain sinks it panics with the run's replayable
    /// seed the moment the event stream breaks an invariant. If packets
    /// are already queued the auditor starts from that baseline.
    pub fn enable_audit(&mut self, mut audit: AuditSink) {
        audit.set_baseline_pkts(self.queue.len_pkts());
        self.audit = Some(Box::new(audit));
    }

    /// Detach and return the auditor, disabling further audit checks.
    pub fn take_audit(&mut self) -> Option<Box<AuditSink>> {
        self.audit.take()
    }

    /// The attached auditor, if auditing is enabled.
    pub fn audit(&self) -> Option<&AuditSink> {
        self.audit.as_deref()
    }

    /// Start recording into a fresh [`SimMetrics`] registry. Metrics are
    /// a pure observer over values the simulator already computes — they
    /// never read the RNG or touch the queue — so a metrics-on run stays
    /// bit-identical to a metrics-off run.
    pub fn enable_metrics(&mut self) {
        if self.metrics.is_none() {
            self.metrics = Some(Box::new(SimMetrics::new()));
        }
    }

    /// Detach and return the metrics, folding in the event-loop totals
    /// (events processed/scheduled so far). Returns `None` when metrics
    /// were never enabled.
    pub fn take_metrics(&mut self) -> Option<Box<SimMetrics>> {
        let mut m = self.metrics.take()?;
        m.note_event_totals(self.events.popped(), self.events.pushed());
        Some(m)
    }

    /// The live metrics, if enabled (event-loop totals are only folded in
    /// by [`take_metrics`](Self::take_metrics)).
    pub fn metrics(&self) -> Option<&SimMetrics> {
        self.metrics.as_deref()
    }

    /// Attach the path impairment layer (see [`crate::impair`]). The
    /// layer owns its own RNG stream seeded from `conf.seed`, so an
    /// all-zero configuration leaves the run bit-identical to having no
    /// layer at all, and a non-zero one perturbs only the post-bottleneck
    /// path, never the AQM's random decisions.
    pub fn set_impairments(&mut self, conf: LinkImpairments) {
        self.impair = Some(Box::new(ImpairState::new(conf)));
    }

    /// The attached impairment layer, if any.
    pub fn impairments(&self) -> Option<&ImpairState> {
        self.impair.as_deref()
    }

    /// End-of-run audit: verify packet conservation against the qdisc's
    /// current occupancy, and — when the impairment layer is attached —
    /// cross-check its per-direction accounting against the dequeue
    /// stream. No-op when auditing is off. [`Sim::run_until`] calls this
    /// after the event loop; explicit callers stepping the sim by hand
    /// can invoke it at any event boundary.
    pub fn finish_audit(&self) {
        if let Some(a) = &self.audit {
            a.check_conservation(self.queue.len_pkts(), self.now());
            for (i, h) in self.hops.iter().enumerate() {
                a.check_hop_conservation(
                    i as u32 + 1,
                    h.enqueued,
                    h.dequeued,
                    h.qdisc.len_pkts(),
                    self.now(),
                );
            }
            if let Some(imp) = &self.impair {
                if self.hops.is_empty() {
                    a.check_impairments(&imp.stats(), self.now());
                } else {
                    // The dequeue cross-check compares against the
                    // primary bottleneck's trace stream, which no longer
                    // sees every final-leg departure once routes span
                    // extra hops; only the layer's internal balance is
                    // checkable here.
                    a.check_impairments_balance(&imp.stats(), self.now());
                }
            }
        }
    }

    /// True when at least one observer (sink or auditor) wants events.
    fn tracing(&self) -> bool {
        self.audit.is_some() || !self.sinks.is_empty()
    }

    fn emit(&mut self, ev: TraceEvent) {
        if let Some(audit) = &mut self.audit {
            audit.on_event(&ev);
        }
        for sink in &mut self.sinks {
            sink.on_event(&ev);
        }
    }

    /// Forward an extra-hop event (`hop >= 1`) to the attached sinks via
    /// the [`TraceSink::on_hop_event`] side channel. Hop streams bypass
    /// the auditor and the primary-stream hook, so the hop-0 trace schema
    /// (and every golden file pinned to it) is unchanged; sinks that care
    /// about hops (timeline exporters) opt in by overriding the hook.
    fn emit_hop(&mut self, hop: u32, ev: TraceEvent) {
        for sink in &mut self.sinks {
            sink.on_hop_event(hop, &ev);
        }
    }

    /// Register a flow with the given path; returns its dense id. The
    /// flow starts on the default route `[0]` (primary bottleneck only);
    /// see [`SimCore::set_route`].
    pub fn register_flow(&mut self, path: PathConf, label: &str) -> FlowId {
        let id = FlowId(self.paths.len() as u32);
        self.paths.push(path);
        self.routes.push(Vec::new());
        for row in &mut self.hop_flow_bytes {
            row.push(0);
        }
        self.monitor.register_flow(label);
        id
    }

    /// Path configuration of a registered flow.
    pub fn path(&self, flow: FlowId) -> PathConf {
        self.paths[flow.idx()]
    }

    /// Replace a flow's path delays (the handler behind
    /// [`Event::SetPath`]). In-flight packets keep their old delay.
    pub fn set_path(&mut self, flow: FlowId, path: PathConf) {
        self.paths[flow.idx()] = path;
    }

    /// Number of registered flows.
    pub fn flow_count(&self) -> usize {
        self.paths.len()
    }

    /// Add a store-and-forward hop past the primary bottleneck and return
    /// its hop id (hop 0 is the primary bottleneck, so the first call
    /// returns 1). `prop` is the ingress propagation delay from the
    /// previous hop on a route to this one. If the hop's qdisc runs a
    /// periodic controller, its update tick is scheduled here.
    ///
    /// Hops are structural configuration: add them (and set routes)
    /// before running, and rebuild the same topology before restoring a
    /// checkpoint.
    pub fn add_hop(&mut self, qdisc: Box<dyn Qdisc>, prop: Duration) -> u32 {
        let id = (self.hops.len() + 1) as u32;
        if let Some(iv) = qdisc.update_interval() {
            self.events.push(self.now() + iv, Event::HopAqmUpdate(id));
        }
        self.hops.push(HopState {
            qdisc,
            prop,
            transmitting: false,
            ser_cache: (0, 0, Duration::ZERO),
            enqueued: 0,
            dequeued: 0,
        });
        self.hop_flow_bytes.push(vec![0; self.paths.len()]);
        id
    }

    /// Total number of hops (the primary bottleneck plus extra hops).
    pub fn hop_count(&self) -> usize {
        1 + self.hops.len()
    }

    /// Steer a flow across `route`, a non-empty sequence of distinct hop
    /// ids in traversal order. Hop 0 (the primary bottleneck) may only
    /// lead a route: sources inject at the first hop directly, so a
    /// mid-route hop 0 would need an ingress delay it does not have.
    ///
    /// # Panics
    /// Panics on an empty route, an unknown hop id, a revisited hop, or
    /// hop 0 in a non-leading position.
    pub fn set_route(&mut self, flow: FlowId, route: Vec<u32>) {
        assert!(!route.is_empty(), "a route needs at least one hop");
        for (i, &h) in route.iter().enumerate() {
            assert!(
                (h as usize) < self.hop_count(),
                "route names unknown hop {h} (only {} exist)",
                self.hop_count()
            );
            assert!(
                h != 0 || i == 0,
                "hop 0 (the primary bottleneck) may only lead a route"
            );
            assert!(!route[..i].contains(&h), "route revisits hop {h}");
        }
        self.routes[flow.idx()] = route;
    }

    /// A flow's hop route in traversal order (`[0]` for default flows).
    pub fn route(&self, flow: FlowId) -> &[u32] {
        let r = &self.routes[flow.idx()];
        if r.is_empty() {
            &[0]
        } else {
            r
        }
    }

    /// The hop after `hop` on `flow`'s route, or `None` when `hop` is the
    /// flow's last (or is not on the route at all).
    fn next_hop(&self, flow: FlowId, hop: u32) -> Option<u32> {
        let route = self.route(flow);
        let pos = route.iter().position(|&h| h == hop)?;
        route.get(pos + 1).copied()
    }

    /// A hop's queueing discipline (hop 0 is the primary bottleneck).
    pub fn hop_qdisc(&self, hop: u32) -> &dyn Qdisc {
        if hop == 0 {
            self.queue.as_ref()
        } else {
            self.hops[(hop - 1) as usize].qdisc.as_ref()
        }
    }

    /// Post-warmup per-flow egress bytes at `hop`, indexed by flow id —
    /// the raw material for per-hop fairness indices.
    pub fn hop_flow_bytes(&self, hop: u32) -> &[u64] {
        &self.hop_flow_bytes[hop as usize]
    }

    /// Hand a data packet to the first hop on its flow's route (the
    /// primary bottleneck for default flows). The AQM verdict is applied
    /// here; a dropped packet simply disappears (the sender must infer the
    /// loss from the ACK stream).
    pub fn send_packet(&mut self, pkt: Packet) {
        let first = self.route(pkt.flow)[0];
        if first != 0 {
            self.send_packet_at_hop(first, pkt);
            return;
        }
        let now = self.now();
        let flow = pkt.flow;
        let size = pkt.size;
        let seq = pkt.seq;
        let ecn = pkt.ecn;
        let decision = self.queue.offer(pkt, now, &mut self.rng);
        self.monitor.record_send(flow, size, decision, now);
        match decision.action {
            Action::Drop => self.counters.note_drop(flow),
            Action::Mark => {
                self.counters.note_mark(flow);
                self.counters.note_enqueue(flow);
            }
            Action::Pass => self.counters.note_enqueue(flow),
        }
        if let Some(m) = &mut self.metrics {
            match decision.action {
                Action::Drop => m.note_drop(),
                Action::Mark => {
                    m.note_mark();
                    m.note_enqueue(crate::packet::Ecn::Ce);
                }
                Action::Pass => m.note_enqueue(ecn),
            }
        }
        if self.tracing() {
            match decision.action {
                Action::Drop => self.emit(TraceEvent::Drop {
                    t: now,
                    flow,
                    seq,
                    prob: decision.prob,
                }),
                Action::Mark => {
                    self.emit(TraceEvent::Mark {
                        t: now,
                        flow,
                        seq,
                        prob: decision.prob,
                    });
                    self.emit(TraceEvent::Enqueue {
                        t: now,
                        flow,
                        seq,
                        ecn: crate::packet::Ecn::Ce,
                    });
                }
                Action::Pass => self.emit(TraceEvent::Enqueue {
                    t: now,
                    flow,
                    seq,
                    ecn,
                }),
            }
        }
        if decision.action != Action::Drop && !self.transmitting {
            // The qdisc contract after a non-Drop verdict guarantees only
            // that the offered packet sits in *some* internal queue. A
            // multi-queue qdisc (DualPI2, fq) may legitimately hold other
            // packets that were invisible to `head_size()` while the link
            // idled, so "exactly one packet" would over-assert.
            debug_assert!(
                !self.queue.is_empty(),
                "a non-drop admission must leave the qdisc non-empty"
            );
            self.start_transmission();
        }
    }

    /// Send an ACK back to the flow's sender over the reverse path. With
    /// the impairment layer attached the ACK may be lost, jittered (and
    /// thus reordered against its neighbours), or duplicated.
    pub fn send_ack(&mut self, ack: Ack) {
        let rev = self.paths[ack.flow.idx()].rev;
        let at = self.now() + rev;
        let Some(imp) = &mut self.impair else {
            let h = self.acks.insert(ack);
            self.events.push(at, Event::AckArrive(h));
            return;
        };
        let fate = imp.reverse();
        // A duplicated ACK gets its own pool slot: each in-flight copy is
        // resolved (and its slot recycled) independently.
        if let Some(extra) = fate.delay {
            let h = self.acks.insert(ack);
            self.events.push(at + extra, Event::AckArrive(h));
        }
        if let Some(extra) = fate.dup_delay {
            let h = self.acks.insert(ack);
            self.events.push(at + extra, Event::AckArrive(h));
        }
    }

    /// Arm a timer for `flow`; returns the arming id. A source should keep
    /// the id and ignore timer events whose id it no longer expects (lazy
    /// cancellation).
    pub fn schedule_timer(&mut self, flow: FlowId, kind: TimerKind, delay: Duration) -> u64 {
        let id = self.timer_seq;
        self.timer_seq += 1;
        let at = self.now() + delay.max_zero();
        self.events.push(at, Event::Timer { flow, kind, id });
        id
    }

    /// Schedule an arbitrary event (used by scenario scripts for rate
    /// changes and source on/off steps).
    pub fn schedule(&mut self, at: Time, event: Event) {
        self.events.push(at, event);
    }

    fn start_transmission(&mut self) {
        if let Some(size) = self.queue.head_size() {
            self.transmitting = true;
            let rate = self.queue.rate_bps();
            let tx = if self.ser_cache.0 == size && self.ser_cache.1 == rate {
                self.ser_cache.2
            } else {
                let tx = Duration::serialization(size, rate);
                self.ser_cache = (size, rate, tx);
                tx
            };
            let at = self.now() + tx;
            self.events.push(at, Event::Dequeue);
        } else {
            self.transmitting = false;
        }
    }

    /// Handle completion of the head packet's transmission: restart the
    /// link and forward the packet to its receiver. The `Deliver` event
    /// takes ownership of the packet — this is the per-packet hot path,
    /// and it performs no allocation beyond the (amortized, pre-reserved)
    /// event-heap slot.
    fn handle_dequeue(&mut self) {
        let now = self.now();
        let (pkt, sojourn) = self
            .queue
            .pop(now)
            .expect("Dequeue event fired on an empty queue");
        if self.monitor.postwarm_at(now) {
            self.hop_flow_bytes[0][pkt.flow.idx()] += pkt.size as u64;
        }
        let next = self.next_hop(pkt.flow, 0);
        if next.is_none() {
            // End-to-end measurement happens where the packet leaves the
            // last queue on its route; for default flows that is here.
            self.monitor.record_dequeue(pkt.flow, pkt.size, sojourn, now);
            self.counters.note_dequeue(pkt.flow);
            if let Some(m) = &mut self.metrics {
                m.note_dequeue(sojourn);
            }
        }
        if self.tracing() {
            self.emit(TraceEvent::Dequeue {
                t: now,
                flow: pkt.flow,
                seq: pkt.seq,
                sojourn,
            });
        }
        self.start_transmission();
        match next {
            None => self.forward_final(pkt, now),
            Some(n) => self.forward_to_hop(n, pkt, now),
        }
    }

    /// Final leg past the last hop: the flow's forward propagation (and
    /// the impairment layer, when attached) ending in a `Deliver` event.
    fn forward_final(&mut self, pkt: Packet, now: Time) {
        let fwd = self.paths[pkt.flow.idx()].fwd;
        let Some(imp) = &mut self.impair else {
            let h = self.packets.insert(pkt);
            self.events.push(now + fwd, Event::Deliver(h));
            return;
        };
        // Impairments act past the bottleneck: the AQM verdict, the queue
        // accounting and the trace stream above are already final, so the
        // audit's enqueue/dequeue conservation is untouched — a lost
        // packet here is invisible to everyone but the endpoints.
        let fate = imp.forward();
        if let Some(extra) = fate.delay {
            if let Some(dup_extra) = fate.dup_delay {
                let mut copy = pkt.clone();
                copy.path_dup = true;
                let h = self.packets.insert(copy);
                self.events.push(now + fwd + dup_extra, Event::Deliver(h));
            }
            let h = self.packets.insert(pkt);
            self.events.push(now + fwd + extra, Event::Deliver(h));
        }
    }

    /// Park the packet for its inter-hop propagation leg toward hop
    /// `hop`'s admission point.
    fn forward_to_hop(&mut self, hop: u32, pkt: Packet, now: Time) {
        let prop = self.hops[(hop - 1) as usize].prop;
        let h = self.packets.insert(pkt);
        self.events.push(now + prop, Event::HopArrive(hop, h));
    }

    /// First-hop admission at an extra hop: the multi-hop analogue of the
    /// hop-0 path in [`SimCore::send_packet`]. The monitor and counters
    /// record the send and the verdict exactly as at hop 0; events reach
    /// sinks only through the hop side channel ([`SimCore::emit_hop`]) —
    /// the primary trace stream stays the bottleneck's.
    fn send_packet_at_hop(&mut self, hop: u32, pkt: Packet) {
        let now = self.now();
        let flow = pkt.flow;
        let size = pkt.size;
        let seq = pkt.seq;
        let ecn = pkt.ecn;
        let decision = self.hops[(hop - 1) as usize]
            .qdisc
            .offer(pkt, now, &mut self.rng);
        self.monitor.record_send(flow, size, decision, now);
        match decision.action {
            Action::Drop => self.counters.note_drop(flow),
            Action::Mark => {
                self.counters.note_mark(flow);
                self.counters.note_enqueue(flow);
            }
            Action::Pass => self.counters.note_enqueue(flow),
        }
        if let Some(m) = &mut self.metrics {
            match decision.action {
                Action::Drop => m.note_drop(),
                Action::Mark => {
                    m.note_mark();
                    m.note_enqueue(crate::packet::Ecn::Ce);
                }
                Action::Pass => m.note_enqueue(ecn),
            }
        }
        if !self.sinks.is_empty() {
            self.emit_hop_verdict(hop, now, flow, seq, ecn, decision);
        }
        if decision.action != Action::Drop {
            self.note_hop_admission(hop);
        }
    }

    /// Render an admission verdict at an extra hop as hop trace events,
    /// following the same Mark⇒Enqueue contract as the hop-0 stream.
    fn emit_hop_verdict(
        &mut self,
        hop: u32,
        now: Time,
        flow: FlowId,
        seq: u64,
        ecn: crate::packet::Ecn,
        decision: Decision,
    ) {
        match decision.action {
            Action::Drop => self.emit_hop(
                hop,
                TraceEvent::Drop {
                    t: now,
                    flow,
                    seq,
                    prob: decision.prob,
                },
            ),
            Action::Mark => {
                self.emit_hop(
                    hop,
                    TraceEvent::Mark {
                        t: now,
                        flow,
                        seq,
                        prob: decision.prob,
                    },
                );
                self.emit_hop(
                    hop,
                    TraceEvent::Enqueue {
                        t: now,
                        flow,
                        seq,
                        ecn: crate::packet::Ecn::Ce,
                    },
                );
            }
            Action::Pass => self.emit_hop(
                hop,
                TraceEvent::Enqueue {
                    t: now,
                    flow,
                    seq,
                    ecn,
                },
            ),
        }
    }

    /// Mid-route admission at an extra hop (the handler behind
    /// [`Event::HopArrive`]). The packet was already counted as sent at
    /// its first hop, so only the verdict is recorded here.
    fn hop_admit(&mut self, hop: u32, pkt: Packet) {
        let now = self.now();
        let flow = pkt.flow;
        let seq = pkt.seq;
        let ecn = pkt.ecn;
        let decision = self.hops[(hop - 1) as usize]
            .qdisc
            .offer(pkt, now, &mut self.rng);
        self.monitor.record_decision(flow, decision, now);
        match decision.action {
            Action::Drop => {
                self.counters.note_drop(flow);
                if let Some(m) = &mut self.metrics {
                    m.note_drop();
                }
            }
            Action::Mark => {
                self.counters.note_mark(flow);
                if let Some(m) = &mut self.metrics {
                    m.note_mark();
                }
            }
            Action::Pass => {}
        }
        if !self.sinks.is_empty() {
            self.emit_hop_verdict(hop, now, flow, seq, ecn, decision);
        }
        if decision.action != Action::Drop {
            self.note_hop_admission(hop);
        }
    }

    /// Book a non-drop admission at an extra hop and kick its link if
    /// idle.
    fn note_hop_admission(&mut self, hop: u32) {
        let hs = &mut self.hops[(hop - 1) as usize];
        hs.enqueued += 1;
        if !hs.transmitting {
            debug_assert!(
                !hs.qdisc.is_empty(),
                "a non-drop admission must leave the hop qdisc non-empty"
            );
            self.start_hop_transmission(hop);
        }
    }

    /// [`SimCore::start_transmission`] for an extra hop.
    fn start_hop_transmission(&mut self, hop: u32) {
        let now = self.events.now();
        let hs = &mut self.hops[(hop - 1) as usize];
        if let Some(size) = hs.qdisc.head_size() {
            hs.transmitting = true;
            let rate = hs.qdisc.rate_bps();
            let tx = if hs.ser_cache.0 == size && hs.ser_cache.1 == rate {
                hs.ser_cache.2
            } else {
                let tx = Duration::serialization(size, rate);
                hs.ser_cache = (size, rate, tx);
                tx
            };
            self.events.push(now + tx, Event::HopDequeue(hop));
        } else {
            hs.transmitting = false;
        }
    }

    /// [`SimCore::handle_dequeue`] for an extra hop: pop, restart the
    /// hop's link, and forward — to the next hop on the flow's route, or
    /// onto the final propagation leg when this hop is the last.
    fn handle_hop_dequeue(&mut self, hop: u32) {
        let now = self.now();
        let (pkt, sojourn) = self.hops[(hop - 1) as usize]
            .qdisc
            .pop(now)
            .expect("HopDequeue event fired on an empty hop queue");
        self.hops[(hop - 1) as usize].dequeued += 1;
        if self.monitor.postwarm_at(now) {
            self.hop_flow_bytes[hop as usize][pkt.flow.idx()] += pkt.size as u64;
        }
        let next = self.next_hop(pkt.flow, hop);
        if next.is_none() {
            self.monitor.record_dequeue(pkt.flow, pkt.size, sojourn, now);
            self.counters.note_dequeue(pkt.flow);
            if let Some(m) = &mut self.metrics {
                m.note_dequeue(sojourn);
            }
        }
        if !self.sinks.is_empty() {
            self.emit_hop(
                hop,
                TraceEvent::Dequeue {
                    t: now,
                    flow: pkt.flow,
                    seq: pkt.seq,
                    sojourn,
                },
            );
        }
        self.start_hop_transmission(hop);
        match next {
            None => self.forward_final(pkt, now),
            Some(n) => self.forward_to_hop(n, pkt, now),
        }
    }

    /// Periodic controller tick for an extra hop's AQM (the handler
    /// behind [`Event::HopAqmUpdate`]). Hop controllers are not sampled
    /// into the monitor or the primary trace stream — those remain the
    /// bottleneck's instruments — but their post-update state reaches
    /// sinks through the hop side channel for timeline export. `probe()`
    /// is a pure read of controller state, so taking it cannot perturb
    /// the run.
    fn handle_hop_aqm_update(&mut self, hop: u32) {
        let now = self.now();
        let idx = (hop - 1) as usize;
        self.hops[idx].qdisc.update(now);
        if !self.sinks.is_empty() {
            let state = self.hops[idx].qdisc.probe();
            for sink in &mut self.sinks {
                sink.on_hop_aqm_state(hop, now, &state);
            }
        }
        if let Some(iv) = self.hops[idx].qdisc.update_interval() {
            self.events.push(now + iv, Event::HopAqmUpdate(hop));
        }
    }

    /// Serialize every piece of live core state in a fixed order: the
    /// event queue (canonical `(time, seq)`-sorted pending list plus
    /// clock and lifetime counters), the RNG stream, the qdisc, the
    /// monitor, the per-flow counters, both in-flight pools
    /// (slot-positional, so `Deliver`/`AckArrive` handles inside pending
    /// events stay valid), optional metrics and impairment state, the
    /// link-busy flag, the timer arming counter, and the per-flow paths.
    ///
    /// Trace sinks, the auditor and the profiler are pure observers and
    /// are not checkpointed; the one-entry serialization cache is pure
    /// (a hit and a recompute agree) and restores cold.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.time(self.events.now());
        w.u64(self.events.pushed());
        w.u64(self.events.popped());
        let entries = self.events.entries_sorted();
        w.usize(entries.len());
        for e in entries {
            w.time(e.time);
            w.u64(e.seq);
            write_event(w, &e.event);
        }
        for word in self.rng.state() {
            w.u64(word);
        }
        self.queue.save_ckpt(w);
        self.monitor.save_ckpt(w);
        self.counters.save_ckpt(w);
        self.packets.save_ckpt(w, write_packet);
        self.acks.save_ckpt(w, write_ack);
        match &self.metrics {
            Some(m) => {
                w.bool(true);
                m.save_ckpt(w);
            }
            None => w.bool(false),
        }
        match &self.impair {
            Some(i) => {
                w.bool(true);
                i.save_ckpt(w);
            }
            None => w.bool(false),
        }
        w.bool(self.transmitting);
        w.u64(self.timer_seq);
        w.usize(self.paths.len());
        for p in &self.paths {
            w.duration(p.fwd);
            w.duration(p.rev);
        }
        // Extra hops (routes and ingress delays are structural config,
        // covered by the schema hash; only mutable state is serialized).
        w.usize(self.hops.len());
        for h in &self.hops {
            h.qdisc.save_ckpt(w);
            w.bool(h.transmitting);
            w.u64(h.enqueued);
            w.u64(h.dequeued);
        }
        for row in &self.hop_flow_bytes {
            w.usize(row.len());
            for b in row {
                w.u64(*b);
            }
        }
    }

    /// Restore state captured by [`SimCore::save_ckpt`] into a core built
    /// with the same structural configuration (same qdisc family, same
    /// registered flows, impairment layer attached iff the snapshot had
    /// one). Replay from the restored state is bit-identical to the run
    /// the snapshot was taken from.
    pub fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let now = r.time()?;
        let pushed = r.u64()?;
        let popped = r.u64()?;
        let n = r.usize()?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let time = r.time()?;
            let seq = r.u64()?;
            let event = read_event(r)?;
            if time < now {
                return Err(CkptError::Corrupt("pending event precedes restored clock"));
            }
            if seq >= pushed {
                return Err(CkptError::Corrupt("pending event seq exceeds push counter"));
            }
            entries.push(EventEntry { time, seq, event });
        }
        self.events = EventQueue::from_parts(now, pushed, popped, entries);
        let state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        self.rng = Rng::from_state(state);
        self.queue.restore_ckpt(r)?;
        self.monitor.restore_ckpt(r)?;
        self.counters.restore_ckpt(r)?;
        self.packets = Pool::restore_ckpt(r, read_packet)?;
        self.acks = Pool::restore_ckpt(r, read_ack)?;
        if r.bool()? {
            self.enable_metrics();
            self.metrics
                .as_mut()
                .expect("metrics just enabled")
                .restore_ckpt(r)?;
        } else {
            self.metrics = None;
        }
        let impair_present = r.bool()?;
        match (&mut self.impair, impair_present) {
            (Some(imp), true) => imp.restore_ckpt(r)?,
            (None, false) => {}
            // The impairment layer's configuration (rates, jitter bounds)
            // is not in the blob; the caller must rebuild the sim with the
            // same `LinkImpairments` before restoring.
            _ => return Err(CkptError::Corrupt("impairment layer presence mismatch")),
        }
        self.transmitting = r.bool()?;
        self.timer_seq = r.u64()?;
        if r.usize()? != self.paths.len() {
            return Err(CkptError::Corrupt("flow path count mismatch"));
        }
        for p in &mut self.paths {
            p.fwd = r.duration()?;
            p.rev = r.duration()?;
        }
        if r.usize()? != self.hops.len() {
            return Err(CkptError::Corrupt("hop count mismatch"));
        }
        for h in &mut self.hops {
            h.qdisc.restore_ckpt(r)?;
            h.transmitting = r.bool()?;
            h.enqueued = r.u64()?;
            h.dequeued = r.u64()?;
            h.ser_cache = (0, 0, Duration::ZERO);
        }
        for row in &mut self.hop_flow_bytes {
            if r.usize()? != row.len() {
                return Err(CkptError::Corrupt("hop flow-byte row length mismatch"));
            }
            for b in row {
                *b = r.u64()?;
            }
        }
        self.ser_cache = (0, 0, Duration::ZERO);
        Ok(())
    }
}

/// Encode one pending event (checkpointing). Tags are append-only: new
/// variants must take fresh numbers so old blobs keep decoding.
fn write_event(w: &mut CkptWriter, ev: &Event) {
    match ev {
        Event::Dequeue => w.u8(0),
        Event::Deliver(h) => {
            w.u8(1);
            w.u32(*h);
        }
        Event::AckArrive(h) => {
            w.u8(2);
            w.u32(*h);
        }
        Event::Timer { flow, kind, id } => {
            w.u8(3);
            w.u32(flow.0);
            match kind {
                TimerKind::Rto => w.u8(0),
                TimerKind::Send => w.u8(1),
                TimerKind::User(k) => {
                    w.u8(2);
                    w.u32(*k);
                }
            }
            w.u64(*id);
        }
        Event::AqmUpdate => w.u8(4),
        Event::Sample => w.u8(5),
        Event::SetLinkRate(rate) => {
            w.u8(6);
            w.u64(*rate);
        }
        Event::SourceOn(f) => {
            w.u8(7);
            w.u32(f.0);
        }
        Event::SourceOff(f) => {
            w.u8(8);
            w.u32(f.0);
        }
        Event::SetPath(f, p) => {
            w.u8(9);
            w.u32(f.0);
            w.duration(p.fwd);
            w.duration(p.rev);
        }
        Event::HopDequeue(hop) => {
            w.u8(10);
            w.u32(*hop);
        }
        Event::HopArrive(hop, h) => {
            w.u8(11);
            w.u32(*hop);
            w.u32(*h);
        }
        Event::HopAqmUpdate(hop) => {
            w.u8(12);
            w.u32(*hop);
        }
    }
}

/// Decode one pending event written by [`write_event`].
fn read_event(r: &mut CkptReader) -> Result<Event, CkptError> {
    Ok(match r.u8()? {
        0 => Event::Dequeue,
        1 => Event::Deliver(r.u32()?),
        2 => Event::AckArrive(r.u32()?),
        3 => {
            let flow = FlowId(r.u32()?);
            let kind = match r.u8()? {
                0 => TimerKind::Rto,
                1 => TimerKind::Send,
                2 => TimerKind::User(r.u32()?),
                _ => return Err(CkptError::Corrupt("unknown timer kind tag")),
            };
            let id = r.u64()?;
            Event::Timer { flow, kind, id }
        }
        4 => Event::AqmUpdate,
        5 => Event::Sample,
        6 => Event::SetLinkRate(r.u64()?),
        7 => Event::SourceOn(FlowId(r.u32()?)),
        8 => Event::SourceOff(FlowId(r.u32()?)),
        9 => {
            let f = FlowId(r.u32()?);
            let fwd = r.duration()?;
            let rev = r.duration()?;
            Event::SetPath(f, PathConf { fwd, rev })
        }
        10 => Event::HopDequeue(r.u32()?),
        11 => {
            let hop = r.u32()?;
            Event::HopArrive(hop, r.u32()?)
        }
        12 => Event::HopAqmUpdate(r.u32()?),
        _ => return Err(CkptError::Corrupt("unknown event tag")),
    })
}

/// A traffic source/sink pair for one flow. The same object holds both the
/// sender and the receiver side; the simulated network between them is the
/// event queue.
pub trait Source {
    /// Called when the source is switched on (start of its traffic).
    fn on_start(&mut self, core: &mut SimCore);

    /// Called when the source is switched off; it must stop generating new
    /// data (in-flight packets may still drain).
    fn on_stop(&mut self, core: &mut SimCore) {
        let _ = core;
    }

    /// A data packet of this flow arrived at the receiver.
    fn on_deliver(&mut self, pkt: Packet, core: &mut SimCore);

    /// An ACK of this flow arrived back at the sender.
    fn on_ack(&mut self, ack: Ack, core: &mut SimCore) {
        let _ = (ack, core);
    }

    /// A timer armed via [`SimCore::schedule_timer`] fired.
    fn on_timer(&mut self, kind: TimerKind, id: u64, core: &mut SimCore) {
        let _ = (kind, id, core);
    }

    /// Serialize the source's mutable state (checkpointing). The default
    /// writes nothing, matching sources whose behaviour is a pure
    /// function of their configuration and the events delivered to them.
    /// A stateful source must write every field that influences future
    /// behaviour, in a fixed order mirrored by
    /// [`restore_ckpt`](Source::restore_ckpt).
    fn save_ckpt(&self, w: &mut CkptWriter) {
        let _ = w;
    }

    /// Restore state captured by [`Source::save_ckpt`]. The default reads
    /// nothing.
    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let _ = r;
        Ok(())
    }
}

/// Top-level simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Bottleneck queue and link parameters.
    pub queue: QueueConfig,
    /// Root RNG seed; identical seeds give bit-identical runs.
    pub seed: u64,
    /// Measurement configuration.
    pub monitor: MonitorConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            queue: QueueConfig::default(),
            seed: 1,
            monitor: MonitorConfig::default(),
        }
    }
}

/// Display names of the event classes the self-profiler attributes time
/// to, indexed by [`event_class`]. One entry per [`Event`] variant.
pub const EVENT_CLASSES: [&str; 13] = [
    "dequeue",
    "deliver",
    "ack",
    "timer",
    "aqm_update",
    "sample",
    "set_link_rate",
    "source_on",
    "source_off",
    "set_path",
    "hop_dequeue",
    "hop_arrive",
    "hop_aqm_update",
];

/// The profiler class index of an event (an index into
/// [`EVENT_CLASSES`]).
pub fn event_class(ev: &Event) -> usize {
    match ev {
        Event::Dequeue => 0,
        Event::Deliver(_) => 1,
        Event::AckArrive(_) => 2,
        Event::Timer { .. } => 3,
        Event::AqmUpdate => 4,
        Event::Sample => 5,
        Event::SetLinkRate(_) => 6,
        Event::SourceOn(_) => 7,
        Event::SourceOff(_) => 8,
        Event::SetPath(..) => 9,
        Event::HopDequeue(_) => 10,
        Event::HopArrive(..) => 11,
        Event::HopAqmUpdate(_) => 12,
    }
}

/// Checkpoint format version written by [`Sim::save`]; bumped whenever
/// the field layout changes incompatibly. Version 2 added the multi-hop
/// topology section (per-hop qdisc state, admission counters and per-hop
/// per-flow egress bytes). Version 3 added the hybrid-mode background
/// section (presence flag, capacity-stealing bookkeeping, the aggregate
/// rate track and the aggregate's own state).
pub const CKPT_VERSION: u32 = 3;

/// The complete simulator: shared core + traffic sources.
pub struct Sim {
    /// Shared state (clock, queue, paths, monitor).
    pub core: SimCore,
    sources: Vec<Box<dyn Source>>,
    profiler: Option<Box<LoopProfiler>>,
    background: Option<Background>,
}

impl Sim {
    /// Build a simulator with the given AQM attached to a FIFO bottleneck.
    pub fn new(cfg: SimConfig, aqm: Box<dyn crate::aqm::Aqm>) -> Self {
        let queue = BottleneckQueue::new(cfg.queue, aqm);
        Sim::with_qdisc(cfg, Box::new(queue))
    }

    /// Build a simulator around an arbitrary queueing discipline (e.g. the
    /// DualQ Coupled AQM, which owns two internal queues). The rate and
    /// buffer in `cfg.queue` are ignored — the qdisc carries its own.
    pub fn with_qdisc(cfg: SimConfig, qdisc: Box<dyn Qdisc>) -> Self {
        let mut core = SimCore::new(qdisc, cfg.seed, cfg.monitor);
        // Debug-default runtime auditing: debug builds audit every run
        // (set PI2_AUDIT=0 to opt out), release builds only on PI2_AUDIT=1
        // or an explicit `enable_audit`. The auditor is a pure observer,
        // so this cannot change any run's outcome — only catch corruption.
        let audit_on = match std::env::var("PI2_AUDIT").ok().as_deref() {
            Some("0") | Some("off") | Some("false") => false,
            Some(_) => true,
            None => cfg!(debug_assertions),
        };
        if audit_on {
            core.enable_audit(AuditSink::new(cfg.seed));
        }
        // Pending events are bounded by in-flight packets + per-flow
        // timers, not run length; one up-front reservation keeps the heap
        // from regrowing on the per-event hot path.
        core.events.reserve(4096);
        // Pool occupancy is bounded the same way (packets in forward
        // flight, ACKs in reverse flight), so size the slabs alongside.
        core.packets.reserve(2048);
        core.acks.reserve(2048);
        if let Some(iv) = core.queue.update_interval() {
            core.events.push(Time::ZERO + iv, Event::AqmUpdate);
        }
        let sample_iv = core.monitor.sample_interval();
        core.events.push(Time::ZERO + sample_iv, Event::Sample);
        let mut sim = Sim {
            core,
            sources: Vec::new(),
            profiler: None,
            background: None,
        };
        // PI2_PROFILE=1 turns on the event-loop self-profiler (same as
        // `pi2sim --profile` / `enable_profiler`). Off is free: without a
        // profiler the dispatch loop performs no clock reads at all.
        if matches!(
            std::env::var("PI2_PROFILE").ok().as_deref(),
            Some(v) if !matches!(v, "0" | "off" | "false")
        ) {
            sim.enable_profiler();
        }
        sim
    }

    /// Attach the event-loop self-profiler: every subsequent event's
    /// handler is timed with two monotonic-clock reads and attributed to
    /// its class (see [`EVENT_CLASSES`]). Wall-clock readings never feed
    /// back into simulation state, so profiled runs stay bit-identical.
    pub fn enable_profiler(&mut self) {
        if self.profiler.is_none() {
            self.profiler = Some(Box::new(LoopProfiler::new(&EVENT_CLASSES)));
        }
    }

    /// Detach and return the profiler, stopping further timing.
    pub fn take_profiler(&mut self) -> Option<Box<LoopProfiler>> {
        self.profiler.take()
    }

    /// The attached profiler, if profiling is enabled.
    pub fn profiler(&self) -> Option<&LoopProfiler> {
        self.profiler.as_deref()
    }

    /// Add a flow: registers the path, constructs the source via `make`
    /// (which receives the assigned [`FlowId`]), and schedules its start.
    pub fn add_flow<F>(&mut self, path: PathConf, label: &str, start: Time, make: F) -> FlowId
    where
        F: FnOnce(FlowId) -> Box<dyn Source>,
    {
        let id = self.core.register_flow(path, label);
        self.sources.push(make(id));
        self.core.events.push(start, Event::SourceOn(id));
        id
    }

    /// Schedule a flow to stop at `at`.
    pub fn stop_flow_at(&mut self, flow: FlowId, at: Time) {
        self.core.events.push(at, Event::SourceOff(flow));
    }

    /// Schedule an already-registered flow to (re)start at `at` — with
    /// [`Self::stop_flow_at`], the building block for scripted flow churn.
    pub fn start_flow_at(&mut self, flow: FlowId, at: Time) {
        self.core.events.push(at, Event::SourceOn(flow));
    }

    /// Schedule a bottleneck rate change at `at`.
    pub fn set_rate_at(&mut self, at: Time, rate_bps: u64) {
        self.core.events.push(at, Event::SetLinkRate(rate_bps));
    }

    /// Schedule an RTT step for one flow: from `at`, its path becomes the
    /// symmetric split of `rtt`. In-flight packets keep their old delay.
    pub fn set_rtt_at(&mut self, flow: FlowId, at: Time, rtt: Duration) {
        self.core
            .events
            .push(at, Event::SetPath(flow, PathConf::symmetric(rtt)));
    }

    /// Schedule an arbitrary disturbance event (rate steps, RTT steps,
    /// flow churn) — the generic form of the helpers above, forwarding to
    /// [`SimCore::schedule`].
    pub fn schedule(&mut self, at: Time, event: Event) {
        self.core.schedule(at, event);
    }

    /// Add a store-and-forward hop past the primary bottleneck
    /// (forwarding to [`SimCore::add_hop`]); returns the hop id.
    pub fn add_hop(&mut self, qdisc: Box<dyn Qdisc>, prop: Duration) -> u32 {
        self.core.add_hop(qdisc, prop)
    }

    /// Steer a flow across a hop route (forwarding to
    /// [`SimCore::set_route`]).
    pub fn set_route(&mut self, flow: FlowId, route: Vec<u32>) {
        self.core.set_route(flow, route);
    }

    /// Attach a hybrid-mode background aggregate (see
    /// [`crate::background`]). The nominal capacity it steals from is the
    /// bottleneck's current rate; subsequent `SetLinkRate` events move
    /// that nominal capacity and re-grant against it. Attach before
    /// running (and before `restore` — the aggregate is part of the
    /// checkpoint schema).
    pub fn attach_background(&mut self, agg: Box<dyn BackgroundAggregate>) {
        let cap = self.core.queue.rate_bps();
        self.background = Some(Background::new(agg, cap));
    }

    /// The attached background aggregate, if the run is hybrid.
    pub fn background(&self) -> Option<&Background> {
        self.background.as_ref()
    }

    /// Advance the attached background aggregate one coupling tick and
    /// re-split the bottleneck capacity. No-op without an attachment, so
    /// packet-only runs take no extra work (and no `probe()` read).
    fn background_tick(&mut self, now: Time, state: &crate::aqm::AqmState) {
        let Some(dt) = self.core.queue.update_interval() else {
            return;
        };
        let Some(bg) = &mut self.background else {
            return;
        };
        let bps = bg
            .agg
            .on_tick(dt, state.prob, state.scalable_prob, state.qdelay);
        let granted = bps.min(bg.grant_ceiling());
        bg.bg_bytes += granted as f64 * dt.as_secs_f64() / 8.0;
        bg.ticks += 1;
        bg.series.push((now, granted));
        let changed = granted != bg.applied_bps;
        let fg_rate = bg.capacity_bps - granted;
        bg.applied_bps = granted;
        // Only touch the qdisc when the split actually moved: an aggregate
        // that never ramps (zero background flows) leaves the bottleneck
        // untouched, keeping the run identical to a packet-only one.
        if changed {
            self.core.queue.set_rate_bps(fg_rate);
        }
    }

    /// Structural fingerprint of this simulator build: format version,
    /// flow count and monitor flow labels. Values are deliberately
    /// excluded — the hash changes exactly when a restore would write
    /// state into the wrong slots. (The qdisc family cannot be folded in
    /// because [`Qdisc`] carries no name; mismatched qdiscs surface as a
    /// `Corrupt` error from the qdisc's own field validation instead.)
    fn schema_hash(&self) -> u64 {
        let mut h = SchemaHasher::new();
        h.update_u64(u64::from(CKPT_VERSION));
        h.update_u64(self.core.flow_count() as u64);
        for i in 0..self.core.flow_count() {
            h.update_str(&self.core.monitor.flow(FlowId(i as u32)).label);
        }
        // Topology shape: hop count and every flow's route. A restore
        // into a differently wired topology would write hop state into
        // the wrong queues.
        h.update_u64(self.core.hop_count() as u64);
        for i in 0..self.core.flow_count() {
            let route = self.core.route(FlowId(i as u32));
            h.update_u64(route.len() as u64);
            for &hop in route {
                h.update_u64(u64::from(hop));
            }
        }
        // Hybrid background shape: a restore must not mix a hybrid
        // snapshot into a packet-only build (or vice versa), nor into a
        // differently shaped aggregate.
        match &self.background {
            Some(bg) => {
                h.update_u64(1);
                h.update_u64(bg.agg.flow_count());
                h.update_u64(bg.agg.schema_fingerprint());
            }
            None => h.update_u64(0),
        }
        h.finish()
    }

    /// Snapshot the complete live simulator state to a deterministic
    /// binary blob: magic, format version, schema hash, the core (see
    /// [`SimCore::save_ckpt`]) and every source's mutable state. Two
    /// snapshots of identical simulator states are byte-identical.
    pub fn save(&self) -> Vec<u8> {
        let mut w = CkptWriter::new();
        w.raw(&pi2_simcore::ckpt::MAGIC);
        w.u32(CKPT_VERSION);
        w.u64(self.schema_hash());
        self.core.save_ckpt(&mut w);
        w.usize(self.sources.len());
        for s in &self.sources {
            s.save_ckpt(&mut w);
        }
        match &self.background {
            Some(bg) => {
                w.bool(true);
                bg.save_ckpt(&mut w);
            }
            None => w.bool(false),
        }
        w.into_bytes()
    }

    /// Restore a snapshot produced by [`Sim::save`] into a freshly built
    /// simulator with the same structural configuration (same qdisc and
    /// parameters, same flows in the same order, same impairment layer).
    /// Replaying from the restored state is bit-identical — same golden
    /// traces, same metrics, same counters — to the run the snapshot came
    /// from; `tests/checkpoint.rs` holds that oracle.
    ///
    /// Events scheduled by construction (the initial `AqmUpdate`/`Sample`
    /// ticks, `SourceOn` starts) are discarded wholesale: the restored
    /// event queue already contains their successors.
    pub fn restore(&mut self, blob: &[u8]) -> Result<(), CkptError> {
        let mut r = CkptReader::new(blob);
        if r.take(pi2_simcore::ckpt::MAGIC.len())? != pi2_simcore::ckpt::MAGIC {
            return Err(CkptError::BadMagic);
        }
        let found = r.u32()?;
        if found != CKPT_VERSION {
            return Err(CkptError::VersionMismatch {
                found,
                expected: CKPT_VERSION,
            });
        }
        let found = r.u64()?;
        let expected = self.schema_hash();
        if found != expected {
            return Err(CkptError::SchemaMismatch { found, expected });
        }
        self.core.restore_ckpt(&mut r)?;
        if r.usize()? != self.sources.len() {
            return Err(CkptError::Corrupt("source count mismatch"));
        }
        for s in &mut self.sources {
            s.restore_ckpt(&mut r)?;
        }
        let has_bg = r.bool()?;
        if has_bg != self.background.is_some() {
            return Err(CkptError::Corrupt("background presence mismatch"));
        }
        if let Some(bg) = &mut self.background {
            bg.restore_ckpt(&mut r)?;
        }
        r.finish()?;
        // Re-apply the capacity split so the foreground drain rate is
        // consistent with the restored grant even if the qdisc snapshot
        // predates the last tick (idempotent when it doesn't).
        if let Some(bg) = &self.background {
            let fg_rate = bg.capacity_bps - bg.applied_bps;
            self.core.queue.set_rate_bps(fg_rate);
        }
        // The auditor (a pure observer, not checkpointed) resumes from the
        // restored occupancy: conservation from here on is
        // baseline + enqueued - dequeued == qlen.
        let qlen = self.core.queue.len_pkts();
        if let Some(a) = &mut self.core.audit {
            a.set_baseline_pkts(qlen);
        }
        Ok(())
    }

    /// Run until the clock reaches `end` (events at exactly `end`
    /// included) or no events remain.
    pub fn run_until(&mut self, end: Time) {
        while let Some(t) = self.core.events.peek_time() {
            if t > end {
                break;
            }
            self.step();
        }
        // Event boundaries are exactly where audited conservation must
        // hold; repeated run_until calls re-verify at each stop point.
        self.core.finish_audit();
    }

    /// Process a single event. Returns false when the event queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((_, event)) = self.core.events.pop() else {
            return false;
        };
        if let Some(p) = &mut self.profiler {
            p.begin(event_class(&event));
        }
        match event {
            Event::Dequeue => {
                self.core.handle_dequeue();
            }
            Event::Deliver(h) => {
                let pkt = self.core.packets.take(h);
                let now = self.core.now();
                self.core.monitor.record_delivered(pkt.flow, pkt.size, now);
                let idx = pkt.flow.idx();
                self.sources[idx].on_deliver(pkt, &mut self.core);
            }
            Event::AckArrive(h) => {
                let ack = self.core.acks.take(h);
                self.sources[ack.flow.idx()].on_ack(ack, &mut self.core);
            }
            Event::Timer { flow, kind, id } => {
                self.sources[flow.idx()].on_timer(kind, id, &mut self.core);
            }
            Event::AqmUpdate => {
                let now = self.core.now();
                self.core.queue.update(now);
                let p = self.core.queue.control_variable();
                self.core.monitor.record_control_variable(p, now);
                self.core.counters.note_aqm_update();
                if self.core.tracing() || self.core.metrics.is_some() {
                    // `probe()` is a pure read of controller state; taking
                    // it for metrics or observers cannot perturb the run.
                    let state = self.core.queue.probe();
                    if let Some(m) = &mut self.core.metrics {
                        m.note_aqm_update(&state);
                    }
                    if let Some(audit) = &mut self.core.audit {
                        audit.on_aqm_state(now, &state);
                    }
                    for sink in &mut self.core.sinks {
                        sink.on_aqm_state(now, &state);
                    }
                    self.background_tick(now, &state);
                } else if self.background.is_some() {
                    let state = self.core.queue.probe();
                    self.background_tick(now, &state);
                }
                if let Some(iv) = self.core.queue.update_interval() {
                    self.core.events.push(now + iv, Event::AqmUpdate);
                }
            }
            Event::Sample => {
                let now = self.core.now();
                self.core.monitor.sample(self.core.queue.as_ref(), now);
                let iv = self.core.monitor.sample_interval();
                self.core.events.push(now + iv, Event::Sample);
            }
            Event::SetLinkRate(rate) => {
                if let Some(bg) = &mut self.background {
                    // Disturbances move the *nominal* capacity; the
                    // aggregate keeps its grant (clamped to the new
                    // foreground floor) and the foreground gets the rest.
                    bg.capacity_bps = rate;
                    let granted = bg.applied_bps.min(bg.grant_ceiling());
                    bg.applied_bps = granted;
                    self.core.queue.set_rate_bps(rate - granted);
                } else {
                    self.core.queue.set_rate_bps(rate);
                }
            }
            Event::SourceOn(flow) => {
                self.sources[flow.idx()].on_start(&mut self.core);
            }
            Event::SourceOff(flow) => {
                self.sources[flow.idx()].on_stop(&mut self.core);
            }
            Event::SetPath(flow, path) => {
                self.core.set_path(flow, path);
            }
            Event::HopDequeue(hop) => {
                self.core.handle_hop_dequeue(hop);
            }
            Event::HopArrive(hop, h) => {
                let pkt = self.core.packets.take(h);
                self.core.hop_admit(hop, pkt);
            }
            Event::HopAqmUpdate(hop) => {
                self.core.handle_hop_aqm_update(hop);
            }
        }
        if let Some(p) = &mut self.profiler {
            p.end();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aqm::PassAqm;
    use crate::packet::Ecn;

    use std::cell::RefCell;
    use std::rc::Rc;

    /// Shared observation log for scripted test sources.
    #[derive(Default)]
    struct ProbeLog {
        delivered: Vec<u64>,
        acked: Vec<u64>,
    }

    /// A scripted source: sends `n` packets back-to-back on start, ACKs
    /// every delivery, and records what it sees into a shared log.
    struct Probe {
        id: FlowId,
        n: u64,
        rcv_pkts: u64,
        log: Rc<RefCell<ProbeLog>>,
    }

    impl Source for Probe {
        fn on_start(&mut self, core: &mut SimCore) {
            for seq in 0..self.n {
                let pkt = Packet::data(self.id, seq, 1000, Ecn::NotEct, core.now());
                core.send_packet(pkt);
            }
        }
        fn on_deliver(&mut self, pkt: Packet, core: &mut SimCore) {
            self.log.borrow_mut().delivered.push(pkt.seq);
            self.rcv_pkts += 1;
            core.send_ack(Ack {
                flow: self.id,
                cum_seq: pkt.seq + 1,
                ece: false,
                ce_total: 0,
                pkts_total: self.rcv_pkts,
                echo_ts: pkt.sent_at,
                echo_rtx: pkt.retransmit,
                sack: Ack::NO_SACK,
            });
        }
        fn on_ack(&mut self, ack: Ack, _core: &mut SimCore) {
            self.log.borrow_mut().acked.push(ack.cum_seq);
        }
    }

    fn build(n: u64, rate: u64, rtt_ms: i64) -> (Sim, FlowId, Rc<RefCell<ProbeLog>>) {
        let cfg = SimConfig {
            queue: QueueConfig {
                rate_bps: rate,
                buffer_bytes: usize::MAX,
            },
            seed: 7,
            monitor: MonitorConfig::default(),
        };
        let mut sim = Sim::new(cfg, Box::new(PassAqm));
        let log = Rc::new(RefCell::new(ProbeLog::default()));
        let log2 = Rc::clone(&log);
        let id = sim.add_flow(
            PathConf::symmetric(Duration::from_millis(rtt_ms)),
            "probe",
            Time::ZERO,
            move |id| {
                Box::new(Probe {
                    id,
                    n,
                    rcv_pkts: 0,
                    log: log2,
                })
            },
        );
        (sim, id, log)
    }

    #[test]
    fn packets_deliver_in_order_with_correct_latency() {
        // 1000-byte packets at 1 Mb/s: 8 ms serialization each; RTT 10 ms.
        let (mut sim, _, log) = build(3, 1_000_000, 10);
        sim.run_until(Time::from_secs(5));
        assert_eq!(log.borrow().delivered, vec![0, 1, 2]);
        assert_eq!(log.borrow().acked, vec![1, 2, 3]);
    }

    #[test]
    fn serialization_spacing_matches_rate() {
        // Deliveries must be spaced by the serialization time (8 ms),
        // first arriving at ser + fwd prop = 8 + 5 = 13 ms.
        let (mut sim, _, _log) = build(2, 1_000_000, 10);
        let mut deliveries = Vec::new();
        while sim.core.events.peek_time().is_some() && sim.core.now() < Time::from_secs(5) {
            // Inspect the event stream by watching monitor deltas instead:
            sim.step();
            let d = sim.core.monitor.flow(FlowId(0)).delivered_pkts;
            if deliveries.last().copied().unwrap_or(0) != d {
                deliveries.push(d);
            }
            if d == 2 {
                break;
            }
        }
        let now = sim.core.now();
        // Second delivery at 2*8 + 5 = 21 ms.
        assert_eq!(now, Time::from_millis(21));
    }

    #[test]
    fn monitor_counts_sent_and_delivered() {
        let (mut sim, id, _log) = build(5, 10_000_000, 10);
        sim.run_until(Time::from_secs(5));
        let acc = sim.core.monitor.flow(id);
        assert_eq!(acc.sent_pkts, 5);
        assert_eq!(acc.delivered_pkts, 5);
        assert_eq!(acc.delivered_bytes, 5000);
        assert_eq!(acc.dropped, 0);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let run = |seed: u64| {
            let cfg = SimConfig {
                queue: QueueConfig::default(),
                seed,
                monitor: MonitorConfig::default(),
            };
            let mut sim = Sim::new(cfg, Box::new(PassAqm));
            sim.add_flow(
                PathConf::symmetric(Duration::from_millis(20)),
                "probe",
                Time::ZERO,
                |id| {
                    Box::new(Probe {
                        id,
                        n: 50,
                        rcv_pkts: 0,
                        log: Rc::new(RefCell::new(ProbeLog::default())),
                    })
                },
            );
            sim.run_until(Time::from_secs(2));
            (
                sim.core.events.popped(),
                sim.core.queue.stats().dequeued_bytes,
            )
        };
        assert_eq!(run(99), run(99));
    }

    #[test]
    fn timers_fire_for_the_right_flow() {
        struct TimerProbe {
            id: FlowId,
            fired: Rc<RefCell<Vec<(TimerKind, u64)>>>,
            armed: u64,
        }
        impl Source for TimerProbe {
            fn on_start(&mut self, core: &mut SimCore) {
                self.armed = core.schedule_timer(self.id, TimerKind::Send, Duration::from_millis(5));
            }
            fn on_deliver(&mut self, _pkt: Packet, _core: &mut SimCore) {}
            fn on_timer(&mut self, kind: TimerKind, id: u64, _core: &mut SimCore) {
                assert_eq!(id, self.armed, "stale timer id delivered");
                self.fired.borrow_mut().push((kind, id));
            }
        }
        let fired = Rc::new(RefCell::new(Vec::new()));
        let fired2 = Rc::clone(&fired);
        let mut sim = Sim::new(SimConfig::default(), Box::new(PassAqm));
        sim.add_flow(
            PathConf::symmetric(Duration::from_millis(10)),
            "t",
            Time::ZERO,
            move |id| {
                Box::new(TimerProbe {
                    id,
                    fired: fired2,
                    armed: 0,
                })
            },
        );
        sim.run_until(Time::from_secs(1));
        assert_eq!(fired.borrow().len(), 1);
        assert_eq!(fired.borrow()[0].0, TimerKind::Send);
    }

    #[test]
    fn rate_change_event_applies() {
        let (mut sim, _, _log) = build(1, 1_000_000, 10);
        sim.set_rate_at(Time::from_millis(100), 5_000_000);
        sim.run_until(Time::from_secs(1));
        assert_eq!(sim.core.queue.rate_bps(), 5_000_000);
    }

    /// A two-queue qdisc that stages every even-seq packet internally and
    /// only exposes it to the scheduler (head_size/pop) once the *next*
    /// packet arrives. After the first admission on an idle link the qdisc
    /// reports 1 staged packet but no serviceable head; after the second,
    /// 2 packets at once. This is the shape of behaviour (DualQ staging,
    /// shaping) that the old `len_pkts() == 1` assert in `send_packet`
    /// mis-fired on.
    struct StagingQdisc {
        ready: std::collections::VecDeque<(Packet, Time)>,
        staged: Option<(Packet, Time)>,
        stats: crate::queue::QueueStats,
    }
    impl StagingQdisc {
        fn new() -> Self {
            StagingQdisc {
                ready: std::collections::VecDeque::new(),
                staged: None,
                stats: crate::queue::QueueStats::default(),
            }
        }
    }
    impl Qdisc for StagingQdisc {
        fn offer(&mut self, pkt: Packet, now: Time, _rng: &mut Rng) -> crate::aqm::Decision {
            if let Some(prev) = self.staged.take() {
                self.ready.push_back(prev);
            }
            if pkt.seq % 2 == 0 {
                self.staged = Some((pkt, now));
            } else {
                self.ready.push_back((pkt, now));
            }
            self.stats.enqueued += 1;
            crate::aqm::Decision::pass(0.0)
        }
        fn pop(&mut self, now: Time) -> Option<(Packet, Duration)> {
            let (pkt, at) = self.ready.pop_front()?;
            self.stats.dequeued += 1;
            self.stats.dequeued_bytes += pkt.size as u64;
            Some((pkt, now.saturating_since(at)))
        }
        fn head_size(&self) -> Option<usize> {
            self.ready.front().map(|(p, _)| p.size)
        }
        fn len_bytes(&self) -> usize {
            self.ready.iter().map(|(p, _)| p.size).sum::<usize>()
                + self.staged.as_ref().map_or(0, |(p, _)| p.size)
        }
        fn len_pkts(&self) -> usize {
            self.ready.len() + usize::from(self.staged.is_some())
        }
        fn rate_bps(&self) -> u64 {
            1_000_000
        }
        fn set_rate_bps(&mut self, _rate_bps: u64) {}
        fn update(&mut self, _now: Time) {}
        fn update_interval(&self) -> Option<Duration> {
            None
        }
        fn control_variable(&self) -> f64 {
            0.0
        }
        fn stats(&self) -> &crate::queue::QueueStats {
            &self.stats
        }
    }

    #[test]
    fn multi_queue_qdisc_admission_does_not_trip_the_idle_link_assert() {
        // Two back-to-back packets: the first is staged (len 1, no head),
        // the second makes both serviceable at once (len 2 on an idle
        // link). With the over-broad `len_pkts() == 1` assert this
        // panicked in debug builds; the scoped non-empty assert must let
        // the run complete and deliver both packets.
        let log = Rc::new(RefCell::new(ProbeLog::default()));
        let log2 = Rc::clone(&log);
        let mut sim = Sim::with_qdisc(SimConfig::default(), Box::new(StagingQdisc::new()));
        sim.add_flow(
            PathConf::symmetric(Duration::from_millis(10)),
            "probe",
            Time::ZERO,
            move |id| {
                Box::new(Probe {
                    id,
                    n: 2,
                    rcv_pkts: 0,
                    log: log2,
                })
            },
        );
        sim.run_until(Time::from_secs(5));
        assert_eq!(log.borrow().delivered, vec![0, 1]);
    }

    #[test]
    fn path_symmetric_splits_rtt() {
        let p = PathConf::symmetric(Duration::from_millis(25));
        assert_eq!(p.base_rtt(), Duration::from_millis(25));
        assert!(p.fwd <= p.rev);
    }

    fn fifo_hop(rate_bps: u64) -> Box<dyn Qdisc> {
        Box::new(BottleneckQueue::new(
            QueueConfig {
                rate_bps,
                buffer_bytes: usize::MAX,
            },
            Box::new(PassAqm),
        ))
    }

    #[test]
    fn two_hop_chain_delivers_with_summed_latency() {
        // Hop 0 at 1 Mb/s, hop 1 at 1 Mb/s, 3 ms inter-hop propagation.
        // One 1000-byte packet: 8 ms ser at hop 0, 3 ms prop, 8 ms ser at
        // hop 1, 5 ms final fwd leg = delivered at 24 ms.
        let (mut sim, id, log) = build(1, 1_000_000, 10);
        let hop = sim.add_hop(fifo_hop(1_000_000), Duration::from_millis(3));
        sim.set_route(id, vec![0, hop]);
        sim.run_until(Time::from_secs(5));
        assert_eq!(log.borrow().delivered, vec![0]);
        assert_eq!(log.borrow().acked, vec![1]);
        let acc = sim.core.monitor.flow(id);
        assert_eq!(acc.sent_pkts, 1);
        assert_eq!(acc.dequeued_pkts, 1, "dequeue recorded once, at the last hop");
        assert_eq!(acc.delivered_pkts, 1);
        // Per-hop egress accounting saw the packet at both hops.
        assert_eq!(sim.core.hop_flow_bytes(0)[id.idx()], 1000);
        assert_eq!(sim.core.hop_flow_bytes(hop)[id.idx()], 1000);
    }

    #[test]
    fn flow_entering_at_a_later_hop_bypasses_the_primary_bottleneck() {
        let cfg = SimConfig {
            queue: QueueConfig {
                rate_bps: 1_000_000,
                buffer_bytes: usize::MAX,
            },
            seed: 7,
            monitor: MonitorConfig::default(),
        };
        let mut sim = Sim::new(cfg, Box::new(PassAqm));
        let hop = sim.add_hop(fifo_hop(2_000_000), Duration::from_millis(1));
        let log = Rc::new(RefCell::new(ProbeLog::default()));
        let log2 = Rc::clone(&log);
        let id = sim.add_flow(
            PathConf::symmetric(Duration::from_millis(10)),
            "cross",
            Time::ZERO,
            move |id| {
                Box::new(Probe {
                    id,
                    n: 4,
                    rcv_pkts: 0,
                    log: log2,
                })
            },
        );
        sim.set_route(id, vec![hop]);
        sim.run_until(Time::from_secs(5));
        assert_eq!(log.borrow().delivered, vec![0, 1, 2, 3]);
        // The primary bottleneck never saw the flow...
        assert_eq!(sim.core.queue.stats().enqueued, 0);
        assert_eq!(sim.core.hop_flow_bytes(0)[id.idx()], 0);
        // ...but the monitor's end-to-end accounting is complete.
        let acc = sim.core.monitor.flow(id);
        assert_eq!(acc.sent_pkts, 4);
        assert_eq!(acc.dequeued_pkts, 4);
        assert_eq!(acc.delivered_pkts, 4);
        assert_eq!(sim.core.hop_flow_bytes(hop)[id.idx()], 4000);
    }

    #[test]
    fn multi_hop_run_passes_the_per_hop_conservation_audit() {
        let (mut sim, id, _log) = build(20, 5_000_000, 10);
        sim.core.enable_audit(AuditSink::new(7).with_label("multihop"));
        let h1 = sim.add_hop(fifo_hop(5_000_000), Duration::from_millis(2));
        let h2 = sim.add_hop(fifo_hop(5_000_000), Duration::from_millis(2));
        sim.set_route(id, vec![0, h1, h2]);
        // run_until calls finish_audit, which now includes the per-hop
        // conservation checks; all queues drain by the end.
        sim.run_until(Time::from_secs(5));
        assert_eq!(sim.core.monitor.flow(id).delivered_pkts, 20);
        assert_eq!(sim.core.hop_qdisc(h1).len_pkts(), 0);
        assert_eq!(sim.core.hop_qdisc(h2).len_pkts(), 0);
    }

    #[test]
    fn default_flows_are_unaffected_by_an_unrouted_extra_hop() {
        // Two identical sims; one grows an extra hop nobody routes over.
        // Every observable of the default flow must match bit-for-bit.
        let observe = |add_hop: bool| {
            let (mut sim, id, _log) = build(30, 2_000_000, 20);
            if add_hop {
                sim.add_hop(fifo_hop(1_000_000), Duration::from_millis(5));
            }
            sim.run_until(Time::from_secs(5));
            let acc = sim.core.monitor.flow(id);
            (
                sim.core.events.popped(),
                acc.sent_pkts,
                acc.delivered_bytes,
                sim.core.queue.stats().dequeued_bytes,
            )
        };
        assert_eq!(observe(false), observe(true));
    }

    #[test]
    fn invalid_routes_are_rejected() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let (mut sim, id, _log) = build(1, 1_000_000, 10);
        let hop = sim.add_hop(fifo_hop(1_000_000), Duration::from_millis(1));
        for bad in [vec![], vec![7], vec![hop, 0], vec![0, hop, hop]] {
            let r = catch_unwind(AssertUnwindSafe(|| sim.set_route(id, bad.clone())));
            assert!(r.is_err(), "route {bad:?} should be rejected");
        }
        sim.set_route(id, vec![0, hop]); // the valid shape still works
    }

    #[test]
    fn multi_hop_checkpoint_round_trips() {
        let build_chain = || {
            let (mut sim, id, _log) = build(40, 2_000_000, 10);
            let h1 = sim.add_hop(fifo_hop(1_500_000), Duration::from_millis(2));
            sim.set_route(id, vec![0, h1]);
            sim
        };
        let mut sim = build_chain();
        sim.run_until(Time::from_millis(30));
        let blob = sim.save();
        let mut restored = build_chain();
        restored.restore(&blob).expect("restore must succeed");
        assert_eq!(blob, restored.save(), "snapshot of restored state differs");
        sim.run_until(Time::from_secs(5));
        restored.run_until(Time::from_secs(5));
        assert_eq!(sim.save(), restored.save(), "replay diverged after restore");
    }

    #[test]
    fn schema_hash_rejects_topology_shape_changes() {
        let (mut sim, id, _log) = build(5, 1_000_000, 10);
        let h1 = sim.add_hop(fifo_hop(1_000_000), Duration::from_millis(1));
        sim.set_route(id, vec![0, h1]);
        let blob = sim.save();
        // Same flows, same hop count — but a different route.
        let (mut other, oid, _log2) = build(5, 1_000_000, 10);
        let oh = other.add_hop(fifo_hop(1_000_000), Duration::from_millis(1));
        other.set_route(oid, vec![oh]);
        assert!(matches!(
            other.restore(&blob),
            Err(CkptError::SchemaMismatch { .. })
        ));
    }
}
