//! Optional per-packet event tracing.
//!
//! When enabled (off by default — it costs memory proportional to the
//! packet count), the simulator records every admission verdict and
//! departure at the bottleneck. Useful for debugging AQM behaviour
//! packet-by-packet and for exporting runs to external analysis.

use crate::packet::{Ecn, FlowId};
use pi2_simcore::{Duration, Time};

/// One traced bottleneck event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// Packet admitted to the queue.
    Enqueue {
        /// When.
        t: Time,
        /// Owning flow.
        flow: FlowId,
        /// Sequence number.
        seq: u64,
        /// ECN field at admission (post-marking).
        ecn: Ecn,
    },
    /// Packet CE-marked on admission (also reported as an Enqueue).
    Mark {
        /// When.
        t: Time,
        /// Owning flow.
        flow: FlowId,
        /// Sequence number.
        seq: u64,
        /// The probability that produced the mark.
        prob: f64,
    },
    /// Packet dropped (AQM decision or buffer overflow).
    Drop {
        /// When.
        t: Time,
        /// Owning flow.
        flow: FlowId,
        /// Sequence number.
        seq: u64,
        /// The probability that produced the drop (1.0 for overflow).
        prob: f64,
    },
    /// Packet finished transmission.
    Dequeue {
        /// When.
        t: Time,
        /// Owning flow.
        flow: FlowId,
        /// Sequence number.
        seq: u64,
        /// Queueing + serialization time.
        sojourn: Duration,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn time(&self) -> Time {
        match *self {
            TraceEvent::Enqueue { t, .. }
            | TraceEvent::Mark { t, .. }
            | TraceEvent::Drop { t, .. }
            | TraceEvent::Dequeue { t, .. } => t,
        }
    }

    /// One-line text rendering (`t  KIND  flow#seq  details`).
    pub fn render(&self) -> String {
        match *self {
            TraceEvent::Enqueue { t, flow, seq, ecn } => {
                format!("{t} ENQ  f{}#{seq} {ecn:?}", flow.0)
            }
            TraceEvent::Mark { t, flow, seq, prob } => {
                format!("{t} MARK f{}#{seq} p={prob:.4}", flow.0)
            }
            TraceEvent::Drop { t, flow, seq, prob } => {
                format!("{t} DROP f{}#{seq} p={prob:.4}", flow.0)
            }
            TraceEvent::Dequeue {
                t,
                flow,
                seq,
                sojourn,
            } => format!("{t} DEQ  f{}#{seq} sojourn={sojourn}", flow.0),
        }
    }
}

/// A bounded trace buffer (recording stops at capacity, it never evicts —
/// the head of a run is usually what debugging needs).
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
}

impl Trace {
    /// A trace buffer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
        }
    }

    /// Record an event (silently ignored once full).
    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// True once the buffer has hit capacity.
    pub fn is_full(&self) -> bool {
        self.events.len() >= self.capacity
    }

    /// Render the whole trace, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_bounded() {
        let mut tr = Trace::new(2);
        for i in 0..5 {
            tr.push(TraceEvent::Enqueue {
                t: Time::from_millis(i),
                flow: FlowId(0),
                seq: i,
                ecn: Ecn::NotEct,
            });
        }
        assert_eq!(tr.events().len(), 2);
        assert!(tr.is_full());
        assert_eq!(tr.events()[1].time(), Time::from_millis(1));
    }

    #[test]
    fn rendering_is_line_per_event() {
        let mut tr = Trace::new(10);
        tr.push(TraceEvent::Drop {
            t: Time::from_millis(3),
            flow: FlowId(2),
            seq: 7,
            prob: 0.25,
        });
        tr.push(TraceEvent::Dequeue {
            t: Time::from_millis(4),
            flow: FlowId(2),
            seq: 6,
            sojourn: Duration::from_millis(12),
        });
        let text = tr.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("DROP f2#7 p=0.2500"));
        assert!(text.contains("DEQ  f2#6"));
    }
}
