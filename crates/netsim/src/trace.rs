//! Streaming run telemetry: per-packet bottleneck events and per-tick
//! AQM control-state snapshots.
//!
//! The original tracer buffered every event in a `Vec`, costing memory
//! proportional to the packet count — so it stayed off for exactly the
//! long runs where packet-level evidence matters. This module replaces it
//! with a [`TraceSink`] trait the simulator streams into:
//!
//! * [`MemorySink`] — a bounded in-memory buffer for tests and the
//!   `pi2sim --trace N` debugging view (the old `Trace` behaviour);
//! * [`JsonlSink`] / [`CsvSink`] — line-oriented writers over any
//!   [`std::io::Write`], for exporting full runs at O(1) memory;
//! * [`CountingSink`] — per-flow event totals via [`TraceCounts`], the
//!   same counters [`crate::sim::SimCore`] keeps always-on.
//!
//! Sinks are pure observers: they never touch the RNG or the queue, so an
//! attached sink cannot perturb a run — a traced simulation is
//! bit-identical to an untraced one (asserted by the determinism tests).

use crate::aqm::AqmState;
use crate::packet::{Ecn, FlowId};
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Time};
use std::cell::RefCell;
use std::io::{self, Write};
use std::rc::Rc;

/// One traced bottleneck event.
///
/// ## Event contract
///
/// * Every admitted packet produces exactly one `Enqueue`, every departure
///   exactly one `Dequeue`, and every AQM/overflow discard exactly one
///   `Drop` (a dropped packet produces no `Enqueue` and no `Dequeue`).
/// * A CE-marked admission is reported as a `Mark` **immediately followed
///   by** an `Enqueue` (with the ECN field already CE) for the same
///   packet. The `Mark` annotates the admission, it is not a second
///   admission: consumers counting admissions must count `Enqueue` events
///   only — counting `Mark` as well double-counts marked packets.
///   [`TraceCounts`] implements this contract.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// Packet admitted to the queue.
    Enqueue {
        /// When.
        t: Time,
        /// Owning flow.
        flow: FlowId,
        /// Sequence number.
        seq: u64,
        /// ECN field at admission (post-marking).
        ecn: Ecn,
    },
    /// Packet CE-marked on admission (also reported as an Enqueue; see the
    /// event contract above).
    Mark {
        /// When.
        t: Time,
        /// Owning flow.
        flow: FlowId,
        /// Sequence number.
        seq: u64,
        /// The probability that produced the mark.
        prob: f64,
    },
    /// Packet dropped (AQM decision or buffer overflow).
    Drop {
        /// When.
        t: Time,
        /// Owning flow.
        flow: FlowId,
        /// Sequence number.
        seq: u64,
        /// The probability that produced the drop (1.0 for overflow).
        prob: f64,
    },
    /// Packet finished transmission.
    Dequeue {
        /// When.
        t: Time,
        /// Owning flow.
        flow: FlowId,
        /// Sequence number.
        seq: u64,
        /// Queueing + serialization time.
        sojourn: Duration,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn time(&self) -> Time {
        match *self {
            TraceEvent::Enqueue { t, .. }
            | TraceEvent::Mark { t, .. }
            | TraceEvent::Drop { t, .. }
            | TraceEvent::Dequeue { t, .. } => t,
        }
    }

    /// The owning flow.
    pub fn flow(&self) -> FlowId {
        match *self {
            TraceEvent::Enqueue { flow, .. }
            | TraceEvent::Mark { flow, .. }
            | TraceEvent::Drop { flow, .. }
            | TraceEvent::Dequeue { flow, .. } => flow,
        }
    }

    /// One-line text rendering (`t  KIND  flow#seq  details`).
    pub fn render(&self) -> String {
        match *self {
            TraceEvent::Enqueue { t, flow, seq, ecn } => {
                format!("{t} ENQ  f{}#{seq} {ecn:?}", flow.0)
            }
            TraceEvent::Mark { t, flow, seq, prob } => {
                format!("{t} MARK f{}#{seq} p={prob:.4}", flow.0)
            }
            TraceEvent::Drop { t, flow, seq, prob } => {
                format!("{t} DROP f{}#{seq} p={prob:.4}", flow.0)
            }
            TraceEvent::Dequeue {
                t,
                flow,
                seq,
                sojourn,
            } => format!("{t} DEQ  f{}#{seq} sojourn={sojourn}", flow.0),
        }
    }

    /// One JSON object, no trailing newline. See `EXPERIMENTS.md` for the
    /// schema; floats use Rust's shortest-roundtrip formatting, so the
    /// output is deterministic and parses back exactly.
    pub fn jsonl(&self) -> String {
        match *self {
            TraceEvent::Enqueue { t, flow, seq, ecn } => format!(
                "{{\"ev\":\"enq\",\"t_ns\":{},\"flow\":{},\"seq\":{seq},\"ecn\":\"{ecn:?}\"}}",
                t.as_nanos(),
                flow.0
            ),
            TraceEvent::Mark { t, flow, seq, prob } => format!(
                "{{\"ev\":\"mark\",\"t_ns\":{},\"flow\":{},\"seq\":{seq},\"prob\":{prob}}}",
                t.as_nanos(),
                flow.0
            ),
            TraceEvent::Drop { t, flow, seq, prob } => format!(
                "{{\"ev\":\"drop\",\"t_ns\":{},\"flow\":{},\"seq\":{seq},\"prob\":{prob}}}",
                t.as_nanos(),
                flow.0
            ),
            TraceEvent::Dequeue {
                t,
                flow,
                seq,
                sojourn,
            } => format!(
                "{{\"ev\":\"deq\",\"t_ns\":{},\"flow\":{},\"seq\":{seq},\"sojourn_ns\":{}}}",
                t.as_nanos(),
                flow.0,
                sojourn.as_nanos()
            ),
        }
    }

    /// One CSV row matching [`CSV_HEADER`], no trailing newline.
    pub fn csv(&self) -> String {
        match *self {
            TraceEvent::Enqueue { t, flow, seq, ecn } => {
                format!("enq,{},{},{seq},{ecn:?},,,,,,,,,,", t.as_nanos(), flow.0)
            }
            TraceEvent::Mark { t, flow, seq, prob } => {
                format!("mark,{},{},{seq},,{prob},,,,,,,,,", t.as_nanos(), flow.0)
            }
            TraceEvent::Drop { t, flow, seq, prob } => {
                format!("drop,{},{},{seq},,{prob},,,,,,,,,", t.as_nanos(), flow.0)
            }
            TraceEvent::Dequeue {
                t,
                flow,
                seq,
                sojourn,
            } => format!(
                "deq,{},{},{seq},,,{},,,,,,,,",
                t.as_nanos(),
                flow.0,
                sojourn.as_nanos()
            ),
        }
    }
}

/// The column header shared by every [`CsvSink`] row (packet events leave
/// the AQM columns blank and vice versa).
pub const CSV_HEADER: &str = "event,t_ns,flow,seq,ecn,prob,sojourn_ns,p_prime,aqm_prob,\
                              scalable_prob,alpha_term,beta_term,burst_ns,est_rate_Bps,qdelay_ns";

/// Quote one CSV field per RFC 4180: a field containing a comma, a double
/// quote, or a line break is wrapped in double quotes with embedded quotes
/// doubled; anything else passes through unchanged. Every free-text label
/// column (scenario names, flow labels) must go through this — an
/// unescaped comma silently shifts every column after it.
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        s.to_string()
    }
}

/// The `"ev":"aqm"` JSONL line for a control-state snapshot at `t`.
pub fn aqm_state_jsonl(t: Time, st: &AqmState) -> String {
    format!(
        "{{\"ev\":\"aqm\",\"t_ns\":{},\"p_prime\":{},\"prob\":{},\"scalable_prob\":{},\
         \"alpha_term\":{},\"beta_term\":{},\"burst_ns\":{},\"est_rate_Bps\":{},\"qdelay_ns\":{}}}",
        t.as_nanos(),
        st.p_prime,
        st.prob,
        st.scalable_prob,
        st.alpha_term,
        st.beta_term,
        st.burst_allowance.as_nanos(),
        st.est_rate_bytes_per_sec,
        st.qdelay.as_nanos()
    )
}

/// The `aqm` CSV row for a control-state snapshot at `t`.
pub fn aqm_state_csv(t: Time, st: &AqmState) -> String {
    format!(
        "aqm,{},,,,,,{},{},{},{},{},{},{},{}",
        t.as_nanos(),
        st.p_prime,
        st.prob,
        st.scalable_prob,
        st.alpha_term,
        st.beta_term,
        st.burst_allowance.as_nanos(),
        st.est_rate_bytes_per_sec,
        st.qdelay.as_nanos()
    )
}

/// A consumer of the simulator's telemetry stream.
///
/// The simulator calls [`TraceSink::on_event`] for every bottleneck event
/// and [`TraceSink::on_aqm_state`] at every AQM update tick, in
/// simulation order. Implementations must be pure observers — they see
/// the stream, they cannot influence the run.
pub trait TraceSink {
    /// A bottleneck packet event occurred.
    fn on_event(&mut self, ev: &TraceEvent);

    /// The AQM's periodic update ran; `state` is its post-update control
    /// state. Default: ignore.
    fn on_aqm_state(&mut self, t: Time, state: &AqmState) {
        let _ = (t, state);
    }

    /// A bottleneck event occurred at an extra hop (`hop >= 1`; hop-0
    /// events arrive through [`TraceSink::on_event`], keeping the primary
    /// stream's schema unchanged). Default: ignore — line-oriented sinks
    /// stay pinned to the hop-0 stream their golden files cover, while
    /// timeline sinks ([`crate::perfetto::PerfettoSink`]) build per-hop
    /// tracks from it.
    fn on_hop_event(&mut self, hop: u32, ev: &TraceEvent) {
        let _ = (hop, ev);
    }

    /// An extra hop's periodic controller ran (`hop >= 1`); `state` is its
    /// post-update control state. Default: ignore.
    fn on_hop_aqm_state(&mut self, hop: u32, t: Time, state: &AqmState) {
        let _ = (hop, t, state);
    }

    /// Flush any buffered output (file-backed sinks). Reports the first
    /// write error encountered since the last flush.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A shared handle to a sink: lets the caller keep reading a sink that
/// has been handed to the simulator (single-threaded interior mutability).
impl<S: TraceSink> TraceSink for Rc<RefCell<S>> {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.borrow_mut().on_event(ev);
    }
    fn on_aqm_state(&mut self, t: Time, state: &AqmState) {
        self.borrow_mut().on_aqm_state(t, state);
    }
    fn on_hop_event(&mut self, hop: u32, ev: &TraceEvent) {
        self.borrow_mut().on_hop_event(hop, ev);
    }
    fn on_hop_aqm_state(&mut self, hop: u32, t: Time, state: &AqmState) {
        self.borrow_mut().on_hop_aqm_state(hop, t, state);
    }
    fn flush(&mut self) -> io::Result<()> {
        self.borrow_mut().flush()
    }
}

/// Per-flow event totals, O(1) memory per flow.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowCounts {
    /// Packets admitted to the queue (marked admissions count once —
    /// see the [`TraceEvent`] contract).
    pub enqueued: u64,
    /// Packets CE-marked on admission.
    pub marked: u64,
    /// Packets dropped (AQM decision or overflow).
    pub dropped: u64,
    /// Packets that completed transmission.
    pub dequeued: u64,
}

impl FlowCounts {
    fn add(&mut self, other: &FlowCounts) {
        self.enqueued += other.enqueued;
        self.marked += other.marked;
        self.dropped += other.dropped;
        self.dequeued += other.dequeued;
    }
}

/// Always-on per-flow event counters.
///
/// [`crate::sim::SimCore`] keeps one of these regardless of whether any
/// sink is attached — plain integer increments, cheap enough to never
/// turn off. The same totals are reachable through the sink interface via
/// [`CountingSink`], which is how exported traces are cross-checked
/// against the live run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceCounts {
    flows: Vec<FlowCounts>,
    /// Number of AQM update ticks observed.
    pub aqm_updates: u64,
}

impl TraceCounts {
    /// An empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, flow: FlowId) -> &mut FlowCounts {
        let idx = flow.idx();
        if idx >= self.flows.len() {
            self.flows.resize(idx + 1, FlowCounts::default());
        }
        &mut self.flows[idx]
    }

    /// Count an admission.
    pub fn note_enqueue(&mut self, flow: FlowId) {
        self.ensure(flow).enqueued += 1;
    }

    /// Count a CE mark (the accompanying admission is counted separately
    /// by [`TraceCounts::note_enqueue`]).
    pub fn note_mark(&mut self, flow: FlowId) {
        self.ensure(flow).marked += 1;
    }

    /// Count a drop.
    pub fn note_drop(&mut self, flow: FlowId) {
        self.ensure(flow).dropped += 1;
    }

    /// Count a departure.
    pub fn note_dequeue(&mut self, flow: FlowId) {
        self.ensure(flow).dequeued += 1;
    }

    /// Count an AQM update tick.
    pub fn note_aqm_update(&mut self) {
        self.aqm_updates += 1;
    }

    /// Count one trace event, honouring the Mark⇒Enqueue contract: a
    /// `Mark` increments only `marked` (its admission arrives as the
    /// following `Enqueue` event).
    pub fn count(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::Enqueue { flow, .. } => self.note_enqueue(*flow),
            TraceEvent::Mark { flow, .. } => self.note_mark(*flow),
            TraceEvent::Drop { flow, .. } => self.note_drop(*flow),
            TraceEvent::Dequeue { flow, .. } => self.note_dequeue(*flow),
        }
    }

    /// This flow's totals (zero for flows never seen).
    pub fn flow(&self, flow: FlowId) -> FlowCounts {
        self.flows.get(flow.idx()).copied().unwrap_or_default()
    }

    /// Per-flow totals, indexed by [`FlowId`]; flows with no events yet
    /// may be absent from the tail.
    pub fn flows(&self) -> &[FlowCounts] {
        &self.flows
    }

    /// Totals summed over all flows.
    pub fn totals(&self) -> FlowCounts {
        let mut sum = FlowCounts::default();
        for f in &self.flows {
            sum.add(f);
        }
        sum
    }

    /// Serialize all counters in a fixed field order (checkpointing).
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.usize(self.flows.len());
        for f in &self.flows {
            w.u64(f.enqueued);
            w.u64(f.marked);
            w.u64(f.dropped);
            w.u64(f.dequeued);
        }
        w.u64(self.aqm_updates);
    }

    /// Restore counters captured by [`TraceCounts::save_ckpt`].
    pub fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let n = r.usize()?;
        self.flows.clear();
        for _ in 0..n {
            self.flows.push(FlowCounts {
                enqueued: r.u64()?,
                marked: r.u64()?,
                dropped: r.u64()?,
                dequeued: r.u64()?,
            });
        }
        self.aqm_updates = r.u64()?;
        Ok(())
    }
}

/// A sink that only counts (the streaming face of [`TraceCounts`]).
#[derive(Clone, Debug, Default)]
pub struct CountingSink {
    /// The running totals.
    pub counts: TraceCounts,
}

impl CountingSink {
    /// A sink with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for CountingSink {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.counts.count(ev);
    }
    fn on_aqm_state(&mut self, _t: Time, _state: &AqmState) {
        self.counts.note_aqm_update();
    }
}

/// A bounded in-memory sink (recording stops at capacity, it never
/// evicts — the head of a run is usually what debugging needs).
#[derive(Clone, Debug)]
pub struct MemorySink {
    events: Vec<TraceEvent>,
    aqm_states: Vec<(Time, AqmState)>,
    capacity: usize,
}

impl MemorySink {
    /// A sink holding at most `capacity` events (and as many AQM-state
    /// snapshots).
    pub fn new(capacity: usize) -> Self {
        MemorySink {
            events: Vec::new(),
            aqm_states: Vec::new(),
            capacity,
        }
    }

    /// A sink with no bound (tests on small scenarios).
    pub fn unbounded() -> Self {
        Self::new(usize::MAX)
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The recorded `(tick time, state)` AQM snapshots, in order.
    pub fn aqm_states(&self) -> &[(Time, AqmState)] {
        &self.aqm_states
    }

    /// True once the event buffer has hit capacity.
    pub fn is_full(&self) -> bool {
        self.events.len() >= self.capacity
    }

    /// Render the recorded events, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }
}

impl TraceSink for MemorySink {
    fn on_event(&mut self, ev: &TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(*ev);
        }
    }
    fn on_aqm_state(&mut self, t: Time, state: &AqmState) {
        if self.aqm_states.len() < self.capacity {
            self.aqm_states.push((t, *state));
        }
    }
}

/// A streaming JSONL writer: one JSON object per line, packet events and
/// AQM snapshots interleaved in simulation order. Wrap the writer in a
/// [`std::io::BufWriter`] for file output. Write errors are sticky and
/// reported by [`TraceSink::flush`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    w: W,
    lines: u64,
    err: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Stream onto `w`.
    pub fn new(w: W) -> Self {
        JsonlSink {
            w,
            lines: 0,
            err: None,
        }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Unwrap the underlying writer (tests reading a `Vec<u8>` back).
    pub fn into_inner(self) -> W {
        self.w
    }

    fn write_line(&mut self, line: &str) {
        if self.err.is_some() {
            return;
        }
        if let Err(e) = self.w.write_all(line.as_bytes()).and_then(|_| self.w.write_all(b"\n")) {
            self.err = Some(e);
        } else {
            self.lines += 1;
        }
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.write_line(&ev.jsonl());
    }
    fn on_aqm_state(&mut self, t: Time, state: &AqmState) {
        self.write_line(&aqm_state_jsonl(t, state));
    }
    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.w.flush()
    }
}

/// A streaming CSV writer with the [`CSV_HEADER`] columns (written on
/// construction); packet events and AQM snapshots share the one table,
/// blank where a column does not apply.
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    w: W,
    lines: u64,
    err: Option<io::Error>,
}

impl<W: Write> CsvSink<W> {
    /// Stream onto `w`, writing the header row immediately.
    pub fn new(w: W) -> Self {
        let mut sink = CsvSink {
            w,
            lines: 0,
            err: None,
        };
        sink.write_line(CSV_HEADER);
        sink
    }

    /// Rows successfully written so far (including the header).
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Unwrap the underlying writer.
    pub fn into_inner(self) -> W {
        self.w
    }

    fn write_line(&mut self, line: &str) {
        if self.err.is_some() {
            return;
        }
        if let Err(e) = self.w.write_all(line.as_bytes()).and_then(|_| self.w.write_all(b"\n")) {
            self.err = Some(e);
        } else {
            self.lines += 1;
        }
    }
}

impl<W: Write> TraceSink for CsvSink<W> {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.write_line(&ev.csv());
    }
    fn on_aqm_state(&mut self, t: Time, state: &AqmState) {
        self.write_line(&aqm_state_csv(t, state));
    }
    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enq(i: u64) -> TraceEvent {
        TraceEvent::Enqueue {
            t: Time::from_millis(i),
            flow: FlowId(0),
            seq: i,
            ecn: Ecn::NotEct,
        }
    }

    #[test]
    fn memory_sink_is_bounded() {
        let mut tr = MemorySink::new(2);
        for i in 0..5 {
            tr.on_event(&enq(i));
        }
        assert_eq!(tr.events().len(), 2);
        assert!(tr.is_full());
        assert_eq!(tr.events()[1].time(), Time::from_millis(1));
    }

    #[test]
    fn rendering_is_line_per_event() {
        let mut tr = MemorySink::new(10);
        tr.on_event(&TraceEvent::Drop {
            t: Time::from_millis(3),
            flow: FlowId(2),
            seq: 7,
            prob: 0.25,
        });
        tr.on_event(&TraceEvent::Dequeue {
            t: Time::from_millis(4),
            flow: FlowId(2),
            seq: 6,
            sojourn: Duration::from_millis(12),
        });
        let text = tr.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("DROP f2#7 p=0.2500"));
        assert!(text.contains("DEQ  f2#6"));
    }

    #[test]
    fn counting_does_not_double_count_marked_admissions() {
        // A marked admission arrives as Mark + Enqueue; the enqueue total
        // must rise by exactly one.
        let mut counts = TraceCounts::new();
        let f = FlowId(1);
        counts.count(&TraceEvent::Mark {
            t: Time::ZERO,
            flow: f,
            seq: 0,
            prob: 0.1,
        });
        counts.count(&TraceEvent::Enqueue {
            t: Time::ZERO,
            flow: f,
            seq: 0,
            ecn: Ecn::Ce,
        });
        counts.count(&TraceEvent::Enqueue {
            t: Time::ZERO,
            flow: f,
            seq: 1,
            ecn: Ecn::Ect0,
        });
        counts.count(&TraceEvent::Drop {
            t: Time::ZERO,
            flow: f,
            seq: 2,
            prob: 0.2,
        });
        counts.count(&TraceEvent::Dequeue {
            t: Time::ZERO,
            flow: f,
            seq: 0,
            sojourn: Duration::ZERO,
        });
        let c = counts.flow(f);
        assert_eq!(c.enqueued, 2, "Mark must not count as an admission");
        assert_eq!(c.marked, 1);
        assert_eq!(c.dropped, 1);
        assert_eq!(c.dequeued, 1);
        // Unseen flows read as zero.
        assert_eq!(counts.flow(FlowId(9)), FlowCounts::default());
        assert_eq!(counts.totals(), c);
    }

    #[test]
    fn counting_sink_matches_direct_counts() {
        let evs = [
            enq(0),
            TraceEvent::Mark {
                t: Time::ZERO,
                flow: FlowId(2),
                seq: 3,
                prob: 0.5,
            },
            TraceEvent::Dequeue {
                t: Time::from_millis(1),
                flow: FlowId(0),
                seq: 0,
                sojourn: Duration::from_micros(10),
            },
        ];
        let mut sink = CountingSink::new();
        let mut direct = TraceCounts::new();
        for ev in &evs {
            sink.on_event(ev);
            direct.count(ev);
        }
        sink.on_aqm_state(Time::ZERO, &AqmState::default());
        direct.note_aqm_update();
        assert_eq!(sink.counts, direct);
        assert_eq!(sink.counts.aqm_updates, 1);
    }

    #[test]
    fn jsonl_sink_emits_one_parseable_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.on_event(&enq(5));
        sink.on_event(&TraceEvent::Drop {
            t: Time::from_millis(6),
            flow: FlowId(1),
            seq: 9,
            prob: 0.0625,
        });
        sink.on_aqm_state(
            Time::from_millis(32),
            &AqmState {
                p_prime: 0.125,
                prob: 0.015625,
                ..AqmState::default()
            },
        );
        sink.flush().unwrap();
        assert_eq!(sink.lines(), 3);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"ev\":\"enq\",\"t_ns\":5000000,\"flow\":0,\"seq\":5,\"ecn\":\"NotEct\"}"
        );
        assert_eq!(
            lines[1],
            "{\"ev\":\"drop\",\"t_ns\":6000000,\"flow\":1,\"seq\":9,\"prob\":0.0625}"
        );
        assert!(lines[2].starts_with("{\"ev\":\"aqm\",\"t_ns\":32000000,\"p_prime\":0.125"));
    }

    #[test]
    fn csv_sink_has_header_and_consistent_columns() {
        let mut sink = CsvSink::new(Vec::new());
        sink.on_event(&enq(1));
        sink.on_event(&TraceEvent::Dequeue {
            t: Time::from_millis(2),
            flow: FlowId(0),
            seq: 1,
            sojourn: Duration::from_micros(1200),
        });
        sink.on_aqm_state(Time::from_millis(32), &AqmState::default());
        sink.flush().unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let cols = lines[0].split(',').count();
        assert!(lines[0].starts_with("event,t_ns,flow,seq,"));
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
        }
        assert!(lines[1].starts_with("enq,1000000,0,1,NotEct,"));
        assert!(lines[2].starts_with("deq,2000000,0,1,,,1200000,"));
        assert!(lines[3].starts_with("aqm,32000000,,,,,,0,0,0,"));
    }

    #[test]
    fn shared_handle_lets_caller_keep_reading() {
        let mem = Rc::new(RefCell::new(MemorySink::new(10)));
        let mut handle: Box<dyn TraceSink> = Box::new(Rc::clone(&mem));
        handle.on_event(&enq(0));
        assert_eq!(mem.borrow().events().len(), 1);
    }

    #[test]
    fn csv_field_quotes_per_rfc4180() {
        assert_eq!(csv_field("pi2"), "pi2");
        assert_eq!(csv_field("rate step"), "rate step");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
        assert_eq!(csv_field(""), "");
    }

    #[test]
    fn hop_events_default_to_ignored_and_forward_through_shared_handles() {
        // A sink that only overrides the hop hooks must still satisfy the
        // trait, and the Rc<RefCell> handle must forward both hooks.
        #[derive(Default)]
        struct HopCounter {
            events: usize,
            states: usize,
        }
        impl TraceSink for HopCounter {
            fn on_event(&mut self, _ev: &TraceEvent) {}
            fn on_hop_event(&mut self, _hop: u32, _ev: &TraceEvent) {
                self.events += 1;
            }
            fn on_hop_aqm_state(&mut self, _hop: u32, _t: Time, _state: &AqmState) {
                self.states += 1;
            }
        }
        let hc = Rc::new(RefCell::new(HopCounter::default()));
        let mut handle: Box<dyn TraceSink> = Box::new(Rc::clone(&hc));
        handle.on_hop_event(1, &enq(0));
        handle.on_hop_aqm_state(2, Time::ZERO, &AqmState::default());
        assert_eq!(hc.borrow().events, 1);
        assert_eq!(hc.borrow().states, 1);

        // Line-oriented sinks ignore hop traffic entirely: their output
        // stays pinned to the hop-0 stream the golden files cover.
        let mut jsonl = JsonlSink::new(Vec::new());
        jsonl.on_hop_event(1, &enq(0));
        jsonl.on_hop_aqm_state(1, Time::ZERO, &AqmState::default());
        assert_eq!(jsonl.lines(), 0);
    }
}
