//! Hybrid-mode coupling: a flow-level *background aggregate* sharing the
//! bottleneck with the packet-level foreground flows.
//!
//! The packet simulator owns the queue, the AQM and the clock. Each
//! [`crate::sim::Event::AqmUpdate`] tick, the attached aggregate is handed
//! the AQM's post-update probabilities and queue delay, advances its own
//! (flow-level, no-per-packet-event) dynamics by one controller period,
//! and reports its new arrival rate. The simulator then *steals* that much
//! service capacity from the foreground by shrinking the bottleneck's
//! drain rate, which is exactly how an unmodeled background load looks to
//! the foreground flows: less capacity, same AQM feedback loop.
//!
//! The trait is deliberately free of fluid-model types so `pi2-netsim`
//! keeps its dependency surface (simcore + obs); the concrete
//! implementation wrapping `pi2_fluid::FlowLevelSim` lives in
//! `pi2-experiments`.

use pi2_simcore::ckpt::{CkptError, CkptReader, CkptWriter};
use pi2_simcore::time::{Duration, Time};

/// A rate-based traffic aggregate driven by the packet-level AQM.
pub trait BackgroundAggregate {
    /// Advance the aggregate by `dt` under the AQM's current classic-side
    /// probability `classic_prob`, scalable-side probability
    /// `scalable_prob` (0 where the scheme has none) and queue delay.
    /// Returns the aggregate's new arrival rate in bits per second.
    fn on_tick(
        &mut self,
        dt: Duration,
        classic_prob: f64,
        scalable_prob: f64,
        qdelay: Duration,
    ) -> u64;

    /// How many flows this aggregate represents (for reporting and the
    /// checkpoint schema hash).
    fn flow_count(&self) -> u64;

    /// Structural fingerprint folded into the checkpoint schema hash: a
    /// restore must be refused when the aggregate's shape (class count,
    /// population, kinds) differs from the snapshot's.
    fn schema_fingerprint(&self) -> u64;

    /// Serialize the aggregate's mutable state.
    fn save_ckpt(&self, w: &mut CkptWriter);

    /// Restore state written by [`Self::save_ckpt`].
    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError>;
}

/// The fraction of nominal capacity always reserved for the foreground,
/// so a runaway aggregate can never starve the packet-level flows of
/// service entirely (the AQM would have no feedback path left).
pub const MIN_FOREGROUND_FRACTION: f64 = 0.05;

/// The background attachment held by [`crate::sim::Sim`]: the aggregate
/// plus the capacity-stealing bookkeeping and the observational track.
pub struct Background {
    /// The flow-level aggregate.
    pub agg: Box<dyn BackgroundAggregate>,
    /// Nominal bottleneck capacity in bits/s (tracks `SetLinkRate`).
    pub capacity_bps: u64,
    /// Background rate currently granted (≤ capacity − foreground floor).
    pub applied_bps: u64,
    /// Total background volume served so far, in bytes.
    pub bg_bytes: f64,
    /// Coupling ticks taken.
    pub ticks: u64,
    /// The aggregate-rate counter track: `(t, granted bits/s)` per tick.
    pub series: Vec<(Time, u64)>,
}

impl Background {
    /// Wrap an aggregate for a bottleneck of `capacity_bps`.
    pub fn new(agg: Box<dyn BackgroundAggregate>, capacity_bps: u64) -> Self {
        Background {
            agg,
            capacity_bps,
            applied_bps: 0,
            bg_bytes: 0.0,
            ticks: 0,
            series: Vec::new(),
        }
    }

    /// The most background rate the foreground floor allows right now.
    pub fn grant_ceiling(&self) -> u64 {
        let floor = (self.capacity_bps as f64 * MIN_FOREGROUND_FRACTION) as u64;
        self.capacity_bps.saturating_sub(floor)
    }

    /// Serialize the attachment (bookkeeping + aggregate state).
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.u64(self.capacity_bps);
        w.u64(self.applied_bps);
        w.f64(self.bg_bytes);
        w.u64(self.ticks);
        w.usize(self.series.len());
        for &(t, bps) in &self.series {
            w.time(t);
            w.u64(bps);
        }
        self.agg.save_ckpt(w);
    }

    /// Restore the attachment written by [`Self::save_ckpt`].
    pub fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.capacity_bps = r.u64()?;
        self.applied_bps = r.u64()?;
        self.bg_bytes = r.f64()?;
        self.ticks = r.u64()?;
        let n = r.usize()?;
        self.series.clear();
        self.series.reserve(n);
        for _ in 0..n {
            let t = r.time()?;
            let bps = r.u64()?;
            self.series.push((t, bps));
        }
        self.agg.restore_ckpt(r)
    }
}
