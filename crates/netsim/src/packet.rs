//! Packets and the ECN field.
//!
//! The paper's coexistence mechanism hinges entirely on the two-bit ECN
//! field in the IP header (Section 5): Scalable traffic sets ECT(1),
//! Classic ECN traffic sets ECT(0), and both share the CE codepoint for
//! "congestion experienced". The AQM classifies packets by this field to
//! decide whether to apply the linear probability `p'` (Scalable) or its
//! square (Classic).

use pi2_simcore::Time;

/// Identifier of a flow registered with the simulator.
///
/// Flow ids are dense indices assigned in registration order, so they can
/// index per-flow tables directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u32);

impl FlowId {
    /// The id as a usize index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// The two-bit ECN field of the IP header (RFC 3168 / the L4S proposal the
/// paper anticipates).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ecn {
    /// Not ECN-capable transport: congestion must be signalled by drop.
    NotEct,
    /// ECN-capable, Classic semantics (a mark means the same as a drop).
    Ect0,
    /// ECN-capable, Scalable semantics (the paper's modified DCTCP sets
    /// this; the identifier the IETF later standardized for L4S).
    Ect1,
    /// Congestion Experienced: the AQM has marked this packet.
    Ce,
}

impl Ecn {
    /// True if the packet may be CE-marked instead of dropped.
    pub fn is_ect(self) -> bool {
        !matches!(self, Ecn::NotEct)
    }

    /// True if the packet belongs to the Scalable (L4S) class.
    ///
    /// CE counts as Scalable here, mirroring the paper's single-queue
    /// classifier (Figure 9: "ECT(1) or CE" go to the Scalable branch).
    /// A CE packet was already marked upstream, and in the paper's
    /// experiments only Scalable senders run a marking-heavy regime, so
    /// treating ambiguous CE as Scalable is the safe choice.
    pub fn is_scalable(self) -> bool {
        matches!(self, Ecn::Ect1 | Ecn::Ce)
    }
}

/// A data packet traversing the bottleneck.
///
/// ACKs do not use this type — the reverse path is uncongested, so
/// acknowledgements travel as [`crate::sim::Ack`] events with a pure delay.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Owning flow.
    pub flow: FlowId,
    /// Sequence number in packets (each flow uses a fixed segment size).
    pub seq: u64,
    /// On-wire size in bytes, headers included.
    pub size: usize,
    /// ECN field; the AQM may rewrite ECT(x) to CE.
    pub ecn: Ecn,
    /// When the sender handed the packet to the bottleneck.
    pub sent_at: Time,
    /// True for retransmissions (excluded from goodput accounting).
    pub retransmit: bool,
    /// True when this copy was injected by the path impairment layer's
    /// duplication knob ([`crate::impair::LinkImpairments`]); the original
    /// keeps `false`, so receivers and tests can tell the copies apart.
    pub path_dup: bool,
}

impl Packet {
    /// Convenience constructor for a fresh data packet.
    pub fn data(flow: FlowId, seq: u64, size: usize, ecn: Ecn, now: Time) -> Self {
        Packet {
            flow,
            seq,
            size,
            ecn,
            sent_at: now,
            retransmit: false,
            path_dup: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ect_classification() {
        assert!(!Ecn::NotEct.is_ect());
        assert!(Ecn::Ect0.is_ect());
        assert!(Ecn::Ect1.is_ect());
        assert!(Ecn::Ce.is_ect());
    }

    #[test]
    fn scalable_classification_follows_figure_9() {
        assert!(Ecn::Ect1.is_scalable());
        assert!(Ecn::Ce.is_scalable());
        assert!(!Ecn::Ect0.is_scalable());
        assert!(!Ecn::NotEct.is_scalable());
    }

    #[test]
    fn flow_id_indexes() {
        assert_eq!(FlowId(7).idx(), 7);
    }

    #[test]
    fn data_packet_defaults() {
        let p = Packet::data(FlowId(1), 42, 1500, Ecn::Ect0, Time::from_millis(3));
        assert_eq!(p.seq, 42);
        assert!(!p.retransmit);
        assert!(!p.path_dup);
        assert_eq!(p.sent_at, Time::from_millis(3));
    }
}
